"""The canonical algorithm registry: names to zero-argument factories.

Execution requests travel between processes and onto disk, so they
cannot carry algorithm *instances* — they carry registry keys, and
every consumer (CLI, sweep workers, cache loads) resolves the key
through this one table.  Keys are the CLI's historical algorithm names
plus the non-uniform witnesses used by the gap experiments.
"""

from __future__ import annotations

from typing import Callable

from repro.broadcast import AtomicBroadcast
from repro.consensus import (
    A1,
    COptFloodSet,
    COptFloodSetWS,
    EagerFloodSetWS,
    FloodSet,
    FloodSetWS,
    FOptFloodSet,
    FOptFloodSetWS,
)
from repro.errors import ConfigurationError
from repro.rounds.algorithm import RoundAlgorithm

#: Every round algorithm a request may name.  Zero-argument factories:
#: the algorithms are stateless between runs, so a fresh instance per
#: execution keeps workers independent.
ALGORITHM_FACTORIES: dict[str, Callable[[], RoundAlgorithm]] = {
    "floodset": FloodSet,
    "floodset-ws": FloodSetWS,
    "c-opt": COptFloodSet,
    "c-opt-ws": COptFloodSetWS,
    "f-opt": FOptFloodSet,
    "f-opt-ws": FOptFloodSetWS,
    "a1": A1,
    "eager-floodset-ws": EagerFloodSetWS,
    "atomic-broadcast": AtomicBroadcast,
}


def make_algorithm(name: str) -> RoundAlgorithm:
    """Instantiate the registered algorithm ``name``.

    Raises :class:`~repro.errors.ConfigurationError` for unknown keys,
    naming the known ones.
    """
    factory = ALGORITHM_FACTORIES.get(name)
    if factory is None:
        raise ConfigurationError(
            f"unknown algorithm {name!r}; choose from "
            f"{sorted(ALGORITHM_FACTORIES)}"
        )
    return factory()
