"""The ``repro`` command: run experiments and inspect runs from a shell.

Subcommands:

* ``repro experiments [--ids E1 E9] [--full]`` — run the paper's
  experiment suite and print claim-vs-measured reports.
* ``repro summary`` — print the headline RS-vs-RWS latency table (E15).
* ``repro sdd`` — the SDD story: the SS algorithm at work plus the
  Theorem 3.1 refutations.
* ``repro commit`` — commit-rate comparison (E3).
* ``repro latency ALGORITHM`` — latency profile of one algorithm in
  both round models.
* ``repro show SCENARIO`` — execute a named scenario and print the
  round tableau.
* ``repro trace SCENARIO [--jsonl PATH]`` — execute a named scenario
  under an event-log observer and export the structured trace.
* ``repro metrics [SCENARIO]`` — execute a named scenario under a
  metrics observer and print the counter/histogram dump.
* ``repro check SCENARIO | --jsonl PATH`` — run the trace oracle
  (detector, synchrony, consensus and ordering invariants) over a
  scenario's live trace or an exported JSONL file.
* ``repro replay SCENARIO TRACE.jsonl`` — reconstruct the failure
  scenario behind an exported trace and re-execute it, asserting
  event-for-event equality.
* ``repro diff A.jsonl B.jsonl | --sdd CANDIDATE`` — divergence diff
  of two traces, or the Theorem 3.1 indistinguishability demo.
"""

from __future__ import annotations

import argparse
import random
import sys
from typing import Any, Sequence

from repro.analysis import format_table, latency_profile, latency_summary_table
from repro.commit import compare_commit_rates
from repro.consensus import (
    A1,
    COptFloodSet,
    COptFloodSetWS,
    FloodSet,
    FloodSetWS,
    FOptFloodSet,
    FOptFloodSetWS,
)
from repro.core import (
    run_all_experiments,
    run_all_extensions,
    run_experiment,
    run_extension,
    write_report,
)
from repro.failures import FailurePattern
from repro.obs import (
    CompositeObserver,
    EventLog,
    MetricsObserver,
    MetricsRegistry,
    Profiler,
    check_events,
    diff_traces,
    events_from_jsonl_lines,
    logical_clock,
    replay_events,
    set_profiler,
    view_divergence,
)
from repro.rounds import RoundModel, run_rs, run_rws
from repro.sdd import (
    SP_CANDIDATE_FACTORIES,
    refute_sdd_candidate,
    sdd_quadruple_traces,
    solve_sdd_ss,
)
from repro.sdd.spec import RECEIVER
from repro.trace import describe_run, round_tableau, step_diagram
from repro.workloads import (
    a1_rws_disagreement,
    adversarial_split,
    floodset_rws_violation,
    initially_dead_t,
)

ALGORITHMS = {
    "floodset": FloodSet,
    "floodset-ws": FloodSetWS,
    "c-opt": COptFloodSet,
    "c-opt-ws": COptFloodSetWS,
    "f-opt": FOptFloodSet,
    "f-opt-ws": FOptFloodSetWS,
    "a1": A1,
}

SCENARIOS = {
    "a1-rws": (
        "the Section 5.3 disagreement: p1 decides on its own pending "
        "broadcast",
        lambda: (A1(), adversarial_split(3), a1_rws_disagreement(3), RoundModel.RWS),
    ),
    "floodset-rws": (
        "plain FloodSet split by a pending value in the decision round",
        lambda: (
            FloodSet(),
            adversarial_split(3),
            floodset_rws_violation(3),
            RoundModel.RWS,
        ),
    ),
    "fopt-fast": (
        "t initial crashes let F_OptFloodSet decide at round 1",
        lambda: (
            FOptFloodSet(),
            adversarial_split(3),
            initially_dead_t(3, 1),
            RoundModel.RS,
        ),
    ),
    "broadcast-split": (
        "plain atomic broadcast loses total order under a pending batch",
        lambda: _broadcast_split_scenario(),
    ),
}


#: Long-form names accepted anywhere a scenario name is (docs and the
#: paper's prose refer to the counterexamples by these).
SCENARIO_ALIASES = {
    "floodset-rws-violation": "floodset-rws",
    "a1-rws-disagreement": "a1-rws",
}


def _broadcast_split_scenario():
    from repro.broadcast import AtomicBroadcast

    return (
        AtomicBroadcast(),
        (("x",), ("y",), ("z",)),
        floodset_rws_violation(3),
        RoundModel.RWS,
    )


def _resolve_scenario(name: str) -> tuple[str, Any] | None:
    """Look a scenario up by name or alias; ``None`` when unknown."""
    return SCENARIOS.get(SCENARIO_ALIASES.get(name, name))


def _unknown_scenario(name: str) -> int:
    """Print the standard unknown-scenario message; returns exit code 2."""
    known = sorted(SCENARIOS) + sorted(SCENARIO_ALIASES)
    print(
        f"error: unknown scenario {name!r}; choose from {known}",
        file=sys.stderr,
    )
    return 2


def _run_by_id(exp_id: str, quick: bool):
    if exp_id.upper().startswith("X"):
        return run_extension(exp_id, quick)
    return run_experiment(exp_id, quick)


def _cmd_experiments(args: argparse.Namespace) -> int:
    quick = not args.full
    if args.ids:
        results = [_run_by_id(exp_id, quick) for exp_id in args.ids]
    else:
        results = run_all_experiments(quick)
        if args.extensions:
            results.extend(run_all_extensions(quick))
    failures = 0
    for result in results:
        print(result.describe())
        print()
        failures += 0 if result.ok else 1
    print(f"{len(results) - failures}/{len(results)} experiments passed")
    return 1 if failures else 0


def _cmd_report(args: argparse.Namespace) -> int:
    passed = write_report(args.output, quick=not args.full)
    print(f"wrote {args.output} ({passed} experiments passing)")
    return 0


def _cmd_summary(args: argparse.Namespace) -> int:
    algorithms = [
        FloodSet(),
        FloodSetWS(),
        COptFloodSet(),
        COptFloodSetWS(),
        FOptFloodSet(),
        FOptFloodSetWS(),
        A1(),
    ]
    rows = latency_summary_table(algorithms, n=args.n, t=1)
    print(format_table(rows))
    return 0


def _cmd_sdd(args: argparse.Namespace) -> int:
    print("SS solves SDD (value 1, sender crashes at time 2):")
    pattern = FailurePattern.with_crashes(2, {0: 2})
    run = solve_sdd_ss(1, pattern, phi=1, delta=1, rng=random.Random(args.seed))
    print(" ", describe_run(run))
    print(step_diagram(run, max_rows=12))
    print()
    print("Theorem 3.1 refutations in SP:")
    for name, factory in SP_CANDIDATE_FACTORIES.items():
        print(refute_sdd_candidate(factory, name).describe())
    return 0


def _cmd_commit(args: argparse.Namespace) -> int:
    for name, report in compare_commit_rates(n=args.n, t=1).items():
        print(f"{name}: {report.describe()}")
    return 0


def _cmd_latency(args: argparse.Namespace) -> int:
    factory = ALGORITHMS.get(args.algorithm)
    if factory is None:
        print(
            f"unknown algorithm {args.algorithm!r}; choose from "
            f"{sorted(ALGORITHMS)}",
            file=sys.stderr,
        )
        return 2
    algorithm = factory()
    for model in (RoundModel.RS, RoundModel.RWS):
        try:
            profile = latency_profile(algorithm, args.n, 1, model)
        except Exception as exc:  # unsafe pairs raise on non-termination
            print(f"{model.value}: not measurable ({exc})")
            continue
        print(profile.describe())
    return 0


def _cmd_show(args: argparse.Namespace) -> int:
    entry = _resolve_scenario(args.scenario)
    if entry is None:
        return _unknown_scenario(args.scenario)
    blurb, build = entry
    algorithm, values, scenario, model = build()
    runner = run_rws if model is RoundModel.RWS else run_rs
    run = runner(algorithm, values, scenario, t=1, max_rounds=4)
    if getattr(args, "dot", False):
        from repro.trace import round_run_to_dot

        print(round_run_to_dot(run))
        return 0
    print(f"{args.scenario}: {blurb}")
    print(f"algorithm={algorithm.name}, model={model.value}, values={values}")
    print()
    print(round_tableau(run))
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    entry = _resolve_scenario(args.scenario)
    if entry is None:
        return _unknown_scenario(args.scenario)
    blurb, build = entry
    algorithm, values, scenario, model = build()
    # Logical (counter) timestamps by default so exported traces are
    # deterministic and `repro replay` can match them byte-for-byte.
    log = EventLog() if args.wall_ts else EventLog(clock=logical_clock())
    registry = MetricsRegistry()
    observer = CompositeObserver(log, MetricsObserver(registry))
    runner = run_rws if model is RoundModel.RWS else run_rs
    runner(
        algorithm, values, scenario, t=1, max_rounds=4, observer=observer
    )
    if args.jsonl:
        count = log.write_jsonl(args.jsonl)
        print(f"wrote {count} events to {args.jsonl}")
    else:
        for line in log.jsonl_lines():
            print(line)
    kinds: dict[str, int] = {}
    for event in log:
        kinds[event.kind] = kinds.get(event.kind, 0) + 1
    summary = ", ".join(f"{k}={v}" for k, v in sorted(kinds.items()))
    print(f"# {args.scenario}: {blurb}", file=sys.stderr)
    print(f"# events: {summary}", file=sys.stderr)
    return 0


#: Scenarios whose whole point is a consensus violation (the paper's
#: counterexamples).  ``repro check`` treats them as reproduction
#: oracles: the *model* invariants must hold and the documented
#: disagreement must actually show up in the trace.
EXPECTED_DISAGREEMENT = {"a1-rws", "floodset-rws", "broadcast-split"}

#: Scenarios whose decide values are not drawn from the initial values
#: (atomic broadcast decides delivery sequences), so validity cannot be
#: checked against the inputs.
NON_CONSENSUS_VALUES = {"broadcast-split"}


def _run_scenario_trace(build: Any) -> tuple[Any, Any, Any, RoundModel, EventLog]:
    """Execute a scenario under a deterministic event log."""
    algorithm, values, scenario, model = build()
    log = EventLog(clock=logical_clock())
    runner = run_rws if model is RoundModel.RWS else run_rs
    runner(algorithm, values, scenario, t=1, max_rounds=4, observer=log)
    return algorithm, values, scenario, model, log


def _load_trace(path: str) -> list[Any] | None:
    """Parse a JSONL trace file; prints the error and returns None on failure."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            return events_from_jsonl_lines(handle)
    except OSError as exc:
        print(f"error: cannot read {path}: {exc}", file=sys.stderr)
        return None
    except ValueError as exc:
        print(f"error: {path}: {exc}", file=sys.stderr)
        return None


def _cmd_check(args: argparse.Namespace) -> int:
    if args.jsonl:
        events = _load_trace(args.jsonl)
        if events is None:
            return 2
        report = check_events(events, model=args.model)
        print(report.describe())
        return 0 if report.ok else 1

    if args.scenario is None:
        print(
            "error: provide a scenario name or --jsonl PATH",
            file=sys.stderr,
        )
        return 2
    entry = _resolve_scenario(args.scenario)
    if entry is None:
        return _unknown_scenario(args.scenario)
    canonical = SCENARIO_ALIASES.get(args.scenario, args.scenario)
    blurb, build = entry
    _, values, _, model, log = _run_scenario_trace(build)
    initial_values = None if canonical in NON_CONSENSUS_VALUES else values
    report = check_events(
        log.events, model=model.value, initial_values=initial_values
    )
    print(f"{args.scenario}: {blurb}")
    print(report.describe())
    consensus_errors = [
        v for v in report.errors if v.checker == "consensus"
    ]
    model_errors = [v for v in report.errors if v.checker != "consensus"]
    if model_errors:
        print("FAIL: model invariants violated", file=sys.stderr)
        return 1
    if canonical in EXPECTED_DISAGREEMENT:
        if not consensus_errors:
            print(
                "FAIL: expected the documented disagreement but the trace "
                "is clean",
                file=sys.stderr,
            )
            return 1
        print(
            "ok: model invariants hold; the documented disagreement is "
            f"reproduced ({len(consensus_errors)} consensus violation(s))"
        )
        return 0
    if consensus_errors:
        print("FAIL: consensus violated", file=sys.stderr)
        return 1
    print("ok: all invariants hold")
    return 0


def _cmd_replay(args: argparse.Namespace) -> int:
    entry = _resolve_scenario(args.scenario)
    if entry is None:
        return _unknown_scenario(args.scenario)
    blurb, build = entry
    algorithm, values, _, model = build()
    events = _load_trace(args.trace)
    if events is None:
        return 2
    try:
        report = replay_events(
            algorithm, values, events, t=1, model=model.value
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(f"{args.scenario}: {blurb}")
    print(report.describe())
    return 0 if report.matches else 1


def _cmd_diff(args: argparse.Namespace) -> int:
    if args.sdd:
        return _diff_sdd(args.sdd)
    if not args.trace_a or not args.trace_b:
        print(
            "error: provide two trace files (or --sdd CANDIDATE)",
            file=sys.stderr,
        )
        return 2
    a = _load_trace(args.trace_a)
    b = _load_trace(args.trace_b)
    if a is None or b is None:
        return 2
    ignore = tuple(
        name.strip() for name in args.ignore.split(",") if name.strip()
    )
    if args.pid is not None:
        divergence = view_divergence(a, b, args.pid)
        if divergence is None:
            print(
                f"p{args.pid}'s local views are indistinguishable "
                "(deliveries, suspicions and decisions match in order)"
            )
            return 0
        print(f"p{args.pid}: " + divergence.describe())
        return 1
    diff = diff_traces(a, b, ignore=ignore)
    print(diff.describe())
    return 0 if diff.identical else 1


def _diff_sdd(candidate: str) -> int:
    """The Theorem 3.1 demo: r0 ~ r0' and r1 ~ r1' for the receiver."""
    factory = SP_CANDIDATE_FACTORIES.get(candidate)
    if factory is None:
        print(
            f"error: unknown SDD candidate {candidate!r}; choose from "
            f"{sorted(SP_CANDIDATE_FACTORIES)}",
            file=sys.stderr,
        )
        return 2
    traces = sdd_quadruple_traces(factory)
    print(
        f"Theorem 3.1 quadruple for candidate {candidate!r} "
        "(receiver's local views):"
    )
    all_indistinguishable = True
    for left, right in (("r0", "r0'"), ("r1", "r1'")):
        divergence = view_divergence(
            traces[left].events, traces[right].events, RECEIVER
        )
        if divergence is None:
            print(f"  {left} ~ {right}: indistinguishable to the receiver")
        else:
            all_indistinguishable = False
            print(f"  {left} vs {right}: " + divergence.describe())
    if all_indistinguishable:
        print(
            "  => the receiver must decide identically within each pair; "
            "validity forces 0 in r0' and 1 in r1' — contradiction"
        )
    return 0 if all_indistinguishable else 1


def _cmd_metrics(args: argparse.Namespace) -> int:
    entry = _resolve_scenario(args.scenario)
    if entry is None:
        return _unknown_scenario(args.scenario)
    blurb, build = entry
    algorithm, values, scenario, model = build()
    registry = MetricsRegistry()
    profiler = Profiler()
    set_profiler(profiler)
    try:
        runner = run_rws if model is RoundModel.RWS else run_rs
        runner(
            algorithm,
            values,
            scenario,
            t=1,
            max_rounds=4,
            observer=MetricsObserver(registry),
        )
    finally:
        set_profiler(None)
    profiler.merge_into(registry)
    print(f"{args.scenario}: {blurb}")
    print(registry.render())
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Synchronous System and Perfect Failure "
            "Detector' (DSN 2000)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_exp = sub.add_parser("experiments", help="run the E1-E15 suite")
    p_exp.add_argument("--ids", nargs="*", help="experiment ids (default all)")
    p_exp.add_argument(
        "--full", action="store_true", help="larger sweeps (slower)"
    )
    p_exp.add_argument(
        "--extensions",
        action="store_true",
        help="also run the X1-X4 extension experiments",
    )
    p_exp.set_defaults(func=_cmd_experiments)

    p_report = sub.add_parser(
        "report", help="regenerate EXPERIMENTS.md from live runs"
    )
    p_report.add_argument("--output", default="EXPERIMENTS.md")
    p_report.add_argument("--full", action="store_true")
    p_report.set_defaults(func=_cmd_report)

    p_summary = sub.add_parser("summary", help="headline latency table")
    p_summary.add_argument("--n", type=int, default=3)
    p_summary.set_defaults(func=_cmd_summary)

    p_sdd = sub.add_parser("sdd", help="the SDD story")
    p_sdd.add_argument("--seed", type=int, default=7)
    p_sdd.set_defaults(func=_cmd_sdd)

    p_commit = sub.add_parser("commit", help="commit-rate comparison")
    p_commit.add_argument("--n", type=int, default=3)
    p_commit.set_defaults(func=_cmd_commit)

    p_lat = sub.add_parser("latency", help="latency profile of an algorithm")
    p_lat.add_argument("algorithm", choices=sorted(ALGORITHMS))
    p_lat.add_argument("--n", type=int, default=3)
    p_lat.set_defaults(func=_cmd_latency)

    p_show = sub.add_parser("show", help="render a named scenario")
    p_show.add_argument("scenario", help=f"one of {sorted(SCENARIOS)}")
    p_show.add_argument(
        "--dot",
        action="store_true",
        help="emit Graphviz DOT instead of the ASCII tableau",
    )
    p_show.set_defaults(func=_cmd_show)

    p_trace = sub.add_parser(
        "trace", help="export a scenario's structured event trace"
    )
    p_trace.add_argument("scenario", help=f"one of {sorted(SCENARIOS)}")
    p_trace.add_argument(
        "--jsonl",
        metavar="PATH",
        help="write the trace to PATH (default: print to stdout)",
    )
    p_trace.add_argument(
        "--wall-ts",
        action="store_true",
        help=(
            "timestamp events with wall-clock time instead of the "
            "deterministic logical counter"
        ),
    )
    p_trace.set_defaults(func=_cmd_trace)

    p_check = sub.add_parser(
        "check", help="run the trace oracle over a scenario or JSONL file"
    )
    p_check.add_argument(
        "scenario",
        nargs="?",
        help=f"one of {sorted(SCENARIOS)} (or use --jsonl)",
    )
    p_check.add_argument(
        "--jsonl",
        metavar="PATH",
        help="check an exported trace file instead of a live scenario",
    )
    p_check.add_argument(
        "--model",
        choices=["RS", "RWS"],
        help=(
            "synchrony checker for --jsonl traces (default: weak round "
            "synchrony, sound for both models)"
        ),
    )
    p_check.set_defaults(func=_cmd_check)

    p_replay = sub.add_parser(
        "replay",
        help="re-execute an exported trace and assert event equality",
    )
    p_replay.add_argument("scenario", help=f"one of {sorted(SCENARIOS)}")
    p_replay.add_argument(
        "trace", metavar="TRACE.jsonl", help="trace exported by `repro trace`"
    )
    p_replay.set_defaults(func=_cmd_replay)

    p_diff = sub.add_parser(
        "diff", help="divergence diff of two traces (Theorem 3.1 lens)"
    )
    p_diff.add_argument(
        "trace_a", nargs="?", metavar="A.jsonl", help="first trace"
    )
    p_diff.add_argument(
        "trace_b", nargs="?", metavar="B.jsonl", help="second trace"
    )
    p_diff.add_argument(
        "--pid",
        type=int,
        help="compare only this process's local view (indistinguishability)",
    )
    p_diff.add_argument(
        "--ignore",
        default="ts",
        help="comma-separated event fields to ignore (default: ts)",
    )
    p_diff.add_argument(
        "--sdd",
        metavar="CANDIDATE",
        help=(
            "run the Theorem 3.1 quadruple for an SP candidate and diff "
            f"the receiver's views; one of {sorted(SP_CANDIDATE_FACTORIES)}"
        ),
    )
    p_diff.set_defaults(func=_cmd_diff)

    p_metrics = sub.add_parser(
        "metrics", help="print a scenario's metrics snapshot"
    )
    p_metrics.add_argument(
        "scenario",
        nargs="?",
        default="floodset-rws",
        help=f"one of {sorted(SCENARIOS)} (default: floodset-rws)",
    )
    p_metrics.set_defaults(func=_cmd_metrics)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)
