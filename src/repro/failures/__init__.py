"""Failure patterns, failure-detector histories, and detector classes.

Implements Sections 2.1, 2.5 and 2.6 of the paper: crash failure
patterns ``F : T -> 2^Π``, failure-detector histories
``H : Π × T -> 2^Π``, and the Chandra–Toueg hierarchy of failure
detectors — most importantly the perfect failure detector ``P`` that
defines the SP model.  Also provides the timeout-based implementation of
``P`` on top of the synchronous model (the opening observation of the
paper's Section 3).
"""

from repro.failures.pattern import FailurePattern
from repro.failures.history import (
    FailureDetectorHistory,
    TableHistory,
    FunctionHistory,
    ConstantHistory,
)
from repro.failures.detectors import (
    FailureDetector,
    PerfectDetector,
    EventuallyPerfectDetector,
    StrongDetector,
    EventuallyStrongDetector,
    WeakDetector,
    EventuallyWeakDetector,
    QuasiDetector,
    EventuallyQuasiDetector,
    DETECTOR_CLASSES,
)
from repro.failures.properties import (
    check_strong_completeness,
    check_weak_completeness,
    check_strong_accuracy,
    check_weak_accuracy,
    check_eventual_strong_accuracy,
    check_eventual_weak_accuracy,
    classify_history,
    PropertyReport,
)
from repro.failures.generators import (
    crash_free,
    initially_dead,
    single_crash,
    random_pattern,
    all_patterns,
)
from repro.failures.timeout_p import (
    TimeoutDetectorState,
    TimeoutPerfectDetector,
    detection_threshold,
    history_from_run,
    detection_delays,
)
from repro.failures.reduction import CompletenessReduction, ReductionState
from repro.failures.timeout_ep import AdaptiveDetectorState, AdaptiveTimeoutDetector

__all__ = [
    "FailurePattern",
    "FailureDetectorHistory",
    "TableHistory",
    "FunctionHistory",
    "ConstantHistory",
    "FailureDetector",
    "PerfectDetector",
    "EventuallyPerfectDetector",
    "StrongDetector",
    "EventuallyStrongDetector",
    "WeakDetector",
    "EventuallyWeakDetector",
    "QuasiDetector",
    "EventuallyQuasiDetector",
    "DETECTOR_CLASSES",
    "check_strong_completeness",
    "check_weak_completeness",
    "check_strong_accuracy",
    "check_weak_accuracy",
    "check_eventual_strong_accuracy",
    "check_eventual_weak_accuracy",
    "classify_history",
    "PropertyReport",
    "crash_free",
    "initially_dead",
    "single_crash",
    "random_pattern",
    "all_patterns",
    "TimeoutDetectorState",
    "TimeoutPerfectDetector",
    "detection_threshold",
    "history_from_run",
    "detection_delays",
    "CompletenessReduction",
    "ReductionState",
    "AdaptiveDetectorState",
    "AdaptiveTimeoutDetector",
]
