"""Exhaustive bounded model checking over the round semantics.

The checker closes the schedule space the fuzzer only samples: for
small ``n`` it walks *every* admissible crash-and-withhold schedule of
an algorithm up to a round horizon, prunes revisited configurations by
canonical state hashing (:mod:`repro.mc.config`), quotients the search
by declared process-id / value symmetries (:mod:`repro.mc.symmetry`)
and by view-preserving scenario dominance (:mod:`repro.mc.explore`),
and evaluates the paper's properties over the reduced run set
(:mod:`repro.mc.properties`), emitting machine-checked verdicts —
``HOLDS(exhaustive)`` with frontier statistics, or ``REFUTED`` with a
witness that round-trips through the fuzzer's shrinker and ``repro
replay --repro`` (:mod:`repro.mc.verdict`).

Execution of the reduced frontier runs through the one campaign API:
the leaf schedules form a :class:`~repro.runtime.space.ScenarioSpace`
(:mod:`repro.mc.space`), so the checker is the third client — after
``repro sweep`` and ``repro fuzz`` — of the result cache, the run
directories, the vector engine's batching, and the ``repro serve``
shard fabric.
"""

from repro.mc.checker import McOutcome, McTask, check, still_fails_for
from repro.mc.config import Configuration, canonical_form, canonical_key
from repro.mc.explore import ExploreStats, Exploration, Leaf, explore
from repro.mc.fixtures import classify_sdd_quadruple, sdd_fixture_names
from repro.mc.properties import PROPERTIES, evaluate_property
from repro.mc.space import (
    frontier_space,
    load_frontier,
    mc_space_from_spec,
    save_frontier,
    spec_for_task,
)
from repro.mc.symmetry import SYMMETRIES, symmetry_for
from repro.mc.verdict import Verdict, witness_document

__all__ = [
    "Configuration",
    "ExploreStats",
    "Exploration",
    "Leaf",
    "McOutcome",
    "McTask",
    "PROPERTIES",
    "SYMMETRIES",
    "Verdict",
    "canonical_form",
    "canonical_key",
    "check",
    "classify_sdd_quadruple",
    "evaluate_property",
    "explore",
    "frontier_space",
    "load_frontier",
    "mc_space_from_spec",
    "save_frontier",
    "sdd_fixture_names",
    "spec_for_task",
    "still_fails_for",
    "symmetry_for",
    "witness_document",
]
