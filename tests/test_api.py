"""Public API surface tests: the façade stays importable and coherent."""

from __future__ import annotations

import importlib

import pytest

import repro


class TestTopLevelFacade:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), f"repro.__all__ lists missing {name}"

    def test_version_matches_pyproject(self):
        import pathlib
        import re

        pyproject = pathlib.Path(__file__).parent.parent / "pyproject.toml"
        match = re.search(
            r'^version = "(.+)"', pyproject.read_text(), re.MULTILINE
        )
        assert match is not None
        assert repro.__version__ == match.group(1)

    def test_quickstart_snippet_from_docstring(self):
        """The README/docstring quickstart must actually work."""
        from repro import run_rs, FloodSet, FailureScenario

        run = run_rs(
            FloodSet(),
            values=[0, 1, 1],
            scenario=FailureScenario.failure_free(3),
            t=1,
        )
        assert run.decisions == {0: (2, 0), 1: (2, 0), 2: (2, 0)}

    def test_errors_importable_from_top_level(self):
        from repro import ReproError, ScenarioError

        assert issubclass(ScenarioError, ReproError)


SUBPACKAGES = [
    "repro.simulation",
    "repro.failures",
    "repro.models",
    "repro.rounds",
    "repro.emulation",
    "repro.consensus",
    "repro.sdd",
    "repro.commit",
    "repro.broadcast",
    "repro.fdconsensus",
    "repro.randomized",
    "repro.analysis",
    "repro.trace",
    "repro.workloads",
    "repro.stats",
    "repro.core",
    "repro.cli",
    "repro.serialize",
]


@pytest.mark.parametrize("module_name", SUBPACKAGES)
def test_subpackage_exports_resolve(module_name):
    module = importlib.import_module(module_name)
    for name in getattr(module, "__all__", ()):
        assert hasattr(module, name), f"{module_name}.__all__ lists {name}"


@pytest.mark.parametrize("module_name", SUBPACKAGES)
def test_subpackage_has_docstring(module_name):
    module = importlib.import_module(module_name)
    assert module.__doc__, f"{module_name} lacks a module docstring"


def test_every_public_algorithm_has_a_name():
    from repro.consensus import (
        A1,
        COptFloodSet,
        COptFloodSetWS,
        EagerFloodSetWS,
        EarlyDecidingConsensus,
        EarlyDecidingUniformFloodSet,
        FloodSet,
        FloodSetWS,
        FOptFloodSet,
        FOptFloodSetWS,
    )
    from repro.broadcast import AtomicBroadcast, AtomicBroadcastWS
    from repro.commit.algorithms import (
        OptimisticFDCommit,
        PerfectFDCommit,
        SynchronousCommit,
        TwoPhaseCommit,
    )

    classes = [
        A1, COptFloodSet, COptFloodSetWS, EagerFloodSetWS,
        EarlyDecidingConsensus, EarlyDecidingUniformFloodSet,
        FloodSet, FloodSetWS, FOptFloodSet, FOptFloodSetWS,
        AtomicBroadcast, AtomicBroadcastWS,
        OptimisticFDCommit, PerfectFDCommit, SynchronousCommit,
        TwoPhaseCommit,
    ]
    names = [cls.name for cls in classes]
    assert len(set(names)) == len(names), "algorithm names must be unique"
    assert all(name != "abstract" for name in names)
