"""Atomic broadcast as a sequence of FloodSet consensus instances."""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Iterable, Mapping

from repro.errors import ConfigurationError
from repro.rounds.algorithm import RoundAlgorithm, broadcast


def _batch_key(batch: frozenset) -> tuple:
    """A deterministic total order on batches (sets of messages)."""
    return tuple(sorted(batch, key=repr))


@dataclass(frozen=True)
class BroadcastState:
    """State of the atomic-broadcast machine.

    Attributes:
        rounds: Total rounds executed.
        instance: Current consensus instance, 1-based.
        proposals: The inner FloodSet's ``W``: every *batch* seen this
            instance (each batch is one process's proposal).
        known: Every application message this process has learned of.
        delivered: The delivery sequence so far (a tuple — order is the
            whole point of *atomic* broadcast).
        halt: Senders to ignore (used by the WS variant; empty in RS).
        finished: All instances completed.
        n: Number of processes.
        t: Resilience bound; each instance runs ``t + 1`` rounds.
        instances: Total number of instances to run.
    """

    rounds: int
    instance: int
    proposals: frozenset
    known: frozenset
    delivered: tuple
    halt: frozenset
    finished: bool
    n: int
    t: int
    instances: int


class AtomicBroadcast(RoundAlgorithm):
    """Uniform atomic broadcast for RS via repeated FloodSet instances.

    Each process's initial value is an iterable of application messages
    it wants to broadcast (messages must be hashable and globally
    unique — tag them with their origin, e.g. ``("p0", 0)``).  Instance
    ``k`` occupies rounds ``(k-1)(t+1)+1 .. k(t+1)``: processes flood
    the set of proposals (batches) they have seen, and at the
    instance's last round deliver the minimal batch under a fixed total
    order, restricted to not-yet-delivered messages.  Messages learned
    from other processes' proposals join the next instance's proposal.

    Two instances suffice to deliver every message broadcast at the
    start by a correct process: its instance-1 floods plant the message
    in everyone's ``known`` set, so every instance-2 proposal — and
    hence the instance-2 decision, which is one of them — contains it.
    """

    name = "AtomicBroadcast"

    #: Whether the FloodSetWS halt guard filters late senders.
    use_halt = False

    def __init__(self, instances: int = 2) -> None:
        if instances < 1:
            raise ConfigurationError("need at least one instance")
        self.instances = instances

    def initial_state(
        self, pid: int, n: int, t: int, value: Iterable[Any]
    ) -> BroadcastState:
        own = frozenset(value)
        return BroadcastState(
            rounds=0,
            instance=1,
            proposals=frozenset({own}),
            known=own,
            delivered=(),
            halt=frozenset(),
            finished=False,
            n=n,
            t=t,
            instances=self.instances,
        )

    def messages(self, pid: int, state: BroadcastState) -> Mapping[int, Any]:
        if state.finished:
            return {}
        return broadcast(state.proposals, state.n)

    def transition(
        self, pid: int, state: BroadcastState, received: Mapping[int, Any]
    ) -> BroadcastState:
        if state.finished:
            return replace(state, rounds=state.rounds + 1)
        rounds = state.rounds + 1
        proposals = state.proposals
        known = state.known
        for sender, batches in received.items():
            if self.use_halt and sender in state.halt:
                continue
            proposals = proposals | batches
            for batch in batches:
                known = known | batch
        halt = state.halt
        if self.use_halt:
            halt = halt | frozenset(
                q for q in range(state.n) if q not in received
            )

        delivered = state.delivered
        instance = state.instance
        finished = state.finished
        if rounds == instance * (state.t + 1):
            # Instance boundary: decide and deliver the minimal batch.
            decided = min(proposals, key=_batch_key)
            fresh = [
                message
                for message in sorted(decided, key=repr)
                if message not in delivered
            ]
            delivered = delivered + tuple(fresh)
            instance += 1
            if instance > state.instances:
                finished = True
            else:
                leftover = frozenset(
                    message for message in known if message not in delivered
                )
                proposals = frozenset({leftover})
        return replace(
            state,
            rounds=rounds,
            instance=instance,
            proposals=proposals,
            known=known,
            delivered=delivered,
            halt=halt,
            finished=finished,
        )

    def decision_of(self, state: BroadcastState) -> Any:
        """The final delivery sequence, once all instances completed.

        Exposed as the run's "decision" so the round executor's
        bookkeeping (decision rounds, latency) applies unchanged.
        """
        return state.delivered if state.finished else None

    def halted(self, pid: int, state: BroadcastState) -> bool:
        return state.finished


class AtomicBroadcastWS(AtomicBroadcast):
    """Atomic broadcast hardened for RWS with the halt guard.

    Exactly FloodSetWS's repair lifted to batches: a sender that failed
    to deliver once is ignored from then on, which neutralises pending
    batches the same way it neutralises pending values.
    """

    name = "AtomicBroadcastWS"
    use_halt = True


def delivered_sequence(state: BroadcastState) -> tuple:
    """The delivery sequence of a (possibly unfinished) state."""
    return state.delivered
