"""Counters, gauges, histograms, and the event-driven metrics observer.

The registry is deliberately tiny — names map to instruments, and a
snapshot is plain JSON-ready data.  Histogram snapshots reuse
:mod:`repro.stats` (:func:`~repro.stats.summarize` and
:func:`~repro.stats.percentile`) so benches, reports and metrics all
describe samples the same way.

Metric naming convention: dot-separated lowercase paths, with the unit
as the last path segment where it is not obvious from context
(``profile.<span>.seconds``); per-round counters carry the round index
as the final segment (``messages.sent.round.2``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Sequence

from repro.obs.events import Observer
from repro.stats import percentile, summarize


@dataclass
class Counter:
    """A monotonically increasing count."""

    value: int = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount


@dataclass
class Gauge:
    """A point-in-time value (last write wins)."""

    value: float = 0.0

    def set(self, value: float) -> None:
        self.value = value


@dataclass
class Histogram:
    """A sample of observations with a Summary-compatible snapshot."""

    values: list[float] = field(default_factory=list)

    def observe(self, value: float) -> None:
        self.values.append(value)

    def snapshot(self) -> dict[str, Any]:
        """min/mean/median/max/stdev plus p50/p90/p99 of the sample."""
        if not self.values:
            return {"count": 0}
        summary = summarize(self.values)
        return {
            "count": summary.count,
            "min": summary.minimum,
            "mean": summary.mean,
            "median": summary.median,
            "max": summary.maximum,
            "stdev": summary.stdev,
            "p50": percentile(self.values, 50),
            "p90": percentile(self.values, 90),
            "p99": percentile(self.values, 99),
        }


class MetricsRegistry:
    """Get-or-create instrument store with a JSON-ready snapshot."""

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        try:
            return self._counters[name]
        except KeyError:
            instrument = self._counters[name] = Counter()
            return instrument

    def gauge(self, name: str) -> Gauge:
        try:
            return self._gauges[name]
        except KeyError:
            instrument = self._gauges[name] = Gauge()
            return instrument

    def histogram(self, name: str) -> Histogram:
        try:
            return self._histograms[name]
        except KeyError:
            instrument = self._histograms[name] = Histogram()
            return instrument

    def snapshot(self) -> dict[str, Any]:
        """All instruments as one JSON-ready mapping."""
        return {
            "counters": {
                name: c.value for name, c in sorted(self._counters.items())
            },
            "gauges": {
                name: g.value for name, g in sorted(self._gauges.items())
            },
            "histograms": {
                name: h.snapshot()
                for name, h in sorted(self._histograms.items())
            },
        }

    def state(self) -> dict[str, Any]:
        """A lossless, JSON-ready dump: histograms keep raw samples.

        Unlike :meth:`snapshot` (which summarises histograms), the
        state form can be merged into another registry without losing
        information — the transport format the sweep runtime uses to
        aggregate per-worker registries into one.
        """
        return {
            "counters": {
                name: c.value for name, c in sorted(self._counters.items())
            },
            "gauges": {
                name: g.value for name, g in sorted(self._gauges.items())
            },
            "histograms": {
                name: list(h.values)
                for name, h in sorted(self._histograms.items())
            },
        }

    def merge_state(self, state: dict[str, Any]) -> None:
        """Fold a :meth:`state` dump into this registry.

        Counters add, histogram samples extend (in dump order), gauges
        take the incoming value (last write wins) — so merging worker
        states in a fixed order yields the same aggregate regardless of
        how execution was scheduled across workers.
        """
        for name, value in state.get("counters", {}).items():
            self.counter(name).inc(value)
        for name, value in state.get("gauges", {}).items():
            self.gauge(name).set(value)
        for name, values in state.get("histograms", {}).items():
            self.histogram(name).values.extend(values)

    def render(self) -> str:
        """A human-readable dump, one instrument per line."""
        lines: list[str] = []
        for name, counter in sorted(self._counters.items()):
            lines.append(f"{name} = {counter.value}")
        for name, gauge in sorted(self._gauges.items()):
            lines.append(f"{name} = {gauge.value:g}")
        for name, histogram in sorted(self._histograms.items()):
            snap = histogram.snapshot()
            if snap["count"] == 0:
                lines.append(f"{name}: (empty)")
            else:
                lines.append(
                    f"{name}: n={snap['count']} min={snap['min']:g} "
                    f"mean={snap['mean']:.4g} p50={snap['p50']:g} "
                    f"p90={snap['p90']:g} p99={snap['p99']:g} "
                    f"max={snap['max']:g}"
                )
        return "\n".join(lines)


class MetricsObserver(Observer):
    """Derive the standard metric set from the engines' event stream.

    Counters (per run unless noted):

    * ``rounds.started`` — rounds the engine opened.
    * ``messages.sent`` / ``messages.sent.round.R`` — messages that
      reached the network, total and per round.
    * ``messages.withheld`` / ``messages.withheld.round.R`` — RWS
      pending messages.
    * ``messages.delivered`` / ``messages.delivered.round.R``.
    * ``decisions`` / ``decisions.round.R`` — decisions, total and by
      the round index they occurred in.
    * ``crashes``, ``halts``, ``suspicions``.
    * ``scenario.validation_rejections`` — scenarios the validator
      refused.

    Histograms:

    * ``decision.round`` — distribution of decision round indices.
    * ``detector.suspicion_delay.steps`` — suspicion onset minus crash
      time, when the detector reports it.
    """

    __slots__ = ("registry",)

    def __init__(self, registry: MetricsRegistry | None = None) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()

    def round_start(self, round_index: int, alive: Sequence[int]) -> None:
        self.registry.counter("rounds.started").inc()
        self.registry.gauge("processes.alive").set(len(alive))

    def msg_sent(
        self,
        sender: int,
        recipient: int,
        *,
        round_index: int | None = None,
        time: int | None = None,
        msg_id: Any = None,
        extra: dict[str, Any] | None = None,
    ) -> None:
        self.registry.counter("messages.sent").inc()
        if round_index is not None:
            self.registry.counter(f"messages.sent.round.{round_index}").inc()

    def msg_withheld(
        self,
        sender: int,
        recipient: int,
        round_index: int,
        *,
        msg_id: Any = None,
        extra: dict[str, Any] | None = None,
    ) -> None:
        self.registry.counter("messages.withheld").inc()
        self.registry.counter(f"messages.withheld.round.{round_index}").inc()

    def msg_delivered(
        self,
        sender: int,
        recipient: int,
        *,
        round_index: int | None = None,
        time: int | None = None,
        msg_id: Any = None,
        extra: dict[str, Any] | None = None,
    ) -> None:
        self.registry.counter("messages.delivered").inc()
        if round_index is not None:
            self.registry.counter(
                f"messages.delivered.round.{round_index}"
            ).inc()

    def crash(
        self,
        pid: int,
        *,
        round_index: int | None = None,
        time: int | None = None,
        applies_transition: bool | None = None,
        extra: dict[str, Any] | None = None,
    ) -> None:
        self.registry.counter("crashes").inc()

    def suspect(
        self,
        pid: int,
        suspected: int,
        *,
        time: int | None = None,
        delay: int | None = None,
        extra: dict[str, Any] | None = None,
    ) -> None:
        self.registry.counter("suspicions").inc()
        if delay is not None:
            self.registry.histogram(
                "detector.suspicion_delay.steps"
            ).observe(delay)

    def decide(
        self,
        pid: int,
        value: Any,
        round_index: int | None = None,
        *,
        extra: dict[str, Any] | None = None,
    ) -> None:
        self.registry.counter("decisions").inc()
        if round_index is not None:
            self.registry.counter(f"decisions.round.{round_index}").inc()
            self.registry.histogram("decision.round").observe(round_index)

    def halt(
        self,
        pid: int,
        round_index: int | None = None,
        *,
        extra: dict[str, Any] | None = None,
    ) -> None:
        self.registry.counter("halts").inc()

    def scenario_rejected(self, problems: Sequence[str]) -> None:
        self.registry.counter("scenario.validation_rejections").inc()
