"""Tests for the timeout-based perfect failure detector on SS."""

from __future__ import annotations

import random

import pytest

from repro.errors import ConfigurationError
from repro.failures import (
    FailurePattern,
    TimeoutPerfectDetector,
    classify_history,
    detection_delays,
    detection_threshold,
    history_from_run,
)
from repro.models import SynchronousModel


def run_detector(n, phi, delta, crashes, seed, steps=400):
    model = SynchronousModel(phi=phi, delta=delta)
    pattern = FailurePattern.with_crashes(n, crashes)
    executor = model.executor(
        TimeoutPerfectDetector(n, phi, delta),
        n,
        pattern,
        rng=random.Random(seed),
        record_states=True,
    )
    return executor.execute(steps), pattern


class TestThreshold:
    def test_formula(self):
        assert detection_threshold(3, 2, 2) == 2 * 3 + 2

    def test_n2_matches_paper_bound(self):
        # For two processes the threshold is Φ+1+Δ — the paper's SDD bound.
        assert detection_threshold(2, 1, 1) == 1 + 1 + 1
        assert detection_threshold(2, 3, 2) == 3 + 1 + 2

    def test_rejects_bad_parameters(self):
        with pytest.raises(ConfigurationError):
            detection_threshold(1, 1, 1)
        with pytest.raises(ConfigurationError):
            detection_threshold(3, 0, 1)


class TestAccuracy:
    @pytest.mark.parametrize("seed", range(4))
    def test_no_suspicion_in_crash_free_runs(self, seed):
        run, _ = run_detector(3, 1, 1, {}, seed, steps=300)
        for state in run.final_states.values():
            assert state.suspected == frozenset()

    @pytest.mark.parametrize("phi,delta", [(1, 1), (2, 2)])
    def test_only_crashed_processes_suspected(self, phi, delta):
        run, pattern = run_detector(3, phi, delta, {1: 25}, seed=3)
        for pid in (0, 2):
            assert run.final_states[pid].suspected <= {1}


class TestCompletenessAndClass:
    @pytest.mark.parametrize("seed", range(4))
    def test_crash_eventually_suspected_by_all_survivors(self, seed):
        run, pattern = run_detector(3, 1, 2, {1: 20}, seed)
        for pid in (0, 2):
            assert 1 in run.final_states[pid].suspected

    @pytest.mark.parametrize("seed", range(3))
    def test_lifted_history_satisfies_p(self, seed):
        run, pattern = run_detector(3, 2, 2, {1: 30}, seed, steps=450)
        history = history_from_run(run)
        report = classify_history(history, pattern, len(run.schedule) - 1)
        assert report.matches_class("P"), report.violations

    def test_detection_delay_within_bound(self):
        n, phi, delta = 3, 2, 2
        bound = detection_threshold(n, phi, delta) + delta + 1
        for seed in range(6):
            run, _ = run_detector(n, phi, delta, {1: 15 + seed}, seed)
            for delay in detection_delays(run).values():
                if delay is not None:
                    assert delay <= bound

    def test_history_from_run_requires_snapshots(self):
        model = SynchronousModel()
        pattern = FailurePattern.crash_free(2)
        run = model.executor(
            TimeoutPerfectDetector(2, 1, 1), 2, pattern
        ).execute(10)
        with pytest.raises(ConfigurationError):
            history_from_run(run)


class TestTwoProcessCase:
    """The SDD setting: n = 2, detection within Φ+1+Δ (+Δ in flight)."""

    def test_survivor_detects_peer(self):
        run, _ = run_detector(2, 1, 1, {0: 6}, seed=2, steps=100)
        assert 0 in run.final_states[1].suspected

    def test_initially_dead_detected_from_silence(self):
        run, _ = run_detector(2, 1, 1, {0: 0}, seed=2, steps=60)
        assert 0 in run.final_states[1].suspected
