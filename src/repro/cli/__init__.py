"""Command-line interface: ``python -m repro`` / the ``repro`` script."""

from repro.cli.main import main

__all__ = ["main"]
