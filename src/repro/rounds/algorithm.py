"""The round-algorithm interface (paper Section 4.1).

An algorithm of the RS model (and hence of RWS — the interface is the
same, only the execution differs) consists, for each process, of a
state set, an initial state, a message-generation function ``msgs_i``
and a state-transition function ``trans_i``.  In every round each
process first applies ``msgs_i`` to produce the messages it sends, then
applies ``trans_i`` to its state and the vector of messages it
received.

Null messages are expressed by simply omitting a recipient from the
mapping returned by :meth:`RoundAlgorithm.messages` (the paper's codes
likewise "do not specify null messages in the msgs_i's").
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Mapping


def broadcast(payload: Any, n: int) -> dict[int, Any]:
    """Address ``payload`` to all ``n`` processes (self included).

    Self-delivery is reliable: a process that completes its round always
    receives its own broadcast.  This matches the paper's counting — in
    ``C_OptFloodSet`` a process can receive "``n`` messages" at round 1,
    which includes its own.
    """
    return {pid: payload for pid in range(n)}


class RoundAlgorithm(ABC):
    """A deterministic round-based algorithm.

    Implementations must treat states as immutable: ``transition``
    returns a fresh state.  ``decision_of`` reads the irrevocable
    decision out of a state (``None`` until decided); executors use it
    to record decision rounds, from which every latency measure of
    Section 5.2 is computed.
    """

    #: Short identifier used in reports and benchmark tables.
    name: str = "abstract"

    @abstractmethod
    def initial_state(self, pid: int, n: int, t: int, value: Any) -> Any:
        """Initial state of process ``pid`` with input ``value``.

        ``t`` is the resilience parameter (maximum number of crashes
        the run is meant to tolerate); algorithms such as FloodSet use
        it to fix their round count.
        """

    @abstractmethod
    def messages(self, pid: int, state: Any) -> Mapping[int, Any]:
        """The messages ``pid`` sends this round: recipient -> payload.

        Returning an empty mapping sends only null messages.
        """

    @abstractmethod
    def transition(self, pid: int, state: Any, received: Mapping[int, Any]) -> Any:
        """Apply ``trans_i`` to the state and the received vector.

        ``received`` maps sender pid to payload for exactly the
        messages delivered this round.
        """

    @abstractmethod
    def decision_of(self, state: Any) -> Any:
        """Return the decision recorded in ``state``, or ``None``."""

    def halted(self, pid: int, state: Any) -> bool:
        """Return True when the process will neither send nor change state.

        Executors may stop early once every live process is halted and
        no messages are in flight.  The default — halted once decided —
        suits one-shot decision tasks; override for algorithms that keep
        talking after deciding (e.g. ``F_OptFloodSet`` which must
        *force* its round-1 decision on others at round 2).
        """
        return self.decision_of(state) is not None
