"""The unified execution runtime: one seam over every engine.

The repo has four execution engines — the RS/RWS round executor, the
SS/SP step executor, and the two Section 4 emulations.  Before this
package, every caller (CLI, experiments, benches, the oracle sweep)
carried its own driver loop over them.  The runtime replaces that
plumbing with a single interface:

* :class:`ExecutionRequest` → :class:`ExecutionResult` — one
  immutable, serializable description of a cell in, one structured
  result (deterministic trace + raw metrics + decisions) out;
* :class:`~repro.runtime.harness.Harness` adapters
  (:class:`~repro.runtime.harness.RoundHarness`,
  :class:`~repro.runtime.harness.SSEmulationHarness`,
  :class:`~repro.runtime.harness.SPEmulationHarness`,
  :class:`~repro.runtime.harness.VectorHarness` — the columnar batch
  kernel, reached wholesale via :func:`execute_batch`) behind
  :func:`execute_request`;
* :class:`ScenarioSpace` — the canonical enumerator of run sets
  (explicit lists, workload aliases, seeded random streams with
  derived per-cell seeds);
* :class:`SweepRunner` — serial or ``multiprocessing`` execution with
  byte-identical merged traces, order-independent metric aggregation,
  an on-disk :class:`ResultCache`, and optional trace-oracle checking.

This is the architectural seam future scaling work (sharding, async
backends, distributed workers) plugs into: a new backend implements
the harness protocol and inherits sweeps, caching, merging and
checking for free.
"""

from repro.runtime.cache import CacheStats, ResultCache
from repro.runtime.harness import (
    HARNESSES,
    Harness,
    RoundHarness,
    SPEmulationHarness,
    SSEmulationHarness,
    VectorHarness,
    execute_batch,
    execute_request,
    harness_for,
)
from repro.runtime.pool import default_jobs, parallel_map
from repro.runtime.registry import (
    ALGORITHM_FACTORIES,
    VECTOR_KERNELS,
    has_vector_kernel,
    make_algorithm,
)
from repro.runtime.request import (
    CACHE_SCHEMA_VERSION,
    ENGINES,
    ExecutionRequest,
    ExecutionResult,
)
from repro.runtime.space import (
    SCENARIO_BUILDERS,
    SPACE_FACTORIES,
    ScenarioSpace,
    derived_seed,
    e10_lambda_space,
    oracle_sweep_space,
    random_space,
    space_by_name,
)
from repro.runtime.sweep import (
    CellCheck,
    SweepResult,
    SweepRunner,
    check_cell,
    run_space,
)

__all__ = [
    "ALGORITHM_FACTORIES",
    "CACHE_SCHEMA_VERSION",
    "CacheStats",
    "CellCheck",
    "ENGINES",
    "ExecutionRequest",
    "ExecutionResult",
    "HARNESSES",
    "Harness",
    "ResultCache",
    "RoundHarness",
    "SCENARIO_BUILDERS",
    "SPACE_FACTORIES",
    "SPEmulationHarness",
    "SSEmulationHarness",
    "ScenarioSpace",
    "SweepResult",
    "SweepRunner",
    "VECTOR_KERNELS",
    "VectorHarness",
    "check_cell",
    "default_jobs",
    "derived_seed",
    "e10_lambda_space",
    "execute_batch",
    "execute_request",
    "harness_for",
    "has_vector_kernel",
    "make_algorithm",
    "oracle_sweep_space",
    "parallel_map",
    "random_space",
    "run_space",
    "space_by_name",
]
