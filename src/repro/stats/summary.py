"""Descriptive statistics without heavyweight dependencies."""

from __future__ import annotations

import statistics
from dataclasses import dataclass
from typing import Iterable, Sequence


@dataclass(frozen=True)
class Summary:
    """min/mean/median/max/stdev of a sample."""

    count: int
    minimum: float
    mean: float
    median: float
    maximum: float
    stdev: float

    def describe(self, unit: str = "") -> str:
        suffix = f" {unit}" if unit else ""
        return (
            f"n={self.count}: min={self.minimum:g}{suffix}, "
            f"mean={self.mean:.3g}{suffix}, median={self.median:g}{suffix}, "
            f"max={self.maximum:g}{suffix}, stdev={self.stdev:.3g}"
        )


def summarize(values: Sequence[float] | Iterable[float]) -> Summary:
    """Compute the five-number-ish summary of a non-empty sample."""
    data = list(values)
    if not data:
        raise ValueError("cannot summarize an empty sample")
    return Summary(
        count=len(data),
        minimum=min(data),
        mean=statistics.fmean(data),
        median=statistics.median(data),
        maximum=max(data),
        stdev=statistics.pstdev(data) if len(data) > 1 else 0.0,
    )


def rate(hits: int, total: int) -> float:
    """A safe ratio: 0.0 when the denominator is zero."""
    return hits / total if total else 0.0
