"""Mechanical checkers for failure-detector axioms.

These functions decide, over a *finite* time horizon, whether a history
satisfies each completeness/accuracy property for a given failure
pattern.  Eventual ("◊") properties are checked as: the property holds
at every time from some onset up to the horizon.  This is the standard
finite-trace reading; histories produced by the library's detector
classes stabilise well before the horizons used in tests and benches.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.failures.history import FailureDetectorHistory
from repro.failures.pattern import FailurePattern


@dataclass
class PropertyReport:
    """Outcome of checking every axiom on one (pattern, history) pair."""

    strong_completeness: bool
    weak_completeness: bool
    strong_accuracy: bool
    weak_accuracy: bool
    eventual_strong_accuracy: bool
    eventual_weak_accuracy: bool
    violations: list[str] = field(default_factory=list)

    def matches_class(self, name: str) -> bool:
        """Return True iff the report satisfies detector class ``name``."""
        requirements = {
            "P": (self.strong_completeness, self.strong_accuracy),
            "<>P": (self.strong_completeness, self.eventual_strong_accuracy),
            "S": (self.strong_completeness, self.weak_accuracy),
            "<>S": (self.strong_completeness, self.eventual_weak_accuracy),
            "W": (self.weak_completeness, self.weak_accuracy),
            "<>W": (self.weak_completeness, self.eventual_weak_accuracy),
            "Q": (self.weak_completeness, self.strong_accuracy),
            "<>Q": (self.weak_completeness, self.eventual_strong_accuracy),
        }
        if name not in requirements:
            raise KeyError(f"unknown detector class {name!r}")
        return all(requirements[name])


def check_strong_completeness(
    history: FailureDetectorHistory,
    pattern: FailurePattern,
    horizon: int,
) -> bool:
    """Every crashed process is permanently suspected by every correct one.

    Finite-horizon reading: for each crashed ``q`` and correct ``p``
    there is an onset ``t0 <= horizon`` with ``q ∈ H(p, t)`` for all
    ``t in [t0, horizon]`` — equivalently, ``q`` is suspected at the
    horizon and suspicion, once begun, persisted.
    """
    for q in pattern.faulty:
        for p in pattern.correct:
            if not _permanently_suspected(history, p, q, horizon):
                return False
    return True


def check_weak_completeness(
    history: FailureDetectorHistory,
    pattern: FailurePattern,
    horizon: int,
) -> bool:
    """Every crashed process is permanently suspected by some correct one."""
    for q in pattern.faulty:
        if not any(
            _permanently_suspected(history, p, q, horizon)
            for p in pattern.correct
        ):
            return False
    return True


def _permanently_suspected(
    history: FailureDetectorHistory, p: int, q: int, horizon: int
) -> bool:
    """True iff from some time on, ``p`` suspects ``q`` until the horizon."""
    if q not in history.suspects(p, horizon):
        return False
    # Find the latest onset and verify persistence from there: walk
    # backwards while still suspected.
    t = horizon
    while t > 0 and q in history.suspects(p, t - 1):
        t -= 1
    # Suspicion holds on [t, horizon]; it is permanent for the finite trace.
    return True


def check_strong_accuracy(
    history: FailureDetectorHistory,
    pattern: FailurePattern,
    horizon: int,
) -> bool:
    """No process is suspected before it crashes, by anyone, ever."""
    for t in range(horizon + 1):
        crashed = pattern.crashed_by(t)
        for p in range(pattern.n):
            if history.suspects(p, t) - crashed:
                return False
    return True


def check_weak_accuracy(
    history: FailureDetectorHistory,
    pattern: FailurePattern,
    horizon: int,
) -> bool:
    """Some correct process is never suspected by any process."""
    candidates = set(pattern.correct)
    for t in range(horizon + 1):
        if not candidates:
            return False
        for p in range(pattern.n):
            candidates -= history.suspects(p, t)
    return bool(candidates)


def check_eventual_strong_accuracy(
    history: FailureDetectorHistory,
    pattern: FailurePattern,
    horizon: int,
) -> bool:
    """From some time on, correct processes are not suspected by correct ones.

    Finite-horizon reading: at the horizon (and as witnessed by the
    latest stretch of the trace), no correct process suspects a correct
    process.
    """
    for p in pattern.correct:
        if history.suspects(p, horizon) & pattern.correct:
            return False
    return True


def check_eventual_weak_accuracy(
    history: FailureDetectorHistory,
    pattern: FailurePattern,
    horizon: int,
) -> bool:
    """From some time on, some correct process is unsuspected by correct ones."""
    for candidate in pattern.correct:
        if all(
            candidate not in history.suspects(p, horizon)
            for p in pattern.correct
        ):
            return True
    return False


def classify_history(
    history: FailureDetectorHistory,
    pattern: FailurePattern,
    horizon: int,
) -> PropertyReport:
    """Check every axiom and return a full report."""
    report = PropertyReport(
        strong_completeness=check_strong_completeness(history, pattern, horizon),
        weak_completeness=check_weak_completeness(history, pattern, horizon),
        strong_accuracy=check_strong_accuracy(history, pattern, horizon),
        weak_accuracy=check_weak_accuracy(history, pattern, horizon),
        eventual_strong_accuracy=check_eventual_strong_accuracy(
            history, pattern, horizon
        ),
        eventual_weak_accuracy=check_eventual_weak_accuracy(
            history, pattern, horizon
        ),
    )
    if not report.strong_accuracy:
        report.violations.append("a process was suspected before crashing")
    if not report.strong_completeness:
        report.violations.append(
            "a crash escaped permanent suspicion by some correct process"
        )
    return report
