"""Microbenchmarks for the failure-detector substrate.

Histories and their axiom checks run inside every detector-related
experiment; these benches isolate their raw cost so substrate
regressions are visible independently of the experiment numbers.
"""

import random

from repro.failures import (
    DETECTOR_CLASSES,
    FailurePattern,
    PerfectDetector,
    classify_history,
)

PATTERN = FailurePattern.with_crashes(4, {1: 20, 3: 60})
HORIZON = 150


def bench_perfect_history_generation(benchmark):
    detector = PerfectDetector(max_delay=20)

    def generate():
        return detector.history(
            PATTERN, horizon=HORIZON, rng=random.Random(1)
        )

    history = benchmark(generate)
    assert 1 in history.suspects(0, HORIZON)


def bench_classify_history(benchmark):
    history = PerfectDetector(max_delay=20).history(
        PATTERN, horizon=HORIZON, rng=random.Random(1)
    )
    report = benchmark(classify_history, history, PATTERN, HORIZON)
    assert report.matches_class("P")


def bench_full_hierarchy_classification(once):
    """Generate + classify one history of every class in the hierarchy."""

    def sweep():
        results = {}
        for name, detector_cls in DETECTOR_CLASSES.items():
            history = detector_cls().history(
                PATTERN, horizon=HORIZON, rng=random.Random(3)
            )
            results[name] = classify_history(
                history, PATTERN, HORIZON
            ).matches_class(name)
        return results

    results = once(sweep)
    assert all(results.values()), results
