"""E9 — A1 in RWS: the Section 5.3 disagreement scenario."""

from repro.consensus import A1, check_uniform_consensus_run
from repro.core.experiments import experiment_e9
from repro.rounds import run_rws
from repro.workloads import a1_rws_disagreement, adversarial_split


def bench_e9_named_scenario(benchmark):
    """Microbenchmark: replay the paper's decide-then-crash run."""

    def scenario_run():
        run = run_rws(
            A1(), adversarial_split(3), a1_rws_disagreement(3), t=1
        )
        return check_uniform_consensus_run(run)

    violations = benchmark(scenario_run)
    assert any(v.clause == "uniform agreement" for v in violations)


def bench_e9_full_experiment(once):
    result = once(experiment_e9, True)
    assert result.ok, result.describe()
