"""Quickstart: run uniform consensus in synchronous rounds.

This example walks the shortest path through the library: build an
algorithm, run it under a failure scenario, inspect the run, check the
specification, and measure latency.

Run:  python examples/quickstart.py
"""

from repro import (
    FailureScenario,
    FloodSet,
    check_uniform_consensus_run,
    latency_profile,
    run_rs,
    RoundModel,
)
from repro.rounds import CrashEvent
from repro.trace import describe_round_run, round_tableau


def main() -> None:
    # Three processes propose 0, 1, 1 and tolerate one crash (t = 1).
    values = [0, 1, 1]

    # 1. A failure-free run: FloodSet floods values for t+1 = 2 rounds
    #    and decides the minimum.
    clean = run_rs(FloodSet(), values, FailureScenario.failure_free(3), t=1)
    print("=== failure-free run ===")
    print(describe_round_run(clean))
    print(round_tableau(clean))
    print()

    # 2. An adversarial run: process 0 crashes mid-broadcast in round 1,
    #    reaching only process 1.  Round synchrony means process 2's
    #    missing message *proves* the crash; the round-2 flood still
    #    spreads value 0 to everyone.
    scenario = FailureScenario(
        n=3, crashes=(CrashEvent(pid=0, round=1, sent_to=frozenset({1})),)
    )
    crashed = run_rs(FloodSet(), values, scenario, t=1)
    print("=== crash mid-broadcast ===")
    print(describe_round_run(crashed))
    print(round_tableau(crashed))
    print()

    # 3. Specification checking: no uniform consensus clause is violated.
    violations = check_uniform_consensus_run(crashed)
    print("spec violations:", violations or "none")
    print()

    # 4. Latency measurement over the *entire* bounded run space:
    #    lat / Lat / Λ of Section 5.2, computed exactly.
    profile = latency_profile(FloodSet(), 3, 1, RoundModel.RS)
    print(profile.describe())


if __name__ == "__main__":
    main()
