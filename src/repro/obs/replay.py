"""Deterministic replay: from a JSONL trace back to an executable run.

A round-model trace is a complete description of the adversary's
decisions — who crashed in which round (``crash``, with the
``applies_transition`` bit in ``value``), which recipients a crashing
broadcast reached (the crash round's ``msg_sent`` events), and which
sent messages were withheld (``msg_withheld``).  That is precisely a
:class:`~repro.rounds.scenario.FailureScenario`, so a trace can be
*re-executed*: reconstruct the scenario, run the same algorithm from
the same values through the round executor, and assert event-for-event
equality.  With the logical clock
(:func:`~repro.obs.events.logical_clock`) the re-execution reproduces
the exported JSONL byte-for-byte — the foundation for bug repro and
trace-validated benchmarks.

Imports from :mod:`repro.rounds` are deferred to call time:
``repro.rounds`` itself imports ``repro.obs`` submodules, and module-
level imports here would make the package import order circular.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Sequence

from repro.obs.events import Event, EventLog, logical_clock


def infer_model(events: Sequence[Event]) -> str:
    """``"RWS"`` when the trace contains withheld messages, else ``"RS"``.

    Sound for engine-produced traces: ``msg_withheld`` is the one kind
    that cannot occur under round synchrony.
    """
    return (
        "RWS"
        if any(event.kind == "msg_withheld" for event in events)
        else "RS"
    )


def reconstruct_scenario(events: Sequence[Event]) -> Any:
    """Rebuild the :class:`FailureScenario` a round-model trace ran under.

    Crash rounds come from ``crash`` events; ``sent_to`` is read off
    the crash round's actual ``msg_sent`` events (for a process that
    applied its transition the paper requires a complete send, so the
    full set is restored); pending messages come from ``msg_withheld``.

    Raises :class:`ValueError` when the trace carries no ``round_start``
    event — step-model traces do not describe a round scenario.
    """
    from repro.rounds.scenario import (
        CrashEvent,
        FailureScenario,
        PendingMessage,
    )

    n: int | None = None
    for event in events:
        if event.kind == "round_start" and isinstance(
            event.value, (list, tuple)
        ):
            n = len(event.value)
            break
    if n is None:
        raise ValueError(
            "not a round-model trace: no round_start event with an alive "
            "list to infer n from"
        )

    sent_by_round: dict[tuple[int, int], set[int]] = {}
    for event in events:
        if event.kind == "msg_sent" and event.round is not None:
            sent_by_round.setdefault((event.peer, event.round), set()).add(
                event.pid
            )

    crashes = []
    for event in events:
        if event.kind != "crash" or event.round is None:
            continue
        applies = event.value is True
        if applies:
            sent_to = frozenset(q for q in range(n) if q != event.pid)
        else:
            sent_to = frozenset(
                q
                for q in sent_by_round.get((event.pid, event.round), set())
                if q != event.pid
            )
        crashes.append(
            CrashEvent(
                pid=event.pid,
                round=event.round,
                sent_to=sent_to,
                applies_transition=applies,
            )
        )

    pending = frozenset(
        PendingMessage(event.peer, event.pid, event.round)
        for event in events
        if event.kind == "msg_withheld" and event.round is not None
    )
    return FailureScenario(n=n, crashes=tuple(crashes), pending=pending)


@dataclass
class ReplayReport:
    """The outcome of re-executing a trace."""

    scenario: Any
    model: str
    num_rounds: int
    original: list[Event]
    replayed: list[Event]
    run: Any

    @property
    def original_lines(self) -> list[str]:
        return [event.to_json() for event in self.original]

    @property
    def replayed_lines(self) -> list[str]:
        return [event.to_json() for event in self.replayed]

    @property
    def exact(self) -> bool:
        """Byte-for-byte equality of the serialized event streams."""
        return self.original_lines == self.replayed_lines

    @property
    def matches(self) -> bool:
        """Event-for-event equality ignoring timestamps."""
        return self.first_mismatch is None

    @property
    def first_mismatch(self) -> int | None:
        """Index of the first event differing modulo ``ts`` (or the
        length of the shorter stream when one is a prefix)."""

        def strip(event: Event) -> dict[str, Any]:
            data = event.to_dict()
            data.pop("ts", None)
            return data

        for index, (a, b) in enumerate(zip(self.original, self.replayed)):
            if strip(a) != strip(b):
                return index
        if len(self.original) != len(self.replayed):
            return min(len(self.original), len(self.replayed))
        return None

    def describe(self) -> str:
        head = (
            f"replayed {len(self.replayed)} events over {self.num_rounds} "
            f"rounds ({self.model}, scenario: {self.scenario.describe()})"
        )
        if self.exact:
            return head + "\n  event streams identical byte-for-byte"
        if self.matches:
            return head + "\n  event streams identical modulo timestamps"
        index = self.first_mismatch
        lines = [head, f"  first divergence at event {index}:"]
        for label, events in (("original", self.original), ("replay", self.replayed)):
            if index < len(events):
                lines.append(f"    {label}: {events[index].to_json()}")
            else:
                lines.append(f"    {label}: <trace ended>")
        return "\n".join(lines)


def replay_events(
    algorithm: Any,
    values: Sequence[Any],
    events: Sequence[Event],
    *,
    t: int,
    model: Any = None,
    max_rounds: int | None = None,
) -> ReplayReport:
    """Re-execute ``events`` and compare the streams.

    Args:
        algorithm: The round algorithm the trace was produced with.
        values: The run's initial values.
        events: The original trace (e.g. from
            :func:`~repro.obs.events.events_from_jsonl_lines`).
        t: Resilience parameter of the original run.
        model: ``"RS"``/``"RWS"``/:class:`RoundModel`; inferred from the
            trace when ``None``.
        max_rounds: Horizon; defaults to the number of rounds the trace
            shows.  The replay always executes exactly that many rounds
            (``run_all_rounds``), which reproduces both early-quiescent
            and horizon-bounded originals.
    """
    from repro.rounds.executor import RoundModel, execute

    scenario = reconstruct_scenario(events)
    model_name = getattr(model, "value", model)
    if model_name is None:
        model_name = infer_model(events)
    model_name = str(model_name).upper()
    round_model = RoundModel(model_name)

    rounds_seen = max(
        (
            event.round
            for event in events
            if event.kind == "round_start" and event.round is not None
        ),
        default=0,
    )
    horizon = max_rounds if max_rounds is not None else max(rounds_seen, 1)

    log = EventLog(clock=logical_clock())
    # validate=False: a quiesced run's trace may truncate a scenario
    # whose remaining obligations (a pending sender's crash scheduled
    # past the last executed round) the validator would demand — the
    # trace itself is the authority here, and the event-stream equality
    # assertion is the correctness check.
    run = execute(
        algorithm,
        values,
        scenario,
        t=t,
        model=round_model,
        max_rounds=horizon,
        run_all_rounds=True,
        validate=False,
        observer=log,
    )
    return ReplayReport(
        scenario=scenario,
        model=model_name,
        num_rounds=run.num_rounds,
        original=list(events),
        replayed=list(log.events),
        run=run,
    )
