"""Exception hierarchy for the repro library.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch library failures with a single ``except`` clause while
still being able to discriminate the precise failure mode.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigurationError(ReproError):
    """A component was constructed with inconsistent parameters.

    Examples: ``n <= 0``, ``t >= n``, a synchrony bound below 1, or an
    algorithm asked to run with more processes than its design supports.
    """


class ScheduleError(ReproError):
    """A schedule (sequence of steps) is malformed or inconsistent.

    Raised when a step references an unknown process, when a crashed
    process takes a step, or when message receive/send bookkeeping does
    not line up.
    """


class SynchronyViolation(ReproError):
    """A run violates the synchrony conditions of its declared model.

    Carries enough context to point at the offending step or round so that
    tests and validators can produce actionable reports.
    """

    def __init__(self, message: str, *, step_index: int | None = None,
                 round_index: int | None = None) -> None:
        super().__init__(message)
        self.step_index = step_index
        self.round_index = round_index


class DetectorViolation(ReproError):
    """A failure-detector history violates the axioms of its class.

    For example a *perfect* detector history that suspects a process
    before it crashed (accuracy violation) or that never suspects a
    crashed process (completeness violation).
    """


class ScenarioError(ReproError):
    """A failure scenario is internally inconsistent or ill-formed.

    Examples: two crash events for the same process, a pending message
    whose sender does not crash within the weak-round-synchrony window,
    or a crash event that applies the round transition without having
    completed its sends.
    """


class SpecificationViolation(ReproError):
    """A run violates a problem specification clause.

    The ``clause`` attribute names the violated condition (for instance
    ``"uniform agreement"``) so reports can say exactly what broke.
    """

    def __init__(self, message: str, *, clause: str | None = None) -> None:
        super().__init__(message)
        self.clause = clause


class ExecutionError(ReproError):
    """An executor could not make progress.

    Raised for instance when a run's horizon is exhausted before every
    required output was produced and the caller demanded completion.
    """
