"""Tests for run indistinguishability — checking Theorem 3.1's engine."""

from __future__ import annotations

import pytest

from repro.analysis import (
    first_divergence,
    indistinguishable,
    observations,
)
from repro.failures import FailurePattern
from repro.failures.history import ConstantHistory
from repro.sdd.impossibility import (
    SP_CANDIDATE_FACTORIES,
    _run_quadruple_member,
)
from repro.sdd.spec import RECEIVER, SENDER
from repro.sdd.ss_algorithm import SDDSender
from repro.simulation import ScriptedScheduler, StepExecutor
from repro.simulation.automaton import IdleAutomaton


class TestObservations:
    def test_empty_for_non_stepping_process(self):
        pattern = FailurePattern.with_crashes(2, {0: 0})
        executor = StepExecutor(
            IdleAutomaton(), 2, pattern, ScriptedScheduler([(1, "all")] * 3)
        )
        run = executor.execute(3)
        assert observations(run, 0) == []
        assert len(observations(run, 1)) == 3

    def test_payloads_captured_in_delivery_order(self):
        pattern = FailurePattern.crash_free(2)
        executor = StepExecutor(
            [SDDSender("v"), IdleAutomaton()],
            2,
            pattern,
            ScriptedScheduler([(0, "all"), (1, "all")]),
        )
        run = executor.execute(2)
        obs = observations(run, 1)
        assert obs[0].payloads == ("v",)

    def test_suspects_recorded(self):
        pattern = FailurePattern.with_crashes(2, {0: 0})
        executor = StepExecutor(
            IdleAutomaton(),
            2,
            pattern,
            ScriptedScheduler([(1, "all")]),
            history=ConstantHistory({0}),
        )
        run = executor.execute(1)
        assert observations(run, 1)[0].suspects == frozenset({0})


class TestTheoremQuadruple:
    """The structural core of Theorem 3.1: the receiver cannot tell the
    four runs apart — now asserted directly, not via equal decisions."""

    @pytest.mark.parametrize("name", sorted(SP_CANDIDATE_FACTORIES))
    def test_all_pairs_indistinguishable_to_receiver(self, name):
        factory = SP_CANDIDATE_FACTORIES[name]
        runs = {
            label: _run_quadruple_member(factory(), value, steps, 60)
            for label, (value, steps) in {
                "r0": (0, 0),
                "r0'": (0, 1),
                "r1": (1, 0),
                "r1'": (1, 1),
            }.items()
        }
        labels = sorted(runs)
        for i, a in enumerate(labels):
            for b in labels[i + 1:]:
                assert indistinguishable(runs[a], runs[b], RECEIVER), (
                    f"{a} vs {b}: "
                    f"{first_divergence(runs[a], runs[b], RECEIVER)}"
                )

    def test_runs_are_distinguishable_to_an_outside_observer(self):
        """Sanity: the runs differ (the sender acts differently) — the
        magic is that the *receiver* can't see it."""
        factory = SP_CANDIDATE_FACTORIES["suspicion"]
        r0 = _run_quadruple_member(factory(), 0, 0, 60)
        r0p = _run_quadruple_member(factory(), 0, 1, 60)
        assert len(r0p.messages_sent_by(SENDER)) == 1
        assert len(r0.messages_sent_by(SENDER)) == 0


class TestDivergence:
    def test_first_divergence_located(self):
        pattern = FailurePattern.crash_free(2)

        def run_with_history(history):
            executor = StepExecutor(
                IdleAutomaton(),
                2,
                pattern,
                ScriptedScheduler([(1, "all")] * 4),
                history=history,
            )
            return executor.execute(4)

        run_a = run_with_history(ConstantHistory(set()))
        run_b = run_with_history(ConstantHistory({0}))
        divergence = first_divergence(run_a, run_b, 1)
        assert divergence is not None
        index, obs_a, obs_b = divergence
        assert index == 0
        assert obs_a.suspects != obs_b.suspects

    def test_no_divergence_returns_none(self):
        pattern = FailurePattern.crash_free(2)
        executor = StepExecutor(
            IdleAutomaton(), 2, pattern, ScriptedScheduler([(1, "all")] * 3)
        )
        run = executor.execute(3)
        assert first_divergence(run, run, 1) is None
