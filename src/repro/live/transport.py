"""The in-process live network: queues, faults, reliable channels.

Each process owns an inbox (an :class:`asyncio.Queue`); a send is a
delivery *attempt* that may be severed by a partition or dropped by the
profile's per-attempt loss, and otherwise arrives after a sampled
one-way delay.  Two send disciplines sit on top:

* **unreliable** (heartbeats) — one attempt, fire and forget.  This is
  the paper's fair-lossy datagram: losing any finite number of
  heartbeats is fine because the next one carries the same information.
* **reliable** (algorithm messages) — retransmit every ``rto_s`` until
  an attempt makes it onto the wire or the *sender* crashes.  A
  fair-lossy link plus retransmission is a reliable channel, which is
  exactly the channel assumption of the paper's SP model.  Crashing
  cancels a sender's future retransmissions but never recalls a
  message already in flight — the crash boundary the failure-pattern
  formalism prescribes.

Randomness (drops, delays) comes from one seeded RNG, so two runs with
the same seed make the same per-attempt choices; wall-clock
interleaving remains genuinely nondeterministic, which is the point of
the live engine.
"""

from __future__ import annotations

import asyncio
import random
from dataclasses import dataclass, field
from typing import Any

from repro.live.profiles import NetProfile


@dataclass
class TransportStats:
    """Counters over one cluster run."""

    attempts: int = 0
    dropped: int = 0
    severed: int = 0
    delivered: int = 0
    retransmits: int = 0
    heartbeats_sent: int = 0
    dead_letters: int = 0  # deliveries whose recipient had crashed

    def to_dict(self) -> dict[str, int]:
        return dict(vars(self))


@dataclass
class MessageMeta:
    """Per-message delivery forensics for one reliable send.

    Tagged onto every reliable datagram by :meth:`LiveTransport.
    register_message`; the cluster copies it into the trace's
    ``extra`` fields so causal analysis can attribute wall latency to
    first-attempt flight time vs retransmissions.
    """

    msg_id: int
    sender: int
    recipient: int
    posted_s: float = 0.0
    attempts: int = 0
    retransmits: int = 0
    wire_s: float | None = None  # when an attempt survived sever/drop
    delivered_s: float | None = None  # inbox arrival

    def to_extra(self) -> dict[str, Any]:
        extra: dict[str, Any] = {
            "msg_id": self.msg_id,
            "attempts": self.attempts,
            "retransmits": self.retransmits,
        }
        if self.wire_s is not None:
            extra["wire_s"] = round(self.wire_s, 6)
        if self.delivered_s is not None:
            extra["delivered_s"] = round(self.delivered_s, 6)
        return extra


@dataclass
class _Inbox:
    queue: asyncio.Queue = field(default_factory=asyncio.Queue)


class LiveTransport:
    """The cluster's network fabric.

    Args:
        n: Number of processes (pids ``0 .. n-1``).
        profile: The fault profile governing every link.
        rng: Seeded RNG for drop and delay draws.
        rto_s: Retransmission timeout for reliable sends; defaults to
            four maximum one-way delays (and never below 10 ms).
    """

    def __init__(
        self,
        n: int,
        profile: NetProfile,
        rng: random.Random,
        *,
        rto_s: float | None = None,
    ) -> None:
        self.n = n
        self.profile = profile
        self.rng = rng
        self.rto_s = (
            rto_s if rto_s is not None else max(4 * profile.max_delay_s, 0.01)
        )
        self.stats = TransportStats()
        self.meta: dict[int, MessageMeta] = {}
        self._next_msg_id = 0
        self.crashed: set[int] = set()
        self.inboxes = [_Inbox() for _ in range(n)]
        self._tasks: set[asyncio.Task] = set()
        self._loop: asyncio.AbstractEventLoop | None = None
        self._start: float = 0.0

    # -- lifecycle ----------------------------------------------------------

    def start(self) -> None:
        """Bind to the running loop; call once inside the cluster task."""
        self._loop = asyncio.get_running_loop()
        self._start = self._loop.time()

    def now(self) -> float:
        """Seconds since :meth:`start` (the cluster's wall clock)."""
        assert self._loop is not None, "transport not started"
        return self._loop.time() - self._start

    def crash(self, pid: int) -> None:
        """Mark ``pid`` crashed: no new sends, retransmissions cease."""
        self.crashed.add(pid)

    async def shutdown(self) -> None:
        """Cancel every in-flight delivery and retransmission task."""
        for task in list(self._tasks):
            task.cancel()
        if self._tasks:
            await asyncio.gather(*self._tasks, return_exceptions=True)
        self._tasks.clear()

    # -- sending ------------------------------------------------------------

    def send_unreliable(self, sender: int, recipient: int, payload: Any) -> bool:
        """One delivery attempt (heartbeat discipline).

        Returns True when the attempt made it onto the wire.
        """
        self.stats.heartbeats_sent += 1
        return self._attempt(sender, recipient, payload)

    def post_reliable(
        self, sender: int, recipient: int, payload: Any, *, msg_id: int | None = None
    ) -> None:
        """Queue a reliable send; retransmission runs as its own task."""
        self._spawn(self._send_reliable(sender, recipient, payload, msg_id))

    def deliver_local(
        self, pid: int, payload: Any, *, msg_id: int | None = None
    ) -> None:
        """Immediate, reliable self-delivery (no network hop)."""
        meta = self.meta.get(msg_id) if msg_id is not None else None
        if meta is not None:
            meta.attempts += 1
            meta.wire_s = meta.delivered_s = self.now()
        self.inboxes[pid].queue.put_nowait(payload)

    # -- causal tagging -----------------------------------------------------

    def register_message(self, sender: int, recipient: int) -> int:
        """Allocate a stable ``msg_id`` and its delivery-forensics slot.

        The id travels inside the wire payload (so the recipient can
        link its delivery back to the send) and indexes :attr:`meta`,
        which accumulates attempt/retransmit counts and wall stamps as
        the message moves.
        """
        self._next_msg_id += 1
        msg_id = self._next_msg_id
        self.meta[msg_id] = MessageMeta(
            msg_id=msg_id,
            sender=sender,
            recipient=recipient,
            posted_s=self.now(),
        )
        return msg_id

    def delivery_extra(self, msg_id: int | None) -> dict[str, Any] | None:
        """The ``extra`` payload for a message event, or ``None``."""
        meta = self.meta.get(msg_id) if msg_id is not None else None
        return meta.to_extra() if meta is not None else None

    # -- internals ----------------------------------------------------------

    def _spawn(self, coro) -> None:
        assert self._loop is not None, "transport not started"
        task = self._loop.create_task(coro)
        self._tasks.add(task)
        task.add_done_callback(self._tasks.discard)

    def _attempt(
        self,
        sender: int,
        recipient: int,
        payload: Any,
        msg_id: int | None = None,
    ) -> bool:
        """One attempt: sever/drop checks now, delivery after a delay.

        An attempt that passes both checks is "on the wire" and will
        arrive regardless of any later crash of the sender — in-flight
        messages survive their sender.
        """
        self.stats.attempts += 1
        meta = self.meta.get(msg_id) if msg_id is not None else None
        if meta is not None:
            meta.attempts += 1
        if self.profile.severed(sender, recipient, self.now()):
            self.stats.severed += 1
            return False
        if self.profile.drops(self.rng):
            self.stats.dropped += 1
            return False
        if meta is not None:
            meta.wire_s = self.now()
        delay = self.profile.sample_delay(self.rng)
        self._spawn(self._deliver(recipient, payload, delay, msg_id))
        return True

    async def _deliver(
        self,
        recipient: int,
        payload: Any,
        delay: float,
        msg_id: int | None = None,
    ) -> None:
        await asyncio.sleep(delay)
        if recipient in self.crashed:
            self.stats.dead_letters += 1
            return
        self.stats.delivered += 1
        meta = self.meta.get(msg_id) if msg_id is not None else None
        if meta is not None:
            meta.delivered_s = self.now()
        self.inboxes[recipient].queue.put_nowait(payload)

    async def _send_reliable(
        self,
        sender: int,
        recipient: int,
        payload: Any,
        msg_id: int | None = None,
    ) -> None:
        first = True
        while sender not in self.crashed:
            if not first:
                self.stats.retransmits += 1
                meta = self.meta.get(msg_id) if msg_id is not None else None
                if meta is not None:
                    meta.retransmits += 1
            first = False
            if self._attempt(sender, recipient, payload, msg_id):
                return
            await asyncio.sleep(self.rto_s)
