"""Direct unit tests for the adaptive ◊P module (`failures/timeout_ep.py`).

`test_partial_synchrony.py` exercises the detector through the GST
scheduler; here the module is driven step by step with hand-crafted
contexts, so each transition of the suspect/refute/backoff machine is
pinned down exactly — in particular *eventual* strong accuracy under
heartbeats that are persistently late by a fixed gap.
"""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.failures import AdaptiveTimeoutDetector
from repro.simulation.automaton import StepContext
from repro.simulation.message import Message


def step(detector, pid, state, received=(), n=None):
    """Drive one ``on_step`` with a crafted context."""
    outcome = detector.on_step(
        StepContext(
            pid=pid,
            n=n or detector.n,
            state=state,
            received=tuple(received),
            local_step=state.local_step + 1,
        )
    )
    return outcome


def heartbeat(sender, recipient, uid=0):
    return Message(
        uid=uid,
        sender=sender,
        recipient=recipient,
        payload="heartbeat",
        sent_step=0,
    )


class TestConstruction:
    def test_rejects_tiny_system(self):
        with pytest.raises(ConfigurationError):
            AdaptiveTimeoutDetector(1)

    def test_rejects_nonpositive_knobs(self):
        with pytest.raises(ConfigurationError):
            AdaptiveTimeoutDetector(3, initial_timeout=0)
        with pytest.raises(ConfigurationError):
            AdaptiveTimeoutDetector(3, backoff=0)

    def test_initial_state_covers_exactly_the_peers(self):
        detector = AdaptiveTimeoutDetector(4, initial_timeout=7)
        state = detector.initial_state(2, 4)
        assert set(state.last_heard) == {0, 1, 3}
        assert all(t == 7 for t in state.timeouts.values())
        assert state.suspected == frozenset()


class TestSuspicion:
    def test_silence_crosses_the_timeout(self):
        """With no heartbeats, a peer is suspected exactly one step
        after its silence exceeds the timeout — and not before."""
        detector = AdaptiveTimeoutDetector(2, initial_timeout=3)
        state = detector.initial_state(0, 2)
        for expected_step in range(1, 4):
            state = step(detector, 0, state).state
            assert state.local_step == expected_step
            assert state.suspected == frozenset()
        state = step(detector, 0, state).state
        assert state.suspected == {1}

    def test_heartbeat_resets_the_silence_clock(self):
        detector = AdaptiveTimeoutDetector(2, initial_timeout=3)
        state = detector.initial_state(0, 2)
        for _ in range(3):
            state = step(detector, 0, state).state
        state = step(detector, 0, state, [heartbeat(1, 0)]).state
        assert state.suspected == frozenset()
        assert state.last_heard[1] == state.local_step

    def test_emits_round_robin_heartbeats(self):
        detector = AdaptiveTimeoutDetector(4)
        state = detector.initial_state(1, 4)
        targets = []
        for _ in range(6):
            outcome = step(detector, 1, state)
            state = outcome.state
            targets.append(outcome.send_to)
            assert outcome.payload == "heartbeat"
        assert targets == [0, 2, 3, 0, 2, 3]


class TestRefutation:
    def _suspect_then_refute(self, detector, state, cycles):
        """Starve p0 of heartbeats until it suspects p1, then deliver a
        late heartbeat; repeat ``cycles`` times."""
        for _ in range(cycles):
            while 1 not in state.suspected:
                state = step(detector, 0, state).state
            state = step(detector, 0, state, [heartbeat(1, 0)]).state
            assert 1 not in state.suspected
        return state

    def test_late_heartbeat_refutes_and_backs_off(self):
        detector = AdaptiveTimeoutDetector(2, initial_timeout=2, backoff=5)
        state = detector.initial_state(0, 2)
        state = self._suspect_then_refute(detector, state, cycles=1)
        assert state.timeouts[1] == 2 + 5

    def test_backoff_accumulates_per_mistake(self):
        detector = AdaptiveTimeoutDetector(2, initial_timeout=2, backoff=3)
        state = detector.initial_state(0, 2)
        state = self._suspect_then_refute(detector, state, cycles=4)
        assert state.timeouts[1] == 2 + 4 * 3

    def test_backoff_is_per_peer(self):
        """Refuting a suspicion of p1 must not touch p2's timeout."""
        detector = AdaptiveTimeoutDetector(3, initial_timeout=2, backoff=3)
        state = detector.initial_state(0, 3)
        while 1 not in state.suspected:
            # p2 keeps beating, p1 stays silent.
            state = step(detector, 0, state, [heartbeat(2, 0)]).state
        state = step(detector, 0, state, [heartbeat(1, 0)]).state
        assert state.timeouts[1] == 2 + 3
        assert state.timeouts[2] == 2


class TestEventualAccuracy:
    def test_persistently_late_heartbeats_stop_causing_mistakes(self):
        """A peer whose heartbeats arrive every ``gap`` steps with
        ``gap > initial_timeout`` is falsely suspected a few times; each
        mistake backs the timeout off, and once it exceeds the gap no
        further suspicion ever occurs — ◊P's eventual strong accuracy,
        with a mistake phase that is provably non-empty."""
        gap, initial, backoff = 9, 2, 3
        detector = AdaptiveTimeoutDetector(2, initial_timeout=initial, backoff=backoff)
        state = detector.initial_state(0, 2)
        suspicion_steps = []
        previously_suspected = False
        for global_step in range(1, 20 * gap + 1):
            received = [heartbeat(1, 0)] if global_step % gap == 0 else []
            state = step(detector, 0, state, received).state
            if 1 in state.suspected and not previously_suspected:
                suspicion_steps.append(global_step)
            previously_suspected = 1 in state.suspected
        assert suspicion_steps, "gap never exceeded the timeout: test too tame"
        # A heartbeat is processed before the silence check, so the
        # worst silence a peer shows is gap - 1 steps; once the timeout
        # reaches that, mistakes stop for good.
        assert state.timeouts[1] >= gap - 1
        stabilised = suspicion_steps[-1]
        assert stabilised < 10 * gap
        assert 1 not in state.suspected
        # Exactly ceil((gap - 1 - initial) / backoff) mistakes needed.
        assert len(suspicion_steps) == -(-(gap - 1 - initial) // backoff)

    def test_completeness_holds_forever(self):
        """A peer that stops beating is suspected and, with no late
        heartbeat possible, never trusted again — no matter how large
        its timeout got beforehand."""
        detector = AdaptiveTimeoutDetector(2, initial_timeout=2, backoff=10)
        state = detector.initial_state(0, 2)
        # One refuted mistake first, so the timeout is non-trivial.
        while 1 not in state.suspected:
            state = step(detector, 0, state).state
        state = step(detector, 0, state, [heartbeat(1, 0)]).state
        for _ in range(50):
            state = step(detector, 0, state).state
        assert 1 in state.suspected
