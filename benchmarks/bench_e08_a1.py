"""E8 — A1 (Figure 4, Theorem 5.2): Λ(A1) = 1 in RS."""

from repro.analysis import profile_and_verify
from repro.consensus import A1
from repro.rounds import FailureScenario, RoundModel, run_rs


def bench_e8_a1_exhaustive_rs(once):
    profile, report = once(profile_and_verify, A1(), 3, 1, RoundModel.RS)
    assert report.ok
    assert profile.Lambda == 1
    assert profile.Lat == 1
    assert profile.Lat_by_failures[1] == 2


def bench_e8_a1_single_failure_free_run(benchmark):
    """Microbenchmark: one failure-free A1 run (the Λ = 1 witness)."""
    run = benchmark(
        run_rs, A1(), [0, 1, 1], FailureScenario.failure_free(3), t=1
    )
    assert all(run.decision_round(p) == 1 for p in range(3))
