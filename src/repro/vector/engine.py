"""The columnar batch engine behind ``engine="vector"``.

Execution of a batch group splits into three phases:

1. **Plan** (:mod:`repro.vector.plan`) — one value-free symbolic run
   per distinct ``(algorithm, n, t, model, scenario, horizon)`` group,
   yielding the exact observer-hook sequence and the batched value
   program.  Memoized, so a thousand-cell value sweep over one
   adversary plans once.
2. **Value kernel** (this module) — the whole batch's decision values
   in one pass: initial values become bitmasks over each cell's sorted
   value domain, ``W``-set unions are bitwise ORs (numpy ``(B, n)``
   ``uint64`` columns when available, plain ``int`` lists otherwise),
   and ``min(W)`` is a lowest-set-bit read.  A1 needs no arrays at all:
   its decisions are initial values picked by plan-determined indices.
3. **Materialize** — every cell's typed event log and metrics state
   are the group's shared template with the decide values substituted,
   so the trace is *byte-identical* to the object engine's (the decide
   ``value`` field is the only value-dependent byte in a round trace).

Cells the kernel cannot take — unregistered algorithms, value domains
with ``None``/NaN/cross-type-equal members, rejected scenarios, unknown
engine params — transparently fall back to the object executor, which
also reproduces exact error behaviour.  The object engine stays alive
as the differential-fuzzing twin; the replay oracle re-executes every
vector trace on it byte-for-byte.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Sequence

from repro.obs.causal import round_msg_id
from repro.obs.events import (
    CompositeObserver,
    Event,
    EventLog,
    Observer,
    logical_clock,
)
from repro.obs.metrics import MetricsObserver, MetricsRegistry
from repro.obs.profile import profiled
from repro.rounds.executor import RoundModel
from repro.rounds.executor import execute as execute_rounds
from repro.runtime.request import (
    ExecutionRequest,
    ExecutionResult,
    batch_cache_keys,
)
from repro.vector.backend import backend_name, numpy_module
from repro.vector.kernels import DECIDE_MIN, DECIDE_VALUE
from repro.vector.plan import GroupPlan, build_plan

#: Widest value domain the uint64 numpy columns can hold; wider groups
#: run on the python backend's unbounded ints.
MAX_NUMPY_DOMAIN = 64

#: Engine params the planner understands; anything else falls back to
#: the object executor (which raises on genuinely unknown keywords).
_PLAN_PARAMS = frozenset({"validate", "run_all_rounds"})

#: Event/metrics templates per plan (plans are memoized upstream, so
#: identity keying is stable within a cache generation).
_TEMPLATE_CACHE: dict[int, tuple[GroupPlan, list[Event], list[int], dict]] = {}
_TEMPLATE_CACHE_MAX = 512


@dataclass
class VectorRun:
    """A vector-engine run, shaped like a ``RoundRun`` for summaries."""

    decisions: dict[int, tuple[int, Any]]
    num_rounds: int
    latency_value: int | None

    def latency(self) -> int | None:
        return self.latency_value


@dataclass
class FallbackRun:
    """An object-engine run where the kernel declined the cell, tagged
    with why.  Exposes the ``RoundRun`` summary surface, so harnesses
    treat it like any run; the reason becomes the per-cell
    ``extra["vector_fallback"]`` telemetry campaign summaries report."""

    run: Any
    reason: str

    @property
    def decisions(self) -> dict[int, tuple[int, Any]]:
        return self.run.decisions

    def latency(self) -> int | None:
        return self.run.latency()

    @property
    def num_rounds(self) -> int:
        return self.run.num_rounds


#: The fallback reasons per-cell telemetry may carry.
FALLBACK_UNSUPPORTED = "unsupported-algorithm"
FALLBACK_PARAMS = "unsupported-params"
FALLBACK_PLAN = "plan-refused"
FALLBACK_DOMAIN = "value-domain"


def _plan_fallback_reason(request: ExecutionRequest) -> str:
    """Why :func:`plan_for_request` returned ``None`` for this cell."""
    from repro.runtime.registry import has_vector_kernel

    if not has_vector_kernel(request.algorithm):
        return FALLBACK_UNSUPPORTED
    if set(request.param_dict()) - _PLAN_PARAMS:
        return FALLBACK_PARAMS
    return FALLBACK_PLAN


# ---------------------------------------------------------------------------
# Plan resolution and per-cell admissibility
# ---------------------------------------------------------------------------


def plan_for_request(request: ExecutionRequest) -> GroupPlan | None:
    """The request's group plan, or ``None`` for object-engine fallback."""
    params = request.param_dict()
    if set(params) - _PLAN_PARAMS:
        return None
    if request.scenario is None or request.model not in ("RS", "RWS"):
        return None
    return build_plan(
        request.algorithm,
        request.n,
        request.t,
        request.model,
        request.scenario,
        request.max_rounds,
        run_all_rounds=bool(params.get("run_all_rounds", False)),
        validate=bool(params.get("validate", True)),
    )


def cell_domain(values: Sequence[Any]) -> list[Any] | None:
    """The cell's sorted value domain, or ``None`` when min-parity with
    the object engine cannot be guaranteed.

    Rejected: unhashable or unsortable values, ``None`` (an undecided
    marker to ``decision_of``), NaN (unordered), and cross-type equal
    members (``0`` vs ``False``) whose surviving representative depends
    on set-construction order.
    """
    try:
        distinct = set(values)
        domain = sorted(distinct)
        typed = {(type(value), value) for value in values}
    except TypeError:
        return None
    for value in distinct:
        if value is None or value != value:
            return None
    if len(typed) != len(distinct):
        return None
    return domain


def _pick_values_ok(values: Sequence[Any]) -> bool:
    """A1 decides initial values verbatim; only ``None`` (the object
    engine's undecided marker) breaks decide-event parity."""
    return not any(value is None for value in values)


# ---------------------------------------------------------------------------
# Value kernels
# ---------------------------------------------------------------------------


def _pick_sources(plan: GroupPlan) -> list[int]:
    """Per decide slot, the pid whose initial value is decided (A1)."""
    sources = [0] * len(plan.decide_slots)
    for _, decide_ops in plan.program:
        for slot, _pid, op, src in decide_ops:
            assert op == DECIDE_VALUE
            sources[slot] = src
    return sources


def _run_pick_kernel(
    plan: GroupPlan, values_list: Sequence[Sequence[Any]]
) -> list[tuple[Any, ...]]:
    sources = _pick_sources(plan)
    return [
        tuple(values[src] for src in sources) for values in values_list
    ]


def _run_set_kernel_python(
    plan: GroupPlan,
    values_list: Sequence[Sequence[Any]],
    domains: Sequence[list[Any]],
) -> list[tuple[Any, ...]]:
    out: list[tuple[Any, ...]] = []
    n = plan.n
    for values, domain in zip(values_list, domains):
        index = {value: bit for bit, value in enumerate(domain)}
        W = [1 << index[value] for value in values]
        dec: list[Any] = [None] * n
        for unions_ops, decide_ops in plan.program:
            if unions_ops:
                new_W = W[:]
                for j, senders in unions_ops:
                    mask = W[j]
                    for i in senders:
                        mask |= W[i]
                    new_W[j] = mask
                W = new_W
            for _slot, j, op, src in decide_ops:
                if op == DECIDE_MIN:
                    mask = W[j]
                    dec[j] = domain[(mask & -mask).bit_length() - 1]
                else:  # DECIDE_ADOPT
                    dec[j] = dec[src]
        out.append(tuple(dec[pid] for pid, _ in plan.decide_slots))
    return out


def _run_set_kernel_numpy(
    plan: GroupPlan,
    values_list: Sequence[Sequence[Any]],
    domains: Sequence[list[Any]],
    np,
) -> list[tuple[Any, ...]]:
    batch = len(values_list)
    n = plan.n
    rows = []
    for values, domain in zip(values_list, domains):
        index = {value: bit for bit, value in enumerate(domain)}
        rows.append([1 << index[value] for value in values])
    W = np.array(rows, dtype=np.uint64)
    dec_idx = np.zeros((batch, n), dtype=np.int64)
    zero = np.uint64(0)
    one = np.uint64(1)
    for unions_ops, decide_ops in plan.program:
        if unions_ops:
            new_W = W.copy()
            for j, senders in unions_ops:
                mask = W[:, j].copy()
                for i in senders:
                    mask |= W[:, i]
                new_W[:, j] = mask
            W = new_W
        for _slot, j, op, src in decide_ops:
            if op == DECIDE_MIN:
                column = W[:, j]
                lsb = column & (zero - column)
                # popcount(lsb - 1) is the exact lowest-set-bit index.
                dec_idx[:, j] = np.bitwise_count(lsb - one)
            else:  # DECIDE_ADOPT
                dec_idx[:, j] = dec_idx[:, src]
    return [
        tuple(
            domains[b][int(dec_idx[b, pid])] for pid, _ in plan.decide_slots
        )
        for b in range(batch)
    ]


def run_value_kernel(
    plan: GroupPlan,
    values_list: Sequence[Sequence[Any]],
    domains: Sequence[list[Any]] | None,
) -> list[tuple[Any, ...]]:
    """Decide values for every cell, one tuple per cell in slot order."""
    if plan.kind == "pick":
        return _run_pick_kernel(plan, values_list)
    assert domains is not None
    np = numpy_module()
    if (
        np is not None
        and backend_name() == "numpy"
        and all(len(domain) <= MAX_NUMPY_DOMAIN for domain in domains)
    ):
        return _run_set_kernel_numpy(plan, values_list, domains, np)
    return _run_set_kernel_python(plan, values_list, domains)


# ---------------------------------------------------------------------------
# Trace materialization
# ---------------------------------------------------------------------------


def replay_plan(
    plan: GroupPlan,
    observer: Observer,
    decide_values: Sequence[Any],
) -> None:
    """Stream the plan's hook sequence into ``observer``.

    Emits exactly the calls the object executor would make — message
    hooks carry the same structural ``msg_id``, so causal observers
    pair sends with deliveries identically on both engines.
    """
    for hook in plan.hooks:
        kind = hook[0]
        if kind == "msg_sent":
            _, sender, recipient, round_index = hook
            observer.msg_sent(
                sender,
                recipient,
                round_index=round_index,
                msg_id=round_msg_id(round_index, sender, recipient),
            )
        elif kind == "msg_delivered":
            _, sender, recipient, round_index = hook
            observer.msg_delivered(
                sender,
                recipient,
                round_index=round_index,
                msg_id=round_msg_id(round_index, sender, recipient),
            )
        elif kind == "msg_withheld":
            _, sender, recipient, round_index = hook
            observer.msg_withheld(
                sender,
                recipient,
                round_index,
                msg_id=round_msg_id(round_index, sender, recipient),
            )
        elif kind == "round_start":
            _, round_index, alive = hook
            observer.round_start(round_index, list(alive))
        elif kind == "decide":
            _, slot, pid, round_index = hook
            observer.decide(pid, decide_values[slot], round_index)
        elif kind == "crash":
            _, pid, round_index, applies = hook
            observer.crash(
                pid, round_index=round_index, applies_transition=applies
            )
        else:  # halt
            _, pid, round_index = hook
            observer.halt(pid, round_index)


def _templates_for(
    plan: GroupPlan,
) -> tuple[list[Event], list[int], dict]:
    """The group's shared event list, decide positions, metrics state."""
    cached = _TEMPLATE_CACHE.get(id(plan))
    if cached is not None and cached[0] is plan:
        return cached[1], cached[2], cached[3]
    log = EventLog(clock=logical_clock())
    registry = MetricsRegistry()
    placeholder = [None] * len(plan.decide_slots)
    replay_plan(
        plan, CompositeObserver(log, MetricsObserver(registry)), placeholder
    )
    events = list(log.events)
    positions = [
        idx for idx, event in enumerate(events) if event.kind == "decide"
    ]
    state = registry.state()
    if len(_TEMPLATE_CACHE) >= _TEMPLATE_CACHE_MAX:
        _TEMPLATE_CACHE.clear()
    _TEMPLATE_CACHE[id(plan)] = (plan, events, positions, state)
    return events, positions, state


def _copy_metrics_state(state: dict) -> dict:
    return {
        "counters": dict(state["counters"]),
        "gauges": dict(state["gauges"]),
        "histograms": {
            name: list(values)
            for name, values in state["histograms"].items()
        },
    }


def _decisions_of(
    plan: GroupPlan, decide_values: Sequence[Any]
) -> dict[int, tuple[int, Any]]:
    return {
        pid: (round_index, decide_values[slot])
        for slot, (pid, round_index) in enumerate(plan.decide_slots)
    }


def _substitute_decide(event: Event, value: Any) -> Event:
    # Shallow-clone through __dict__ instead of dataclasses.replace or
    # copy.copy: the template decide event is rebuilt thousands of
    # times per batch, replace() re-runs the full field-by-field
    # constructor and copy() goes through __reduce_ex__.  Event is a
    # frozen non-slots dataclass, so its state is exactly __dict__.
    substituted = Event.__new__(Event)
    substituted.__dict__.update(event.__dict__)
    substituted.__dict__["value"] = value
    return substituted


def _materialize_result(
    request: ExecutionRequest,
    plan: GroupPlan,
    decide_values: tuple[Any, ...],
    request_key: str | None = None,
) -> ExecutionResult:
    events, positions, metrics_state = _templates_for(plan)
    cell_events = list(events)
    for position, value in zip(positions, decide_values):
        cell_events[position] = _substitute_decide(
            cell_events[position], value
        )
    return ExecutionResult(
        name=request.name,
        request_key=(
            request_key if request_key is not None else request.cache_key()
        ),
        events=cell_events,
        metrics=_copy_metrics_state(metrics_state),
        decisions=_decisions_of(plan, decide_values),
        latency=plan.latency,
        num_rounds=plan.num_rounds,
        extra={},
    )


# ---------------------------------------------------------------------------
# Execution entry points
# ---------------------------------------------------------------------------


def _execute_object(
    request: ExecutionRequest, observer: Observer | None
) -> Any:
    """The object-engine twin of a vector cell (fallback + oracle)."""
    # Imported here, not at module top: the registry registers the
    # vector kernel table, so a module-level import would be circular.
    from repro.runtime.registry import make_algorithm

    return execute_rounds(
        make_algorithm(request.algorithm),
        request.values,
        request.scenario,
        t=request.t,
        model=RoundModel(request.model),
        max_rounds=request.max_rounds,
        observer=observer,
        **request.param_dict(),
    )


def _object_result(
    request: ExecutionRequest, reason: str
) -> ExecutionResult:
    """A fallback cell under the standard instrumentation.

    ``reason`` lands in ``extra["vector_fallback"]`` — per-cell
    telemetry only, deliberately outside the determinism contract
    (events and metrics stay byte-identical to the object engine's).
    """
    log = EventLog(clock=logical_clock())
    registry = MetricsRegistry()
    run = _execute_object(
        request, CompositeObserver(log, MetricsObserver(registry))
    )
    return ExecutionResult(
        name=request.name,
        request_key=request.cache_key(),
        events=list(log.events),
        metrics=registry.state(),
        decisions=dict(run.decisions),
        latency=run.latency(),
        num_rounds=run.num_rounds,
        extra={"vector_fallback": reason},
    )


def execute_vector_request(
    request: ExecutionRequest, observer: Observer | None
) -> Any:
    """One cell on the vector engine, streaming events to ``observer``.

    Returns a :class:`VectorRun` (or the fallback's ``RoundRun`` —
    both expose ``decisions`` / ``latency()`` / ``num_rounds``).
    """
    plan = plan_for_request(request)
    if plan is None:
        return FallbackRun(
            _execute_object(request, observer),
            _plan_fallback_reason(request),
        )
    if plan.kind == "pick":
        if not _pick_values_ok(request.values):
            return FallbackRun(
                _execute_object(request, observer), FALLBACK_DOMAIN
            )
        domains = None
    else:
        domain = cell_domain(request.values)
        if domain is None:
            return FallbackRun(
                _execute_object(request, observer), FALLBACK_DOMAIN
            )
        domains = [domain]
    decide_values = run_value_kernel(plan, [request.values], domains)[0]
    if observer is not None:
        replay_plan(plan, observer, decide_values)
    return VectorRun(
        decisions=_decisions_of(plan, decide_values),
        num_rounds=plan.num_rounds,
        latency_value=plan.latency,
    )


def execute_vector_batch(
    requests: Sequence[ExecutionRequest],
) -> list[ExecutionResult]:
    """Execute vector-engine cells batched by group, in input order.

    Cells sharing a group plan run through the value kernel in one
    batched call; inadmissible cells fall back to the object engine
    individually.  Results are byte-identical to
    :func:`repro.runtime.harness.execute_request` on every cell.
    """
    with profiled("vector.execute_batch"):
        results: list[ExecutionResult | None] = [None] * len(requests)
        groups: dict[int, tuple[GroupPlan, list[int]]] = {}
        domains: dict[int, list[Any] | None] = {}
        keys = batch_cache_keys(requests)
        for index, request in enumerate(requests):
            plan = plan_for_request(request)
            if plan is None:
                results[index] = _object_result(
                    request, _plan_fallback_reason(request)
                )
                continue
            if plan.kind == "pick":
                if not _pick_values_ok(request.values):
                    results[index] = _object_result(
                        request, FALLBACK_DOMAIN
                    )
                    continue
                domains[index] = None
            else:
                domain = cell_domain(request.values)
                if domain is None:
                    results[index] = _object_result(
                        request, FALLBACK_DOMAIN
                    )
                    continue
                domains[index] = domain
            _, members = groups.setdefault(id(plan), (plan, []))
            members.append(index)
        for plan, members in groups.values():
            values_list = [requests[index].values for index in members]
            group_domains = (
                None
                if plan.kind == "pick"
                else [domains[index] for index in members]
            )
            decided = run_value_kernel(plan, values_list, group_domains)
            for index, decide_values in zip(members, decided):
                results[index] = _materialize_result(
                    requests[index], plan, decide_values, keys[index]
                )
    final = [result for result in results if result is not None]
    assert len(final) == len(requests)
    return final
