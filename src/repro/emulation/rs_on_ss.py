"""Emulating the RS round model on the SS step model (Section 4.1).

The paper sketches the emulation: "in each round r, every process p_i
executes n + k steps of the SS model.  The first n steps are used to
send real messages whereas in the k last steps, p_i sends null messages
to make sure that, before moving to round r + 1, p_i receives all
messages sent to it by other processes in round r (k is a function of
n, Δ, Φ and r)."

Our instantiation fixes per-round *local-step deadlines* ``S_r``:

    S_0 = 0,    S_r = Φ · (S_{r-1} + n) + Δ + 1

Process ``p_i`` performs round ``r`` during its local steps
``S_{r-1}+1 .. S_r``; the first ``n - 1`` of them send the round's real
messages (one send per step — the step model allows a single addressee
per step, which is why a broadcast costs ``n - 1`` steps), the rest are
null steps, and the transition fires on the step that reaches ``S_r``.

Why the deadline suffices: an alive sender ``p_j`` finishes its
round-``r`` sends by its local step ``σ = S_{r-1} + n - 1``.  Process
synchrony bounds how far ``p_i`` can run ahead — at the global moment
of ``p_j``'s ``σ``-th step, ``p_i`` has taken at most ``Φ·(σ+1)`` local
steps.  Message synchrony then delivers within ``Δ`` further global
steps, during which ``p_i`` takes at most ``Δ`` local steps.  Hence by
local step ``Φ·(S_{r-1}+n) + Δ + 1 = S_r`` every message an alive peer
sent in round ``r`` has arrived — which is exactly the *round
synchrony* property: a missing message implies the sender crashed
before sending it.  (For ``Φ = 1`` the deadlines grow linearly —
``n + Δ + 1`` extra steps per round; for larger ``Φ`` they grow
geometrically, the price of processes drifting apart.)
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace
from typing import Any, Mapping, Sequence

from repro.errors import ConfigurationError, ExecutionError
from repro.failures.pattern import FailurePattern
from repro.inject import active_injection
from repro.models.ss import SSScheduler
from repro.obs.events import Observer
from repro.obs.profile import profiled
from repro.rounds.algorithm import RoundAlgorithm
from repro.simulation.automaton import StepAutomaton, StepContext, StepOutcome
from repro.simulation.executor import StepExecutor
from repro.simulation.run import Run


def round_deadlines(n: int, phi: int, delta: int, num_rounds: int) -> list[int]:
    """Return ``[S_1, ..., S_R]``: the local-step deadline of each round."""
    if n < 2:
        raise ConfigurationError("emulation needs at least two processes")
    if phi < 1 or delta < 1:
        raise ConfigurationError("SS bounds require Φ >= 1 and Δ >= 1")
    deadlines: list[int] = []
    previous = 0
    for _ in range(num_rounds):
        previous = phi * (previous + n) + delta + 1
        deadlines.append(previous)
    return deadlines


@dataclass(frozen=True)
class _EmuState:
    """Per-process state of the round-on-steps wrapper."""

    round: int  # current round, 1-based
    local_step: int
    outbox: tuple[tuple[int, Any], ...]  # (recipient, payload) yet to send
    inbox: Mapping[int, Mapping[int, Any]]  # round -> sender -> payload
    algo_state: Any
    self_payload: Any  # this round's message to self, if any
    delivered_log: tuple[tuple[int, frozenset[int]], ...]  # (round, senders)
    decision_round: int | None
    finished: bool


@dataclass
class EmulatedRoundTrace:
    """What the emulation produced, in round-model vocabulary."""

    n: int
    num_rounds: int
    #: per process: round -> senders whose round messages were used
    senders_used: dict[int, dict[int, frozenset[int]]]
    #: per process: (decision round, value) or None
    decisions: dict[int, tuple[int, Any] | None]
    #: per process: last round whose transition was applied
    completed_rounds: dict[int, int]
    run: Run


class RoundOnSSAutomaton(StepAutomaton):
    """Step automaton executing a round algorithm on SS deadlines."""

    def __init__(
        self,
        algorithm: RoundAlgorithm,
        n: int,
        t: int,
        values: Sequence[Any],
        phi: int,
        delta: int,
        num_rounds: int,
    ) -> None:
        if len(values) != n:
            raise ConfigurationError("one initial value per process required")
        self.algorithm = algorithm
        self.n = n
        self.t = t
        self.values = tuple(values)
        self.phi = phi
        self.delta = delta
        self.num_rounds = num_rounds
        self.deadlines = round_deadlines(n, phi, delta, num_rounds)

    # -- helpers ---------------------------------------------------------------

    def _round_start(self, round_index: int) -> int:
        """First local step of the given round (1-based rounds)."""
        return 0 if round_index == 1 else self.deadlines[round_index - 2]

    def _build_outbox(
        self, pid: int, algo_state: Any
    ) -> tuple[tuple[tuple[int, Any], ...], Any]:
        """Split the algorithm's messages into network sends and the
        self-addressed payload (delivered internally)."""
        outgoing = self.algorithm.messages(pid, algo_state)
        sends = tuple(
            (recipient, payload)
            for recipient, payload in sorted(outgoing.items())
            if recipient != pid
        )
        return sends, outgoing.get(pid)

    # -- StepAutomaton interface ------------------------------------------------

    def initial_state(self, pid: int, n: int) -> _EmuState:
        algo_state = self.algorithm.initial_state(
            pid, self.n, self.t, self.values[pid]
        )
        outbox, self_payload = self._build_outbox(pid, algo_state)
        return _EmuState(
            round=1,
            local_step=0,
            outbox=outbox,
            inbox={},
            algo_state=algo_state,
            self_payload=self_payload,
            delivered_log=(),
            decision_round=None,
            finished=False,
        )

    def on_step(self, ctx: StepContext) -> StepOutcome:
        state: _EmuState = ctx.state
        local_step = state.local_step + 1

        # Receive phase: file tagged messages into the per-round inbox.
        inbox: dict[int, dict[int, Any]] = {
            r: dict(senders) for r, senders in state.inbox.items()
        }
        for message in ctx.received:
            message_round, payload = message.payload
            inbox.setdefault(message_round, {})[message.sender] = payload

        if state.finished:
            return StepOutcome(
                state=replace(state, local_step=local_step, inbox=inbox)
            )

        # Send phase: one outstanding round message per step.
        send_to: int | None = None
        send_payload: Any = None
        outbox = state.outbox
        if outbox:
            (send_to, raw_payload), outbox = outbox[0], outbox[1:]
            send_payload = (state.round, raw_payload)

        new_state = replace(
            state, local_step=local_step, inbox=inbox, outbox=outbox
        )

        # Transition fires exactly on the deadline step.
        if local_step >= self.deadlines[state.round - 1]:
            new_state = self._apply_transition(ctx.pid, new_state)

        return StepOutcome(
            state=new_state, send_to=send_to, payload=send_payload
        )

    def _apply_transition(self, pid: int, state: _EmuState) -> _EmuState:
        received = dict(state.inbox.get(state.round, {}))
        if state.self_payload is not None:
            received[pid] = state.self_payload
        if (
            active_injection() == "ss-drop-received"
            and len(received) < self.n
        ):
            # Mutation-testing hook (REPRO_INJECT_BUG=ss-drop-received):
            # when a crash left this round's vector incomplete, also
            # drop the lowest-pid peer message that did arrive.  The
            # rounds engine never does this, so the differential fuzzer
            # must flag every run where the mutation fires.
            for sender in sorted(received):
                if sender != pid:
                    del received[sender]
                    break
        algo_state = self.algorithm.transition(pid, state.algo_state, received)
        decision_round = state.decision_round
        if (
            decision_round is None
            and self.algorithm.decision_of(algo_state) is not None
        ):
            decision_round = state.round
        delivered_log = state.delivered_log + (
            (state.round, frozenset(received)),
        )
        next_round = state.round + 1
        if next_round > self.num_rounds:
            return replace(
                state,
                algo_state=algo_state,
                decision_round=decision_round,
                delivered_log=delivered_log,
                finished=True,
            )
        outbox, self_payload = self._build_outbox(pid, algo_state)
        return replace(
            state,
            round=next_round,
            algo_state=algo_state,
            outbox=outbox,
            self_payload=self_payload,
            decision_round=decision_round,
            delivered_log=delivered_log,
        )


def emulate_rs_on_ss(
    algorithm: RoundAlgorithm,
    values: Sequence[Any],
    pattern: FailurePattern,
    *,
    t: int,
    phi: int = 1,
    delta: int = 1,
    num_rounds: int | None = None,
    rng: random.Random | None = None,
    max_steps: int | None = None,
    observer: Observer | None = None,
) -> EmulatedRoundTrace:
    """Run a round algorithm on the SS step kernel and lift the trace.

    The failure pattern is expressed in *global step* time, giving crash
    placements the step-level granularity the round model abstracts
    away (a crash between two send steps of the same round is exactly
    the round model's "crashed in the middle of a broadcast").

    ``observer`` receives the underlying step kernel's events plus a
    lifted ``decide`` event per deciding process.  The kernel threads a
    stable ``msg_id`` (the step message uid) through every message
    hook, so a :class:`~repro.obs.causal.CausalObserver` recovers the
    exact send→delivery pairing of the emulated run even under
    non-FIFO schedulers.
    """
    n = len(values)
    rounds = num_rounds if num_rounds is not None else t + 2
    automaton = RoundOnSSAutomaton(
        algorithm, n, t, values, phi, delta, rounds
    )
    deadline = automaton.deadlines[-1]
    horizon = (
        max_steps
        if max_steps is not None
        else (deadline + 2) * n * (phi + 1)
    )
    scheduler = SSScheduler(phi, delta, rng=rng)
    executor = StepExecutor(automaton, n, pattern, scheduler, observer=observer)

    def everyone_finished(states: Mapping[int, _EmuState]) -> bool:
        return all(
            states[pid].finished
            for pid in range(n)
            if pid in pattern.correct
        )

    with profiled("emulation.rs_on_ss"):
        run = executor.execute(horizon, stop_when=everyone_finished)

    senders_used: dict[int, dict[int, frozenset[int]]] = {}
    decisions: dict[int, tuple[int, Any] | None] = {}
    completed: dict[int, int] = {}
    for pid in range(n):
        state: _EmuState = run.final_states[pid]
        senders_used[pid] = {r: senders for r, senders in state.delivered_log}
        completed[pid] = max(
            (r for r, _ in state.delivered_log), default=0
        )
        decision_value = algorithm.decision_of(state.algo_state)
        if state.decision_round is not None and decision_value is not None:
            decisions[pid] = (state.decision_round, decision_value)
        else:
            decisions[pid] = None
        if pid in pattern.correct and not state.finished:
            raise ExecutionError(
                f"correct process {pid} did not finish {rounds} rounds "
                f"within {horizon} steps"
            )
    if observer is not None:
        for pid, entry in sorted(decisions.items()):
            if entry is not None:
                observer.decide(pid, entry[1], entry[0])
        # Halt is graceful termination: a pattern-faulty process never
        # halts in the lifted round-level view, even when its crash time
        # falls after it completed the round horizon (the kernel's crash
        # event is already in the trace and would contradict a halt).
        for pid in range(n):
            if pid in pattern.correct and run.final_states[pid].finished:
                observer.halt(pid, completed[pid])
    return EmulatedRoundTrace(
        n=n,
        num_rounds=rounds,
        senders_used=senders_used,
        decisions=decisions,
        completed_rounds=completed,
        run=run,
    )


def check_emulated_round_synchrony(trace: EmulatedRoundTrace) -> list[str]:
    """Verify round synchrony on an emulated trace.

    For every process ``p_i`` that completed round ``r`` without using a
    message from ``p_j``: ``p_j`` must never have *sent* a round-``r``
    message to ``p_i`` (it crashed before that send step).  Sends are
    read off the underlying step run, so this checks the emulation's
    deadline arithmetic, not its own bookkeeping.
    """
    violations: list[str] = []
    sent_index: set[tuple[int, int, int]] = set()  # (sender, recipient, round)
    for message in trace.run.messages.values():
        message_round, _ = message.payload
        sent_index.add((message.sender, message.recipient, message_round))
    for pid, per_round in trace.senders_used.items():
        for round_index, senders in per_round.items():
            for peer in range(trace.n):
                if peer == pid or peer in senders:
                    continue
                if (peer, pid, round_index) in sent_index:
                    violations.append(
                        f"round {round_index}: p{pid} completed the round "
                        f"without p{peer}'s message although it was sent"
                    )
    return violations
