"""The live cluster orchestrator: tasks, faults, traces, load mode.

A :class:`LiveCluster` runs ``n`` processes as asyncio tasks over a
:class:`~repro.live.transport.LiveTransport`, with a
:class:`~repro.live.detector.HeartbeatService` building P (or ◊P) from
heartbeats, crash faults injected at configured wall-clock offsets, and
either the round adapter (:mod:`repro.live.rounds`, running any
registered :class:`~repro.rounds.algorithm.RoundAlgorithm` unmodified)
or the step adapter (:mod:`repro.live.steps`, driving Chandra–Toueg).

**Trace serialization.**  A live run is wall-clock nondeterministic, so
events are first collected as raw records and only *after* the run
serialized into a logical order the trace oracle accepts:

* rounds mode emits ``round_start 1..max_rounds`` groups; within a
  group, sends precede withheld notices precede deliveries precede
  decides precede crashes precede suspicions.  Withheld events are
  synthesized from sends that were never consumed; the synchronizer
  guarantees the Lemma 4.1 bound for them (see
  :mod:`repro.live.rounds`).  True suspicions are placed no earlier
  than their peer's crash group, so P's strong accuracy holds in trace
  order exactly when it held on the wall clock.
* steps mode (no global rounds) emits events in collection order with
  strictly increasing synthetic times.

Halts are emitted last in both modes: a live process's detector module
keeps observing after the algorithm halts, and trace order must not
put that activity after a ``halt`` event.

**Load mode.**  With ``sessions > 1`` the cluster runs many consensus
instances over the same transport and detector (event recording stays
on for session 0 only), gated by a concurrency limit — the throughput
benchmark's workload.
"""

from __future__ import annotations

import asyncio
import random
from collections import deque
from dataclasses import dataclass, field
from typing import Any

from repro.errors import ConfigurationError, ExecutionError
from repro.live.detector import HEARTBEAT, DetectorConfig, HeartbeatService
from repro.live.profiles import NetProfile
from repro.live.transport import LiveTransport, TransportStats
from repro.runtime.registry import ALGORITHM_FACTORIES, make_algorithm

#: Wire tags of algorithm traffic (heartbeats use ``detector.HEARTBEAT``).
ROUND_MSG = "rnd"
STEP_MSG = "stp"

#: Live-only algorithm key selecting the step-mode Chandra–Toueg adapter.
CHANDRA_TOUEG = "chandra-toueg"

#: Every algorithm key the live engine accepts.
LIVE_ALGORITHMS = tuple(sorted(ALGORITHM_FACTORIES)) + (CHANDRA_TOUEG,)


@dataclass(frozen=True)
class LiveConfig:
    """One live cluster run, completely described.

    Attributes:
        algorithm: A registry key (round adapter) or ``"chandra-toueg"``
            (step adapter).
        values: Initial value per process; fixes ``n``.
        profile: The network fault profile.
        t: Resilience parameter, forwarded to the algorithm.
        detector: Heartbeat service knobs.
        crash_at: ``(pid, seconds)`` crash faults, wall clock from
            cluster start.
        max_rounds: Round horizon (round adapter only).
        seed: Seed for the transport's drop/delay draws.
        sessions: Consensus instances to run (load mode when > 1).
        concurrency: Maximum sessions in flight at once.
        timeout_s: Hard wall-clock bound on the whole run.
        record_events: Collect raw events for session 0 (off for pure
            throughput runs).
    """

    algorithm: str
    values: tuple[Any, ...]
    profile: NetProfile
    t: int = 1
    detector: DetectorConfig = field(default_factory=DetectorConfig)
    crash_at: tuple[tuple[int, float], ...] = ()
    max_rounds: int = 4
    seed: int = 0
    sessions: int = 1
    concurrency: int = 8
    timeout_s: float = 30.0
    record_events: bool = True

    def __post_init__(self) -> None:
        object.__setattr__(self, "values", tuple(self.values))
        n = len(self.values)
        if n < 2:
            raise ConfigurationError("a live cluster needs at least 2 processes")
        if not 0 <= self.t < n:
            raise ConfigurationError(f"need 0 <= t < n, got t={self.t}, n={n}")
        if self.algorithm not in LIVE_ALGORITHMS:
            raise ConfigurationError(
                f"unknown live algorithm {self.algorithm!r}; choose from "
                f"{list(LIVE_ALGORITHMS)}"
            )
        if self.algorithm == CHANDRA_TOUEG and n <= 2 * self.t:
            raise ConfigurationError(
                f"chandra-toueg needs n > 2t (got n={n}, t={self.t})"
            )
        faults = tuple(
            (int(pid), float(at_s)) for pid, at_s in self.crash_at
        )
        seen: set[int] = set()
        for pid, at_s in faults:
            if not 0 <= pid < n:
                raise ConfigurationError(f"crash pid {pid} out of range")
            if pid in seen:
                raise ConfigurationError(f"p{pid} crashes twice")
            if at_s < 0:
                raise ConfigurationError("crash times must be >= 0")
            seen.add(pid)
        object.__setattr__(
            self, "crash_at", tuple(sorted(faults, key=lambda f: f[1]))
        )
        if self.max_rounds < 1:
            raise ConfigurationError("max_rounds must be >= 1")
        if self.sessions < 1 or self.concurrency < 1:
            raise ConfigurationError("sessions and concurrency must be >= 1")
        if self.timeout_s <= 0:
            raise ConfigurationError("timeout_s must be positive")

    @property
    def n(self) -> int:
        return len(self.values)

    @property
    def mode(self) -> str:
        """``"rounds"`` (synchronizer) or ``"steps"`` (Chandra–Toueg)."""
        return "steps" if self.algorithm == CHANDRA_TOUEG else "rounds"


@dataclass(frozen=True)
class RawEvent:
    """One wall-clock observation, before logical serialization.

    For message events ``pid`` is the *sender* and ``peer`` the
    recipient; for ``suspect`` events ``pid`` is the observing module
    and ``peer`` the suspected process.

    ``extra`` is the causal side channel the serializer forwards into
    the observer hooks: the record wall stamp plus, per event kind, the
    transport's message forensics (``msg_id``, attempts, retransmits)
    or the detector's suspicion forensics.
    """

    seq: int
    kind: str
    at_s: float
    pid: int
    peer: int | None = None
    round: int | None = None
    value: Any = None
    extra: Any = None


#: Within-group emission order of the rounds-mode serializer.
_ROUND_PRIORITY = {
    "msg_sent": 1,
    "msg_withheld": 2,
    "msg_delivered": 3,
    "decide": 4,
    "crash": 5,
    "suspect": 6,
}


@dataclass
class _Proc:
    """Mutable per-process runtime state shared by router and runners."""

    wake: asyncio.Event = field(default_factory=asyncio.Event)
    #: ``(session, round) -> sender -> (has_payload, payload, msg_id)``
    rounds: dict[tuple[int, int], dict[int, tuple[bool, Any, int | None]]] = (
        field(default_factory=dict)
    )
    #: ``session -> deque[Message]``
    steps: dict[int, deque] = field(default_factory=dict)
    #: ``session -> current round index`` (round adapter only)
    current_round: dict[int, int] = field(default_factory=dict)


@dataclass
class LiveRun:
    """Everything one live cluster run produced."""

    config: LiveConfig
    decisions: dict[int, tuple[int, Any]]
    all_decisions: dict[int, dict[int, tuple[int, Any]]]
    raw_events: list[RawEvent]
    crash_rounds: dict[int, int]
    crash_walls: dict[int, float]
    detector_summary: dict[str, Any]
    transport_stats: TransportStats
    duration_s: float
    sessions_completed: int
    #: ``session -> wall seconds`` from session launch to completion —
    #: the per-session decision-latency sample SLO percentiles judge.
    session_walls_s: dict[int, float] = field(default_factory=dict)

    @property
    def correct(self) -> list[int]:
        """Processes that never crashed (ground truth, not suspicion)."""
        return [p for p in range(self.config.n) if p not in self.crash_walls]

    @property
    def latency(self) -> int | None:
        """Rounds until every correct process decided (session 0)."""
        worst = 0
        for pid in self.correct:
            entry = self.decisions.get(pid)
            if entry is None:
                return None
            worst = max(worst, entry[0])
        return worst

    @property
    def num_rounds(self) -> int:
        if self.config.mode == "rounds":
            return self.config.max_rounds
        return max((entry[0] for entry in self.decisions.values()), default=0)

    def total_decisions(self) -> int:
        return sum(len(entries) for entries in self.all_decisions.values())

    def session_latencies_ms(self) -> list[float]:
        """Per-session wall decision latencies, in milliseconds."""
        return [
            1000.0 * wall
            for _, wall in sorted(self.session_walls_s.items())
        ]

    def detection_delays_ms(self) -> list[float]:
        """True-detection delays (wall ms), from the detector summary."""
        delays = self.detector_summary.get("detection_delay_samples_ms")
        return list(delays) if delays else []

    def stats_dict(self) -> dict[str, Any]:
        from repro.obs.report import percentile_summary

        duration = max(self.duration_s, 1e-9)
        return {
            "profile": self.config.profile.name,
            "algorithm": self.config.algorithm,
            "mode": self.config.mode,
            "detector": self.config.detector.kind,
            "sessions": self.config.sessions,
            "sessions_completed": self.sessions_completed,
            "duration_s": round(self.duration_s, 6),
            "decisions": self.total_decisions(),
            "decisions_per_s": round(self.total_decisions() / duration, 3),
            "crash_walls_s": {
                pid: round(at, 6) for pid, at in sorted(self.crash_walls.items())
            },
            "session_latency_ms": percentile_summary(
                self.session_latencies_ms()
            ),
            "detector_quality": self.detector_summary,
            "transport": self.transport_stats.to_dict(),
        }

    # -- logical serialization ----------------------------------------------

    def replay_into(self, observer: Any) -> None:
        """Emit the run's trace into ``observer`` in a checker-valid order."""
        if observer is None or not self.raw_events:
            return
        if self.config.mode == "rounds":
            self._replay_rounds(observer)
        else:
            self._replay_steps(observer)

    def _replay_rounds(self, observer: Any) -> None:
        horizon = self.config.max_rounds
        crash_round = dict(self.crash_rounds)

        sent: set[tuple[int, int, int]] = set()
        consumed: set[tuple[int, int, int]] = set()
        send_extra: dict[tuple[int, int, int], Any] = {}
        for raw in self.raw_events:
            if raw.kind == "msg_sent":
                sent.add((raw.round, raw.pid, raw.peer))
                send_extra[(raw.round, raw.pid, raw.peer)] = raw.extra
            elif raw.kind == "msg_delivered":
                consumed.add((raw.round, raw.pid, raw.peer))

        groups: dict[int, list[tuple[int, int, RawEvent]]] = {
            r: [] for r in range(1, horizon + 1)
        }
        halts: list[RawEvent] = []
        for raw in self.raw_events:
            if raw.kind == "halt":
                halts.append(raw)
                continue
            group = self._rounds_group_of(raw, crash_round, horizon)
            groups[group].append((_ROUND_PRIORITY[raw.kind], raw.seq, raw))

        # A send its recipient never consumed is exactly a withheld
        # message of the RWS model; the synchronizer bounds the sender's
        # crash round (Lemma 4.1), which the oracle re-verifies.
        synth = len(self.raw_events)
        for round_index, sender, recipient in sorted(sent - consumed):
            synth += 1
            origin = send_extra.get((round_index, sender, recipient))
            extra = None
            if isinstance(origin, dict) and "msg_id" in origin:
                # The withheld notice inherits the send's identity so
                # the happens-before graph links it to its message.
                extra = {"msg_id": origin["msg_id"]}
            raw = RawEvent(
                seq=synth,
                kind="msg_withheld",
                at_s=0.0,
                pid=sender,
                peer=recipient,
                round=round_index,
                extra=extra,
            )
            groups[round_index].append((_ROUND_PRIORITY[raw.kind], synth, raw))

        for round_index in range(1, horizon + 1):
            alive = [
                pid
                for pid in range(self.config.n)
                if crash_round.get(pid, horizon + 1) >= round_index
            ]
            observer.round_start(round_index, alive)
            for _, _, raw in sorted(groups[round_index], key=lambda e: e[:2]):
                self._emit_round_event(observer, raw)
        for raw in sorted(halts, key=lambda r: r.seq):
            observer.halt(raw.pid, round_index=horizon)

    def _rounds_group_of(
        self, raw: RawEvent, crash_round: dict[int, int], horizon: int
    ) -> int:
        base = raw.round if raw.round is not None else 1
        if raw.kind == "suspect":
            # A true suspicion must follow its peer's crash in trace
            # order; a false one (◊P mistakes) stays at the observer's
            # round, where the accuracy checker rightly flags it.
            peer_crash = crash_round.get(raw.peer)
            if peer_crash is not None:
                base = max(base, peer_crash)
        return min(max(base, 1), horizon)

    @staticmethod
    def _emit_round_event(observer: Any, raw: RawEvent) -> None:
        if raw.kind == "msg_sent":
            observer.msg_sent(
                raw.pid, raw.peer, round_index=raw.round, extra=raw.extra
            )
        elif raw.kind == "msg_withheld":
            observer.msg_withheld(
                raw.pid, raw.peer, raw.round, extra=raw.extra
            )
        elif raw.kind == "msg_delivered":
            observer.msg_delivered(
                raw.pid, raw.peer, round_index=raw.round, extra=raw.extra
            )
        elif raw.kind == "decide":
            observer.decide(
                raw.pid, raw.value, round_index=raw.round, extra=raw.extra
            )
        elif raw.kind == "crash":
            observer.crash(
                raw.pid,
                round_index=raw.round,
                applies_transition=False,
                extra=raw.extra,
            )
        elif raw.kind == "suspect":
            observer.suspect(
                raw.pid, raw.peer, delay=raw.value, extra=raw.extra
            )

    def _replay_steps(self, observer: Any) -> None:
        tick = 0.0
        halts: list[RawEvent] = []
        for raw in self.raw_events:
            if raw.kind == "halt":
                halts.append(raw)
                continue
            tick += 1.0
            if raw.kind == "msg_sent":
                observer.msg_sent(raw.pid, raw.peer, time=tick, extra=raw.extra)
            elif raw.kind == "msg_delivered":
                observer.msg_delivered(
                    raw.pid, raw.peer, time=tick, extra=raw.extra
                )
            elif raw.kind == "crash":
                observer.crash(
                    raw.pid, time=tick, applies_transition=False, extra=raw.extra
                )
            elif raw.kind == "suspect":
                observer.suspect(
                    raw.pid, raw.peer, time=tick, delay=raw.value, extra=raw.extra
                )
            elif raw.kind == "decide":
                observer.decide(
                    raw.pid, raw.value, round_index=raw.round, extra=raw.extra
                )
        for raw in sorted(halts, key=lambda r: r.seq):
            observer.halt(raw.pid)


class LiveCluster:
    """Run one :class:`LiveConfig` on a fresh event loop."""

    def __init__(
        self,
        config: LiveConfig,
        *,
        on_session_done: Any = None,
    ) -> None:
        self.config = config
        #: Called as ``on_session_done(session, wall_s, complete)`` in
        #: the event loop as each session finishes — the live progress
        #: seam (heartbeats, per-session metrics lines).  Must be a
        #: fast synchronous callable; never part of the config (configs
        #: are serializable campaign identity, callbacks are not).
        self.on_session_done = on_session_done
        self.session_walls: dict[int, float] = {}
        self.transport = LiveTransport(
            config.n, config.profile, random.Random(config.seed)
        )
        self.procs: list[_Proc] = []
        self.detector: HeartbeatService | None = None
        self.crash_rounds: dict[int, int] = {}
        self.crash_walls: dict[int, float] = {}
        self.all_decisions: dict[int, dict[int, tuple[int, Any]]] = {
            session: {} for session in range(config.sessions)
        }
        self._raws: list[RawEvent] = []
        self._seq = 0
        self._runner_tasks: dict[int, list[asyncio.Task]] = {
            pid: [] for pid in range(config.n)
        }
        self._sessions_launched = 0
        if config.mode == "steps":
            from repro.fdconsensus.chandra_toueg import ChandraTouegConsensus

            self._automata = [
                ChandraTouegConsensus(config.n, config.t, config.values)
                for _ in range(config.sessions)
            ]
        else:
            self._automata = [
                make_algorithm(config.algorithm)
                for _ in range(config.sessions)
            ]

    # -- public entry --------------------------------------------------------

    def run(self) -> LiveRun:
        """Execute the configured run to completion (blocking)."""
        return asyncio.run(self._main())

    # -- recording -----------------------------------------------------------

    def record(
        self,
        kind: str,
        *,
        pid: int,
        peer: int | None = None,
        round_index: int | None = None,
        value: Any = None,
        extra: dict[str, Any] | None = None,
    ) -> None:
        """Collect one raw event (no-op when recording is off).

        Every recorded event carries its wall stamp in
        ``extra["wall_s"]`` (the serialized trace's logical clock
        cannot) so critical-path attribution can reconstruct where the
        run's real time went; callers merge in per-kind forensics.
        """
        if not self.config.record_events:
            return
        self._seq += 1
        at_s = self.transport.now()
        merged: dict[str, Any] = {"wall_s": round(at_s, 6)}
        if extra:
            merged.update(extra)
        self._raws.append(
            RawEvent(
                seq=self._seq,
                kind=kind,
                at_s=at_s,
                pid=pid,
                peer=peer,
                round=round_index,
                value=value,
                extra=merged,
            )
        )

    def record_decision(
        self, session: int, pid: int, round_index: int, value: Any
    ) -> None:
        self.all_decisions[session][pid] = (round_index, value)
        if session == 0:
            self.record("decide", pid=pid, round_index=round_index, value=value)

    # -- orchestration -------------------------------------------------------

    async def _main(self) -> LiveRun:
        config = self.config
        self.transport.start()
        self.procs = [_Proc() for _ in range(config.n)]
        self.detector = HeartbeatService(
            config.n,
            self.transport,
            config.detector,
            crash_time_of=self.crash_walls.get,
            on_suspect=self._on_suspect,
        )

        loop = asyncio.get_running_loop()
        service_tasks: list[asyncio.Task] = []
        for pid in range(config.n):
            service_tasks.append(loop.create_task(self._route(pid)))
            for coro in self.detector.tasks(pid):
                service_tasks.append(loop.create_task(coro))
        fault_tasks = [
            loop.create_task(self._fault(pid, at_s))
            for pid, at_s in config.crash_at
        ]

        try:
            await asyncio.wait_for(self._run_sessions(), config.timeout_s)
        except TimeoutError:
            raise ExecutionError(
                f"live run exceeded its {config.timeout_s}s wall-clock "
                f"budget (profile {config.profile.name!r}, "
                f"algorithm {config.algorithm!r})"
            ) from None
        finally:
            duration = self.transport.now()
            for task in service_tasks + fault_tasks:
                task.cancel()
            await asyncio.gather(
                *service_tasks, *fault_tasks, return_exceptions=True
            )
            await self.transport.shutdown()

        completed = sum(
            1
            for session in range(config.sessions)
            if all(
                pid in self.all_decisions[session]
                for pid in range(config.n)
                if pid not in self.crash_walls
            )
        )
        return LiveRun(
            config=config,
            decisions=dict(self.all_decisions[0]),
            all_decisions={
                session: dict(entries)
                for session, entries in self.all_decisions.items()
            },
            raw_events=list(self._raws),
            crash_rounds=dict(self.crash_rounds),
            crash_walls=dict(self.crash_walls),
            detector_summary=self.detector.stats.summary(),
            transport_stats=self.transport.stats,
            duration_s=duration,
            sessions_completed=completed,
            session_walls_s=dict(self.session_walls),
        )

    async def _run_sessions(self) -> None:
        config = self.config
        gate = asyncio.Semaphore(config.concurrency)
        loop = asyncio.get_running_loop()

        async def one_session(session: int) -> None:
            async with gate:
                started = self.transport.now()
                tasks: list[asyncio.Task] = []
                for pid in range(config.n):
                    if pid in self.transport.crashed:
                        continue
                    task = loop.create_task(self._runner(session, pid))
                    self._runner_tasks[pid].append(task)
                    tasks.append(task)
                self._sessions_launched += 1
                outcomes = await asyncio.gather(*tasks, return_exceptions=True)
                for outcome in outcomes:
                    if isinstance(outcome, asyncio.CancelledError):
                        continue  # the runner was crashed, by design
                    if isinstance(outcome, BaseException):
                        raise outcome
                wall = self.transport.now() - started
                self.session_walls[session] = wall
                if self.on_session_done is not None:
                    complete = all(
                        pid in self.all_decisions[session]
                        for pid in range(config.n)
                        if pid not in self.crash_walls
                    )
                    self.on_session_done(session, wall, complete)

        await asyncio.gather(
            *(one_session(session) for session in range(config.sessions))
        )

    def _runner(self, session: int, pid: int):
        if self.config.mode == "steps":
            from repro.live.steps import run_steps_session

            return run_steps_session(self, session, pid, self._automata[session])
        from repro.live.rounds import run_rounds_session

        return run_rounds_session(self, session, pid, self._automata[session])

    # -- service tasks -------------------------------------------------------

    async def _route(self, pid: int) -> None:
        queue = self.transport.inboxes[pid].queue
        proc_ref = self.procs[pid]
        while True:
            payload = await queue.get()
            if pid in self.transport.crashed:
                continue
            kind = payload[0]
            if kind == HEARTBEAT:
                self.detector.heard(pid, payload[1])
            elif kind == ROUND_MSG:
                (
                    _,
                    session,
                    round_index,
                    sender,
                    has_payload,
                    body,
                    msg_id,
                ) = payload
                buffer = proc_ref.rounds.setdefault((session, round_index), {})
                if sender not in buffer:
                    buffer[sender] = (has_payload, body, msg_id)
                proc_ref.wake.set()
            elif kind == STEP_MSG:
                _, session, message, msg_id = payload
                proc_ref.steps.setdefault(session, deque()).append(
                    (message, msg_id)
                )
                proc_ref.wake.set()

    async def _fault(self, pid: int, at_s: float) -> None:
        await asyncio.sleep(at_s)
        if pid in self.transport.crashed:
            return
        if (
            self._sessions_launched >= self.config.sessions
            and self._runner_tasks[pid]
            and all(task.done() for task in self._runner_tasks[pid])
        ):
            # The process already halted everywhere; a crash now would
            # be trace-invisible (halt-then-crash is not a valid trace),
            # so the fault is dropped.
            return
        self.transport.crash(pid)
        self.crash_walls[pid] = self.transport.now()
        for task in self._runner_tasks[pid]:
            task.cancel()
        round_now = self.procs[pid].current_round.get(0, 1)
        crash_round = min(max(round_now, 1), self.config.max_rounds)
        self.crash_rounds[pid] = crash_round
        self.record("crash", pid=pid, round_index=crash_round)

    def _on_suspect(self, observer: int, peer: int) -> None:
        latest = self.detector.stats.suspicions[-1]
        delay_ms = (
            round(latest.delay_s * 1000, 3)
            if latest.delay_s is not None
            else None
        )
        self.record(
            "suspect",
            pid=observer,
            peer=peer,
            round_index=self.procs[observer].current_round.get(0),
            value=delay_ms,
            extra=self.detector.forensics(observer, peer),
        )
        self.procs[observer].wake.set()


def run_cluster(config: LiveConfig) -> LiveRun:
    """One-call convenience wrapper around :class:`LiveCluster`."""
    return LiveCluster(config).run()
