"""Batched transition tables: the value-free half of each algorithm.

The observation that makes whole-batch execution possible: for the four
supported algorithms (FloodSet, FloodSetWS, F_OptFloodSet[WS], A1) the
*control flow* of a run — who sends in which round, who decides when,
who halts, when the run goes quiescent — depends only on the failure
scenario, never on the initial values.  Messages are always either a
full broadcast or silence, decisions fire on reception *counts* and
*sender identities* (the ``n - t`` fast path, forced ``(D, v)``
adoption, A1's reports), and the value only selects *what* is decided.

Each plan kernel here replays exactly one object algorithm's transition
with values erased, reporting per round:

* ``unions`` — the senders whose value set ``W`` the process unions in
  (the batched ``W[:, j] |= W[:, i]`` ops of the array kernel);
* ``decide`` — ``None`` or a decision *source*: ``("min", pid)`` for
  ``min(W)`` after this round's unions, ``("adopt", src)`` for adopting
  ``src``'s earlier decision (F_Opt's forced ``(D, v)``), ``("value",
  src)`` for deciding ``src``'s initial value verbatim (A1).

The kernels are validated against the object algorithms — the same
transition tables :mod:`repro.runtime.registry` serves to the round
executor and both emulations — by the byte-parity differential goldens.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

#: Decision sources the value kernel understands.
DECIDE_MIN = "min"
DECIDE_ADOPT = "adopt"
DECIDE_VALUE = "value"


@dataclass
class PlanState:
    """Value-free per-process state shared by every plan kernel."""

    rounds: int = 0
    decided: bool = False
    halt: set[int] = field(default_factory=set)


class FloodPlanKernel:
    """FloodSet (Figure 1) / FloodSetWS (Figure 2) with values erased.

    ``kind = "set"``: decisions are ``min(W)`` reads, so the value
    kernel tracks ``W`` bitmasks.
    """

    kind = "set"

    def __init__(self, n: int, t: int, *, ws: bool) -> None:
        self.n = n
        self.t = t
        self.ws = ws

    def sends(self, pid: int, state: PlanState) -> bool:
        return state.rounds <= self.t

    def transition(
        self,
        pid: int,
        state: PlanState,
        recv: Sequence[int],
        sender_decided: Sequence[bool],
    ) -> tuple[tuple[int, ...], tuple[str, int] | None]:
        state.rounds += 1
        if self.ws:
            unions = tuple(i for i in recv if i not in state.halt)
            received = set(recv)
            state.halt |= {q for q in range(self.n) if q not in received}
        else:
            unions = tuple(recv)
        decide = None
        if state.rounds == self.t + 1 and not state.decided:
            state.decided = True
            decide = (DECIDE_MIN, pid)
        return unions, decide

    def halted(self, pid: int, state: PlanState) -> bool:
        return state.decided


class FOptPlanKernel:
    """F_OptFloodSet / F_OptFloodSetWS (Figure 3) with values erased.

    The round-1 fast path fires on the *raw* reception count reaching
    ``n - t``; forced ``(D, v)`` messages are recognised purely by the
    sender having been decided at its send time, and adopting one skips
    this round's plain unions — exactly the object transition's branch
    chain.
    """

    kind = "set"

    def __init__(self, n: int, t: int, *, ws: bool) -> None:
        self.n = n
        self.t = t
        self.ws = ws

    def sends(self, pid: int, state: PlanState) -> bool:
        # Decided processes keep flooding their (D, v) notification.
        return state.rounds <= self.t

    def transition(
        self,
        pid: int,
        state: PlanState,
        recv: Sequence[int],
        sender_decided: Sequence[bool],
    ) -> tuple[tuple[int, ...], tuple[str, int] | None]:
        state.rounds += 1
        usable = [
            i for i in recv if not self.ws or i not in state.halt
        ]
        forced = [i for i in usable if sender_decided[i]]
        plain = tuple(i for i in usable if not sender_decided[i])
        unions: tuple[int, ...] = ()
        decide = None
        if (
            state.rounds == 1
            and len(recv) == self.n - self.t
            and not state.decided
        ):
            unions = plain
            state.decided = True
            decide = (DECIDE_MIN, pid)
        elif forced and not state.decided:
            state.decided = True
            decide = (DECIDE_ADOPT, forced[0])
        else:
            unions = plain
        if state.rounds == self.t + 1 and not state.decided:
            state.decided = True
            decide = (DECIDE_MIN, pid)
        if self.ws:
            received = set(recv)
            state.halt |= {q for q in range(self.n) if q not in received}
        return unions, decide

    def halted(self, pid: int, state: PlanState) -> bool:
        if not state.decided:
            return False
        return state.rounds >= 2 or state.rounds > self.t


class A1PlanKernel:
    """A1 (Figure 4) with values erased.

    ``kind = "pick"``: every decision is some process's initial value
    verbatim — ``v1`` through p1's broadcast or a round-2 report (whose
    working value is necessarily ``v1``), else ``v2`` — so the value
    kernel needs no ``W`` arrays at all.

    The ``t = 1`` / ``n >= 2`` configuration guards live in the object
    algorithm's ``initial_state``; the planner refuses unsupported
    configurations so the object engine raises its exact errors.
    """

    kind = "pick"

    def __init__(self, n: int, t: int) -> None:
        self.n = n
        self.t = t

    def sends(self, pid: int, state: PlanState) -> bool:
        if state.rounds == 0:
            return pid == 0
        if state.rounds == 1:
            return state.decided or pid == 1
        return False

    def transition(
        self,
        pid: int,
        state: PlanState,
        recv: Sequence[int],
        sender_decided: Sequence[bool],
    ) -> tuple[tuple[int, ...], tuple[str, int] | None]:
        state.rounds += 1
        decide = None
        if state.rounds == 1:
            if 0 in recv:
                state.decided = True
                decide = (DECIDE_VALUE, 0)
        elif state.rounds == 2 and not state.decided:
            # A report's working value is v1: its sender decided in
            # round 1, which only happens by receiving p1's broadcast.
            if any(sender_decided[i] for i in recv):
                state.decided = True
                decide = (DECIDE_VALUE, 0)
            elif 1 in recv:
                state.decided = True
                decide = (DECIDE_VALUE, 1)
        return (), decide

    def halted(self, pid: int, state: PlanState) -> bool:
        # Round-1 deciders still owe their round-2 report.
        return state.rounds >= 2


#: Algorithm registry key -> plan-kernel factory ``(n, t) -> kernel``.
#: The vectorizable subset of :data:`repro.runtime.registry.
#: ALGORITHM_FACTORIES`; everything else transparently falls back to
#: the object engine.
PLAN_KERNELS: dict[str, Callable[[int, int], object]] = {
    "floodset": lambda n, t: FloodPlanKernel(n, t, ws=False),
    "floodset-ws": lambda n, t: FloodPlanKernel(n, t, ws=True),
    "f-opt": lambda n, t: FOptPlanKernel(n, t, ws=False),
    "f-opt-ws": lambda n, t: FOptPlanKernel(n, t, ws=True),
    "a1": lambda n, t: A1PlanKernel(n, t),
}


def plan_kernel_for(algorithm: str, n: int, t: int):
    """A fresh plan kernel, or ``None`` for unvectorized algorithms."""
    factory = PLAN_KERNELS.get(algorithm)
    if factory is None:
        return None
    if algorithm == "a1" and (t != 1 or n < 2):
        return None  # let the object engine raise its exact errors
    return factory(n, t)
