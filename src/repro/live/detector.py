"""Heartbeat-built failure detection over the live transport.

This is the live counterpart of :mod:`repro.failures.timeout_p` and
:mod:`repro.failures.timeout_ep`: the same timeout construction, but
over real (lossy, delayed) channels instead of a step schedule.

Every process broadcasts a heartbeat each ``interval_s`` and runs a
monitor that counts *its own monitor passes* since it last heard each
peer.  Suspicion fires after ``miss_threshold`` silent passes.  Counting
local passes instead of wall time mirrors the paper's local-step
counting (processes have no global clock, only their own step counter)
and has a practical virtue: an event-loop stall delays the monitor
exactly as much as the heartbeats it is waiting for, so scheduler
hiccups cannot manufacture false suspicions.

Two modes, mirroring the simulation-level detectors:

* ``"p"`` — timeout-P: suspicion is permanent.  Accuracy rests on a
  conservative threshold: with per-attempt drop probability ``d`` a
  false suspicion needs ``miss_threshold`` consecutive losses
  (probability ``d**miss_threshold``), and partitions must be shorter
  than the silence tolerance.  Completeness is unconditional: the
  crashed stay silent and silence crosses any timeout.
* ``"ep"`` — ◊P with adaptive timeouts, the live analogue of
  :class:`~repro.failures.timeout_ep.AdaptiveTimeoutDetector`: a late
  heartbeat from a suspected peer *refutes* the suspicion and grows
  that peer's threshold by ``backoff``, so false suspicions eventually
  stop — eventual strong accuracy.

The service keeps quality metrics per suspicion: detection delay
(suspicion wall time minus ground-truth crash time) and a false flag
(the peer was alive when suspected).
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import Callable

from repro.errors import ConfigurationError
from repro.live.transport import LiveTransport

#: Wire tag of heartbeat datagrams.
HEARTBEAT = "hb"


@dataclass(frozen=True)
class DetectorConfig:
    """Timing knobs of the heartbeat service.

    The defaults satisfy the soundness inequality for every registered
    profile with a wide margin: silence tolerance
    (``interval_s * miss_threshold`` = 150 ms) exceeds the adversarial
    partition window (40 ms, which eats at most ~4 of the tolerated
    passes) plus one heartbeat interval and the maximum one-way delay,
    so a false suspicion still needs the ~11 remaining passes to *all*
    lose their heartbeats — ``0.25 ** 11`` under the lossiest profile.
    """

    kind: str = "p"
    interval_s: float = 0.01
    miss_threshold: int = 15
    backoff: int = 6

    def __post_init__(self) -> None:
        if self.kind not in ("p", "ep"):
            raise ConfigurationError(
                f"unknown detector kind {self.kind!r}; choose 'p' or 'ep'"
            )
        if self.interval_s <= 0:
            raise ConfigurationError("heartbeat interval must be positive")
        if self.miss_threshold < 1 or self.backoff < 1:
            raise ConfigurationError(
                "miss_threshold and backoff must be >= 1"
            )


@dataclass
class SuspicionRecord:
    """One suspicion event, with its quality verdict."""

    observer: int
    peer: int
    at_s: float
    false: bool
    delay_s: float | None  # at_s - crash wall time, None for false ones


@dataclass
class DetectorStats:
    """Aggregated detector quality over one cluster run."""

    suspicions: list[SuspicionRecord] = field(default_factory=list)
    refutations: int = 0

    @property
    def false_suspicions(self) -> int:
        return sum(1 for record in self.suspicions if record.false)

    def detection_delays(self) -> list[float]:
        """True detections' delays (seconds), one per (observer, peer)."""
        return [
            record.delay_s
            for record in self.suspicions
            if not record.false and record.delay_s is not None
        ]

    def summary(self) -> dict:
        from repro.stats import percentile

        delays = self.detection_delays()
        delays_ms = [1000 * delay for delay in delays]
        return {
            "suspicions": len(self.suspicions),
            "false_suspicions": self.false_suspicions,
            "refutations": self.refutations,
            "detections": len(delays),
            "detection_delay_ms": {
                "mean": round(sum(delays_ms) / len(delays_ms), 3)
                if delays_ms
                else None,
                "p50": round(percentile(delays_ms, 50), 3) if delays_ms else None,
                "p90": round(percentile(delays_ms, 90), 3) if delays_ms else None,
                "p99": round(percentile(delays_ms, 99), 3) if delays_ms else None,
                "max": round(max(delays_ms), 3) if delays_ms else None,
            },
            # Raw samples (ms) so campaign summaries can re-aggregate
            # across runs without losing the distribution.
            "detection_delay_samples_ms": [
                round(delay, 3) for delay in delays_ms
            ],
        }


class HeartbeatService:
    """Per-process heartbeat broadcasting and silence monitoring.

    Args:
        n: Number of processes.
        transport: The live transport (also the crash oracle for
            *local* module shutdown — a crashed process's own tasks
            stop; remote crashes are only ever inferred from silence).
        config: Timing and mode knobs.
        crash_time_of: Ground truth for quality metrics only — maps a
            pid to its crash wall time (or ``None``).  Never consulted
            for suspicion decisions.
        on_suspect: Called as ``on_suspect(observer, peer)`` whenever a
            module's suspect set grows (the cluster uses it to wake
            waiting round runners and to record trace events).
    """

    def __init__(
        self,
        n: int,
        transport: LiveTransport,
        config: DetectorConfig,
        *,
        crash_time_of: Callable[[int], float | None] = lambda pid: None,
        on_suspect: Callable[[int, int], None] | None = None,
    ) -> None:
        if n < 2:
            raise ConfigurationError("detector needs at least 2 processes")
        self.n = n
        self.transport = transport
        self.config = config
        self.crash_time_of = crash_time_of
        self.on_suspect = on_suspect
        self.stats = DetectorStats()
        peers = {pid: [q for q in range(n) if q != pid] for pid in range(n)}
        self._peers = peers
        self._misses = {
            pid: {q: 0 for q in peers[pid]} for pid in range(n)
        }
        self._thresholds = {
            pid: {q: config.miss_threshold for q in peers[pid]}
            for pid in range(n)
        }
        self._suspected: dict[int, set[int]] = {pid: set() for pid in range(n)}
        # Forensics: when each module last heard each peer (wall
        # seconds; 0.0 = never, i.e. silent since startup).
        self._last_heard: dict[int, dict[int, float]] = {
            pid: {q: 0.0 for q in peers[pid]} for pid in range(n)
        }

    # -- queries ------------------------------------------------------------

    def suspected_by(self, pid: int) -> frozenset[int]:
        """The current output of ``pid``'s detector module."""
        return frozenset(self._suspected[pid])

    def forensics(self, pid: int, peer: int) -> dict[str, int | float]:
        """Why ``pid``'s module currently holds its view of ``peer``.

        The causal cut behind a suspicion: how many silent monitor
        passes accumulated, the threshold they crossed, and the wall
        time of the last heartbeat that made it through — the window
        ``(last_heard_s, now]`` is exactly the missed-heartbeat span.
        """
        return {
            "misses": self._misses[pid][peer],
            "threshold": self._thresholds[pid][peer],
            "last_heard_s": round(self._last_heard[pid][peer], 6),
        }

    # -- transport-facing hooks ---------------------------------------------

    def heard(self, pid: int, sender: int) -> None:
        """``pid`` received a heartbeat from ``sender``."""
        self._misses[pid][sender] = 0
        self._last_heard[pid][sender] = self.transport.now()
        if sender in self._suspected[pid]:
            if self.config.kind == "ep":
                # A refuted suspicion: trust again, back off the timer —
                # the AdaptiveTimeoutDetector move, on live channels.
                self._suspected[pid].discard(sender)
                self._thresholds[pid][sender] += self.config.backoff
                self.stats.refutations += 1
            # kind "p": suspicion is irrevocable; the late heartbeat is
            # ignored (and, with a sound threshold, never happens).

    # -- tasks --------------------------------------------------------------

    def tasks(self, pid: int) -> list:
        """The coroutines to schedule for process ``pid``."""
        return [self._beat(pid), self._monitor(pid)]

    async def _beat(self, pid: int) -> None:
        transport = self.transport
        while pid not in transport.crashed:
            for peer in self._peers[pid]:
                transport.send_unreliable(pid, peer, (HEARTBEAT, pid))
            await asyncio.sleep(self.config.interval_s)

    async def _monitor(self, pid: int) -> None:
        transport = self.transport
        while True:
            await asyncio.sleep(self.config.interval_s)
            if pid in transport.crashed:
                return
            for peer in self._peers[pid]:
                if peer in self._suspected[pid]:
                    continue
                self._misses[pid][peer] += 1
                if self._misses[pid][peer] >= self._thresholds[pid][peer]:
                    self._suspect(pid, peer)

    def _suspect(self, pid: int, peer: int) -> None:
        self._suspected[pid].add(peer)
        at = self.transport.now()
        crash_at = self.crash_time_of(peer)
        self.stats.suspicions.append(
            SuspicionRecord(
                observer=pid,
                peer=peer,
                at_s=at,
                false=crash_at is None,
                delay_s=(at - crash_at) if crash_at is not None else None,
            )
        )
        if self.on_suspect is not None:
            self.on_suspect(pid, peer)
