"""Schedulers: the source of nondeterminism in the step-level kernel.

A scheduler decides, at every global step, which process moves and which
of its buffered messages are delivered.  System models are obtained by
restricting schedulers: an unconstrained scheduler yields the
asynchronous model, while :class:`repro.models.ss.SSScheduler` only
produces schedules satisfying the Φ/Δ synchrony conditions.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

from repro.errors import ScheduleError
from repro.simulation.message import Message


@dataclass(frozen=True)
class StepChoice:
    """A scheduler decision: ``pid`` steps, receiving ``deliver_uids``.

    ``deliver_uids`` of ``None`` means "deliver everything buffered".
    """

    pid: int
    deliver_uids: frozenset[int] | None = None


@dataclass(frozen=True)
class SchedulerView:
    """Read-only snapshot handed to the scheduler before each step.

    Attributes:
        time: The global clock tick (== global step index).
        n: Number of processes.
        alive: Processes not crashed at ``time``.
        buffers: Per-process pending messages (in arrival order).
        local_steps: Steps taken so far by each process.
    """

    time: int
    n: int
    alive: frozenset[int]
    buffers: Mapping[int, tuple[Message, ...]]
    local_steps: Mapping[int, int]

    def buffered(self, pid: int) -> tuple[Message, ...]:
        return self.buffers.get(pid, ())


class Scheduler(ABC):
    """Decides who steps next and what they receive."""

    @abstractmethod
    def choose(self, view: SchedulerView) -> StepChoice | None:
        """Return the next step, or ``None`` to end the run.

        Returning ``None`` is how scripted schedulers signal that the
        script is exhausted; the executor also stops on its own when no
        process is alive or the step budget runs out.
        """


class RoundRobinScheduler(Scheduler):
    """Cycle over alive processes; deliver every buffered message.

    This scheduler satisfies the SS synchrony conditions for every
    ``Φ >= 1`` and ``Δ >= 1`` (each alive process steps once per cycle
    and messages are delivered at the recipient's first opportunity),
    making it the simplest SS-admissible scheduler.  It also produces
    admissible asynchronous runs (every correct process steps forever,
    every message is delivered).
    """

    def __init__(self, start: int = 0) -> None:
        self._next = start

    def choose(self, view: SchedulerView) -> StepChoice | None:
        if not view.alive:
            return None
        for offset in range(view.n):
            pid = (self._next + offset) % view.n
            if pid in view.alive:
                self._next = (pid + 1) % view.n
                return StepChoice(pid=pid, deliver_uids=None)
        return None


class RandomScheduler(Scheduler):
    """Random interleaving with randomly delayed message delivery.

    Produces asynchronous runs: an arbitrary alive process steps, and
    each buffered message is delivered with probability
    ``delivery_prob`` — except that messages older than ``max_age``
    global steps are always delivered, which keeps finite prefixes
    honest about the "every message is eventually received" condition.
    """

    def __init__(
        self,
        rng: random.Random,
        delivery_prob: float = 0.6,
        max_age: int | None = 40,
    ) -> None:
        if not 0.0 <= delivery_prob <= 1.0:
            raise ScheduleError("delivery_prob must be in [0, 1]")
        self._rng = rng
        self._delivery_prob = delivery_prob
        self._max_age = max_age

    def choose(self, view: SchedulerView) -> StepChoice | None:
        if not view.alive:
            return None
        pid = self._rng.choice(sorted(view.alive))
        deliver = set()
        for message in view.buffered(pid):
            age = view.time - message.sent_step
            overdue = self._max_age is not None and age >= self._max_age
            if overdue or self._rng.random() < self._delivery_prob:
                deliver.add(message.uid)
        return StepChoice(pid=pid, deliver_uids=frozenset(deliver))


class ScriptedScheduler(Scheduler):
    """Replay an explicit list of scheduling decisions.

    The script is a sequence of ``(pid, deliver)`` pairs where
    ``deliver`` is ``"all"``, or an iterable of message uids, or a
    callable mapping the buffered messages to the uids to deliver
    (handy when uids are not known when the script is written).
    Scripted schedulers are the tool for building the precise runs that
    indistinguishability arguments — Theorem 3.1 in particular — are
    made of.
    """

    def __init__(self, script: Sequence[tuple[int, object]]) -> None:
        self._script = list(script)
        self._cursor = 0

    def choose(self, view: SchedulerView) -> StepChoice | None:
        if self._cursor >= len(self._script):
            return None
        pid, deliver = self._script[self._cursor]
        self._cursor += 1
        if pid not in view.alive:
            raise ScheduleError(
                f"script step {self._cursor - 1}: process {pid} is crashed "
                f"at time {view.time}"
            )
        if deliver == "all":
            uids: frozenset[int] | None = None
        elif callable(deliver):
            uids = frozenset(deliver(view.buffered(pid)))
        elif isinstance(deliver, Iterable):
            uids = frozenset(deliver)  # type: ignore[arg-type]
        else:
            raise ScheduleError(
                f"script step {self._cursor - 1}: bad deliver spec "
                f"{deliver!r}"
            )
        return StepChoice(pid=pid, deliver_uids=uids)
