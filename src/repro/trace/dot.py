"""Graphviz (DOT) export of runs: publication-grade space-time diagrams.

The ASCII renderers in :mod:`repro.trace.diagram` are for terminals;
these exporters emit DOT source for `dot -Tsvg`, drawing the classic
distributed-computing space-time diagram: one horizontal lane per
process, nodes for steps (or rounds), and arrows for messages.
"""

from __future__ import annotations

from repro.rounds.executor import RoundRun
from repro.simulation.run import Run


def _quote(text: str) -> str:
    return '"' + text.replace('"', r"\"") + '"'


def step_run_to_dot(run: Run, *, max_steps: int = 80) -> str:
    """Render a step-level run as a DOT digraph.

    Nodes are the steps a process took (``p1s3`` = process 1, local
    step 3); grey dashed lane edges give each process's timeline;
    solid arrows are messages (send step -> receive step).  Crashed
    processes get a final ``CRASH`` node.
    """
    lines = [
        "digraph run {",
        "  rankdir=LR;",
        '  node [shape=circle, fontsize=9, width=0.3];',
    ]
    # Lanes: per-process chains of step nodes.
    steps_by_pid: dict[int, list] = {pid: [] for pid in range(run.n)}
    for step in run.schedule[:max_steps]:
        steps_by_pid[step.pid].append(step)
    receive_node: dict[int, str] = {}  # uid -> receiving node name
    send_node: dict[int, str] = {}  # uid -> sending node name

    for pid, steps in steps_by_pid.items():
        previous = f"p{pid}start"
        label = _quote(f"p{pid}")
        lines.append(
            f"  {previous} [shape=plaintext, label={label}];"
        )
        for step in steps:
            node = f"p{pid}s{step.local_step}"
            lines.append(
                f"  {node} [label={_quote(str(step.local_step))}];"
            )
            lines.append(
                f"  {previous} -> {node} [style=dashed, color=grey, "
                "arrowhead=none];"
            )
            previous = node
            if step.sent_uid is not None:
                send_node[step.sent_uid] = node
            for uid in step.received_uids:
                receive_node[uid] = node
        crash_time = run.pattern.crash_time(pid)
        if crash_time is not None:
            crash = f"p{pid}crash"
            lines.append(
                f"  {crash} [shape=box, color=red, label=CRASH];"
            )
            lines.append(
                f"  {previous} -> {crash} [style=dashed, color=red, "
                "arrowhead=none];"
            )

    for uid, source in send_node.items():
        target = receive_node.get(uid)
        if target is None:
            continue  # undelivered within the rendered prefix
        payload = _quote(str(run.messages[uid].payload))
        lines.append(
            f"  {source} -> {target} [color=blue, fontsize=8, "
            f"label={payload}];"
        )
    lines.append("}")
    return "\n".join(lines)


def round_run_to_dot(run: RoundRun) -> str:
    """Render a round-model run as a DOT digraph.

    One node per (process, round) cell; message arrows from sender
    cells to receiver cells; pending (sent-but-undelivered) messages
    drawn dotted red; decisions annotated on the deciding cell.
    """
    lines = [
        "digraph roundrun {",
        "  rankdir=LR;",
        "  node [shape=box, fontsize=9];",
    ]
    for pid in range(run.n):
        previous = None
        for record in run.rounds:
            if not run.scenario.alive_at_start(pid, record.index):
                break
            node = f"p{pid}r{record.index}"
            label = f"p{pid} r{record.index}"
            if run.decision_round(pid) == record.index:
                label += f"\\ndecide {run.decision_value(pid)!r}"
            color = "red" if pid in record.crashed else "black"
            lines.append(
                f"  {node} [label={_quote(label)}, color={color}];"
            )
            if previous is not None:
                lines.append(
                    f"  {previous} -> {node} [style=dashed, color=grey, "
                    "arrowhead=none];"
                )
            previous = node
    for record in run.rounds:
        for (sender, recipient), _payload in record.sent.items():
            if sender == recipient:
                continue
            source = f"p{sender}r{record.index}"
            target = f"p{recipient}r{record.index}"
            delivered = sender in record.delivered.get(recipient, {})
            style = (
                "[color=blue]"
                if delivered
                else "[color=red, style=dotted, label=pending]"
            )
            lines.append(f"  {source} -> {target} {style};")
    lines.append("}")
    return "\n".join(lines)
