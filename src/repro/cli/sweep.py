"""``repro sweep``: run a scenario space through the unified runtime.

Spaces come from the runtime catalogue (``repro sweep --list``); the
runner executes them serially or across a process pool, optionally
backed by the on-disk result cache, and can pipe every produced trace
through the trace oracle.
"""

from __future__ import annotations

import argparse
import sys

from repro.errors import ConfigurationError
from repro.runtime import SPACE_FACTORIES, SweepRunner, space_by_name


def _cmd_sweep(args: argparse.Namespace) -> int:
    if args.list:
        for name in sorted(SPACE_FACTORIES):
            print(name)
        return 0
    if args.space is None:
        print(
            f"error: provide a space name (one of {sorted(SPACE_FACTORIES)})"
            " or --list",
            file=sys.stderr,
        )
        return 2
    try:
        space = space_by_name(args.space, count=args.count, seed=args.seed)
    except ConfigurationError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    runner = SweepRunner(
        jobs=args.jobs, cache=args.cache_dir, check=args.check
    )
    result = runner.run(space)
    print(result.describe())
    if args.jsonl:
        count = result.write_merged_jsonl(args.jsonl)
        print(f"wrote {count} merged events to {args.jsonl}")
    if args.space == "e10-lambda":
        print("latency (best, worst) per algorithm over failure-free runs:")
        for name, (best, worst) in sorted(
            result.latency_by_algorithm().items()
        ):
            worst_text = "undecided" if worst is None else str(worst)
            print(f"  {name}: best={best}, worst(Λ)={worst_text}")
    if args.check and not result.checks_ok:
        return 1
    return 0


def register(sub: argparse._SubParsersAction) -> None:
    """Attach this module's subcommands to the root parser."""
    p_sweep = sub.add_parser(
        "sweep",
        help="execute a scenario space (parallel, cached, checked)",
    )
    p_sweep.add_argument(
        "space",
        nargs="?",
        help=f"one of {sorted(SPACE_FACTORIES)}",
    )
    p_sweep.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="worker processes (default: 1, serial)",
    )
    p_sweep.add_argument(
        "--cache-dir",
        metavar="DIR",
        help="on-disk result cache; repeated sweeps execute 0 scenarios",
    )
    p_sweep.add_argument(
        "--check",
        action="store_true",
        help="run the trace oracle over every cell's trace",
    )
    p_sweep.add_argument(
        "--jsonl",
        metavar="PATH",
        help="write the merged (deterministic) sweep trace to PATH",
    )
    p_sweep.add_argument(
        "--count",
        type=int,
        help="cells per random stream (stream-based spaces only)",
    )
    p_sweep.add_argument(
        "--seed",
        type=int,
        help="stream seed (stream-based spaces only)",
    )
    p_sweep.add_argument(
        "--list",
        action="store_true",
        help="list the registered scenario spaces and exit",
    )
    p_sweep.set_defaults(func=_cmd_sweep)
