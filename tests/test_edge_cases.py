"""Edge-case tests: minimal systems, wider domains, boundary horizons."""

from __future__ import annotations

import pytest

from repro.analysis import latency_profile, verify_algorithm
from repro.consensus import (
    A1,
    COptFloodSet,
    FloodSet,
    FloodSetWS,
    FOptFloodSet,
)
from repro.rounds import (
    CrashEvent,
    FailureScenario,
    RoundModel,
    run_rs,
    run_rws,
)


class TestTwoProcessSystems:
    """n = 2, t = 1: the smallest system the paper's claims apply to."""

    @pytest.mark.parametrize(
        "algorithm_cls", [FloodSet, FloodSetWS, COptFloodSet, FOptFloodSet, A1]
    )
    def test_rs_safety(self, algorithm_cls):
        report = verify_algorithm(algorithm_cls(), 2, 1, RoundModel.RS)
        assert report.ok, report.first_violations()

    def test_floodsetws_rws_safety(self):
        report = verify_algorithm(FloodSetWS(), 2, 1, RoundModel.RWS)
        assert report.ok, report.first_violations()

    def test_a1_lambda_one_even_for_n2(self):
        profile = latency_profile(A1(), 2, 1, RoundModel.RS)
        assert profile.Lambda == 1

    def test_lone_survivor_decides_own_value(self):
        scenario = FailureScenario.initially_dead_set(2, {0})
        run = run_rs(FloodSet(), [0, 1], scenario, t=1)
        assert run.decision_value(1) == 1

    def test_sdd_is_the_n2_case(self):
        """A1 with n=2 degenerates to an SDD-like exchange: p0's value
        reaches p1 at round 1 or p1 falls back to its own at round 2."""
        run = run_rs(
            A1(), [4, 9], FailureScenario.failure_free(2), t=1
        )
        assert run.decision_value(1) == 4
        scenario = FailureScenario.initially_dead_set(2, {0})
        run = run_rs(A1(), [4, 9], scenario, t=1)
        assert run.decision_value(1) == 9


class TestWiderValueDomains:
    def test_floodset_ternary_domain_exhaustive(self):
        report = verify_algorithm(
            FloodSet(), 3, 1, RoundModel.RS, domain=(0, 1, 2)
        )
        assert report.ok, report.first_violations()

    def test_floodsetws_ternary_rws(self):
        report = verify_algorithm(
            FloodSetWS(), 3, 1, RoundModel.RWS, domain=(0, 1, 2)
        )
        assert report.ok, report.first_violations()

    def test_min_decision_respects_total_order(self):
        run = run_rs(
            FloodSet(), [2, 1, 0], FailureScenario.failure_free(3), t=1
        )
        assert run.decided_values() == {0}

    def test_string_values_work(self):
        run = run_rs(
            FloodSet(),
            ["banana", "apple", "cherry"],
            FailureScenario.failure_free(3),
            t=1,
        )
        assert run.decided_values() == {"apple"}  # lexicographic min


class TestHorizonBoundaries:
    def test_exact_horizon_suffices(self):
        run = run_rs(
            FloodSet(), [0, 1, 1], FailureScenario.failure_free(3),
            t=1, max_rounds=2,
        )
        assert run.all_correct_decided()

    def test_too_short_horizon_reports_incomplete(self):
        run = run_rs(
            FloodSet(), [0, 1, 1], FailureScenario.failure_free(3),
            t=1, max_rounds=1,
        )
        assert run.latency() is None
        assert not run.all_correct_decided()

    def test_crash_in_last_round(self):
        scenario = FailureScenario(
            n=3, crashes=(CrashEvent(pid=0, round=2, sent_to=frozenset()),)
        )
        run = run_rs(FloodSet(), [0, 1, 1], scenario, t=1)
        # p0's value was broadcast in round 1; survivors still decide 0.
        assert run.decision_value(1) == 0
        assert run.decision_value(2) == 0


class TestLateCrashes:
    def test_crash_after_deciding_keeps_uniformity_visible(self):
        """A process that decides at t+1 and then 'crashes' in a later
        round has its decision recorded — the uniform check sees it."""
        scenario = FailureScenario(
            n=3,
            crashes=(
                CrashEvent(
                    pid=0,
                    round=2,
                    sent_to=frozenset({1, 2}),
                    applies_transition=True,
                ),
            ),
        )
        run = run_rs(FloodSet(), [0, 1, 1], scenario, t=1)
        assert run.decision_value(0) == 0
        assert run.decision_value(1) == 0

    def test_pending_in_round_two_respects_window(self):
        """A round-2 pending message needs the sender dead by round 3 —
        admissible when the sender crashes in round 2 itself."""
        from repro.rounds import PendingMessage, validate_scenario

        scenario = FailureScenario(
            n=3,
            crashes=(
                CrashEvent(pid=0, round=2, sent_to=frozenset({1, 2})),
            ),
            pending=frozenset({PendingMessage(0, 1, 2)}),
        )
        assert validate_scenario(scenario, t=1, allow_pending=True) == []
        run = run_rws(FloodSetWS(), [0, 1, 1], scenario, t=1)
        assert run.all_correct_decided()


class TestZeroResilience:
    """t = 0: FloodSet degenerates to one round of exchange."""

    def test_floodset_t0_single_round(self):
        run = run_rs(
            FloodSet(), [2, 0, 1], FailureScenario.failure_free(3), t=0
        )
        assert all(run.decision_round(p) == 1 for p in range(3))
        assert run.decided_values() == {0}

    def test_t0_exhaustive(self):
        report = verify_algorithm(FloodSet(), 3, 0, RoundModel.RS)
        assert report.ok, report.first_violations()


# ---------------------------------------------------------------------------
# Property-based edge cases (Hypothesis via repro.fuzz strategies)
# ---------------------------------------------------------------------------

try:
    from hypothesis import given, settings

    from repro.fuzz.strategies import (
        failure_patterns,
        failure_scenarios,
        initial_values,
    )

    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - CI installs hypothesis
    HAVE_HYPOTHESIS = False


if HAVE_HYPOTHESIS:

    class TestGeneratedAdversaries:
        """Model properties over strategy-generated adversaries: every
        example the fuzz strategies emit is admissible, and the safe
        algorithms stay safe against all of them."""

        @settings(max_examples=60, deadline=None, derandomize=True)
        @given(scenario=failure_scenarios(n=4, t=2, max_round=3))
        def test_generated_rs_scenarios_are_admissible(self, scenario):
            from repro.rounds import validate_scenario

            assert (
                validate_scenario(scenario, t=2, allow_pending=False) == []
            )
            assert len(scenario.faulty) <= 2

        @settings(max_examples=60, deadline=None, derandomize=True)
        @given(
            scenario=failure_scenarios(
                n=4, t=2, max_round=3, allow_pending=True
            )
        )
        def test_generated_rws_scenarios_are_admissible(self, scenario):
            from repro.rounds import validate_scenario

            assert (
                validate_scenario(scenario, t=2, allow_pending=True) == []
            )

        @settings(max_examples=40, deadline=None, derandomize=True)
        @given(
            values=initial_values(4, domain=(0, 1, 2)),
            scenario=failure_scenarios(n=4, t=1, max_round=3),
        )
        def test_floodset_agreement_validity_generated(
            self, values, scenario
        ):
            run = run_rs(FloodSet(), list(values), scenario, t=1)
            decided = run.decided_values()
            assert len(decided) <= 1
            assert decided <= set(values)
            assert run.all_correct_decided()

        @settings(max_examples=40, deadline=None, derandomize=True)
        @given(
            values=initial_values(4),
            scenario=failure_scenarios(
                n=4, t=1, max_round=3, allow_pending=True
            ),
        )
        def test_floodset_ws_agreement_generated_rws(self, values, scenario):
            run = run_rws(FloodSetWS(), list(values), scenario, t=1)
            decided = run.decided_values()
            assert len(decided) <= 1
            assert decided <= set(values)

        @settings(max_examples=40, deadline=None, derandomize=True)
        @given(pattern=failure_patterns(n=4, max_failures=3, horizon=50))
        def test_generated_patterns_are_well_formed(self, pattern):
            assert pattern.n == 4
            assert len(pattern.faulty) <= 3
            assert pattern.correct | pattern.faulty == frozenset(range(4))
            for t in (0, 25, 50):
                assert pattern.crashed_by(t) <= pattern.crashed_by(t + 1)
