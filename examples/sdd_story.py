"""The SDD story: one problem separates SS from SP.

Section 3 of the paper in executable form: the Strongly Dependent
Decision problem is trivial in the synchronous model and impossible
with a perfect failure detector.

Run:  python examples/sdd_story.py
"""

import random

from repro.failures import FailurePattern
from repro.sdd import (
    SP_CANDIDATE_FACTORIES,
    check_sdd_run,
    refute_sdd_candidate,
    sdd_decision,
    solve_sdd_ss,
)
from repro.trace import step_diagram


def main() -> None:
    print("=== SS solves SDD ===")
    print(
        "The receiver waits Φ+1+Δ of its own steps; a sender that was "
        "not initially dead is guaranteed heard by then.\n"
    )
    for label, crashes in (
        ("sender correct", {}),
        ("sender initially dead", {0: 0}),
        ("sender crashes after one step", {0: 1}),
    ):
        pattern = FailurePattern.with_crashes(2, dict(crashes))
        run = solve_sdd_ss(1, pattern, phi=1, delta=2, rng=random.Random(3))
        verdict = check_sdd_run(run, 1)
        print(f"{label}: decision={sdd_decision(run)} -> {verdict.describe()}")
    print()

    pattern = FailurePattern.with_crashes(2, {0: 1})
    run = solve_sdd_ss(1, pattern, phi=1, delta=2, rng=random.Random(3))
    print("space-time diagram (sender crashes after sending):")
    print(step_diagram(run, max_rows=10))
    print()

    print("=== SP cannot solve SDD (Theorem 3.1) ===")
    print(
        "Each candidate receiver runs through the proof's four runs: \n"
        "r0/r1 (sender initially dead) and r0'/r1' (sender sends once,\n"
        "crashes, message delayed past the decision).  The receiver's\n"
        "observations are identical in all four, so validity must break.\n"
    )
    for name, factory in SP_CANDIDATE_FACTORIES.items():
        print(refute_sdd_candidate(factory, name).describe())
        print()


if __name__ == "__main__":
    main()
