"""Tests for the latency measures and run-space exploration."""

from __future__ import annotations

import random

import pytest

from repro.analysis import (
    explore_runs,
    latency_profile,
    profile_and_verify,
    verify_algorithm,
)
from repro.consensus import A1, FloodSet, FloodSetWS
from repro.errors import ExecutionError
from repro.rounds import RoundModel
from repro.rounds.algorithm import RoundAlgorithm


class TestExploreRuns:
    def test_exhaustive_count_matches_product(self):
        runs = list(explore_runs(FloodSet(), 3, 1, RoundModel.RS))
        # 8 configurations x 46 scenarios (crash rounds 1..2... bound t+1=2
        # -> 31 scenarios) = 248.
        assert len(runs) == 8 * 31

    def test_sampling_mode_counts(self):
        runs = list(
            explore_runs(
                FloodSet(),
                3,
                1,
                RoundModel.RWS,
                sample=40,
                rng=random.Random(1),
            )
        )
        assert len(runs) == 40

    def test_all_explored_runs_complete(self):
        for run in explore_runs(FloodSet(), 3, 1, RoundModel.RS):
            assert run.all_correct_decided()


class TestLatencyProfile:
    def test_floodset_profile(self):
        profile = latency_profile(FloodSet(), 3, 1, RoundModel.RS)
        assert profile.lat == 2
        assert profile.Lat == 2
        assert profile.Lambda == 2
        assert profile.Lat_by_failures == {0: 2, 1: 2}
        assert profile.runs_explored == 248

    def test_a1_profile_shows_the_paper_gap(self):
        rs = latency_profile(A1(), 3, 1, RoundModel.RS)
        assert (rs.lat, rs.Lat, rs.Lambda) == (1, 1, 1)
        assert rs.Lat_by_failures[1] == 2

    def test_lat_by_failures_monotone(self):
        """Lat(A, f) <= Lat(A, f+1) — more failures, no faster worst case."""
        for algorithm in (FloodSet(), A1()):
            profile = latency_profile(algorithm, 3, 1, RoundModel.RS)
            pairs = sorted(profile.Lat_by_failures.items())
            for (_, a), (_, b) in zip(pairs, pairs[1:]):
                assert a <= b

    def test_lambda_equals_lat_at_zero_failures(self):
        profile = latency_profile(FloodSetWS(), 3, 1, RoundModel.RWS)
        assert profile.Lambda == profile.Lat_by_failures[0]

    def test_lat_is_min_of_config_minima(self):
        profile = latency_profile(A1(), 3, 1, RoundModel.RS)
        assert profile.lat == min(profile.lat_by_config.values())
        assert profile.Lat == max(profile.lat_by_config.values())

    def test_nontermination_raises(self):
        class NeverDecides(RoundAlgorithm):
            name = "never"

            def initial_state(self, pid, n, t, value):
                return None

            def messages(self, pid, state):
                return {}

            def transition(self, pid, state, received):
                return state

            def decision_of(self, state):
                return None

        with pytest.raises(ExecutionError):
            latency_profile(NeverDecides(), 2, 1, RoundModel.RS)

    def test_describe_contains_measures(self):
        text = latency_profile(A1(), 3, 1, RoundModel.RS).describe()
        assert "lat=1" in text and "Λ=1" in text


class TestVerifyAlgorithm:
    def test_stop_after_short_circuits(self):
        report = verify_algorithm(
            FloodSet(), 3, 1, RoundModel.RWS, stop_after=1
        )
        assert len(report.violations) >= 1
        full = verify_algorithm(FloodSet(), 3, 1, RoundModel.RWS)
        assert report.runs_checked < full.runs_checked

    def test_sampled_verification(self):
        report = verify_algorithm(
            FloodSetWS(),
            3,
            1,
            RoundModel.RWS,
            sample=100,
            rng=random.Random(9),
        )
        assert report.ok
        assert report.runs_checked == 100

    def test_report_describe(self):
        report = verify_algorithm(FloodSet(), 3, 1, RoundModel.RS)
        assert "OK" in report.describe()


class TestProfileAndVerify:
    def test_matches_separate_calls(self):
        combined_profile, combined_report = profile_and_verify(
            FloodSet(), 3, 1, RoundModel.RS
        )
        profile = latency_profile(FloodSet(), 3, 1, RoundModel.RS)
        report = verify_algorithm(FloodSet(), 3, 1, RoundModel.RS)
        assert combined_profile.Lat == profile.Lat
        assert combined_profile.lat_by_config == profile.lat_by_config
        assert combined_report.ok == report.ok
        assert combined_report.runs_checked == report.runs_checked
