"""Atomic commit algorithms for the round models.

All three NBAC variants share a FloodSet-like skeleton: for ``t + 1``
rounds every process floods the table of votes it knows, then applies a
decision *rule* to its final table.  The rules differ:

* **optimistic** — COMMIT iff every *visible* vote is YES.  Missing
  votes are treated as initially-dead voters.  Safe in RS with
  ``t = 1``: a voter that reached anyone has its vote flooded to all
  (so a NO is never missed), and a voter that reached no one never cast
  its vote.  Unsafe in RWS: a pending NO vote is invisible.
* **strict** — COMMIT iff all ``n`` votes are visible and YES.  Safe in
  both models, but aborts in every run with an invisible vote — the
  price SP pays, and the source of the commit-rate gap.

:class:`TwoPhaseCommit` is the classical coordinator-based blocking
protocol, included as the baseline that motivates non-blocking commit:
when the coordinator crashes in the decision window, participants block
(termination violation in the finite trace).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Mapping

from repro.commit.spec import ABORT, COMMIT
from repro.errors import ConfigurationError
from repro.rounds.algorithm import RoundAlgorithm, broadcast


@dataclass(frozen=True)
class CommitState:
    """State of the vote-flooding commit skeleton."""

    rounds: int
    votes: Mapping[int, bool]  # pid -> vote, as far as known
    halt: frozenset
    decision: Any
    n: int
    t: int


class _VoteFloodingCommit(RoundAlgorithm):
    """Shared skeleton: flood vote tables for t+1 rounds, then decide."""

    #: Whether the FloodSetWS halt guard filters late senders (RWS use).
    use_halt = False

    def initial_state(self, pid: int, n: int, t: int, value: Any) -> CommitState:
        return CommitState(
            rounds=0,
            votes={pid: bool(value)},
            halt=frozenset(),
            decision=None,
            n=n,
            t=t,
        )

    def messages(self, pid: int, state: CommitState) -> Mapping[int, Any]:
        if state.rounds <= state.t:
            return broadcast(dict(state.votes), state.n)
        return {}

    def transition(
        self, pid: int, state: CommitState, received: Mapping[int, Any]
    ) -> CommitState:
        rounds = state.rounds + 1
        votes = dict(state.votes)
        for sender, table in received.items():
            if self.use_halt and sender in state.halt:
                continue
            votes.update(table)
        halt = state.halt
        if self.use_halt:
            halt = halt | frozenset(
                q for q in range(state.n) if q not in received
            )
        decision = state.decision
        if rounds == state.t + 1 and decision is None:
            decision = self._decide(votes, state.n)
        return replace(
            state, rounds=rounds, votes=votes, halt=halt, decision=decision
        )

    def _decide(self, votes: Mapping[int, bool], n: int) -> str:
        raise NotImplementedError

    def decision_of(self, state: CommitState) -> Any:
        return state.decision


class SynchronousCommit(_VoteFloodingCommit):
    """RS commit with the optimistic rule (t = 1).

    The SDD-powered guarantee: a voter that is not initially dead
    reached at least one process with its vote; with a single possible
    crash that process is correct and floods the vote to everyone.  So
    the optimistic rule never misses a cast NO, and commits whenever
    the crash pattern allowed the votes through — strictly more often
    than any safe RWS rule.
    """

    name = "SyncCommit"

    def initial_state(self, pid: int, n: int, t: int, value: Any) -> CommitState:
        if t != 1:
            raise ConfigurationError(
                "SynchronousCommit's optimistic rule is proven safe for "
                f"t = 1 only; got t={t}"
            )
        return super().initial_state(pid, n, t, value)

    def _decide(self, votes: Mapping[int, bool], n: int) -> str:
        return COMMIT if all(votes.values()) else ABORT


class PerfectFDCommit(_VoteFloodingCommit):
    """RWS-safe commit: the strict rule plus the halt guard.

    Aborts whenever any vote is invisible — including when the missing
    voter did cast a YES whose messages are all pending.  That
    over-caution is forced: Theorem 3.1 means no RWS algorithm can tell
    a pending vote from a never-cast one.
    """

    name = "P-Commit"
    use_halt = True

    def _decide(self, votes: Mapping[int, bool], n: int) -> str:
        if len(votes) == n and all(votes.values()):
            return COMMIT
        return ABORT


class OptimisticFDCommit(_VoteFloodingCommit):
    """The RS rule transplanted to RWS — deliberately unsafe.

    Exists to *demonstrate* why SP-based commit must be strict: a
    pending NO vote makes this algorithm commit against a NO voter
    (commit-validity violation), found mechanically by experiment E3.
    """

    name = "OptimisticP-Commit"
    use_halt = True

    def _decide(self, votes: Mapping[int, bool], n: int) -> str:
        return COMMIT if all(votes.values()) else ABORT


@dataclass(frozen=True)
class TwoPhaseState:
    """State of the 2PC baseline."""

    rounds: int
    votes: Mapping[int, bool]
    decision: Any
    n: int
    t: int


class TwoPhaseCommit(RoundAlgorithm):
    """Classical two-phase commit; blocking when the coordinator dies.

    Round 1: every participant sends its vote to the coordinator
    (process 0).  Round 2: the coordinator broadcasts COMMIT iff it
    received ``n`` YES votes, else ABORT.  Participants that never hear
    a verdict stay undecided — the blocking behaviour that motivates
    NBAC (and that experiment E3's baseline row shows as termination
    violations).
    """

    name = "2PC"

    def initial_state(self, pid: int, n: int, t: int, value: Any) -> TwoPhaseState:
        return TwoPhaseState(
            rounds=0, votes={pid: bool(value)}, decision=None, n=n, t=t
        )

    def messages(self, pid: int, state: TwoPhaseState) -> Mapping[int, Any]:
        if state.rounds == 0:
            return {0: ("vote", state.votes[pid])}
        if state.rounds == 1 and pid == 0:
            all_yes = (
                len(state.votes) == state.n and all(state.votes.values())
            )
            verdict = COMMIT if all_yes else ABORT
            return broadcast(("verdict", verdict), state.n)
        return {}

    def transition(
        self, pid: int, state: TwoPhaseState, received: Mapping[int, Any]
    ) -> TwoPhaseState:
        rounds = state.rounds + 1
        votes = dict(state.votes)
        decision = state.decision
        for sender, (kind, payload) in received.items():
            if kind == "vote":
                votes[sender] = payload
            elif kind == "verdict" and decision is None:
                decision = payload
        return replace(state, rounds=rounds, votes=votes, decision=decision)

    def decision_of(self, state: TwoPhaseState) -> Any:
        return state.decision

    def halted(self, pid: int, state: TwoPhaseState) -> bool:
        return state.rounds >= 2
