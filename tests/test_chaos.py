"""Chaos soak tests: broad randomized sweeps across the whole stack.

Each test hammers one layer with a wide mix of random parameters and
adversaries, spec-checking every run.  These complement the targeted
exhaustive tests: exhaustiveness pins down small instances completely,
the soak explores larger, messier corners.  All are marked slow.

The step-model soak draws its parameters through the Hypothesis
strategies of :mod:`repro.fuzz.strategies` (``derandomize=True`` keeps
CI deterministic); when Hypothesis is not installed those tests skip
and the exhaustive/round-model soaks still run.
"""

from __future__ import annotations

import random

import pytest

try:
    from hypothesis import given, settings
    from hypothesis import strategies as st

    from repro.fuzz.strategies import failure_patterns

    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - CI installs hypothesis
    HAVE_HYPOTHESIS = False

from repro.analysis import verify_algorithm
from repro.broadcast import AtomicBroadcastWS, check_atomic_broadcast_run
from repro.commit import check_nbac_run
from repro.commit.algorithms import PerfectFDCommit
from repro.consensus import (
    A1,
    COptFloodSetWS,
    FloodSet,
    FloodSetWS,
    FOptFloodSet,
    FOptFloodSetWS,
)
from repro.failures import FailurePattern
from repro.rounds import RoundModel


pytestmark = pytest.mark.slow


class TestRoundModelSoak:
    @pytest.mark.parametrize(
        "algorithm_cls,model",
        [
            (FloodSet, RoundModel.RS),
            (FloodSetWS, RoundModel.RWS),
            (COptFloodSetWS, RoundModel.RWS),
            (FOptFloodSet, RoundModel.RS),
            (FOptFloodSetWS, RoundModel.RWS),
        ],
        ids=lambda x: getattr(x, "__name__", x.value if hasattr(x, "value") else x),
    )
    @pytest.mark.parametrize("n,t", [(4, 1), (5, 2), (6, 2)])
    def test_consensus_sampled_safety(self, algorithm_cls, model, n, t):
        report = verify_algorithm(
            algorithm_cls(), n, t, model,
            sample=400, rng=random.Random(n * 100 + t),
            domain=(0, 1, 2),
        )
        assert report.ok, report.first_violations()

    @pytest.mark.parametrize("n", [4, 5, 6])
    def test_a1_sampled_safety_rs(self, n):
        report = verify_algorithm(
            A1(), n, 1, RoundModel.RS,
            sample=400, rng=random.Random(n),
        )
        assert report.ok, report.first_violations()

    @pytest.mark.parametrize("n", [4, 5])
    def test_commit_sampled_safety(self, n):
        report = verify_algorithm(
            PerfectFDCommit(), n, 1, RoundModel.RWS,
            checker=check_nbac_run,
            domain=(False, True),
            sample=400,
            rng=random.Random(7 + n),
        )
        assert report.ok, report.first_violations()

    @pytest.mark.parametrize("n", [4, 5])
    def test_broadcast_sampled_safety(self, n):
        domain = tuple((f"m{i}",) for i in range(2))
        report = verify_algorithm(
            AtomicBroadcastWS(), n, 1, RoundModel.RWS,
            checker=check_atomic_broadcast_run,
            domain=domain,
            horizon=4,
            sample=300,
            rng=random.Random(13 + n),
        )
        assert report.ok, report.first_violations()


if HAVE_HYPOTHESIS:

    @st.composite
    def _ss_soak_params(draw):
        n = draw(st.integers(2, 6))
        return (
            n,
            draw(st.integers(1, 4)),  # phi
            draw(st.integers(1, 4)),  # delta
            draw(
                failure_patterns(
                    n=n, max_failures=min(2, n - 1), horizon=60
                )
            ),
            draw(st.integers(0, 2**16)),  # scheduler seed
        )

    @st.composite
    def _detector_soak_params(draw):
        n = draw(st.integers(2, 4))
        victim = draw(st.integers(0, n - 1))
        return (
            n,
            draw(st.integers(1, 2)),  # phi
            draw(st.integers(1, 2)),  # delta
            FailurePattern.with_crashes(n, {victim: draw(st.integers(5, 60))}),
            draw(st.integers(0, 2**16)),  # scheduler seed
        )

    @st.composite
    def _ct_soak_params(draw):
        n = draw(st.sampled_from((3, 5)))
        t = (n - 1) // 2
        pattern = draw(
            failure_patterns(n=n, max_failures=t, horizon=100)
        )
        values = draw(
            st.lists(st.integers(0, 2), min_size=n, max_size=n)
        )
        return (
            pattern,
            values,
            draw(st.integers(0, 120)),  # stabilization time
            draw(st.floats(0.0, 0.5)),  # false-suspicion probability
            draw(st.integers(0, 2**16)),  # run seed
        )

    class TestStepModelSoak:
        @settings(max_examples=15, deadline=None, derandomize=True)
        @given(params=_ss_soak_params())
        def test_ss_scheduler_long_runs_many_params(self, params):
            from repro.models.ss import SSScheduler, validate_ss_run
            from repro.simulation.automaton import IdleAutomaton
            from repro.simulation.executor import StepExecutor

            n, phi, delta, pattern, seed = params
            executor = StepExecutor(
                IdleAutomaton(),
                n,
                pattern,
                SSScheduler(phi, delta, rng=random.Random(seed)),
            )
            run = executor.execute(250)
            assert validate_ss_run(run, phi, delta) == []

        @settings(max_examples=8, deadline=None, derandomize=True)
        @given(params=_detector_soak_params())
        def test_timeout_detector_many_params(self, params):
            from repro.failures import (
                TimeoutPerfectDetector,
                classify_history,
                history_from_run,
            )
            from repro.models import SynchronousModel

            n, phi, delta, pattern, seed = params
            model = SynchronousModel(phi=phi, delta=delta)
            executor = model.executor(
                TimeoutPerfectDetector(n, phi, delta),
                n,
                pattern,
                rng=random.Random(seed),
                record_states=True,
            )
            run = executor.execute(600)
            history = history_from_run(run)
            report = classify_history(
                history, pattern, len(run.schedule) - 1
            )
            assert report.matches_class("P"), report.violations

        @settings(max_examples=6, deadline=None, derandomize=True)
        @given(params=_ct_soak_params())
        def test_ct_consensus_many_params(self, params):
            from repro.fdconsensus import ct_decisions, run_ct_consensus

            pattern, values, stabilization, suspicion_prob, seed = params
            run = run_ct_consensus(
                values,
                pattern,
                rng=random.Random(seed),
                stabilization_time=stabilization,
                false_suspicion_prob=suspicion_prob,
                max_steps=15_000,
            )
            decisions = ct_decisions(run)
            assert len(set(decisions.values())) <= 1
            assert set(decisions.values()) <= set(values)
            for pid in pattern.correct:
                assert pid in decisions
