"""The failure-detector hierarchy, and P built from timeouts on SS.

Two demonstrations:

1. Every class of the Chandra–Toueg hierarchy generates histories that
   satisfy exactly its advertised axioms (checked mechanically).
2. The paper's opening observation of Section 3 — timeouts implement a
   perfect failure detector in the synchronous model — executed on the
   step kernel, with measured detection delays against the derived
   bound.

Run:  python examples/failure_detectors.py
"""

import random

from repro.failures import (
    DETECTOR_CLASSES,
    FailurePattern,
    TimeoutPerfectDetector,
    classify_history,
    detection_delays,
    detection_threshold,
    history_from_run,
)
from repro.models import SynchronousModel, validate_ss_run


def hierarchy_demo() -> None:
    print("=== the Chandra-Toueg hierarchy ===")
    pattern = FailurePattern.with_crashes(4, {1: 10, 3: 25})
    rng = random.Random(42)
    horizon = 100
    print(f"pattern: {pattern.describe()}\n")
    print(f"{'class':>4}  {'axioms promised':<45} satisfied")
    for name, detector_cls in DETECTOR_CLASSES.items():
        detector = detector_cls()
        history = detector.history(pattern, horizon=horizon, rng=rng)
        report = classify_history(history, pattern, horizon)
        print(
            f"{name:>4}  {detector.properties.describe():<45} "
            f"{report.matches_class(name)}"
        )
    print()


def timeout_p_demo() -> None:
    print("=== P from timeouts on SS ===")
    n, phi, delta = 3, 1, 2
    threshold = detection_threshold(n, phi, delta)
    print(
        f"n={n}, Φ={phi}, Δ={delta}: suspect after {threshold} silent "
        f"steps ((n-1)(Φ+1)+Δ)\n"
    )
    pattern = FailurePattern.with_crashes(n, {1: 30})
    model = SynchronousModel(phi=phi, delta=delta)
    executor = model.executor(
        TimeoutPerfectDetector(n, phi, delta),
        n,
        pattern,
        rng=random.Random(9),
        record_states=True,
    )
    run = executor.execute(300)
    print("SS synchrony violations:", validate_ss_run(run, phi, delta) or "none")

    history = history_from_run(run)
    report = classify_history(history, pattern, len(run.schedule) - 1)
    print("history satisfies P:", report.matches_class("P"))
    for (observer, crashed), delay in sorted(detection_delays(run).items()):
        print(
            f"  p{observer} detected p{crashed}'s crash after {delay} of "
            f"its own steps (bound {threshold + delta + 1})"
        )


def main() -> None:
    hierarchy_demo()
    timeout_p_demo()


if __name__ == "__main__":
    main()
