"""``repro mc``: exhaustive bounded model checking of the paper's claims.

``repro mc PROPERTY`` explores every admissible failure schedule of a
bounded instance (algorithm, ``n``, ``t``, model, round horizon),
executes the resulting frontier through the unified runtime, and
prints a machine-checked verdict: ``HOLDS(exhaustive)`` with the
frontier statistics that justify it, or ``REFUTED`` with replayable
witnesses in the fuzz counterexample format.

Properties (see ``repro mc --list``): ``agreement``,
``uniform-agreement``, ``validity``, ``termination`` (cell
properties), ``lambda`` (the failure-free worst case Λ vs its paper
bound), and ``indistinguishability`` (equal causal cones force equal
decisions, Theorem 3.1; ``--fixture NAME`` instead classifies one of
Biely's SDD quadruple fixtures).

``--run-dir ROOT`` gives the checking run the full campaign treatment
— resumable run directory, progress heartbeats, cached cells — and
makes it shardable: ``repro serve --space "mc:..."`` over the spec the
verdict prints executes the same cells, and either side resumes the
other.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.errors import ConfigurationError

#: CLI engine choices: schedule engines exhaust the frontier, grid
#: engines sample crash timings (scope "grid").
_ENGINES = ("rounds", "vector", "rs_on_ss", "rws_on_sp")


def _list_properties() -> int:
    from repro.mc.properties import PROPERTIES

    for name in sorted(PROPERTIES):
        prop = PROPERTIES[name]
        print(f"{name:22s} {prop.doc}  [{prop.theorem}]")
    return 0


def _classify_fixture(name: str) -> int:
    from repro.mc.fixtures import classify_sdd_quadruple

    classification = classify_sdd_quadruple(name)
    print(classification.describe())
    return 0 if classification.genuine else 1


def _clamped_t(algorithm: str, t: int) -> int:
    from repro.mc.checker import ALGORITHM_T_CONSTRAINTS

    required = ALGORITHM_T_CONSTRAINTS.get(algorithm)
    if required is not None and t != required:
        print(
            f"note: {algorithm} is defined for t={required}; "
            f"clamping --t {t} -> {required}",
            file=sys.stderr,
        )
        return required
    return t


def _write_witnesses(documents: list[dict], out_dir: Path) -> list[Path]:
    out_dir.mkdir(parents=True, exist_ok=True)
    paths = []
    for index, document in enumerate(documents):
        path = out_dir / f"mc-witness-{index:02d}.json"
        path.write_text(
            json.dumps(document, indent=2, sort_keys=True, default=repr)
            + "\n",
            encoding="utf-8",
        )
        paths.append(path)
    return paths


def _cmd_mc(args: argparse.Namespace) -> int:
    if args.list:
        return _list_properties()
    if args.fixture is not None:
        try:
            return _classify_fixture(args.fixture)
        except ConfigurationError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    if args.property is None:
        print(
            "error: provide a property (repro mc --list) or --fixture NAME",
            file=sys.stderr,
        )
        return 2

    from repro.mc import McTask, check, save_frontier, spec_for_task

    algorithm = args.algorithm.lower()
    task = McTask(
        property_name=args.property,
        algorithm=algorithm,
        n=args.n,
        t=_clamped_t(algorithm, args.t),
        model=args.model.upper(),
        horizon=args.horizon,
        engine=args.engine,
        reduce=not args.no_reduce,
        jobs=args.jobs,
        run_root=args.run_dir,
        bound=args.bound,
        by_round=args.by_round,
        shrink_witness=not args.no_shrink,
    )
    try:
        outcome = check(
            task,
            progress_stream=sys.stderr if args.run_dir is not None else None,
        )
    except ConfigurationError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    print(outcome.verdict.describe())
    if task.engine in ("rounds", "vector"):
        print(f"serve spec: {spec_for_task(task)}")
    if outcome.run_dir is not None:
        print(f"run dir: {outcome.run_dir}")

    if args.save_frontier is not None:
        if outcome.exploration is None:
            print(
                "note: no schedule frontier to save (lambda/grid tasks "
                "have no exploration)",
                file=sys.stderr,
            )
        else:
            save_frontier(outcome.exploration, args.save_frontier)
            print(f"frontier: {args.save_frontier}")

    out_dir = None
    if args.out is not None:
        out_dir = Path(args.out)
    elif outcome.run_dir is not None:
        out_dir = Path(outcome.run_dir)
    if out_dir is not None:
        verdict_path = out_dir / "verdict.json"
        out_dir.mkdir(parents=True, exist_ok=True)
        verdict_path.write_text(
            outcome.verdict.to_json() + "\n", encoding="utf-8"
        )
        print(f"verdict: {verdict_path}")
        for path in _write_witnesses(outcome.verdict.witnesses, out_dir):
            print(f"witness: {path} (replay with `repro replay --repro {path}`)")

    return 0 if outcome.verdict.holds else 1


def register(sub: argparse._SubParsersAction) -> None:
    mc = sub.add_parser(
        "mc",
        help=(
            "exhaustively model-check a property over a bounded "
            "instance (HOLDS/REFUTED verdicts with witnesses)"
        ),
    )
    mc.add_argument(
        "property",
        nargs="?",
        help="property to check (repro mc --list)",
    )
    mc.add_argument(
        "--list", action="store_true", help="list checkable properties"
    )
    mc.add_argument(
        "--algorithm",
        default="floodset",
        help="algorithm under check (case-insensitive; default floodset)",
    )
    mc.add_argument("--n", type=int, default=3, help="processes (default 3)")
    mc.add_argument(
        "--t", type=int, default=1, help="crash budget (default 1)"
    )
    mc.add_argument(
        "--model",
        default="RS",
        choices=("RS", "RWS", "rs", "rws"),
        help="round model for schedule frontiers (default RS)",
    )
    mc.add_argument(
        "--horizon", type=int, default=3, help="round bound (default 3)"
    )
    mc.add_argument(
        "--engine",
        default="rounds",
        choices=_ENGINES,
        help=(
            "rounds/vector exhaust the schedule frontier; "
            "rs_on_ss/rws_on_sp check the emulation grid (scope 'grid')"
        ),
    )
    mc.add_argument(
        "--no-reduce",
        action="store_true",
        help=(
            "disable symmetry + dominance reduction (twin mode: verdicts "
            "must match the reduced run)"
        ),
    )
    mc.add_argument(
        "--jobs", type=int, default=1, help="worker processes (default 1)"
    )
    mc.add_argument(
        "--run-dir",
        metavar="ROOT",
        help="write a resumable run directory under ROOT",
    )
    mc.add_argument(
        "--bound",
        help="Λ bound override for the lambda property (==K, >=K, <=K)",
    )
    mc.add_argument(
        "--by-round",
        type=int,
        help="termination round bound override (default min(t+1, horizon))",
    )
    mc.add_argument(
        "--out",
        metavar="DIR",
        help="write verdict.json and witness files into DIR",
    )
    mc.add_argument(
        "--save-frontier",
        metavar="FILE",
        help="save the explored schedule frontier as JSON (fuzz seeding)",
    )
    mc.add_argument(
        "--no-shrink",
        action="store_true",
        help="emit the first witness unshrunk",
    )
    mc.add_argument(
        "--fixture",
        metavar="NAME",
        help=(
            "classify one of Biely's SDD quadruple fixtures as an "
            "indistinguishability witness instead of checking a frontier"
        ),
    )
    mc.set_defaults(func=_cmd_mc)
