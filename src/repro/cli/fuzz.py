"""``repro fuzz``: the differential fuzzing campaign from a shell.

Generates a deterministic stream of random cases, runs them through the
unified runtime (parallel, cached), cross-checks every result with the
differential oracles, and shrinks any failure to a minimal, replayable
counterexample (``repro replay --repro FILE`` re-executes it).
"""

from __future__ import annotations

import argparse
import sys

from repro.errors import ConfigurationError
from repro.fuzz import (
    FUZZ_ENGINES,
    LIVE_FUZZ_ENGINE,
    VECTOR_FUZZ_ENGINES,
    run_campaign,
)
from repro.inject import INJECT_ENV, KNOWN_INJECTIONS, active_injection


def _cmd_fuzz(args: argparse.Namespace) -> int:
    injected = active_injection()
    if injected is not None and injected not in KNOWN_INJECTIONS:
        print(
            f"error: {INJECT_ENV}={injected!r} is not a registered "
            f"injection; choose from {sorted(KNOWN_INJECTIONS)}",
            file=sys.stderr,
        )
        return 2
    try:
        report = run_campaign(
            budget=args.budget,
            seed=args.seed,
            engines=args.engine or ("all",),
            jobs=args.jobs,
            cache_dir=args.cache_dir,
            out_dir=args.out,
            shrink_failures=not args.no_shrink,
            max_n=args.max_n,
            run_root=args.run_dir,
            progress_stream=sys.stderr if args.run_dir else None,
            frontier=args.frontier,
        )
    except ConfigurationError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(report.describe())
    return 0 if report.ok else 1


def register(sub: argparse._SubParsersAction) -> None:
    """Attach this module's subcommands to the root parser."""
    p_fuzz = sub.add_parser(
        "fuzz",
        help="differential fuzzing across the engines, with shrinking",
    )
    p_fuzz.add_argument(
        "--budget",
        type=int,
        default=100,
        metavar="N",
        help="number of generated cases (default: 100)",
    )
    p_fuzz.add_argument(
        "--seed",
        type=int,
        default=0,
        help="stream seed; cases depend only on (seed, index)",
    )
    p_fuzz.add_argument(
        "--engine",
        action="append",
        choices=("all", "rounds", "vector")
        + FUZZ_ENGINES
        + VECTOR_FUZZ_ENGINES
        + (LIVE_FUZZ_ENGINE,),
        help=(
            "engine(s) to round-robin (repeatable; default: all; "
            "'rounds' = rounds-rs + rounds-rws; 'vector' = vector-rs + "
            "vector-rws on the columnar kernel, replay-checked against "
            "the object engine; 'live' is opt-in and excluded from the "
            "parity sample)"
        ),
    )
    p_fuzz.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="worker processes for the execution sweep (default: 1)",
    )
    p_fuzz.add_argument(
        "--cache-dir",
        metavar="DIR",
        help=(
            "result cache; also enables the cold-vs-warm cache parity "
            "oracle"
        ),
    )
    p_fuzz.add_argument(
        "--run-dir",
        metavar="ROOT",
        help=(
            "write a content-addressed run directory under ROOT; its "
            "results/ store caches the campaign's cases, so a killed "
            "campaign re-invoked with the same budget/seed resumes"
        ),
    )
    p_fuzz.add_argument(
        "--out",
        metavar="DIR",
        help="write one replayable JSON per counterexample to DIR",
    )
    p_fuzz.add_argument(
        "--max-n",
        type=int,
        default=4,
        metavar="N",
        help="largest system size to generate (default: 4)",
    )
    p_fuzz.add_argument(
        "--no-shrink",
        action="store_true",
        help="report failures without delta-debugging them",
    )
    p_fuzz.add_argument(
        "--frontier",
        metavar="FILE",
        help=(
            "sample cases from a saved model-checker frontier "
            "(`repro mc ... --save-frontier FILE`) instead of random "
            "generation: each case re-runs one deep reachable state "
            "with a fuzzed engine and extended horizon"
        ),
    )
    p_fuzz.set_defaults(func=_cmd_fuzz)
