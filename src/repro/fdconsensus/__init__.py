"""Consensus in the asynchronous model with unreliable failure detectors.

The paper's second family of models comes from Chandra & Toueg's
failure-detector approach (reference [6]); its flagship algorithm is
the rotating-coordinator consensus for **◊S** — the *weakest* detector
for consensus — tolerating ``t < n/2`` crashes in a fully asynchronous
system.  This package implements it on the step kernel, completing the
library's coverage of the approach the paper compares against: where
Sections 4–5 study the *strongest* detector (P, via RWS), this module
exercises the hierarchy's other end, including the pre-stabilisation
phase where the detector lies.

The algorithm (one asynchronous round = four phases):

1. every process sends its timestamped estimate to the round's
   coordinator (``c = r mod n``);
2. the coordinator collects a majority of estimates and proposes the
   one with the highest timestamp;
3. each process waits for the proposal *or* a suspicion of the
   coordinator, answering ACK (adopting the proposal, timestamping it
   with the round) or NACK;
4. on a majority of ACKs the coordinator reliably broadcasts DECIDE;
   received decisions are relayed before being adopted, which is what
   makes agreement *uniform*.

Safety is quorum intersection: a decided value is locked in a majority
of timestamps, so every later coordinator's majority snapshot contains
it with maximal timestamp.  Liveness needs ◊S's eventual weak accuracy:
after stabilisation some correct process is never suspected, and the
first round it coordinates decides.
"""

from repro.fdconsensus.chandra_toueg import (
    ChandraTouegConsensus,
    CTState,
    ct_decisions,
    run_ct_consensus,
)

__all__ = [
    "ChandraTouegConsensus",
    "CTState",
    "ct_decisions",
    "run_ct_consensus",
]
