"""Tests for atomic commit: specs, algorithms, and the rate gap."""

from __future__ import annotations

import pytest

from repro.analysis import verify_algorithm
from repro.commit import (
    ABORT,
    COMMIT,
    check_commit_obligation,
    check_nbac_run,
    commit_rate,
    compare_commit_rates,
)
from repro.commit.algorithms import (
    OptimisticFDCommit,
    PerfectFDCommit,
    SynchronousCommit,
    TwoPhaseCommit,
)
from repro.errors import ConfigurationError
from repro.rounds import (
    CrashEvent,
    FailureScenario,
    PendingMessage,
    RoundModel,
    run_rs,
    run_rws,
)


ALL_YES = (True, True, True)


class TestSynchronousCommit:
    def test_requires_t_one(self):
        with pytest.raises(ConfigurationError):
            SynchronousCommit().initial_state(0, 3, 2, True)

    def test_clean_all_yes_commits(self):
        run = run_rs(
            SynchronousCommit(), ALL_YES, FailureScenario.failure_free(3), t=1
        )
        assert run.decided_values() == {COMMIT}

    def test_any_no_vote_aborts(self):
        run = run_rs(
            SynchronousCommit(),
            (True, False, True),
            FailureScenario.failure_free(3),
            t=1,
        )
        assert run.decided_values() == {ABORT}

    def test_initially_dead_voter_does_not_block_commit(self):
        """The SDD-powered rule: never-cast votes are not waited for."""
        scenario = FailureScenario.initially_dead_set(3, {0})
        run = run_rs(SynchronousCommit(), ALL_YES, scenario, t=1)
        assert run.decision_value(1) == COMMIT
        assert run.decision_value(2) == COMMIT

    def test_partial_broadcast_no_vote_still_aborts(self):
        """A NO that reached anyone is flooded to everyone — the reason
        the optimistic rule is safe in RS (t = 1)."""
        scenario = FailureScenario(
            n=3, crashes=(CrashEvent(pid=0, round=1, sent_to=frozenset({1})),)
        )
        run = run_rs(
            SynchronousCommit(), (False, True, True), scenario, t=1
        )
        assert run.decision_value(1) == ABORT
        assert run.decision_value(2) == ABORT

    def test_nbac_safe_exhaustively(self):
        report = verify_algorithm(
            SynchronousCommit(), 3, 1, RoundModel.RS,
            checker=check_nbac_run, domain=(False, True),
        )
        assert report.ok, report.first_violations()

    def test_commit_obligation_holds_in_rs(self):
        """all-YES + nobody initially dead => COMMIT, despite crashes."""
        from repro.rounds.enumeration import all_scenarios
        from repro.rounds.executor import execute

        for scenario in all_scenarios(3, 1, max_round=2, allow_pending=False):
            run = execute(
                SynchronousCommit(), ALL_YES, scenario,
                t=1, model=RoundModel.RS, max_rounds=4, validate=False,
            )
            assert check_commit_obligation(run) == []


class TestPerfectFDCommit:
    def test_clean_all_yes_commits(self):
        run = run_rws(
            PerfectFDCommit(), ALL_YES, FailureScenario.failure_free(3), t=1
        )
        assert run.decided_values() == {COMMIT}

    def test_pending_yes_vote_forces_abort(self):
        """The cost of safety in RWS: an invisible YES aborts."""
        scenario = FailureScenario(
            n=3,
            crashes=(CrashEvent(pid=0, round=1, sent_to=frozenset({1, 2})),),
            pending=frozenset(
                {PendingMessage(0, 1, 1), PendingMessage(0, 2, 1)}
            ),
        )
        run = run_rws(PerfectFDCommit(), ALL_YES, scenario, t=1)
        assert run.decision_value(1) == ABORT
        assert run.decision_value(2) == ABORT
        # ... and that abort violates the *obligation* (not NBAC itself).
        assert check_nbac_run(run) == []
        assert check_commit_obligation(run)

    def test_nbac_safe_exhaustively(self):
        report = verify_algorithm(
            PerfectFDCommit(), 3, 1, RoundModel.RWS,
            checker=check_nbac_run, domain=(False, True),
        )
        assert report.ok, report.first_violations()


class TestOptimisticFDCommit:
    def test_pending_no_vote_breaks_commit_validity(self):
        scenario = FailureScenario(
            n=3,
            crashes=(CrashEvent(pid=0, round=1, sent_to=frozenset({1})),),
            pending=frozenset({PendingMessage(0, 1, 1)}),
        )
        run = run_rws(
            OptimisticFDCommit(), (False, True, True), scenario, t=1
        )
        violations = check_nbac_run(run)
        assert any(v.clause == "commit validity" for v in violations)

    def test_unsafe_exhaustively(self):
        report = verify_algorithm(
            OptimisticFDCommit(), 3, 1, RoundModel.RWS,
            checker=check_nbac_run, domain=(False, True), stop_after=1,
        )
        assert not report.ok


class TestTwoPhaseCommit:
    def test_clean_all_yes_commits(self):
        run = run_rs(
            TwoPhaseCommit(), ALL_YES, FailureScenario.failure_free(3), t=1
        )
        assert run.decided_values() == {COMMIT}

    def test_no_vote_aborts(self):
        run = run_rs(
            TwoPhaseCommit(),
            (True, True, False),
            FailureScenario.failure_free(3),
            t=1,
        )
        assert run.decided_values() == {ABORT}

    def test_coordinator_crash_blocks_participants(self):
        scenario = FailureScenario.initially_dead_set(3, {0})
        run = run_rs(TwoPhaseCommit(), ALL_YES, scenario, t=1, max_rounds=4)
        violations = check_nbac_run(run)
        assert any(v.clause == "termination" for v in violations)


class TestCommitRates:
    def test_sync_commit_rate_is_total_on_all_yes(self):
        report = commit_rate(SynchronousCommit(), RoundModel.RS)
        assert report.commit_rate == 1.0
        assert report.safe

    def test_safe_rws_rate_strictly_below_sync(self):
        sync = commit_rate(SynchronousCommit(), RoundModel.RS)
        safe = commit_rate(PerfectFDCommit(), RoundModel.RWS)
        assert safe.commit_rate < sync.commit_rate
        assert safe.safe

    def test_compare_returns_all_four(self):
        reports = compare_commit_rates(n=3, t=1)
        assert set(reports) == {
            "SyncCommit@RS",
            "P-Commit@RWS",
            "OptimisticP-Commit@RWS",
            "2PC@RS",
        }

    def test_cast_no_votes_never_commit(self):
        report = commit_rate(
            SynchronousCommit(), RoundModel.RS, votes=(False, True, True)
        )
        # Exactly one run commits: the one where the NO voter is
        # initially dead and thus never *cast* its vote (the paper's
        # proviso).  Every run where the NO was cast aborts, and no
        # NBAC clause is violated anywhere.
        assert report.commits == 1
        assert report.safe

    def test_2pc_has_undecided_runs(self):
        report = commit_rate(TwoPhaseCommit(), RoundModel.RS)
        assert report.undecided > 0
        assert not report.safe  # blocking = termination violations
