"""Post-hoc validators for the round-synchrony properties.

The executors are *believed* to implement RS and RWS; these validators
re-derive the two synchrony properties from the recorded round traces,
so the test suite can cross-check the executor against an independent
reading of the definitions (and so emulations built on the step kernel
can be checked against the same properties — Lemma 4.1's statement is
exactly :func:`check_weak_round_synchrony`).
"""

from __future__ import annotations

from repro.rounds.executor import RoundRun


def check_round_synchrony(run: RoundRun) -> list[str]:
    """Check RS round synchrony on a finished run.

    Property: if ``p_i`` is alive at the end of round ``r`` and does not
    receive a message from ``p_j`` at round ``r``, then ``p_j`` failed
    before sending a message to ``p_i`` at round ``r``.

    Violations are reported as strings; an empty list means the
    property holds on every round of the trace.
    """
    violations: list[str] = []
    scenario = run.scenario
    for record in run.rounds:
        r = record.index
        for pi in range(run.n):
            if not scenario.alive_at_end(pi, r):
                continue
            if not scenario.alive_at_start(pi, r):
                continue
            for pj in range(run.n):
                if pj == pi:
                    continue
                was_sent = (pj, pi) in record.sent
                was_received = pj in record.delivered.get(pi, {})
                if was_sent and not was_received:
                    violations.append(
                        f"round {r}: p{pi} (alive at end of round) missed a "
                        f"message that p{pj} did send"
                    )
    return violations


def check_weak_round_synchrony(run: RoundRun) -> list[str]:
    """Check RWS weak round synchrony on a finished run.

    Property: if ``p_i`` is alive at the end of round ``r`` and does not
    receive a message from ``p_j`` at round ``r`` although ``p_j`` sent
    one (a *pending* message), then ``p_j`` crashes by the end of round
    ``r + 1``.
    """
    violations: list[str] = []
    scenario = run.scenario
    for record in run.rounds:
        r = record.index
        for pi in range(run.n):
            if not scenario.alive_at_end(pi, r):
                continue
            if not scenario.alive_at_start(pi, r):
                continue
            for pj in range(run.n):
                if pj == pi:
                    continue
                was_sent = (pj, pi) in record.sent
                was_received = pj in record.delivered.get(pi, {})
                if was_sent and not was_received:
                    crash_round = scenario.crash_round(pj)
                    if crash_round is None or crash_round > r + 1:
                        violations.append(
                            f"round {r}: message p{pj}->p{pi} is pending "
                            f"but p{pj} does not crash by round {r + 1}"
                        )
    return violations
