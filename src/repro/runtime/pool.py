"""The one parallel-execution primitive the repo uses.

Everything that fans work out — sweep cells, the experiment suite —
goes through :func:`parallel_map`, so policy decisions (start method,
chunking, the serial fast path) live in exactly one place.  Results
always come back in input order; parallelism must never be observable
in outputs, only in wall-clock time.
"""

from __future__ import annotations

import multiprocessing
import os
from typing import Callable, Iterable, Sequence, TypeVar

T = TypeVar("T")
R = TypeVar("R")


def default_jobs() -> int:
    """A sensible worker count for this machine."""
    return os.cpu_count() or 1


def _context() -> multiprocessing.context.BaseContext:
    """Prefer ``fork`` (cheap, inherits imports); fall back otherwise."""
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context(
        "fork" if "fork" in methods else None
    )


def parallel_map(
    func: Callable[[T], R],
    items: Sequence[T],
    *,
    jobs: int = 1,
) -> list[R]:
    """``[func(item) for item in items]``, optionally across a pool.

    ``jobs <= 1`` (or fewer than two items) runs serially in-process —
    no pool, no pickling, identical semantics.  ``func`` must be a
    module-level callable (or a ``functools.partial`` of one) and
    ``items`` picklable when ``jobs > 1``.
    """
    if jobs <= 1 or len(items) < 2:
        return [func(item) for item in items]
    workers = min(jobs, len(items))
    with _context().Pool(processes=workers) as pool:
        return pool.map(func, items)


def map_indexed(
    func: Callable[[T], R],
    items: Iterable[T],
    *,
    jobs: int = 1,
) -> list[R]:
    """:func:`parallel_map` over any iterable (materialised first)."""
    return parallel_map(func, list(items), jobs=jobs)
