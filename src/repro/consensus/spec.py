"""Problem specifications for consensus and uniform consensus.

The uniform consensus specification (paper Section 5.1) over a totally
ordered value set:

* **Uniform validity** — if all processes start with the same value
  ``v``, then ``v`` is the only possible decision value.
* **Uniform agreement** — no two processes (correct *or faulty*)
  decide differently.
* **Termination** — all correct processes eventually decide.

Plain consensus replaces uniform agreement by agreement among correct
processes only — the gap between the two is visible in both RS and RWS
(Section 5.1) and is exercised by experiment E14.

The checkers additionally verify *integrity* (a process decides at most
once — our executors record the first decision and we confirm the final
state still carries it) and the stronger, standard validity clause that
every decision was some process's initial value, which all the paper's
algorithms satisfy.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.rounds.executor import RoundRun


@dataclass(frozen=True)
class SpecViolation:
    """One violated clause on one run."""

    clause: str
    detail: str
    scenario: str
    values: tuple

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"[{self.clause}] {self.detail} "
            f"(values={self.values}, scenario={self.scenario})"
        )


def _violation(run: RoundRun, clause: str, detail: str) -> SpecViolation:
    return SpecViolation(
        clause=clause,
        detail=detail,
        scenario=run.scenario.describe(),
        values=run.values,
    )


def _common_checks(run: RoundRun, violations: list[SpecViolation]) -> None:
    """Clauses shared by consensus and uniform consensus."""
    # Uniform validity.
    distinct_inputs = set(run.values)
    if len(distinct_inputs) == 1:
        only = next(iter(distinct_inputs))
        for pid, (_, value) in run.decisions.items():
            if value != only:
                violations.append(
                    _violation(
                        run,
                        "uniform validity",
                        f"unanimous input {only!r} but p{pid} decided "
                        f"{value!r}",
                    )
                )
    # Strong validity (all paper algorithms satisfy it).
    for pid, (_, value) in run.decisions.items():
        if value not in run.values:
            violations.append(
                _violation(
                    run,
                    "validity",
                    f"p{pid} decided {value!r}, which no process proposed",
                )
            )
    # Termination.
    for pid in run.scenario.correct:
        if pid not in run.decisions:
            violations.append(
                _violation(
                    run,
                    "termination",
                    f"correct process p{pid} never decided within "
                    f"{run.num_rounds} rounds",
                )
            )
    # Integrity: the recorded (first) decision must still stand.
    for pid, (_, value) in run.decisions.items():
        if pid in run.final_states:
            # The final state's decision, if readable, must match.
            final = run.final_states[pid]
            final_decision = getattr(final, "decision", value)
            if final_decision is not None and final_decision != value:
                violations.append(
                    _violation(
                        run,
                        "integrity",
                        f"p{pid} first decided {value!r} but its final "
                        f"state says {final_decision!r}",
                    )
                )


def check_uniform_consensus_run(run: RoundRun) -> list[SpecViolation]:
    """Check one finished run against the uniform consensus spec."""
    violations: list[SpecViolation] = []
    _common_checks(run, violations)
    decided = {pid: value for pid, (_, value) in run.decisions.items()}
    distinct = set(decided.values())
    if len(distinct) > 1:
        violations.append(
            _violation(
                run,
                "uniform agreement",
                f"processes decided differently: "
                + ", ".join(
                    f"p{pid}={value!r}" for pid, value in sorted(decided.items())
                ),
            )
        )
    return violations


def check_consensus_run(run: RoundRun) -> list[SpecViolation]:
    """Check one finished run against the (non-uniform) consensus spec."""
    violations: list[SpecViolation] = []
    _common_checks(run, violations)
    correct_decisions = {
        pid: value
        for pid, (_, value) in run.decisions.items()
        if pid in run.scenario.correct
    }
    if len(set(correct_decisions.values())) > 1:
        violations.append(
            _violation(
                run,
                "agreement",
                "correct processes decided differently: "
                + ", ".join(
                    f"p{pid}={value!r}"
                    for pid, value in sorted(correct_decisions.items())
                ),
            )
        )
    return violations


def check_many(runs, checker=check_uniform_consensus_run) -> list[SpecViolation]:
    """Apply a run checker to many runs and concatenate the reports."""
    violations: list[SpecViolation] = []
    for run in runs:
        violations.extend(checker(run))
    return violations
