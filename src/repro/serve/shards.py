"""Shard planning and lease bookkeeping for the campaign fabric.

A *shard* is a contiguous slice of a scenario space's cell indices —
the unit of work the coordinator leases to workers.  Planning happens
once, over the cells a run directory has *not* completed yet: cells
whose results already sit in ``results/`` are never resharded, which is
what makes a restarted coordinator resume with ``re_executed == 0`` by
construction rather than by cache luck.

Leases are at-least-once by design.  A worker that dies mid-shard
simply stops heartbeating its lease; when the lease expires the shard
returns to the pending queue and another worker re-executes it.  That
is safe because results are content-addressed (the request cache key
names the result), so the merge step dedupes re-executions exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

#: Default cells per shard.  Small enough that a lost lease forfeits
#: little work, large enough that vector-engine shards still amortize
#: group plans across a batch.
DEFAULT_SHARD_SIZE = 16


@dataclass(frozen=True)
class ShardPlan:
    """One planned shard: which space cells it covers."""

    shard_id: int
    #: Indices into the space's request tuple, in space order.
    indices: tuple[int, ...]

    def __len__(self) -> int:
        return len(self.indices)


def plan_shards(
    missing_indices: Sequence[int], shard_size: int = DEFAULT_SHARD_SIZE
) -> list[ShardPlan]:
    """Chunk the not-yet-completed cell indices into leased work units.

    Order is preserved (shards cover the space in space order) and
    every missing index lands in exactly one shard.  An empty input
    yields an empty plan — the campaign is already complete.
    """
    if shard_size < 1:
        raise ValueError(f"shard_size must be >= 1, got {shard_size}")
    indices = list(missing_indices)
    return [
        ShardPlan(
            shard_id=shard_id,
            indices=tuple(indices[start : start + shard_size]),
        )
        for shard_id, start in enumerate(range(0, len(indices), shard_size))
    ]


#: Lease lifecycle states of one shard.
PENDING = "pending"
LEASED = "leased"
DONE = "done"


@dataclass
class ShardState:
    """The coordinator's mutable view of one shard's lease lifecycle."""

    plan: ShardPlan
    status: str = PENDING
    lease_id: str | None = None
    worker_id: str | None = None
    #: Monotonic-clock deadline of the active lease.
    deadline: float = 0.0
    #: Times this shard went back to pending after a lease expired.
    requeues: int = 0

    def lease(
        self, lease_id: str, worker_id: str, deadline: float
    ) -> None:
        self.status = LEASED
        self.lease_id = lease_id
        self.worker_id = worker_id
        self.deadline = deadline

    def expire(self) -> None:
        """Return an overdue lease to the pending queue."""
        self.status = PENDING
        self.lease_id = None
        self.worker_id = None
        self.deadline = 0.0
        self.requeues += 1

    def complete(self) -> None:
        self.status = DONE
        self.lease_id = None
        self.deadline = 0.0
