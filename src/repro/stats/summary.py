"""Descriptive statistics without heavyweight dependencies."""

from __future__ import annotations

import math
import statistics
from dataclasses import dataclass
from typing import Iterable, Sequence


@dataclass(frozen=True)
class Summary:
    """min/mean/median/max/stdev of a sample.

    ``stdev`` is the *sample* standard deviation
    (:func:`statistics.stdev`, n−1 denominator); ``pstdev`` is the
    *population* standard deviation (:func:`statistics.pstdev`).
    Earlier versions reported the population value under the ``stdev``
    name — both are now explicit fields.
    """

    count: int
    minimum: float
    mean: float
    median: float
    maximum: float
    stdev: float
    pstdev: float

    def describe(self, unit: str = "") -> str:
        suffix = f" {unit}" if unit else ""
        return (
            f"n={self.count}: min={self.minimum:g}{suffix}, "
            f"mean={self.mean:.3g}{suffix}, median={self.median:g}{suffix}, "
            f"max={self.maximum:g}{suffix}, stdev={self.stdev:.3g}"
        )


def summarize(values: Sequence[float] | Iterable[float]) -> Summary:
    """Compute the five-number-ish summary of a non-empty sample."""
    data = list(values)
    if not data:
        raise ValueError("cannot summarize an empty sample")
    return Summary(
        count=len(data),
        minimum=min(data),
        mean=statistics.fmean(data),
        median=statistics.median(data),
        maximum=max(data),
        stdev=statistics.stdev(data) if len(data) > 1 else 0.0,
        pstdev=statistics.pstdev(data) if len(data) > 1 else 0.0,
    )


def percentile(values: Sequence[float] | Iterable[float], p: float) -> float:
    """The ``p``-th percentile of a non-empty sample (0 <= p <= 100).

    Linear interpolation between closest ranks — the same convention as
    ``numpy.percentile``'s default ("linear" method) — so
    ``percentile(data, 50)`` equals the median.  The interpolation uses
    numpy's two-branch lerp (``a + (b-a)·t`` for ``t < 0.5``,
    ``b - (b-a)·(1-t)`` otherwise), which keeps the result monotone in
    ``t`` under floating point and makes the value *bit-identical* to
    ``numpy.percentile``; the previous ``a·(1-t) + b·t`` form drifted
    by one ulp on some inputs, enough to flip threshold comparisons in
    SLO checks.
    """
    data = sorted(values)
    if not data:
        raise ValueError("cannot take a percentile of an empty sample")
    if not 0 <= p <= 100:
        raise ValueError(f"percentile must be in [0, 100], got {p}")
    if len(data) == 1:
        return float(data[0])
    rank = (p / 100) * (len(data) - 1)
    lower = math.floor(rank)
    upper = math.ceil(rank)
    if lower == upper:
        return float(data[lower])
    weight = rank - lower
    a = float(data[lower])
    b = float(data[upper])
    diff = b - a
    if weight < 0.5:
        return a + diff * weight
    return b - diff * (1 - weight)


def rate(hits: int, total: int) -> float:
    """A safe ratio: 0.0 when the denominator is zero."""
    return hits / total if total else 0.0
