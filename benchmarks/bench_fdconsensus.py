"""Benchmarks for ◊S consensus: the hierarchy's other end.

Not a paper artefact (the paper's efficiency study is RS vs RWS) but
the natural baseline from the failure-detector approach: how much a
*weaker* detector costs in steps, under clean and noisy detection.
"""

import random

from repro.failures import FailurePattern
from repro.fdconsensus import ct_decisions, run_ct_consensus


def bench_ct_clean_run(benchmark):
    pattern = FailurePattern.crash_free(3)

    def clean():
        return run_ct_consensus(
            [0, 1, 1], pattern,
            rng=random.Random(1),
            stabilization_time=0,
            false_suspicion_prob=0.0,
        )

    run = benchmark(clean)
    assert len(set(ct_decisions(run).values())) == 1
    benchmark.extra_info["steps"] = len(run.schedule)


def bench_ct_noisy_detector(once):
    pattern = FailurePattern.crash_free(3)

    def noisy():
        return run_ct_consensus(
            [0, 1, 1], pattern,
            rng=random.Random(3),
            stabilization_time=150,
            false_suspicion_prob=0.5,
            max_steps=15_000,
        )

    run = once(noisy)
    assert len(set(ct_decisions(run).values())) == 1


def bench_ct_coordinator_crash(once):
    pattern = FailurePattern.with_crashes(3, {0: 10})

    def crashed():
        return run_ct_consensus(
            [0, 1, 1], pattern, rng=random.Random(5)
        )

    run = once(crashed)
    decisions = ct_decisions(run)
    assert decisions[1] == decisions[2]
