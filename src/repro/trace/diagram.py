"""ASCII renderers for step runs, round runs, and event traces."""

from __future__ import annotations

from typing import Any, Sequence

from repro.rounds.executor import RoundRun
from repro.simulation.run import Run


def step_diagram(run: Run, *, max_rows: int = 60) -> str:
    """Render a step-level run as a space-time diagram.

    One column per process, one row per executed step.  Cells show what
    the stepping process did: ``s->k`` (sent to process k), ``r(j)``
    (received from j), ``.`` (null step).  A ``X`` row marks crashes.
    Long runs are truncated to ``max_rows`` rows with an ellipsis.
    """
    width = 10
    header = "step  " + "".join(f"p{pid}".ljust(width) for pid in range(run.n))
    lines = [header, "-" * len(header)]
    crashed_marked: set[int] = set()
    rows = 0
    for step in run.schedule:
        if rows >= max_rows:
            lines.append(f"... ({len(run.schedule) - max_rows} more steps)")
            break
        # Mark crashes that happened at or before this time.
        newly_crashed = [
            pid
            for pid in run.pattern.faulty
            if pid not in crashed_marked
            and not run.pattern.is_alive(pid, step.time)
        ]
        for pid in newly_crashed:
            crashed_marked.add(pid)
            cells = ["" for _ in range(run.n)]
            cells[pid] = "X crash"
            lines.append(
                "      " + "".join(cell.ljust(width) for cell in cells)
            )
        actions = []
        if step.received_uids:
            senders = ",".join(
                str(run.messages[uid].sender) for uid in step.received_uids
            )
            actions.append(f"r({senders})")
        if step.sent_to is not None:
            actions.append(f"s->{step.sent_to}")
        if not actions:
            actions.append(".")
        cells = ["" for _ in range(run.n)]
        cells[step.pid] = " ".join(actions)
        lines.append(
            f"{step.index:>4}  "
            + "".join(cell.ljust(width) for cell in cells)
        )
        rows += 1
    return "\n".join(lines)


def round_tableau(run: RoundRun) -> str:
    """Render a round run as a tableau: rounds × processes.

    Each cell lists the senders heard that round; ``!v`` marks a
    decision on value ``v``, ``X`` marks the crash round, ``-`` a dead
    process.
    """
    width = 16
    header = "round  " + "".join(
        f"p{pid}".ljust(width) for pid in range(run.n)
    )
    lines = [header, "-" * len(header)]
    for record in run.rounds:
        cells = []
        for pid in range(run.n):
            if not run.scenario.alive_at_start(pid, record.index):
                cells.append("-")
                continue
            heard = sorted(record.delivered.get(pid, {}))
            cell = "heard:" + ("".join(str(s) for s in heard) or "none")
            if run.decision_round(pid) == record.index:
                cell += f" !{run.decision_value(pid)}"
            if pid in record.crashed:
                cell += " X"
            cells.append(cell)
        lines.append(
            f"{record.index:>5}  "
            + "".join(cell.ljust(width) for cell in cells)
        )
    return "\n".join(lines)


def event_diagram(
    events: Sequence[Any],
    *,
    highlight: Sequence[int] = (),
    max_rows: int = 120,
) -> str:
    """Render an event trace as a space-time diagram.

    Works on any :class:`~repro.obs.events.Event` sequence (exported
    JSONL, an :class:`~repro.obs.events.EventLog`, a cached result) —
    unlike :func:`step_diagram`/:func:`round_tableau` it needs no
    engine-native run object.  One column per process, one row per
    event, ``round_start`` events become separators.  Cells show the
    acting process's move: ``s->k`` (sent to k), ``r(j)`` (received
    from j), ``w(j)`` (a message from j was withheld), ``S(j)``
    (began suspecting j), ``!v`` (decided v), ``X`` (crash), ``halt``.

    ``highlight`` is a set of trace indices — typically one decision's
    critical-path nodes from
    :func:`repro.obs.critical.critical_paths` — marked with ``*``.
    """
    pids = sorted(
        {e.pid for e in events if e.pid is not None}
        | {e.peer for e in events if e.peer is not None}
    )
    if not pids:
        return "(empty trace)"
    marked = set(highlight)
    width = 12
    header = "   idx  " + "".join(f"p{pid}".ljust(width) for pid in pids)
    lines = [header, "-" * len(header)]
    column = {pid: slot for slot, pid in enumerate(pids)}
    rows = 0
    for index, event in enumerate(events):
        if rows >= max_rows:
            lines.append(f"... ({len(events) - index} more events)")
            break
        if event.kind == "round_start":
            label = f"-- round {event.round} (alive: {event.value}) "
            lines.append(label + "-" * max(0, len(header) - len(label)))
            continue
        actor, cell = event.pid, "?"
        if event.kind == "msg_sent":
            actor, cell = event.peer, f"s->{event.pid}"
        elif event.kind == "msg_delivered":
            cell = f"r({event.peer})"
        elif event.kind == "msg_withheld":
            cell = f"w({event.peer})"
        elif event.kind == "suspect":
            cell = f"S({event.peer})"
        elif event.kind == "decide":
            cell = f"!{event.value}"
        elif event.kind == "crash":
            cell = "X"
        elif event.kind == "halt":
            cell = "halt"
        if index in marked:
            cell = "*" + cell
        cells = ["" for _ in pids]
        if actor in column:
            cells[column[actor]] = cell
        star = "*" if index in marked else " "
        lines.append(
            f"{star}{index:>5}  "
            + "".join(text.ljust(width) for text in cells)
        )
        rows += 1
    return "\n".join(lines)


def describe_run(run: Run) -> str:
    """One-paragraph summary of a step run."""
    return (
        f"run over n={run.n}: {len(run.schedule)} steps, "
        f"{len(run.messages)} messages, pattern {run.pattern.describe()}, "
        f"{sum(len(v) for v in run.undelivered.values())} undelivered"
    )


def describe_round_run(run: RoundRun) -> str:
    """One-paragraph summary of a round run."""
    decisions = ", ".join(
        f"p{pid}={value!r}@r{rnd}"
        for pid, (rnd, value) in sorted(run.decisions.items())
    )
    return (
        f"{run.algorithm_name} in {run.model.value} over n={run.n} "
        f"(t={run.t}), values={run.values}, "
        f"scenario=[{run.scenario.describe()}], "
        f"{run.num_rounds} rounds, decisions: {decisions or 'none'}"
    )
