"""CLI surface of the model checker: `repro mc` and its neighbours."""

from __future__ import annotations

import json

from repro.cli.main import main


class TestMcCommand:
    def test_list_properties(self, capsys):
        assert main(["mc", "--list"]) == 0
        out = capsys.readouterr().out
        for name in ("agreement", "lambda", "indistinguishability"):
            assert name in out

    def test_a1_clamps_t_with_a_note(self, capsys):
        rc = main(
            ["mc", "agreement", "--algorithm", "A1", "--n", "3", "--t", "2"]
        )
        captured = capsys.readouterr()
        assert rc == 0
        assert "clamping --t 2 -> 1" in captured.err
        assert "HOLDS(exhaustive)" in captured.out
        # Schedule-engine verdicts print the serve spec for sharding.
        assert "serve spec: mc:agreement:a1:" in captured.out

    def test_refuted_run_writes_replayable_witnesses(self, tmp_path, capsys):
        out_dir = tmp_path / "verdicts"
        rc = main(
            [
                "mc",
                "agreement",
                "--algorithm",
                "floodset",
                "--model",
                "RWS",
                "--out",
                str(out_dir),
            ]
        )
        captured = capsys.readouterr()
        assert rc == 1
        assert "REFUTED" in captured.out

        verdict = json.loads((out_dir / "verdict.json").read_text())
        assert verdict["kind"] == "mc-verdict"
        assert verdict["verdict"] == "REFUTED"

        witness = out_dir / "mc-witness-00.json"
        assert witness.exists()
        assert main(["replay", "--repro", str(witness)]) == 0
        replay_out = capsys.readouterr().out
        assert "replay" in replay_out.lower() or replay_out

    def test_unknown_property_is_a_config_error(self, capsys):
        rc = main(["mc", "liveness"])
        assert rc == 2
        assert "unknown property" in capsys.readouterr().err

    def test_no_property_and_no_fixture_is_an_error(self, capsys):
        rc = main(["mc"])
        assert rc == 2
        assert "provide a property" in capsys.readouterr().err

    def test_fixture_classification(self, capsys):
        assert main(["mc", "--fixture", "timeout"]) == 0
        assert "genuine" in capsys.readouterr().out.lower()

    def test_unknown_fixture_is_a_config_error(self, capsys):
        assert main(["mc", "--fixture", "nope"]) == 2
        assert "nope" in capsys.readouterr().err

    def test_save_frontier_seeds_fuzz(self, tmp_path, capsys):
        frontier = tmp_path / "frontier.json"
        rc = main(
            [
                "mc",
                "agreement",
                "--algorithm",
                "floodset",
                "--save-frontier",
                str(frontier),
            ]
        )
        assert rc == 0
        assert frontier.exists()
        capsys.readouterr()
        rc = main(
            [
                "fuzz",
                "--budget",
                "6",
                "--seed",
                "0",
                "--frontier",
                str(frontier),
            ]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "mc-frontier" in out

    def test_fuzz_frontier_missing_file_is_a_config_error(self, capsys):
        rc = main(
            [
                "fuzz",
                "--budget",
                "4",
                "--seed",
                "0",
                "--frontier",
                "/nonexistent/frontier.json",
            ]
        )
        assert rc == 2
        assert "frontier" in capsys.readouterr().err


class TestCheckSddFixture:
    def test_known_fixture_classifies_genuine(self, capsys):
        assert main(["check", "--sdd-fixture", "suspicion"]) == 0
        assert "genuine" in capsys.readouterr().out.lower()

    def test_unknown_fixture_is_a_config_error(self, capsys):
        assert main(["check", "--sdd-fixture", "bogus"]) == 2
