"""E14 — consensus vs uniform consensus: the gap in both models."""

import pytest

from repro.analysis import verify_algorithm
from repro.consensus import (
    EagerFloodSetWS,
    EarlyDecidingConsensus,
    check_consensus_run,
)
from repro.core.experiments import experiment_e14
from repro.rounds import RoundModel


@pytest.mark.slow
def bench_e14_full_experiment(once):
    result = once(experiment_e14, True)
    assert result.ok, result.describe()


def bench_e14_rws_witness(once):
    """EagerFloodSetWS: consensus-safe yet uniform-unsafe in RWS."""

    def witness():
        consensus = verify_algorithm(
            EagerFloodSetWS(), 3, 1, RoundModel.RWS,
            checker=check_consensus_run,
        )
        uniform = verify_algorithm(
            EagerFloodSetWS(), 3, 1, RoundModel.RWS, stop_after=1
        )
        return consensus.ok, uniform.ok

    consensus_ok, uniform_ok = once(witness)
    assert consensus_ok and not uniform_ok
