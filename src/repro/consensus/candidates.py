"""Round-1-deciding candidate algorithms for the RWS lower bound.

The companion-paper result quoted in Section 5.3 states that for
``n >= 3`` *no* uniform consensus algorithm in RWS can have all correct
processes decide at round 1 of every failure-free run — hence
``Λ >= 2`` in RWS while ``Λ(A1) = 1`` in RS.

An impossibility cannot be executed, but its *shape* can: every natural
algorithm with the round-1 property must be defeated by some
weak-round-synchrony scenario.  This module collects such candidates;
:func:`repro.analysis.lowerbound.round_one_survey` exhibits a concrete
counterexample run for each (experiment E10).  ``A1`` itself is the
first candidate; the others harden it in the obvious ways (halting on
silent processes, symmetric min-based decisions) and fail anyway —
illustrating the paper's remark that "modifications such as the one
used to transform FloodSet into FloodSetWS do not preclude such
disagreement".
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Mapping

from repro.consensus.a1 import REPORT_TAG, A1, A1State
from repro.rounds.algorithm import RoundAlgorithm, broadcast


@dataclass(frozen=True)
class A1HaltState(A1State):
    """A1 state plus the halt flag for p1's round-2 messages."""

    ignore_p1: bool = False


class A1Halt(A1):
    """A1 with the FloodSetWS-style fix: ignore p1 after silence.

    If no round-1 message arrived from ``p1``, its (relayed) value is
    ignored in round 2.  The disagreement scenario survives: ``p1``
    decides on its own pending broadcast and crashes; no relay exists
    to ignore, and the survivors still decide ``v2``.
    """

    name = "A1+halt"

    def initial_state(self, pid: int, n: int, t: int, value: Any) -> A1HaltState:
        base = super().initial_state(pid, n, t, value)
        return A1HaltState(
            rounds=base.rounds,
            w=base.w,
            decided=base.decided,
            decision=base.decision,
            n=base.n,
            ignore_p1=False,
        )

    def transition(
        self, pid: int, state: A1HaltState, received: Mapping[int, Any]
    ) -> A1HaltState:
        if state.rounds == 0 and 0 not in received:
            # p1 was silent in round 1: drop its own future messages
            # (relays from third parties are kept — dropping those too
            # breaks termination, not safety).
            state = replace(state, ignore_p1=True)
        if state.ignore_p1:
            received = {
                sender: payload
                for sender, payload in received.items()
                if sender != 0
            }
        base = super().transition(pid, state, received)
        return replace(state, rounds=base.rounds, w=base.w,
                       decided=base.decided, decision=base.decision)

    def decision_of(self, state: A1HaltState) -> Any:
        return state.decision


@dataclass(frozen=True)
class MinRoundOneState:
    """State of the symmetric round-1 candidate."""

    rounds: int
    value: Any
    decision: Any
    n: int


class MinRoundOne(RoundAlgorithm):
    """Everyone broadcasts; decide the minimum received at round 1.

    The fully symmetric round-1 candidate.  In a failure-free run every
    process receives all ``n`` values and decides ``min`` at round 1.
    Deciders report ``(D, v)`` at round 2 and laggards adopt.  Both RS
    (partial broadcast) and RWS (pending messages) defeat it.
    """

    name = "MinRound1"

    def initial_state(self, pid: int, n: int, t: int, value: Any) -> MinRoundOneState:
        return MinRoundOneState(rounds=0, value=value, decision=None, n=n)

    def messages(self, pid: int, state: MinRoundOneState) -> Mapping[int, Any]:
        if state.rounds == 0:
            return broadcast(("value", state.value), state.n)
        if state.rounds == 1 and state.decision is not None:
            return broadcast((REPORT_TAG, state.decision), state.n)
        if state.rounds == 1:
            return broadcast(("value", state.value), state.n)
        return {}

    def transition(
        self, pid: int, state: MinRoundOneState, received: Mapping[int, Any]
    ) -> MinRoundOneState:
        rounds = state.rounds + 1
        decision = state.decision
        if rounds == 1 and received:
            decision = min(payload[1] for payload in received.values())
        elif rounds == 2 and decision is None:
            reports = [
                payload[1]
                for payload in received.values()
                if payload[0] == REPORT_TAG
            ]
            if reports:
                decision = min(reports)
            elif received:
                decision = min(payload[1] for payload in received.values())
        return replace(state, rounds=rounds, decision=decision)

    def decision_of(self, state: MinRoundOneState) -> Any:
        return state.decision

    def halted(self, pid: int, state: MinRoundOneState) -> bool:
        return state.rounds >= 2


class LeaderOrOwn(RoundAlgorithm):
    """Decide p1's value if heard at round 1, else your own at round 2.

    A deliberately naive candidate: it has the round-1 property in
    failure-free runs (everyone hears ``p1``) but splits decisions as
    soon as ``p1``'s broadcast is partial or pending.
    """

    name = "LeaderOrOwn"

    def initial_state(self, pid: int, n: int, t: int, value: Any) -> MinRoundOneState:
        return MinRoundOneState(rounds=0, value=value, decision=None, n=n)

    def messages(self, pid: int, state: MinRoundOneState) -> Mapping[int, Any]:
        if state.rounds == 0 and pid == 0:
            return broadcast(("value", state.value), state.n)
        return {}

    def transition(
        self, pid: int, state: MinRoundOneState, received: Mapping[int, Any]
    ) -> MinRoundOneState:
        rounds = state.rounds + 1
        decision = state.decision
        if rounds == 1 and 0 in received:
            decision = received[0][1]
        elif rounds == 2 and decision is None:
            decision = state.value
        return replace(state, rounds=rounds, decision=decision)

    def decision_of(self, state: MinRoundOneState) -> Any:
        return state.decision

    def halted(self, pid: int, state: MinRoundOneState) -> bool:
        return state.rounds >= 2


#: The candidate pool surveyed by experiment E10.
ROUND_ONE_CANDIDATES: tuple[RoundAlgorithm, ...] = (
    A1(),
    A1Halt(),
    MinRoundOne(),
    LeaderOrOwn(),
)
