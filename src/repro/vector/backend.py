"""Array-backend selection for the columnar kernel.

The vectorized engine runs on either of two interchangeable backends:

* ``numpy`` — batched ``(B, n)`` ``uint64`` bitmask arrays, used when
  numpy is importable (install the ``fast`` extra);
* ``python`` — the reference implementation over plain ``int`` bitmasks
  in lists, dependency-free, byte-identical output.

Selection is automatic (numpy when available) and can be forced with
the ``REPRO_VECTOR_BACKEND`` environment variable (``numpy`` or
``python``) — the differential smoke runs the same golden on both.
Forcing ``numpy`` in an environment without it is a configuration
error, not a silent fallback.

The numpy path additionally needs ``numpy.bitwise_count`` (numpy >= 2.0)
for the exact integer lowest-set-bit extraction; older numpys fall back
to the python backend rather than risk float round-tripping.
"""

from __future__ import annotations

import os

from repro.errors import ConfigurationError

try:  # optional dependency: the `fast` extra
    import numpy as _numpy
except ImportError:  # pragma: no cover - exercised via REPRO_VECTOR_BACKEND
    _numpy = None

#: Environment variable forcing a backend (``numpy`` or ``python``).
BACKEND_ENV = "REPRO_VECTOR_BACKEND"

#: True when numpy is importable and new enough for the bitmask kernel.
HAS_NUMPY = _numpy is not None and hasattr(_numpy, "bitwise_count")


def numpy_module():
    """The imported numpy module, or ``None`` without the ``fast`` extra."""
    return _numpy if HAS_NUMPY else None


def backend_name() -> str:
    """The active backend: ``"numpy"`` or ``"python"``.

    Honours :data:`BACKEND_ENV`; raises
    :class:`~repro.errors.ConfigurationError` on an unknown value or
    when ``numpy`` is forced but not importable.
    """
    forced = os.environ.get(BACKEND_ENV, "").strip().lower()
    if forced in ("", "auto"):
        return "numpy" if HAS_NUMPY else "python"
    if forced == "python":
        return "python"
    if forced == "numpy":
        if not HAS_NUMPY:
            raise ConfigurationError(
                f"{BACKEND_ENV}=numpy but numpy (>= 2.0) is not available; "
                "install the 'fast' extra: pip install 'repro[fast]'"
            )
        return "numpy"
    raise ConfigurationError(
        f"unknown {BACKEND_ENV} value {forced!r}; choose 'numpy', "
        "'python' or 'auto'"
    )
