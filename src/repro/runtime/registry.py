"""The canonical algorithm registry: names to zero-argument factories.

Execution requests travel between processes and onto disk, so they
cannot carry algorithm *instances* — they carry registry keys, and
every consumer (CLI, sweep workers, cache loads) resolves the key
through this one table.  Keys are the CLI's historical algorithm names
plus the non-uniform witnesses used by the gap experiments.
"""

from __future__ import annotations

from typing import Callable

from repro.broadcast import AtomicBroadcast
from repro.consensus import (
    A1,
    COptFloodSet,
    COptFloodSetWS,
    EagerFloodSetWS,
    FloodSet,
    FloodSetWS,
    FOptFloodSet,
    FOptFloodSetWS,
)
from repro.errors import ConfigurationError
from repro.rounds.algorithm import RoundAlgorithm
from repro.vector.kernels import PLAN_KERNELS as VECTOR_KERNELS
from repro.vector.kernels import plan_kernel_for

#: Every round algorithm a request may name.  Zero-argument factories:
#: the algorithms are stateless between runs, so a fresh instance per
#: execution keeps workers independent.
ALGORITHM_FACTORIES: dict[str, Callable[[], RoundAlgorithm]] = {
    "floodset": FloodSet,
    "floodset-ws": FloodSetWS,
    "c-opt": COptFloodSet,
    "c-opt-ws": COptFloodSetWS,
    "f-opt": FOptFloodSet,
    "f-opt-ws": FOptFloodSetWS,
    "a1": A1,
    "eager-floodset-ws": EagerFloodSetWS,
    "atomic-broadcast": AtomicBroadcast,
}


def has_vector_kernel(name: str, *, n: int | None = None, t: int | None = None) -> bool:
    """Whether ``engine="vector"`` can run ``name`` on its columnar kernel.

    The vector engine mirrors a registered algorithm's transition table
    as a batched plan kernel (:data:`VECTOR_KERNELS`); algorithms
    without one — and configurations a kernel refuses, when ``n``/``t``
    are given — still execute under ``engine="vector"`` but fall back
    to the object executor cell by cell.
    """
    if n is None or t is None:
        return name in VECTOR_KERNELS
    return plan_kernel_for(name, n, t) is not None


def make_algorithm(name: str) -> RoundAlgorithm:
    """Instantiate the registered algorithm ``name``.

    Raises :class:`~repro.errors.ConfigurationError` for unknown keys,
    naming the known ones.
    """
    factory = ALGORITHM_FACTORIES.get(name)
    if factory is None:
        raise ConfigurationError(
            f"unknown algorithm {name!r}; choose from "
            f"{sorted(ALGORITHM_FACTORIES)}"
        )
    return factory()
