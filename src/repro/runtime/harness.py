"""Harness adapters: one ``execute`` seam over every engine.

The repo has four ways to run an algorithm — the RS/RWS round executor,
and the two step-kernel emulations (RS on SS, RWS on SP), each with its
own signature.  A :class:`Harness` adapts one engine to the uniform
``(request, observer) -> engine-native run`` shape, and
:func:`execute_request` wraps any harness with the standard
instrumentation (a logical-clock event log plus a metrics registry) and
lifts the outcome into an :class:`~repro.runtime.request.ExecutionResult`.

``execute_request`` is deliberately a module-level function of one
picklable argument: it is the unit of work a ``multiprocessing`` pool
ships to workers.
"""

from __future__ import annotations

import random
from typing import Any, Mapping, Protocol, Sequence

from repro.emulation import emulate_rs_on_ss, emulate_rws_on_sp
from repro.errors import ConfigurationError
from repro.obs.events import (
    CompositeObserver,
    EventLog,
    Observer,
    logical_clock,
)
from repro.obs.metrics import MetricsObserver, MetricsRegistry
from repro.rounds import RoundModel
from repro.rounds.executor import execute as execute_rounds
from repro.runtime.registry import make_algorithm
from repro.runtime.request import ExecutionRequest, ExecutionResult


class Harness(Protocol):
    """Adapter protocol: run a request on one engine.

    Implementations return the engine's native run object; the caller
    extracts the uniform fields (decisions, latency, round count) via
    :meth:`summarize`.
    """

    engine: str

    def execute(
        self, request: ExecutionRequest, observer: Observer | None
    ) -> Any:
        """Run the request's cell, streaming events to ``observer``."""
        ...

    def summarize(self, run: Any) -> tuple[dict[int, tuple[int, Any]], int | None, int]:
        """``(decisions, latency, num_rounds)`` of a native run."""
        ...

    def extras(self, run: Any) -> dict[str, Any]:
        """Engine-specific structured facts for ``ExecutionResult.extra``."""
        ...


class RoundHarness:
    """The RS/RWS round executor behind the uniform interface."""

    engine = "rounds"

    def execute(
        self, request: ExecutionRequest, observer: Observer | None
    ) -> Any:
        return execute_rounds(
            make_algorithm(request.algorithm),
            request.values,
            request.scenario,
            t=request.t,
            model=RoundModel(request.model),
            max_rounds=request.max_rounds,
            observer=observer,
            **request.param_dict(),
        )

    def summarize(self, run: Any):
        return dict(run.decisions), run.latency(), run.num_rounds

    def extras(self, run: Any) -> dict[str, Any]:
        return {}


def _emulation_extras(trace: Any) -> dict[str, Any]:
    """The induced round scenario of an emulated trace, serialized.

    Computed once at execution time (the native trace with its step run
    is available only here) and carried on the result, so differential
    consumers — the fuzzer's emulation↔rounds oracles — can build the
    rounds-engine twin of an emulation cell from the cached result
    alone.
    """
    from repro.emulation.induce import induced_scenario
    from repro.serialize import scenario_to_dict

    return {"induced_scenario": scenario_to_dict(induced_scenario(trace))}


def _emulation_summary(trace: Any) -> tuple[dict[int, tuple[int, Any]], int | None, int]:
    """Uniform fields of an :class:`EmulatedRoundTrace`."""
    decisions = {
        pid: entry
        for pid, entry in trace.decisions.items()
        if entry is not None
    }
    correct = trace.run.pattern.correct
    latency: int | None = 0
    for pid in correct:
        entry = decisions.get(pid)
        if entry is None:
            latency = None
            break
        latency = max(latency, entry[0])
    return decisions, latency, trace.num_rounds


class SSEmulationHarness:
    """RS emulated on the SS step kernel (Section 4.1)."""

    engine = "rs_on_ss"

    def execute(
        self, request: ExecutionRequest, observer: Observer | None
    ) -> Any:
        return emulate_rs_on_ss(
            make_algorithm(request.algorithm),
            request.values,
            request.pattern,
            t=request.t,
            num_rounds=request.max_rounds,
            rng=random.Random(request.seed),
            observer=observer,
            **request.param_dict(),
        )

    def summarize(self, trace: Any):
        return _emulation_summary(trace)

    def extras(self, trace: Any) -> dict[str, Any]:
        return _emulation_extras(trace)


class SPEmulationHarness:
    """RWS emulated on the SP step kernel (Section 4.2)."""

    engine = "rws_on_sp"

    def execute(
        self, request: ExecutionRequest, observer: Observer | None
    ) -> Any:
        return emulate_rws_on_sp(
            make_algorithm(request.algorithm),
            request.values,
            request.pattern,
            t=request.t,
            num_rounds=request.max_rounds,
            rng=random.Random(request.seed),
            observer=observer,
            **request.param_dict(),
        )

    def summarize(self, trace: Any):
        return _emulation_summary(trace)

    def extras(self, trace: Any) -> dict[str, Any]:
        return _emulation_extras(trace)


class VectorHarness:
    """The columnar batch kernel behind the uniform interface.

    Runs the same RS/RWS round semantics as :class:`RoundHarness`, but
    batched: per-process state lives in arrays and whole groups of
    cells sharing a scenario execute in one vectorized call (see
    :func:`execute_batch`).  Single-cell execution streams the same
    observer hooks — same structural ``msg_id``s included — so traces
    are byte-identical to the object engine's; cells the kernel cannot
    take fall back to the object executor transparently.
    """

    engine = "vector"

    def execute(
        self, request: ExecutionRequest, observer: Observer | None
    ) -> Any:
        from repro.vector.engine import execute_vector_request

        return execute_vector_request(request, observer)

    def summarize(self, run: Any):
        # VectorRun and the fallback's RoundRun share this shape.
        return dict(run.decisions), run.latency(), run.num_rounds

    def extras(self, run: Any) -> dict[str, Any]:
        from repro.vector.engine import FallbackRun

        if isinstance(run, FallbackRun):
            return {"vector_fallback": run.reason}
        return {}


class LiveHarness:
    """The asyncio cluster runtime (heartbeat-built P) behind the seam.

    The run is wall-clock nondeterministic; its trace is serialized
    into logical order post-hoc and replayed into the observer, so the
    same oracle suite that checks the logical engines checks live runs.
    """

    engine = "live"

    def execute(
        self, request: ExecutionRequest, observer: Observer | None
    ) -> Any:
        from repro.live.harness import run_live_request

        return run_live_request(request, observer=observer)

    def summarize(self, run: Any):
        return dict(run.decisions), run.latency, run.num_rounds

    def extras(self, run: Any) -> dict[str, Any]:
        return {"live": run.stats_dict()}


#: Engine name → harness singleton.  Harnesses are stateless, so one
#: instance serves every worker.
HARNESSES: Mapping[str, Any] = {
    harness.engine: harness
    for harness in (
        RoundHarness(),
        SSEmulationHarness(),
        SPEmulationHarness(),
        LiveHarness(),
        VectorHarness(),
    )
}


def harness_for(engine: str):
    harness = HARNESSES.get(engine)
    if harness is None:
        raise ConfigurationError(
            f"no harness for engine {engine!r}; choose from "
            f"{sorted(HARNESSES)}"
        )
    return harness


def execute_request(
    request: ExecutionRequest, *, observer: Observer | None = None
) -> ExecutionResult:
    """Execute one cell under the standard instrumentation.

    Events are recorded with the deterministic logical clock (per-cell
    timestamps restart at 1.0), so the resulting trace is identical no
    matter which process — or how many sibling workers — executed it.
    An extra ``observer`` joins the composite when given.
    """
    harness = harness_for(request.engine)
    log = EventLog(clock=logical_clock())
    registry = MetricsRegistry()
    observers: list[Observer] = [log, MetricsObserver(registry)]
    if observer is not None:
        observers.append(observer)
    run = harness.execute(request, CompositeObserver(*observers))
    decisions, latency, num_rounds = harness.summarize(run)
    return ExecutionResult(
        name=request.name,
        request_key=request.cache_key(),
        events=list(log.events),
        metrics=registry.state(),
        decisions=decisions,
        latency=latency,
        num_rounds=num_rounds,
        extra=harness.extras(run),
    )


def execute_batch(
    requests: Sequence[ExecutionRequest],
) -> list[ExecutionResult]:
    """Execute many cells at once, batching where an engine supports it.

    The batch seam behind :class:`~repro.runtime.sweep.SweepRunner`:
    ``engine="vector"`` cells are grouped by shared scenario and run
    through the columnar kernel in whole-batch calls; every other cell
    goes through :func:`execute_request` one at a time.  Results come
    back in input order and are byte-identical — events, metrics, cache
    keys — to executing each request individually, so result caching
    and the trace oracles are oblivious to the batching.
    """
    vector_indices = [
        index
        for index, request in enumerate(requests)
        if request.engine == "vector"
    ]
    results: list[ExecutionResult | None] = [None] * len(requests)
    if vector_indices:
        from repro.vector.engine import execute_vector_batch

        batched = execute_vector_batch(
            [requests[index] for index in vector_indices]
        )
        for index, result in zip(vector_indices, batched):
            results[index] = result
    for index, request in enumerate(requests):
        if results[index] is None:
            results[index] = execute_request(request)
    return [result for result in results if result is not None]
