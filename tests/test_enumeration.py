"""Tests for exhaustive and random scenario enumeration."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigurationError
from repro.rounds import (
    all_crash_events,
    all_scenarios,
    all_value_assignments,
    random_scenario,
    validate_scenario,
)


class TestValueAssignments:
    def test_binary_count(self):
        assert len(list(all_value_assignments(3))) == 8

    def test_custom_domain(self):
        assert len(list(all_value_assignments(2, domain=(0, 1, 2)))) == 9


class TestCrashEvents:
    def test_count_for_small_case(self):
        # rounds {1,2} x (4 subsets + 1 full-with-transition) = 10.
        events = list(all_crash_events(0, 3, max_round=2))
        assert len(events) == 10

    def test_without_transition_variants(self):
        events = list(
            all_crash_events(0, 3, max_round=2, include_transition=False)
        )
        assert len(events) == 8
        assert all(not e.applies_transition for e in events)

    def test_transition_only_with_full_send(self):
        for event in all_crash_events(0, 4, max_round=3):
            if event.applies_transition:
                assert event.sent_to == frozenset({1, 2, 3})


class TestAllScenarios:
    def test_rs_count_n3_t1(self):
        scenarios = list(
            all_scenarios(3, 1, max_round=2, allow_pending=False)
        )
        # 1 failure-free + 3 victims x 10 events.
        assert len(scenarios) == 31

    def test_every_rs_scenario_is_valid(self):
        for scenario in all_scenarios(3, 1, max_round=3, allow_pending=False):
            assert validate_scenario(scenario, t=1, allow_pending=False) == []

    def test_every_rws_scenario_is_valid(self):
        count = 0
        for scenario in all_scenarios(3, 1, max_round=2, allow_pending=True):
            assert validate_scenario(scenario, t=1, allow_pending=True) == []
            count += 1
        assert count > 31  # pending fan-out adds scenarios

    def test_rws_contains_the_paper_counterexample(self):
        from repro.workloads import a1_rws_disagreement

        target = a1_rws_disagreement(3)
        assert any(
            scenario == target
            for scenario in all_scenarios(
                3, 1, max_round=2, allow_pending=True
            )
        )

    def test_no_duplicates(self):
        scenarios = list(all_scenarios(3, 1, max_round=2, allow_pending=True))
        assert len(set(scenarios)) == len(scenarios)

    def test_max_pending_sets_truncates(self):
        full = list(all_scenarios(3, 1, max_round=2, allow_pending=True))
        truncated = list(
            all_scenarios(
                3, 1, max_round=2, allow_pending=True, max_pending_sets=2
            )
        )
        assert len(truncated) < len(full)

    def test_t_ge_n_rejected(self):
        with pytest.raises(ConfigurationError):
            list(all_scenarios(2, 2, max_round=2, allow_pending=False))

    def test_two_crash_scenarios_present_for_t2(self):
        scenarios = list(all_scenarios(3, 2, max_round=1, allow_pending=False))
        assert any(s.num_failures() == 2 for s in scenarios)


class TestRandomScenario:
    @pytest.mark.parametrize("allow_pending", [False, True])
    def test_always_valid(self, allow_pending):
        rng = random.Random(123)
        for _ in range(200):
            scenario = random_scenario(
                4, 2, max_round=3, allow_pending=allow_pending, rng=rng
            )
            assert (
                validate_scenario(
                    scenario, t=2, allow_pending=allow_pending
                )
                == []
            )

    def test_produces_pending_sometimes(self):
        rng = random.Random(5)
        pending_seen = any(
            random_scenario(
                3, 1, max_round=2, allow_pending=True, rng=rng
            ).pending
            for _ in range(100)
        )
        assert pending_seen


@settings(max_examples=30, deadline=None)
@given(
    n=st.integers(min_value=2, max_value=4),
    t=st.integers(min_value=0, max_value=2),
    max_round=st.integers(min_value=1, max_value=3),
    seed=st.integers(min_value=0, max_value=10_000),
)
def test_random_scenarios_always_admissible(n, t, max_round, seed):
    """Property: random_scenario only produces admissible adversaries."""
    if t >= n:
        return
    rng = random.Random(seed)
    scenario = random_scenario(
        n, t, max_round=max_round, allow_pending=True, rng=rng
    )
    assert validate_scenario(scenario, t=t, allow_pending=True) == []


class TestClosedFormCount:
    @pytest.mark.parametrize("n,t,max_round", [
        (2, 1, 1), (3, 1, 2), (3, 2, 2), (4, 1, 2), (4, 2, 1),
    ])
    def test_formula_matches_enumeration(self, n, t, max_round):
        from repro.rounds import expected_scenario_count

        enumerated = sum(
            1 for _ in all_scenarios(
                n, t, max_round=max_round, allow_pending=False
            )
        )
        assert enumerated == expected_scenario_count(
            n, t, max_round=max_round
        )

    def test_formula_without_transition_variants(self):
        from repro.rounds import expected_scenario_count

        enumerated = sum(
            1 for _ in all_scenarios(
                3, 1, max_round=2, allow_pending=False,
                include_transition=False,
            )
        )
        assert enumerated == expected_scenario_count(
            3, 1, max_round=2, include_transition=False
        )


class TestCanonicalScenarios:
    """Symmetric dedup: orbit sizes partition the full enumeration.

    `all_scenarios` stays deliberately exhaustive (a scenario-only
    quotient is unsound for value-asymmetric algorithms — the joint
    state+scenario quotient lives in `repro.mc.symmetry`); this class
    pins that `canonical_scenarios` is a true partition of it.
    """

    def test_orbit_sizes_sum_to_the_rs_closed_form(self):
        from repro.rounds import canonical_scenarios, expected_scenario_count

        orbits = canonical_scenarios(3, 1, max_round=2, allow_pending=False)
        assert sum(size for _, size in orbits) == expected_scenario_count(
            3, 1, max_round=2
        )
        assert len(orbits) < expected_scenario_count(3, 1, max_round=2)

    def test_orbit_sizes_sum_to_the_rws_enumeration(self):
        from repro.rounds import canonical_scenarios

        full = sum(
            1 for _ in all_scenarios(3, 1, max_round=2, allow_pending=True)
        )
        orbits = canonical_scenarios(3, 1, max_round=2, allow_pending=True)
        assert sum(size for _, size in orbits) == full
        assert len(orbits) < full

    def test_representatives_are_admissible(self):
        from repro.rounds import canonical_scenarios

        for allow_pending in (False, True):
            for scenario, size in canonical_scenarios(
                3, 2, max_round=2, allow_pending=allow_pending
            ):
                assert size >= 1
                assert not validate_scenario(
                    scenario, t=2, allow_pending=allow_pending
                )

    def test_identity_relabel_is_a_no_op(self):
        from repro.rounds import canonical_scenarios, relabel_scenario

        for scenario, _ in canonical_scenarios(
            3, 1, max_round=2, allow_pending=True
        ):
            assert relabel_scenario(scenario, (0, 1, 2)) == scenario

    def test_relabel_permutes_crash_pids(self):
        from repro.rounds import relabel_scenario
        from repro.rounds.scenario import CrashEvent, FailureScenario

        scenario = FailureScenario(
            n=3,
            crashes=(CrashEvent(pid=0, round=1, sent_to=frozenset({2})),),
        )
        swapped = relabel_scenario(scenario, (1, 0, 2))
        assert swapped.crashes[0].pid == 1
        assert swapped.crashes[0].sent_to == frozenset({2})
