"""Property evaluators: the paper's theorems as executable predicates.

Each registered property evaluates a frontier's executed cells — the
``(request, result)`` pairs a :class:`~repro.runtime.sweep.SweepRunner`
produced — and returns the violations it found.  Over an exhaustively
explored frontier an empty violation list is a *machine-checked
verdict*: the property holds on every admissible run of the bounded
space (``HOLDS(exhaustive)``); any violation yields a concrete witness
run (``REFUTED``).

Cell properties (agreement, uniform agreement, validity, termination)
judge each run in isolation; aggregate properties quantify over the
whole frontier — ``lambda`` is the paper's ``Λ(A) = Lat(A, 0)`` worst
case over the failure-free space, and ``indistinguishability`` is the
Theorem 3.1 transport: two runs giving a process identical causal
cones (:func:`repro.obs.causal.cone_signature`) must extract identical
decisions from it.

The property ↔ theorem correspondence is tabulated in
``docs/paper_map.md``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

from repro.errors import ConfigurationError
from repro.runtime.request import ExecutionRequest, ExecutionResult

Pair = tuple[ExecutionRequest, ExecutionResult]


@dataclass
class Violation:
    """One run (or run pair) a property rejected."""

    cell: str
    problems: list[str]
    request: ExecutionRequest | None = None

    def describe(self) -> str:
        lines = [f"{self.cell}:"]
        lines.extend(f"  {problem}" for problem in self.problems)
        return "\n".join(lines)


@dataclass
class PropertyOutcome:
    """A property's judgement over one frontier."""

    holds: bool
    violations: list[Violation] = field(default_factory=list)
    details: dict[str, Any] = field(default_factory=dict)


def correct_pids(request: ExecutionRequest) -> tuple[int, ...]:
    if request.scenario is not None:
        return tuple(sorted(request.scenario.correct))
    return tuple(sorted(request.pattern.correct))


# -- cell properties ----------------------------------------------------------


def agreement_problems(
    request: ExecutionRequest, result: ExecutionResult
) -> list[str]:
    """No two *correct* processes decide differently (paper Sec. 2)."""
    decided = {
        pid: result.decisions[pid][1]
        for pid in correct_pids(request)
        if pid in result.decisions
    }
    values = set(decided.values())
    if len(values) <= 1:
        return []
    return [
        "correct processes disagree: "
        + ", ".join(
            f"p{pid} -> {value!r}" for pid, value in sorted(decided.items())
        )
    ]


def uniform_agreement_problems(
    request: ExecutionRequest, result: ExecutionResult
) -> list[str]:
    """No two processes — crashed deciders included — decide differently.

    The engines record a decision taken in a crash round with
    ``applies_transition`` too, so ``result.decisions`` is exactly the
    uniform-agreement quantification domain (paper Sec. 5).
    """
    values = {value for _, value in result.decisions.values()}
    if len(values) <= 1:
        return []
    return [
        "processes disagree (uniformly): "
        + ", ".join(
            f"p{pid} -> {entry[1]!r}"
            for pid, entry in sorted(result.decisions.items())
        )
    ]


def validity_problems(
    request: ExecutionRequest, result: ExecutionResult
) -> list[str]:
    """Every decided value is some process's initial value."""
    initial = set(request.values)
    bad = {
        pid: entry[1]
        for pid, entry in result.decisions.items()
        if entry[1] not in initial
    }
    if not bad:
        return []
    return [
        f"decided value(s) outside the initial set {sorted(initial)}: "
        + ", ".join(f"p{pid} -> {value!r}" for pid, value in sorted(bad.items()))
    ]


def termination_problems(
    request: ExecutionRequest,
    result: ExecutionResult,
    *,
    by_round: int,
) -> list[str]:
    """Every correct process decides within ``by_round`` rounds."""
    problems = []
    for pid in correct_pids(request):
        entry = result.decisions.get(pid)
        if entry is None:
            problems.append(f"p{pid} never decided")
        elif entry[0] > by_round:
            problems.append(
                f"p{pid} decided in round {entry[0]} > bound {by_round}"
            )
    return problems


# -- aggregate properties -----------------------------------------------------


def parse_bound(bound: str) -> tuple[str, int]:
    """Parse a Λ bound spec (``'==1'``, ``'>=2'``, ``'<=3'``)."""
    for op in ("==", ">=", "<="):
        if bound.startswith(op):
            try:
                return op, int(bound[len(op) :])
            except ValueError:
                break
    raise ConfigurationError(
        f"malformed bound {bound!r} (want ==K, >=K or <=K)"
    )


def _bound_holds(op: str, value: int, limit: int) -> bool:
    if op == "==":
        return value == limit
    if op == ">=":
        return value >= limit
    return value <= limit


#: Per-algorithm default Λ bounds, straight from the paper: A1 achieves
#: ``Λ = 1`` in RS (Theorem 5.1); every safe RWS algorithm has
#: ``Λ >= 2`` (Theorem 5.2); the FloodSet family decides in exactly
#: ``t + 1`` rounds, failure-free runs included.
def default_lambda_bound(algorithm: str, model: str, t: int) -> str | None:
    if algorithm == "a1":
        return "==1"
    if model == "RWS":
        return ">=2"
    if algorithm in ("floodset", "floodset-ws", "c-opt", "c-opt-ws"):
        return f"=={t + 1}"
    return None


def lambda_outcome(
    pairs: Sequence[Pair], *, bound: str | None
) -> PropertyOutcome:
    """``Λ = Lat(A, 0)``: the worst failure-free latency vs its bound.

    The frontier must be the full failure-free run set
    (:func:`repro.mc.space.lambda_space`); the observed worst case then
    *is* Λ, and the verdict compares it against the claimed bound.
    """
    violations: list[Violation] = []
    worst: int | None = None
    for request, result in pairs:
        if result.latency is None:
            violations.append(
                Violation(
                    cell=request.name,
                    problems=["failure-free run did not terminate"],
                    request=request,
                )
            )
            continue
        worst = (
            result.latency if worst is None else max(worst, result.latency)
        )
    details: dict[str, Any] = {"lambda": worst, "bound": bound}
    if violations:
        return PropertyOutcome(holds=False, violations=violations, details=details)
    if bound is not None and worst is not None:
        op, limit = parse_bound(bound)
        if not _bound_holds(op, worst, limit):
            worst_cells = [
                request.name
                for request, result in pairs
                if result.latency == worst
            ]
            violations.append(
                Violation(
                    cell=worst_cells[0],
                    problems=[
                        f"Λ = {worst} violates the bound {bound} "
                        f"(worst cells: {', '.join(worst_cells[:4])})"
                    ],
                    request=next(
                        request
                        for request, result in pairs
                        if result.latency == worst
                    ),
                )
            )
    return PropertyOutcome(
        holds=not violations, violations=violations, details=details
    )


def indistinguishability_outcome(pairs: Sequence[Pair]) -> PropertyOutcome:
    """Theorem 3.1 as a frontier invariant: equal cones, equal decisions.

    For every process, runs are grouped by the process's causal-cone
    signature; within a group the process's decision must be constant.
    A conflict exhibits two runs the process cannot distinguish in
    which it nevertheless behaves differently — exactly the
    contradiction shape the paper's impossibility arguments build.
    """
    from repro.obs.causal import cone_signature

    groups: dict[tuple[int, tuple], dict[Any, str]] = {}
    violations: list[Violation] = []
    for request, result in pairs:
        for pid in correct_pids(request):
            entry = result.decisions.get(pid)
            if entry is None:
                continue
            signature = cone_signature(result.events, pid)
            seen = groups.setdefault((pid, signature), {})
            if entry[1] not in seen:
                seen[entry[1]] = request.name
            if len(seen) > 1:
                others = sorted(
                    f"{value!r} in {cell}" for value, cell in seen.items()
                )
                violations.append(
                    Violation(
                        cell=request.name,
                        problems=[
                            f"p{pid} has identical causal cones but decides "
                            + " vs ".join(others)
                        ],
                        request=request,
                    )
                )
    return PropertyOutcome(
        holds=not violations,
        violations=violations,
        details={"cone_groups": len(groups)},
    )


# -- registry -----------------------------------------------------------------


@dataclass(frozen=True)
class Property:
    """One checkable property: evaluator + its paper anchor."""

    name: str
    kind: str  # "cell" | "aggregate"
    doc: str
    theorem: str
    #: Cell properties: ``(request, result, **kw) -> problems``.
    cell_evaluator: Callable[..., list[str]] | None = None


PROPERTIES: dict[str, Property] = {
    prop.name: prop
    for prop in (
        Property(
            name="agreement",
            kind="cell",
            doc="no two correct processes decide differently",
            theorem="consensus spec, Sec. 2.2",
            cell_evaluator=agreement_problems,
        ),
        Property(
            name="uniform-agreement",
            kind="cell",
            doc="no two processes decide differently, crashed included",
            theorem="uniform consensus, Sec. 5 / Theorem 5.3",
            cell_evaluator=uniform_agreement_problems,
        ),
        Property(
            name="validity",
            kind="cell",
            doc="every decided value is some process's initial value",
            theorem="consensus spec, Sec. 2.2",
            cell_evaluator=validity_problems,
        ),
        Property(
            name="termination",
            kind="cell",
            doc="every correct process decides within the round bound",
            theorem="FloodSet t+1 bound, Sec. 2.3",
            cell_evaluator=termination_problems,
        ),
        Property(
            name="lambda",
            kind="aggregate",
            doc="the failure-free worst-case latency Λ meets its bound",
            theorem="Theorems 5.1 (Λ(A1)=1) and 5.2 (Λ_RWS >= 2)",
        ),
        Property(
            name="indistinguishability",
            kind="aggregate",
            doc="equal causal cones imply equal decisions (Theorem 3.1)",
            theorem="Theorem 3.1",
        ),
    )
}


def evaluate_property(
    name: str,
    pairs: Sequence[Pair],
    *,
    t: int,
    horizon: int,
    bound: str | None = None,
    by_round: int | None = None,
) -> PropertyOutcome:
    """Judge one property over a frontier's executed cells."""
    prop = PROPERTIES.get(name)
    if prop is None:
        raise ConfigurationError(
            f"unknown property {name!r}; choose from {sorted(PROPERTIES)}"
        )
    if prop.kind == "aggregate":
        if name == "lambda":
            return lambda_outcome(pairs, bound=bound)
        return indistinguishability_outcome(pairs)

    kwargs: dict[str, Any] = {}
    if name == "termination":
        kwargs["by_round"] = by_round if by_round is not None else min(
            t + 1, horizon
        )
    violations = []
    for request, result in pairs:
        problems = prop.cell_evaluator(request, result, **kwargs)
        if problems:
            violations.append(
                Violation(cell=request.name, problems=problems, request=request)
            )
    details: dict[str, Any] = {"cells": len(pairs)}
    details.update(kwargs)
    return PropertyOutcome(
        holds=not violations, violations=violations, details=details
    )


def cell_property_problems(
    name: str,
    request: ExecutionRequest,
    result: ExecutionResult,
    *,
    t: int,
    horizon: int,
    by_round: int | None = None,
) -> list[str]:
    """One cell's problems under a cell property (the shrinker's lens)."""
    prop = PROPERTIES.get(name)
    if prop is None or prop.cell_evaluator is None:
        raise ConfigurationError(
            f"{name!r} is not a per-cell property; cannot evaluate one cell"
        )
    kwargs: dict[str, Any] = {}
    if name == "termination":
        kwargs["by_round"] = by_round if by_round is not None else min(
            t + 1, horizon
        )
    return prop.cell_evaluator(request, result, **kwargs)
