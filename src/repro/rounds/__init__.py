"""Round-based computational models RS and RWS (paper Section 4).

``RS`` is the classical lock-step synchronous round model: every alive
process sends, then every alive process receives *everything that was
sent to it this round* and applies its transition.  It satisfies the
**round synchrony** property: if ``p_i`` is alive at the end of round
``r`` and received no round-``r`` message from ``p_j``, then ``p_j``
failed before sending to ``p_i`` in round ``r``.

``RWS`` (weakly synchronous rounds) is the round model that the
asynchronous model with a perfect failure detector can emulate.  A
message sent in round ``r`` may fail to be delivered even though its
recipient finishes the round — a *pending* message — but then the
**weak round synchrony** property forces the sender to crash by the end
of round ``r+1``.

All nondeterminism (who crashes when, which recipients a crashing
broadcast reached, which sent messages become pending) is reified in
:class:`~repro.rounds.scenario.FailureScenario` objects, which makes
exhaustive exploration — and hence mechanical reproduction of the
paper's latency claims — possible.
"""

from repro.rounds.algorithm import RoundAlgorithm, broadcast
from repro.rounds.scenario import (
    CrashEvent,
    FailureScenario,
    PendingMessage,
    validate_scenario,
)
from repro.rounds.executor import (
    RoundModel,
    RoundRecord,
    RoundRun,
    execute,
    run_rs,
    run_rws,
)
from repro.rounds.validators import (
    check_round_synchrony,
    check_weak_round_synchrony,
)
from repro.rounds.enumeration import (
    all_crash_events,
    all_scenarios,
    all_value_assignments,
    canonical_scenarios,
    expected_scenario_count,
    random_scenario,
    relabel_scenario,
)

__all__ = [
    "RoundAlgorithm",
    "broadcast",
    "CrashEvent",
    "FailureScenario",
    "PendingMessage",
    "validate_scenario",
    "RoundModel",
    "RoundRecord",
    "RoundRun",
    "execute",
    "run_rs",
    "run_rws",
    "check_round_synchrony",
    "check_weak_round_synchrony",
    "all_crash_events",
    "all_scenarios",
    "all_value_assignments",
    "canonical_scenarios",
    "expected_scenario_count",
    "random_scenario",
    "relabel_scenario",
]
