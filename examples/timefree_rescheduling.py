"""Time-freeness, live: reschedule a run without changing its outcome.

Section 2.7 of the paper restricts attention to *time-free* problems —
those whose verdicts depend only on each process's step projection
``S_i``, never on the global interleaving or the clock readings ``T``.
This example extracts a run's causal structure, generates several
alternative interleavings (linear extensions of the causal order), and
re-executes the algorithm under each, showing the decisions never move.

Run:  python examples/timefree_rescheduling.py
"""

import random

from repro.analysis import (
    check_time_free_execution,
    random_linear_extension,
    reexecute_with_projections,
)
from repro.failures import FailurePattern
from repro.sdd import sdd_decision, solve_sdd_ss
from repro.sdd.ss_algorithm import SDDReceiverSS, SDDSender


def main() -> None:
    phi, delta, value = 2, 2, 1
    pattern = FailurePattern.crash_free(2)  # p0 keeps taking (null) steps
    rng = random.Random(4)
    run = solve_sdd_ss(value, pattern, phi=phi, delta=delta, rng=rng)
    automata = [SDDSender(value), SDDReceiverSS(phi, delta)]

    print("original interleaving:")
    print(" ", [f"p{s.pid}" for s in run.schedule])
    print("  receiver decision:", sdd_decision(run))
    print()

    print("five projection-preserving reschedulings:")
    for seed in range(5):
        order = random_linear_extension(run, random.Random(seed))
        replay = reexecute_with_projections(
            run, automata, random.Random(seed)
        )
        interleaving = [f"p{node.pid}" for node in order]
        print(f"  {interleaving} -> decision {sdd_decision(replay)}")
    print()

    problems = check_time_free_execution(
        run,
        automata,
        outcome=lambda r, pid: getattr(r.final_states[pid], "decisions", None),
        rng=random.Random(9),
        attempts=10,
    )
    print(
        "outcome invariant under 10 random reschedulings:",
        "yes" if not problems else problems,
    )
    print()
    print(
        "The SDD verdict is a function of the projections alone — the "
        "formal sense in which SDD is a time-free problem, and hence a "
        "fair witness for comparing SS and SP."
    )


if __name__ == "__main__":
    main()
