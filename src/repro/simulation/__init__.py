"""Step-level message-passing simulation kernel.

This package implements the computational model of Section 2 of the
paper: ``n`` deterministic automata communicating through per-process
message buffers, executed one atomic *step* at a time.  In each step a
single process

1. receives a (possibly empty) set of messages from its buffer,
2. changes its state, and
3. may send one message to a single process.

The kernel is model-agnostic: the asynchronous model, the synchronous
model SS, and the failure-detector model SP are all obtained by
restricting which schedules the :class:`~repro.simulation.executor.StepExecutor`
is driven with (see :mod:`repro.models`).
"""

from repro.simulation.message import Message
from repro.simulation.automaton import StepAutomaton, StepContext, StepOutcome
from repro.simulation.schedule import Step, Schedule
from repro.simulation.run import Run
from repro.simulation.schedulers import (
    Scheduler,
    SchedulerView,
    StepChoice,
    RoundRobinScheduler,
    RandomScheduler,
    ScriptedScheduler,
)
from repro.simulation.executor import StepExecutor

__all__ = [
    "Message",
    "StepAutomaton",
    "StepContext",
    "StepOutcome",
    "Step",
    "Schedule",
    "Run",
    "Scheduler",
    "SchedulerView",
    "StepChoice",
    "RoundRobinScheduler",
    "RandomScheduler",
    "ScriptedScheduler",
    "StepExecutor",
]
