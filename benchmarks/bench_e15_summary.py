"""E15 — the headline table: every algorithm x both round models.

This is the paper's conclusion in one regenerated artefact; the bench
asserts the decisive cells (Λ(A1, RS) = 1; Λ = 2 for every safe RWS
algorithm; the unsafe pairs flagged).
"""

from repro.analysis import format_table, latency_summary_table
from repro.consensus import (
    A1,
    COptFloodSet,
    COptFloodSetWS,
    FloodSet,
    FloodSetWS,
    FOptFloodSet,
    FOptFloodSetWS,
)


def bench_e15_summary_table(once):
    algorithms = [
        FloodSet(),
        FloodSetWS(),
        COptFloodSet(),
        COptFloodSetWS(),
        FOptFloodSet(),
        FOptFloodSetWS(),
        A1(),
    ]
    rows = once(latency_summary_table, algorithms, n=3, t=1)
    by_key = {(row.algorithm, row.model): row for row in rows}
    assert by_key[("A1", "RS")].Lambda == 1
    assert by_key[("FloodSetWS", "RWS")].Lambda == 2
    assert not by_key[("FloodSet", "RWS")].uniform_safe
    assert not by_key[("A1", "RWS")].uniform_safe
    # Keep the rendered artefact inspectable in the bench log.
    print()
    print(format_table(rows))
