"""The asynchronous model (paper Section 2.3).

Admissibility on infinite runs requires: (1) every correct process takes
infinitely many steps, (2) crashed processes take no steps, and (3)
every message sent to a correct process is eventually received.  On the
finite prefixes we execute, (1) and (3) are *liveness* conditions and
can only be checked as diagnostics: the validator reports correct
processes that are starved at the end of the prefix, and messages to
correct processes still undelivered.  Condition (2) is safety and is
checked exactly.
"""

from __future__ import annotations

import random

from repro.models.base import SystemModel
from repro.simulation.run import Run
from repro.simulation.schedulers import RandomScheduler, Scheduler


def check_admissible_prefix(
    run: Run,
    *,
    require_delivery: bool = False,
) -> list[str]:
    """Check the safety part of admissibility; optionally the liveness part.

    Args:
        run: The run prefix to check.
        require_delivery: When True, also report messages to correct
            processes that remained undelivered at the end of the
            prefix.  This turns a liveness condition into a
            horizon-relative diagnostic; use it when the horizon was
            chosen long enough for all deliveries.

    Returns:
        A list of violation descriptions, empty when the prefix is
        consistent with an admissible run.
    """
    violations: list[str] = []
    for step in run.schedule:
        if not run.pattern.is_alive(step.pid, step.time):
            violations.append(
                f"crashed process {step.pid} took step {step.index} "
                f"at time {step.time}"
            )
    if require_delivery:
        for message in run.undelivered_to_correct():
            violations.append(
                f"message {message.uid} ({message.sender}->"
                f"{message.recipient}) to a correct process was never "
                "delivered within the prefix"
            )
    return violations


class AsynchronousModel(SystemModel):
    """The plain asynchronous model: no bounds, no detector."""

    name = "async"

    def __init__(self, delivery_prob: float = 0.6, max_age: int | None = 40) -> None:
        self.delivery_prob = delivery_prob
        self.max_age = max_age

    def make_scheduler(self, rng: random.Random | None = None) -> Scheduler:
        if rng is None:
            rng = random.Random(0)
        return RandomScheduler(
            rng, delivery_prob=self.delivery_prob, max_age=self.max_age
        )

    def validate(self, run: Run) -> list[str]:
        return check_admissible_prefix(run)
