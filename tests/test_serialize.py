"""Tests for JSON serialization of scenarios, profiles and reports."""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings, strategies as st

import random

from repro.analysis import latency_profile
from repro.commit import commit_rate
from repro.commit.algorithms import SynchronousCommit
from repro.consensus import A1
from repro.core import run_experiment
from repro.errors import ConfigurationError
from repro.rounds import RoundModel, random_scenario
from repro.serialize import (
    commit_report_to_dict,
    profile_from_dict,
    profile_to_dict,
    result_from_dict,
    result_to_dict,
    scenario_from_dict,
    scenario_from_json,
    scenario_to_dict,
    scenario_to_json,
)
from repro.workloads import a1_rws_disagreement, floodset_rws_violation


class TestScenarioRoundTrip:
    @pytest.mark.parametrize(
        "scenario",
        [a1_rws_disagreement(3), floodset_rws_violation(3)],
        ids=["a1", "floodset"],
    )
    def test_named_scenarios_round_trip(self, scenario):
        assert scenario_from_json(scenario_to_json(scenario)) == scenario

    def test_json_is_stable(self):
        scenario = a1_rws_disagreement(3)
        assert scenario_to_json(scenario) == scenario_to_json(scenario)

    def test_dict_shape(self):
        data = scenario_to_dict(floodset_rws_violation(3))
        assert data["n"] == 3
        assert data["crashes"][0]["pid"] == 0
        assert len(data["pending"]) == 2

    def test_missing_field_raises(self):
        with pytest.raises(ConfigurationError):
            scenario_from_dict({"crashes": []})

    @settings(max_examples=50, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10**6))
    def test_random_scenarios_round_trip(self, seed):
        rng = random.Random(seed)
        scenario = random_scenario(
            4, 2, max_round=3, allow_pending=True, rng=rng
        )
        assert scenario_from_json(scenario_to_json(scenario)) == scenario


class TestProfileRoundTrip:
    def test_round_trip(self):
        profile = latency_profile(A1(), 3, 1, RoundModel.RS)
        data = profile_to_dict(profile)
        json.dumps(data)  # must be JSON-representable
        restored = profile_from_dict(data)
        assert restored.Lat == profile.Lat
        assert restored.lat_by_config == profile.lat_by_config
        assert restored.Lat_by_failures == profile.Lat_by_failures


class TestResultRoundTrip:
    def test_round_trip(self):
        result = run_experiment("E2")
        data = result_to_dict(result)
        json.dumps(data)
        restored = result_from_dict(data)
        assert restored.exp_id == "E2"
        assert restored.ok == result.ok
        assert restored.measured == result.measured


class TestCommitReportDict:
    def test_shape_and_json(self):
        report = commit_rate(SynchronousCommit(), RoundModel.RS)
        data = commit_report_to_dict(report)
        json.dumps(data)
        assert data["commit_rate"] == 1.0
        assert data["violations"] == []
