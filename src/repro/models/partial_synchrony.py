"""Partial synchrony: the Dwork–Lynch–Stockmeyer middle ground.

The paper's introduction situates SS and the asynchronous model at the
two ends of the timing spectrum and notes that in the *partially
synchronous* models of [12], "time-out mechanisms can also be used to
implement an eventual perfect failure detector".  This module supplies
the substrate for reproducing that remark: a model whose runs respect
the Φ/Δ synchrony conditions only from an unknown **global
stabilisation time (GST)** onwards.  Before GST the scheduler is fully
asynchronous (arbitrary interleaving and delays); after it, the SS
bounds hold for the remaining suffix.

The companion detector lives in
:mod:`repro.failures.timeout_ep`: an adaptive-timeout heartbeat module
whose per-peer timeouts grow on every refuted suspicion, so that after
GST false suspicions die out — eventually perfect (◊P).
"""

from __future__ import annotations

import random

from repro.errors import ConfigurationError
from repro.models.base import SystemModel
from repro.models.ss import SSScheduler, check_message_synchrony, check_process_synchrony
from repro.simulation.run import Run
from repro.simulation.schedule import Schedule
from repro.simulation.schedulers import (
    RandomScheduler,
    Scheduler,
    SchedulerView,
    StepChoice,
)


class GSTScheduler(Scheduler):
    """Asynchronous before GST, SS-admissible after.

    Message-delay handling at the boundary: once the global step index
    reaches ``gst``, delivery deadlines are computed as if every older
    message had been sent at GST, so the Δ bound holds for the suffix
    without rewriting history.
    """

    def __init__(
        self,
        phi: int,
        delta: int,
        gst: int,
        rng: random.Random | None = None,
        pre_gst_delivery_prob: float = 0.3,
    ) -> None:
        if gst < 0:
            raise ConfigurationError("GST must be non-negative")
        self.gst = gst
        self._rng = rng if rng is not None else random.Random(0)
        self._chaos = RandomScheduler(
            self._rng,
            delivery_prob=pre_gst_delivery_prob,
            max_age=None,  # no delivery bound before GST
        )
        self._ss = SSScheduler(phi, delta, rng=self._rng)
        self.delta = delta

    def choose(self, view: SchedulerView) -> StepChoice | None:
        if view.time < self.gst:
            return self._chaos.choose(view)
        # Post-GST: delegate interleaving to the SS scheduler, but widen
        # delivery to treat pre-GST messages as sent at GST.
        choice = self._ss.choose(view)
        if choice is None or choice.deliver_uids is None:
            return choice
        deliver = set(choice.deliver_uids)
        for message in view.buffered(choice.pid):
            effective_sent = max(message.sent_step, self.gst)
            if view.time - effective_sent >= self.delta:
                deliver.add(message.uid)
        return StepChoice(pid=choice.pid, deliver_uids=frozenset(deliver))


def validate_post_gst(run: Run, phi: int, delta: int, gst: int) -> list[str]:
    """Check the SS conditions on the post-GST suffix of a run.

    Process synchrony is checked over windows lying entirely after GST;
    message synchrony over messages sent (or still undelivered) after
    GST, with pre-GST messages deemed sent at GST.
    """
    suffix = Schedule(n=run.n)
    offset = None
    for step in run.schedule:
        if step.time < gst:
            continue
        if offset is None:
            offset = step.index
        # Re-index the suffix so window arithmetic starts at zero; the
        # kernel keeps time == index, so times shift identically.
        suffix.append(
            type(step)(
                index=step.index - offset,
                time=step.time - offset,
                pid=step.pid,
                received_uids=step.received_uids,
                sent_uid=step.sent_uid,
                sent_to=step.sent_to,
                local_step=step.local_step,
                suspects=step.suspects,
            )
        )
    if offset is None:
        return []  # nothing executed after GST

    # Messages already delivered before GST impose no suffix obligation.
    delivered_pre_gst: set[int] = set()
    for step in run.schedule:
        if step.time < gst:
            delivered_pre_gst.update(step.received_uids)
    # Message synchrony in the suffix frame: pre-GST sends count as
    # sent at GST (suffix index 0).
    shifted_messages = {}
    for uid, message in run.messages.items():
        if uid in delivered_pre_gst:
            continue
        shifted_messages[uid] = type(message)(
            uid=message.uid,
            sender=message.sender,
            recipient=message.recipient,
            payload=message.payload,
            sent_step=max(message.sent_step - offset, 0),
        )
    # Crash times move to the suffix frame as well (clamped at zero for
    # pre-GST crashes: dead from the suffix's start).
    from repro.failures.pattern import FailurePattern

    shifted_pattern = FailurePattern.with_crashes(
        run.n,
        {
            pid: max(crash_time - offset, 0)
            for pid, crash_time in run.pattern.crash_times.items()
        },
    )
    suffix_run = Run(
        n=run.n,
        pattern=shifted_pattern,
        schedule=suffix,
        initial_states={},
        final_states={},
        messages=shifted_messages,
        undelivered=run.undelivered,
        history=run.history,
    )
    violations = check_process_synchrony(suffix_run, phi)
    violations.extend(check_message_synchrony(suffix_run, delta))
    return violations


class PartiallySynchronousModel(SystemModel):
    """Asynchrony until GST, then the SS bounds hold forever."""

    name = "partial-synchrony"

    def __init__(
        self,
        phi: int = 1,
        delta: int = 1,
        gst: int = 50,
        pre_gst_delivery_prob: float = 0.3,
    ) -> None:
        if phi < 1 or delta < 1:
            raise ConfigurationError("bounds require Φ >= 1 and Δ >= 1")
        if gst < 0:
            raise ConfigurationError("GST must be non-negative")
        self.phi = phi
        self.delta = delta
        self.gst = gst
        self.pre_gst_delivery_prob = pre_gst_delivery_prob

    def make_scheduler(self, rng: random.Random | None = None) -> Scheduler:
        return GSTScheduler(
            self.phi,
            self.delta,
            self.gst,
            rng=rng,
            pre_gst_delivery_prob=self.pre_gst_delivery_prob,
        )

    def validate(self, run: Run) -> list[str]:
        violations = []
        for step in run.schedule:
            if not run.pattern.is_alive(step.pid, step.time):
                violations.append(
                    f"crashed process {step.pid} took step {step.index}"
                )
        violations.extend(
            validate_post_gst(run, self.phi, self.delta, self.gst)
        )
        return violations
