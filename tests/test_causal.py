"""Tests for happens-before reconstruction, critical paths and forensics.

The causal layer (``repro.obs.causal`` / ``repro.obs.critical``) must
recover the paper's latency structure from traces alone: the critical
path behind every decision counts exactly the Λ message hops of
``analysis/latency.py`` (Λ(A1)=1, Λ(FloodSet/RWS)=2 on failure-free
runs), causal tracing must not perturb serialized traces by a single
byte, and the live runtime's wall-latency legs must tile each
decision's measured latency exactly.
"""

from __future__ import annotations

import json

import pytest

from repro.analysis import latency_profile
from repro.cli.main import main
from repro.obs import events_from_jsonl_lines
from repro.obs.causal import (
    CausalObserver,
    annotate,
    cone_signature,
    cones_indistinguishable,
    round_msg_id,
)
from repro.obs.critical import (
    LEG_KINDS,
    causal_summary,
    critical_paths,
    suspicion_forensics,
    verify_round_paths,
)
from repro.obs.events import clock_kind, logical_clock
from repro.obs.report import causal_cells
from repro.obs.schema import validate_event_dict
from repro.rounds import RoundModel
from repro.runtime import (
    ALGORITHM_FACTORIES,
    SweepRunner,
    e10_lambda_space,
    execute_request,
    oracle_sweep_space,
)


@pytest.fixture(scope="module")
def lambda_cells():
    """Every failure-free Λ-space cell, executed once: (request, result)."""
    space = e10_lambda_space()
    return [(request, execute_request(request)) for request in space.requests]


@pytest.fixture(scope="module")
def oracle_sweep():
    """A small chaos sweep (workloads + adversaries + emulations)."""
    space = oracle_sweep_space(count=3)
    sweep = SweepRunner(jobs=1).run(space)
    by_name = {request.name: request for request in space.requests}
    return [(by_name[result.name], result) for result in sweep.results]


class TestLambdaCriterion:
    """Critical-path hop counts recover the paper's Λ measure."""

    def test_path_length_equals_decide_latency_per_run(self, lambda_cells):
        for request, result in lambda_cells:
            paths = critical_paths(result.events)
            assert paths, request.name
            for path in paths:
                assert path.length == result.latency, request.name

    def test_max_path_over_configs_is_lambda(self, lambda_cells):
        observed: dict[tuple[str, str], int] = {}
        for request, result in lambda_cells:
            longest = max(p.length for p in critical_paths(result.events))
            key = (request.algorithm, request.model)
            observed[key] = max(observed.get(key, 0), longest)
        for (algorithm, model), longest in observed.items():
            profile = latency_profile(
                ALGORITHM_FACTORIES[algorithm](), 3, 1, RoundModel[model]
            )
            assert longest == profile.Lambda, algorithm

    def test_paper_separation_shows_in_the_depths(self, lambda_cells):
        depths = {
            request.algorithm: max(
                p.length for p in critical_paths(result.events)
            )
            for request, result in lambda_cells
        }
        assert depths["a1"] == 1
        assert depths["floodset-ws"] == 2

    def test_no_lambda_bound_anomalies(self, lambda_cells):
        for request, result in lambda_cells:
            assert verify_round_paths(result.events) == [], request.name


class TestOracleSweep:
    """The chaos sweep stays anomaly-free under causal analysis."""

    def test_every_cell_verifies(self, oracle_sweep):
        analyzed = 0
        for request, result in oracle_sweep:
            if not result.events:
                continue
            analyzed += 1
            assert verify_round_paths(result.events) == [], request.name
        assert analyzed > 0

    def test_causal_cells_summary(self, oracle_sweep):
        summary = causal_cells(
            (request.name, result.events) for request, result in oracle_sweep
        )
        assert summary is not None
        assert summary["anomaly_cells"] == []
        assert summary["clocks"] == ["logical"]
        assert "warning" not in summary
        assert any(
            cell["max_path_length"] >= 2 for cell in summary["cells"]
        )

    def test_causal_cells_warns_on_mixed_clocks(self, oracle_sweep):
        import dataclasses

        _, result = next(
            (req, res) for req, res in oracle_sweep if res.events
        )
        walled = [
            dataclasses.replace(event, ts=0.001 * (i + 1))
            for i, event in enumerate(result.events)
        ]
        summary = causal_cells(
            [("logical-cell", result.events), ("wall-cell", walled)]
        )
        assert sorted(summary["clocks"]) == ["logical", "wall"]
        assert "warning" in summary


class TestByteParity:
    """Causal capture must not change serialized traces at all."""

    def test_serialized_events_carry_no_extra(self, lambda_cells):
        for _, result in lambda_cells:
            for event in result.events:
                assert "extra" not in event.to_dict()

    def test_causal_observer_leaves_trace_byte_identical(self):
        request = e10_lambda_space().requests[0]
        plain = execute_request(request)
        observer = CausalObserver(clock=logical_clock())
        observed = execute_request(request, observer=observer)
        assert [e.to_json() for e in plain.events] == [
            e.to_json() for e in observed.events
        ]
        assert observer.engine_msg_ids  # ids captured out of band

    def test_engine_ids_match_structural_pairing_on_rounds(self):
        request = next(
            r for r in oracle_sweep_space(count=2).requests
            if r.engine == "rounds"
        )
        observer = CausalObserver(clock=logical_clock())
        result = execute_request(request, observer=observer)
        engine_pairs = observer.graph().message_pairs()
        structural_pairs = annotate(result.events).message_pairs()
        assert structural_pairs == engine_pairs

    def test_emulation_structural_pairs_subset_of_engine(self):
        request = next(
            r for r in oracle_sweep_space(count=2).requests
            if r.engine == "rws_on_sp"
        )
        observer = CausalObserver(clock=logical_clock())
        result = execute_request(request, observer=observer)
        engine_pairs = observer.graph().message_pairs()
        structural_pairs = annotate(result.events).message_pairs()
        assert set(structural_pairs.items()) <= set(engine_pairs.items())


class TestCausalGraph:
    """Clock and cone invariants of the reconstructed DAG."""

    @pytest.fixture(scope="class")
    def graph_and_events(self):
        request = next(
            r for r in e10_lambda_space().requests
            if r.algorithm == "floodset-ws"
        )
        result = execute_request(request)
        return annotate(result.events), result.events

    def test_lamport_increases_along_edges(self, graph_and_events):
        graph, _ = graph_and_events
        for edge in graph.edges():
            assert graph.lamport[edge.src] < graph.lamport[edge.dst]

    def test_vector_clock_dominates_parents(self, graph_and_events):
        graph, _ = graph_and_events
        for edge in graph.edges():
            for pid, tick in graph.vector[edge.src].items():
                assert graph.vector[edge.dst].get(pid, 0) >= tick

    def test_decide_cone_spans_all_processes(self, graph_and_events):
        graph, events = graph_and_events
        for index in graph.decide_indices():
            cone_pids = {
                graph.proc[i]
                for i in graph.cone(index)
                if graph.proc[i] is not None
            }
            # FloodSet's decision causally depends on every process.
            assert cone_pids == {0, 1, 2}

    def test_round_msg_id_is_stable(self):
        assert round_msg_id(2, 0, 1) == "r2:0>1"

    def test_clock_kind(self, graph_and_events):
        _, events = graph_and_events
        assert clock_kind(events) == "logical"


class TestIndistinguishability:
    """Causal cones mechanize Theorem 3.1's premise."""

    @pytest.fixture(scope="class")
    def quadruple(self):
        from repro.sdd import SP_CANDIDATE_FACTORIES, sdd_quadruple_traces

        return sdd_quadruple_traces(SP_CANDIDATE_FACTORIES["timeout"])

    def test_receiver_cones_coincide_within_pairs(self, quadruple):
        from repro.sdd.spec import RECEIVER

        assert cones_indistinguishable(
            quadruple["r0"].events, quadruple["r0'"].events, RECEIVER
        )
        assert cones_indistinguishable(
            quadruple["r1"].events, quadruple["r1'"].events, RECEIVER
        )

    def test_all_four_runs_blind_the_receiver(self, quadruple):
        # The timeout candidate decides before the delayed message can
        # arrive, so *every* run in the quadruple looks the same to the
        # receiver — the mechanized form of why the candidate fails SDD.
        from repro.sdd.spec import RECEIVER

        signatures = {
            cone_signature(trace.events, RECEIVER)
            for trace in quadruple.values()
        }
        assert len(signatures) == 1

    def test_cone_signature_separates_different_inputs(self, lambda_cells):
        # Two failure-free FloodSet runs with different initial values
        # must present different causal cones to every process.
        results = [
            result
            for request, result in lambda_cells
            if request.algorithm == "floodset-ws"
        ]
        assert not cones_indistinguishable(
            results[0].events, results[-1].events, 0
        )
        assert cones_indistinguishable(
            results[0].events, results[0].events, 0
        )


class TestSchema:
    """`extra` is validated as a typed side band."""

    def _event(self, **extra):
        return {
            "kind": "msg_sent",
            "ts": 1.0,
            "pid": 1,
            "peer": 0,
            "extra": extra,
        }

    def test_well_typed_extra_accepted(self):
        assert validate_event_dict(self._event(msg_id=3, wall_s=0.5)) == []

    def test_bad_msg_id_type_rejected(self):
        problems = validate_event_dict(self._event(msg_id=[1, 2]))
        assert any("msg_id" in p for p in problems)

    def test_unknown_extra_keys_allowed(self):
        assert validate_event_dict(self._event(custom="anything")) == []


@pytest.fixture(scope="module")
def live_trace(tmp_path_factory):
    """One adversarial live run with a crash, serialized to JSONL."""
    path = tmp_path_factory.mktemp("live") / "trace.jsonl"
    code = main(
        [
            "live",
            "--algorithm",
            "floodset",
            "--net-profile",
            "adversarial",
            "--crash",
            "2@50",
            "--seed",
            "7",
            "--jsonl",
            str(path),
        ]
    )
    assert code == 0
    return path, events_from_jsonl_lines(
        path.read_text(encoding="utf-8").splitlines()
    )


class TestLiveAttribution:
    """Wall-latency legs tile each live decision exactly."""

    def test_legs_sum_to_wall_latency(self, live_trace):
        _, events = live_trace
        timed = [
            p for p in critical_paths(events) if p.wall_latency_s is not None
        ]
        assert timed
        for path in timed:
            assert path.legs
            assert {leg.kind for leg in path.legs} <= set(LEG_KINDS)
            assert sum(leg.seconds for leg in path.legs) == pytest.approx(
                path.wall_latency_s, abs=1e-9
            )

    def test_attribution_names_network_legs(self, live_trace):
        _, events = live_trace
        kinds = {
            leg.kind
            for path in critical_paths(events)
            for leg in path.legs
        }
        # The adversarial profile forces at least one retransmitted leg.
        assert "retransmit" in kinds

    def test_suspicions_are_justified_with_forensics(self, live_trace):
        _, events = live_trace
        reports = suspicion_forensics(events)
        assert reports
        for report in reports:
            assert report.suspected == 2
            assert report.justified is True
            assert report.misses is not None
            assert report.threshold is not None
            assert report.silence_s is not None and report.silence_s > 0

    def test_live_trace_passes_causal_layer(self, live_trace):
        path, events = live_trace
        import importlib.util
        from pathlib import Path

        script = (
            Path(__file__).resolve().parent.parent
            / "scripts"
            / "check_trace.py"
        )
        spec = importlib.util.spec_from_file_location("check_trace", script)
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        assert module.causal_problems(events) == []
        assert module.main([str(path), "--causal"]) == 0

    def test_serialized_live_clock_is_logical(self, live_trace):
        _, events = live_trace
        assert clock_kind(events) == "logical"
        # The wall clock rides in the side band instead.
        assert any(
            isinstance(e.extra, dict) and "wall_s" in e.extra for e in events
        )

    def test_causal_summary_reports_slowest_decision(self, live_trace):
        _, events = live_trace
        summary = causal_summary(events)
        assert summary["decisions"]
        assert summary["anomalies"] == []
        slowest = summary["slowest_decision"]
        assert slowest["wall_latency_s"] > 0
        assert 0.0 <= slowest["retransmit_share"] <= 1.0


class TestCausalCLI:
    """`repro causal` over traces and run directories."""

    @pytest.fixture(scope="class")
    def det_trace(self, tmp_path_factory):
        path = tmp_path_factory.mktemp("det") / "trace.jsonl"
        assert main(
            ["trace", "floodset-rws-violation", "--jsonl", str(path)]
        ) == 0
        return path

    def test_trace_report(self, det_trace, capsys):
        assert main(["causal", str(det_trace)]) == 0
        out = capsys.readouterr().out
        assert "message hops" in out
        assert "decide" in out

    def test_trace_json(self, det_trace, capsys):
        assert main(["causal", str(det_trace), "--json"]) == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["decisions"]
        assert summary["clock"] == "logical"

    def test_decide_filter(self, det_trace, capsys):
        deciders = [
            json.loads(line)["pid"]
            for line in det_trace.read_text(encoding="utf-8").splitlines()
            if json.loads(line)["kind"] == "decide"
        ]
        assert main(
            ["causal", str(det_trace), "--decide", str(deciders[0])]
        ) == 0
        assert main(["causal", str(det_trace), "--decide", "99"]) == 2
        capsys.readouterr()

    def test_suspect_filter_without_suspicions(self, det_trace, capsys):
        assert main(["causal", str(det_trace), "--suspect", "99"]) == 2
        capsys.readouterr()

    def test_diagram(self, det_trace, capsys):
        assert main(["causal", str(det_trace), "--diagram"]) == 0
        out = capsys.readouterr().out
        assert "-- round" in out
        assert "*" in out  # the marked critical path

    def test_live_trace_report_shows_legs(self, live_trace, capsys):
        path, _ = live_trace
        assert main(["causal", str(path)]) == 0
        out = capsys.readouterr().out
        assert "ms wall" in out
        assert "suspect" in out

    def test_rundir_report(self, tmp_path, capsys):
        root = tmp_path / "runs"
        assert main(
            [
                "sweep",
                "oracle-sweep",
                "--count",
                "2",
                "--run-dir",
                str(root),
            ]
        ) == 0
        capsys.readouterr()
        assert main(["causal", str(root), "--json"]) == 0
        cells = json.loads(capsys.readouterr().out)
        assert cells
        assert all(cell["max_path_length"] >= 1 for cell in cells)
        assert main(["causal", str(root)]) == 0
        out = capsys.readouterr().out
        assert "path-hops" in out

    def test_missing_rundir(self, tmp_path, capsys):
        empty = tmp_path / "empty"
        empty.mkdir()
        assert main(["causal", str(empty)]) == 2
        capsys.readouterr()


class TestDiffClockWarning:
    """`repro diff` flags wall-vs-logical timestamp mixes."""

    def test_warns_on_mixed_clocks(self, tmp_path, capsys):
        logical = tmp_path / "logical.jsonl"
        assert main(
            ["trace", "floodset-rws-violation", "--jsonl", str(logical)]
        ) == 0
        capsys.readouterr()
        wall = tmp_path / "wall.jsonl"
        lines = []
        for i, line in enumerate(
            logical.read_text(encoding="utf-8").splitlines()
        ):
            data = json.loads(line)
            data["ts"] = 0.001 * (i + 1)
            lines.append(json.dumps(data))
        wall.write_text("\n".join(lines) + "\n", encoding="utf-8")
        assert main(["diff", str(logical), str(wall)]) == 0
        err = capsys.readouterr().err
        assert "logical clock" in err and "wall clock" in err

    def test_silent_on_matching_clocks(self, tmp_path, capsys):
        trace = tmp_path / "trace.jsonl"
        assert main(
            ["trace", "floodset-rws-violation", "--jsonl", str(trace)]
        ) == 0
        capsys.readouterr()
        assert main(["diff", str(trace), str(trace)]) == 0
        assert "warning" not in capsys.readouterr().err
