"""Tests for failure patterns (paper Section 2.1)."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, strategies as st

from repro.errors import ConfigurationError
from repro.failures import (
    FailurePattern,
    all_patterns,
    crash_free,
    initially_dead,
    random_pattern,
    single_crash,
)


class TestFailurePatternBasics:
    def test_crash_free_has_no_faulty(self):
        pattern = FailurePattern.crash_free(4)
        assert pattern.faulty == frozenset()
        assert pattern.correct == frozenset(range(4))

    def test_crashed_by_respects_crash_time(self):
        pattern = FailurePattern.with_crashes(3, {1: 5})
        assert pattern.crashed_by(4) == frozenset()
        assert pattern.crashed_by(5) == frozenset({1})
        assert pattern.crashed_by(100) == frozenset({1})

    def test_is_alive_boundary(self):
        pattern = FailurePattern.with_crashes(2, {0: 3})
        assert pattern.is_alive(0, 2)
        assert not pattern.is_alive(0, 3)

    def test_initially_dead_only_at_time_zero(self):
        pattern = FailurePattern.with_crashes(3, {0: 0, 1: 1})
        assert pattern.initially_dead == frozenset({0})

    def test_correct_faulty_partition(self):
        pattern = FailurePattern.with_crashes(5, {0: 1, 3: 9})
        assert pattern.faulty | pattern.correct == frozenset(range(5))
        assert pattern.faulty & pattern.correct == frozenset()

    def test_crash_time_lookup(self):
        pattern = FailurePattern.with_crashes(2, {1: 7})
        assert pattern.crash_time(1) == 7
        assert pattern.crash_time(0) is None

    def test_num_failures(self):
        assert FailurePattern.with_crashes(4, {0: 1, 2: 2}).num_failures() == 2

    def test_describe_mentions_crashes(self):
        text = FailurePattern.with_crashes(3, {2: 4}).describe()
        assert "p2@4" in text

    def test_describe_crash_free(self):
        assert "crash-free" in FailurePattern.crash_free(3).describe()


class TestFailurePatternValidation:
    def test_rejects_nonpositive_n(self):
        with pytest.raises(ConfigurationError):
            FailurePattern(n=0)

    def test_rejects_unknown_process(self):
        with pytest.raises(ConfigurationError):
            FailurePattern.with_crashes(2, {5: 1})

    def test_rejects_negative_crash_time(self):
        with pytest.raises(ConfigurationError):
            FailurePattern.with_crashes(2, {0: -1})


class TestGenerators:
    def test_crash_free_generator(self):
        assert crash_free(3).num_failures() == 0

    def test_initially_dead_generator(self):
        pattern = initially_dead(4, [1, 2])
        assert pattern.initially_dead == frozenset({1, 2})

    def test_single_crash_generator(self):
        pattern = single_crash(3, 2, 10)
        assert pattern.crash_time(2) == 10
        assert pattern.num_failures() == 1

    def test_random_pattern_respects_bound(self):
        rng = random.Random(1)
        for _ in range(50):
            pattern = random_pattern(5, 2, 20, rng)
            assert pattern.num_failures() <= 2
            assert all(0 <= ct <= 20 for ct in pattern.crash_times.values())

    def test_random_pattern_rejects_max_failures_eq_n(self):
        with pytest.raises(ConfigurationError):
            random_pattern(3, 3, 10, random.Random(0))

    def test_all_patterns_count(self):
        # n=3, <=1 failure, 2 times: 1 + 3*2 = 7 patterns.
        patterns = list(all_patterns(3, 1, [0, 5]))
        assert len(patterns) == 7

    def test_all_patterns_unique(self):
        patterns = list(all_patterns(3, 2, [0, 1]))
        keys = {tuple(sorted(p.crash_times.items())) for p in patterns}
        assert len(keys) == len(patterns)


@given(
    n=st.integers(min_value=1, max_value=6),
    crashes=st.dictionaries(
        st.integers(min_value=0, max_value=5),
        st.integers(min_value=0, max_value=30),
        max_size=3,
    ),
    t1=st.integers(min_value=0, max_value=40),
)
def test_monotonicity_property(n, crashes, t1):
    """F(t) ⊆ F(t+1): crashes are permanent (hypothesis)."""
    crashes = {pid: ct for pid, ct in crashes.items() if pid < n}
    pattern = FailurePattern.with_crashes(n, crashes)
    assert pattern.crashed_by(t1) <= pattern.crashed_by(t1 + 1)


@given(
    n=st.integers(min_value=1, max_value=6),
    crashes=st.dictionaries(
        st.integers(min_value=0, max_value=5),
        st.integers(min_value=0, max_value=30),
        max_size=3,
    ),
)
def test_faulty_equals_union_of_crashed(n, crashes):
    """Faulty(F) = ∪_t F(t) (hypothesis)."""
    crashes = {pid: ct for pid, ct in crashes.items() if pid < n}
    pattern = FailurePattern.with_crashes(n, crashes)
    assert pattern.faulty == pattern.crashed_by(1_000)
