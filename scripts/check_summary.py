#!/usr/bin/env python
"""Validate a campaign run directory's machine report.

Usage::

    PYTHONPATH=src python scripts/check_summary.py RUNDIR
    ... | PYTHONPATH=src python scripts/check_summary.py -

Two input forms: a run directory (or a runs root holding exactly one
run), whose manifest + ``summary.json`` are loaded directly, or ``-``
to read a ``repro report RUNDIR --json`` document from stdin.  The
validation is :func:`repro.obs.report.summary_problems` — the schema
and consistency assertions over ``summary.json`` (coverage arithmetic,
resume counters, SLO verdict shape) — plus manifest/summary identity
agreement, the report-pipeline analogue of ``check_trace.py``.

Exits 0 when the summary is valid, 1 otherwise (listing each problem),
2 on usage errors.  Used by ``make report-smoke`` and CI.
"""

from __future__ import annotations

import json
import sys


def main(argv: list[str] | None = None) -> int:
    args = sys.argv[1:] if argv is None else list(argv)
    if len(args) != 1:
        print(__doc__, file=sys.stderr)
        return 2
    try:
        from repro.obs.artifacts import RunDir
        from repro.obs.report import find_run_dir, summary_problems
    except ImportError:
        print(
            "cannot import repro.obs — run with PYTHONPATH=src or after "
            "`pip install -e .`",
            file=sys.stderr,
        )
        return 2

    if args[0] == "-":
        try:
            document = json.load(sys.stdin)
        except ValueError as exc:
            print(f"stdin is not a JSON report document: {exc}", file=sys.stderr)
            return 2
        manifest = document.get("manifest") or {}
        summary = document.get("summary")
        label = "<stdin>"
    else:
        try:
            run = RunDir.load(find_run_dir(args[0]))
        except (FileNotFoundError, ValueError) as exc:
            print(f"cannot load run: {exc}", file=sys.stderr)
            return 2
        manifest = run.manifest
        summary = run.summary()
        label = str(run.path)

    problems = list(summary_problems(summary))
    if summary is None:
        problems = [f"{label}: no summary.json (run not finalized?)"]
    else:
        if manifest.get("run_id") != summary.get("run_id"):
            problems.append(
                f"manifest/summary run_id mismatch: "
                f"{manifest.get('run_id')!r} vs {summary.get('run_id')!r}"
            )
        if manifest.get("kind") != summary.get("kind"):
            problems.append(
                f"manifest/summary kind mismatch: "
                f"{manifest.get('kind')!r} vs {summary.get('kind')!r}"
            )
        failed = [
            v for v in summary.get("slo_verdicts", []) if not v.get("ok")
        ]
        for verdict in failed:
            problems.append(
                f"SLO failed: {verdict.get('slo')} "
                f"(actual {verdict.get('actual')} vs "
                f"threshold {verdict.get('threshold')})"
            )
    if problems:
        for problem in problems:
            print(problem, file=sys.stderr)
        print(f"{label}: INVALID ({len(problems)} problems)")
        return 1
    print(f"{label}: OK (summary schema + SLO verdicts)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
