"""Three ways around the asynchronous impossibility of consensus.

The paper's introduction frames the design space: consensus is
impossible in the pure asynchronous model [13], and systems escape by
adding either *timing assumptions* or *failure detectors*.  The
literature's third escape is *randomization*.  This library implements
a flagship algorithm for each route; this example runs all three on
the same inputs and the same kind of adversity, side by side.

1. Timing   — FloodSet on synchronous rounds (emulated from SS).
2. Detector — Chandra–Toueg's rotating coordinator with ◊S.
3. Coins    — Ben-Or's randomized consensus, no detector at all.

Run:  python examples/three_ways_around_flp.py
"""

import random

from repro.consensus import FloodSet
from repro.failures import FailurePattern
from repro.fdconsensus import ct_decisions, run_ct_consensus
from repro.randomized import benor_decisions, run_benor
from repro.rounds import FailureScenario, run_rs
from repro.workloads import crash_mid_broadcast

VALUES = [0, 1, 1]


def timing_route() -> None:
    print("1. timing assumptions: FloodSet in synchronous rounds")
    clean = run_rs(FloodSet(), VALUES, FailureScenario.failure_free(3), t=1)
    crashed = run_rs(FloodSet(), VALUES, crash_mid_broadcast(3), t=1)
    print(f"   failure-free: decisions {dict(clean.decisions)}")
    print(f"   crash mid-broadcast: decisions {dict(crashed.decisions)}")
    print("   cost: t+1 rounds, always; crashes cannot confuse it.\n")


def detector_route() -> None:
    print("2. failure detectors: Chandra-Toueg consensus with ◊S")
    pattern = FailurePattern.with_crashes(3, {0: 15})
    run = run_ct_consensus(
        VALUES,
        pattern,
        rng=random.Random(2),
        stabilization_time=80,
        false_suspicion_prob=0.4,
        max_steps=15_000,
    )
    rounds = max(state.round for state in run.final_states.values())
    print(f"   coordinator crashed + noisy detector: "
          f"decisions {ct_decisions(run)}")
    print(f"   cost: {rounds} asynchronous round(s), "
          f"{len(run.schedule)} steps; safety never depends on timing.\n")


def randomized_route() -> None:
    print("3. randomization: Ben-Or, no detector, no clocks")
    pattern = FailurePattern.with_crashes(3, {0: 25})
    run = run_benor(VALUES, pattern, rng=random.Random(3), coin_seed=3)
    rounds = max(state.round for state in run.final_states.values())
    print(f"   crash under full asynchrony: decisions {benor_decisions(run)}")
    print(f"   cost: {rounds} round(s) this run — a random variable; "
          "only termination is probabilistic, never agreement.\n")


def main() -> None:
    print(
        "Same inputs (0, 1, 1), one crash, three escapes from FLP:\n"
    )
    timing_route()
    detector_route()
    randomized_route()
    print(
        "The paper's subject is the FIRST two routes at their strongest: "
        "full synchrony (SS) versus perfect detection (SP) — and its "
        "result is that the trade is not free: SS solves strictly more "
        "(SDD) and decides uniform consensus one round sooner."
    )


if __name__ == "__main__":
    main()
