"""Mutation-testing hooks: known bugs injectable behind an env flag.

The differential fuzzing harness (:mod:`repro.fuzz`) claims to detect
divergences between the engines.  That claim is itself testable: inject
a *known* bug into exactly one engine and assert the harness finds it
within a bounded budget and shrinks it to a minimal counterexample.

Setting ``REPRO_INJECT_BUG=<name>`` activates one of the registered
mutations below.  The flag is read at call time (never cached) so tests
can flip it per-case, and an active injection is folded into every
:meth:`~repro.runtime.request.ExecutionRequest.cache_key` — a mutated
engine must never poison the result cache of the real code.

This module must stay dependency-free: both the engines and the runtime
import it.
"""

from __future__ import annotations

import os

#: The environment variable that activates an injected bug.
INJECT_ENV = "REPRO_INJECT_BUG"

#: Registered mutations.  Keep descriptions accurate: docs/testing.md
#: lists them verbatim.
KNOWN_INJECTIONS: dict[str, str] = {
    "ss-drop-received": (
        "RS-on-SS emulation: whenever a round transition fires with at "
        "least one sender's message missing (i.e. some process crashed "
        "mid-round), additionally drop the lowest-pid peer message that "
        "*was* received — a round-synchrony violation the rounds engine "
        "never reproduces"
    ),
}


def active_injection() -> str | None:
    """The currently injected bug name, or ``None`` for the real code."""
    name = os.environ.get(INJECT_ENV)
    return name if name else None
