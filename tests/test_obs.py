"""Tests for the observability layer: events, metrics, profiling."""

from __future__ import annotations

import itertools
import json
import random

import pytest

from repro.consensus import FloodSet
from repro.errors import ScenarioError
from repro.failures import FailurePattern
from repro.obs import (
    CompositeObserver,
    EventLog,
    MetricsObserver,
    MetricsRegistry,
    Profiler,
    get_profiler,
    profiled,
    set_profiler,
    validate_event_dict,
    validate_jsonl_lines,
)
from repro.rounds import FailureScenario, run_rs, run_rws
from repro.simulation import RoundRobinScheduler, StepExecutor
from repro.simulation.automaton import IdleAutomaton
from repro.stats import percentile, summarize
from repro.workloads import adversarial_split, floodset_rws_violation


def _counter_clock():
    """Deterministic timestamps: 1.0, 2.0, 3.0, ..."""
    counter = itertools.count(1)
    return lambda: float(next(counter))


class TestEventSequence:
    """The recording-observer contract: exact events, exact order."""

    def run_violation(self):
        log = EventLog(clock=_counter_clock())
        run = run_rws(
            FloodSet(),
            adversarial_split(3),
            floodset_rws_violation(3),
            t=1,
            max_rounds=4,
            observer=log,
        )
        return run, log

    def test_exact_event_sequence(self):
        """3-process FloodSet, one crash, two withheld round-1 copies:
        the full event list, in order."""
        _, log = self.run_violation()
        # (kind, round, pid, peer) for every event; value checked apart.
        shape = [(e.kind, e.round, e.pid, e.peer) for e in log]
        assert shape == [
            ("round_start", 1, None, None),
            # send phase: p0, p1, p2 each broadcast to 0, 1, 2
            ("msg_sent", 1, 0, 0),
            ("msg_sent", 1, 1, 0),
            ("msg_sent", 1, 2, 0),
            ("msg_sent", 1, 0, 1),
            ("msg_sent", 1, 1, 1),
            ("msg_sent", 1, 2, 1),
            ("msg_sent", 1, 0, 2),
            ("msg_sent", 1, 1, 2),
            ("msg_sent", 1, 2, 2),
            # delivery phase: p0's copies to p1 and p2 are withheld
            ("msg_delivered", 1, 0, 0),
            ("msg_withheld", 1, 1, 0),
            ("msg_withheld", 1, 2, 0),
            ("msg_delivered", 1, 0, 1),
            ("msg_delivered", 1, 1, 1),
            ("msg_delivered", 1, 2, 1),
            ("msg_delivered", 1, 0, 2),
            ("msg_delivered", 1, 1, 2),
            ("msg_delivered", 1, 2, 2),
            ("round_start", 2, None, None),
            # round 2: p0 crashes mid-broadcast reaching only p1
            ("msg_sent", 2, 1, 0),
            ("msg_sent", 2, 0, 1),
            ("msg_sent", 2, 1, 1),
            ("msg_sent", 2, 2, 1),
            ("msg_sent", 2, 0, 2),
            ("msg_sent", 2, 1, 2),
            ("msg_sent", 2, 2, 2),
            ("msg_delivered", 2, 1, 0),
            ("msg_delivered", 2, 0, 1),
            ("msg_delivered", 2, 1, 1),
            ("msg_delivered", 2, 2, 1),
            ("msg_delivered", 2, 0, 2),
            ("msg_delivered", 2, 1, 2),
            ("msg_delivered", 2, 2, 2),
            ("crash", 2, 0, None),
            ("decide", 2, 1, None),
            ("decide", 2, 2, None),
            ("halt", 2, 1, None),
            ("halt", 2, 2, None),
        ]

    def test_withheld_events_match_declared_pending(self):
        """Every declared pending message appears as exactly one
        msg_withheld event, and nothing else does."""
        scenario = floodset_rws_violation(3)
        _, log = self.run_violation()
        emitted = {
            (e.peer, e.pid, e.round) for e in log.of_kind("msg_withheld")
        }
        declared = {
            (p.sender, p.recipient, p.round) for p in scenario.pending
        }
        assert emitted == declared
        assert len(log.of_kind("msg_withheld")) == len(scenario.pending)

    def test_disagreement_visible_in_decide_events(self):
        """The trace exposes the paper's violation: two different
        decision values among correct processes."""
        _, log = self.run_violation()
        values = {e.value for e in log.of_kind("decide")}
        assert len(values) == 2

    def test_timestamps_monotonic(self):
        _, log = self.run_violation()
        stamps = [e.ts for e in log]
        assert stamps == sorted(stamps)


class TestNoOpEquivalence:
    """Instrumentation must not perturb execution."""

    def test_results_identical_with_and_without_observer(self):
        kwargs = dict(t=1, max_rounds=4)
        bare = run_rws(
            FloodSet(),
            adversarial_split(3),
            floodset_rws_violation(3),
            **kwargs,
        )
        observed = run_rws(
            FloodSet(),
            adversarial_split(3),
            floodset_rws_violation(3),
            observer=CompositeObserver(EventLog(), MetricsObserver()),
            **kwargs,
        )
        assert bare.rounds == observed.rounds
        assert bare.decisions == observed.decisions
        assert bare.final_states == observed.final_states
        assert bare.num_rounds == observed.num_rounds
        assert bare.latency() == observed.latency()

    def test_step_kernel_identical_with_and_without_observer(self):
        pattern = FailurePattern.crash_free(3)

        def run(observer):
            executor = StepExecutor(
                IdleAutomaton(),
                3,
                pattern,
                RoundRobinScheduler(),
                observer=observer,
            )
            return executor.execute(50)

        bare, observed = run(None), run(EventLog())
        assert len(bare.schedule) == len(observed.schedule)
        assert bare.final_states == observed.final_states


class TestRoundRecordImmutability:
    """The lazily-wrapped delivery maps are genuinely read-only."""

    def test_delivered_views_reject_mutation(self):
        run = run_rs(
            FloodSet(),
            [0, 1, 1],
            FailureScenario.failure_free(3),
            t=1,
        )
        record = run.rounds[0]
        with pytest.raises(TypeError):
            record.delivered[0] = {}
        with pytest.raises(TypeError):
            record.delivered[0][99] = "x"
        with pytest.raises(TypeError):
            record.sent[(0, 0)] = "x"

    def test_delivered_still_reads_like_a_mapping(self):
        run = run_rs(
            FloodSet(),
            [0, 1, 1],
            FailureScenario.failure_free(3),
            t=1,
        )
        record = run.rounds[0]
        assert set(record.delivered) == {0, 1, 2}
        assert record.delivered[1][0] is not None
        assert dict(record.delivered[0]) == dict(record.delivered[0])


class TestMetrics:
    def test_per_round_message_counters(self):
        registry = MetricsRegistry()
        run_rws(
            FloodSet(),
            adversarial_split(3),
            floodset_rws_violation(3),
            t=1,
            max_rounds=4,
            observer=MetricsObserver(registry),
        )
        snap = registry.snapshot()
        counters = snap["counters"]
        assert counters["messages.withheld"] == 2
        assert counters["messages.withheld.round.1"] == 2
        assert counters["messages.sent.round.1"] == 9
        assert counters["messages.sent.round.2"] == 7
        assert (
            counters["messages.sent"]
            == counters["messages.delivered"] + counters["messages.withheld"]
        )
        assert counters["decisions.round.2"] == 2
        assert counters["crashes"] == 1
        assert snap["histograms"]["decision.round"]["p50"] == 2

    def test_scenario_rejection_counter(self):
        registry = MetricsRegistry()
        with pytest.raises(ScenarioError):
            run_rs(
                FloodSet(),
                adversarial_split(3),
                floodset_rws_violation(3),  # pending not allowed in RS
                t=1,
                observer=MetricsObserver(registry),
            )
        assert (
            registry.snapshot()["counters"]["scenario.validation_rejections"]
            == 1
        )

    def test_suspicion_latency_histogram(self):
        from repro.emulation import emulate_rws_on_sp
        import random

        registry = MetricsRegistry()
        emulate_rws_on_sp(
            FloodSet(),
            adversarial_split(3),
            FailurePattern.with_crashes(3, {0: 5}),
            t=1,
            num_rounds=2,
            rng=random.Random(11),
            max_detection_delay=2,
            delivery_prob=0.15,
            max_age=80,
            observer=MetricsObserver(registry),
        )
        snap = registry.snapshot()
        delays = snap["histograms"]["detector.suspicion_delay.steps"]
        assert delays["count"] >= 1
        assert delays["min"] >= 0  # strong accuracy: never before the crash
        assert snap["counters"]["suspicions"] >= 1

    def test_registry_get_or_create(self):
        registry = MetricsRegistry()
        registry.counter("x").inc()
        registry.counter("x").inc(2)
        assert registry.counter("x").value == 3
        registry.gauge("g").set(1.5)
        assert registry.gauge("g").value == 1.5
        registry.histogram("h").observe(1.0)
        assert registry.histogram("h").snapshot()["count"] == 1
        assert registry.histogram("empty").snapshot() == {"count": 0}

    def test_render_mentions_every_instrument(self):
        registry = MetricsRegistry()
        registry.counter("a.count").inc()
        registry.histogram("b.hist").observe(2.0)
        text = registry.render()
        assert "a.count = 1" in text
        assert "b.hist:" in text


class TestProfiler:
    def test_spans_inert_without_profiler(self):
        set_profiler(None)
        with profiled("nothing"):
            pass
        assert get_profiler() is None

    def test_spans_recorded_when_installed(self):
        profiler = Profiler()
        set_profiler(profiler)
        try:
            run_rs(
                FloodSet(),
                [0, 1, 1],
                FailureScenario.failure_free(3),
                t=1,
            )
        finally:
            set_profiler(None)
        snap = profiler.snapshot()
        assert "rounds.execute" in snap
        assert snap["rounds.execute"]["count"] == 1
        assert snap["rounds.execute"]["total_s"] > 0

    def test_merge_into_registry(self):
        profiler = Profiler()
        profiler.record("phase.x", 0.25)
        profiler.record("phase.x", 0.75)
        registry = MetricsRegistry()
        profiler.merge_into(registry)
        snap = registry.snapshot()["histograms"]["profile.phase.x.seconds"]
        assert snap["count"] == 2
        assert snap["mean"] == 0.5


class TestSchema:
    def test_valid_trace_passes(self):
        log = EventLog(clock=_counter_clock())
        run_rws(
            FloodSet(),
            adversarial_split(3),
            floodset_rws_violation(3),
            t=1,
            max_rounds=4,
            observer=log,
        )
        assert validate_jsonl_lines(log.jsonl_lines()) == []

    def test_unknown_kind_rejected(self):
        problems = validate_event_dict({"kind": "teleport", "ts": 1.0})
        assert problems and "unknown event kind" in problems[0]

    def test_missing_fields_rejected(self):
        problems = validate_event_dict({"kind": "msg_withheld", "ts": 1.0})
        assert any("missing field" in p for p in problems)

    def test_extra_fields_rejected(self):
        problems = validate_event_dict(
            {"kind": "crash", "ts": 1.0, "pid": 0, "color": "red"}
        )
        assert any("unknown fields" in p for p in problems)

    def test_bad_json_and_empty_trace(self):
        assert any(
            "not valid JSON" in p for p in validate_jsonl_lines(["{nope"])
        )
        assert validate_jsonl_lines([]) == ["trace contains no events"]

    def test_jsonl_round_trip(self):
        log = EventLog(clock=_counter_clock())
        run_rs(
            FloodSet(), [0, 1, 1], FailureScenario.failure_free(3), t=1,
            observer=log,
        )
        lines = list(log.jsonl_lines())
        decoded = [json.loads(line) for line in lines]
        assert [d["kind"] for d in decoded] == log.kinds()


class TestStatsHelpers:
    def test_stdev_is_sample_stdev(self):
        summary = summarize([1.0, 2.0, 3.0])
        assert summary.stdev == pytest.approx(1.0)  # n-1 denominator
        assert summary.pstdev == pytest.approx((2 / 3) ** 0.5)

    def test_percentile_interpolates(self):
        data = [1, 2, 3, 4]
        assert percentile(data, 0) == 1
        assert percentile(data, 100) == 4
        assert percentile(data, 50) == 2.5
        assert percentile([7], 90) == 7.0

    def test_percentile_rejects_bad_input(self):
        with pytest.raises(ValueError):
            percentile([], 50)
        with pytest.raises(ValueError):
            percentile([1], 101)

    def test_percentile_matches_numpy_bit_for_bit(self):
        """The linear interpolation is numpy.percentile's, exactly.

        The two-branch lerp in :func:`repro.stats.percentile` exists so
        summary statistics agree to the last bit with numpy-based
        tooling; this pins the equality over random sizes, spreads and
        ranks (skipped without the ``fast`` extra installed).
        """
        np = pytest.importorskip("numpy")
        rng = random.Random(20260808)
        for _ in range(500):
            data = [
                rng.uniform(-1e6, 1e6)
                for _ in range(rng.randint(1, 40))
            ]
            p = rng.choice([0.0, 50.0, 100.0, rng.uniform(0.0, 100.0)])
            ours = percentile(data, p)
            theirs = float(np.percentile(data, p))
            assert ours == theirs, (data, p, ours, theirs)


class _ExplodingObserver:
    """An observer whose every hook raises."""

    def __getattr__(self, name):
        def boom(*args, **kwargs):
            raise RuntimeError(f"observer hook {name} exploded")

        return boom


class TestCompositeObserverIsolation:
    """One failing observer must not poison its siblings or the run."""

    def test_failing_observer_does_not_poison_siblings(self):
        log = EventLog(clock=_counter_clock())
        bad = _ExplodingObserver()
        composite = CompositeObserver(bad, log)
        run = run_rws(
            FloodSet(),
            adversarial_split(3),
            floodset_rws_violation(3),
            t=1,
            max_rounds=4,
            observer=composite,
        )
        # the run completed and the healthy sibling saw the full stream
        assert run.decisions
        reference = EventLog(clock=_counter_clock())
        run_rws(
            FloodSet(),
            adversarial_split(3),
            floodset_rws_violation(3),
            t=1,
            max_rounds=4,
            observer=reference,
        )
        assert [e.to_dict() for e in log] == [
            e.to_dict() for e in reference
        ]

    def test_errors_are_recorded_with_hook_and_exception(self):
        bad = _ExplodingObserver()
        composite = CompositeObserver(bad, EventLog())
        composite.round_start(1, [0, 1, 2])
        composite.crash(0, round_index=1)
        assert len(composite.errors) == 2
        observer, hook, exc = composite.errors[0]
        assert observer is bad
        assert hook == "round_start"
        assert isinstance(exc, RuntimeError)
        assert composite.errors[1][1] == "crash"

    def test_order_of_failing_observer_is_irrelevant(self):
        for observers in (
            (_ExplodingObserver(), EventLog()),
            (EventLog(), _ExplodingObserver()),
        ):
            composite = CompositeObserver(*observers)
            composite.decide(0, 1, 2)
            log = next(o for o in observers if isinstance(o, EventLog))
            assert log.kinds() == ["decide"]
            assert len(composite.errors) == 1


class TestProfilerFailurePaths:
    def test_span_closed_when_wrapped_engine_raises(self):
        """An engine that raises mid-execution still records its span —
        the profiler never leaks an open timer."""

        class ExplodingFloodSet(FloodSet):
            def transition(self, pid, state, received):
                raise RuntimeError("engine exploded mid-round")

        profiler = Profiler()
        set_profiler(profiler)
        try:
            with pytest.raises(RuntimeError, match="mid-round"):
                run_rs(
                    ExplodingFloodSet(),
                    [0, 1, 1],
                    FailureScenario.failure_free(3),
                    t=1,
                )
        finally:
            set_profiler(None)
        snap = profiler.snapshot()
        assert snap["rounds.execute"]["count"] == 1

    def test_span_context_reraises(self):
        profiler = Profiler()
        set_profiler(profiler)
        try:
            with pytest.raises(ValueError, match="inner"):
                with profiled("failing.phase"):
                    raise ValueError("inner")
        finally:
            set_profiler(None)
        assert profiler.snapshot()["failing.phase"]["count"] == 1

    def test_snapshot_includes_p50(self):
        profiler = Profiler()
        for sample in (0.1, 0.2, 0.3):
            profiler.record("x", sample)
        snap = profiler.snapshot()["x"]
        assert snap["p50_s"] == pytest.approx(0.2)
        assert snap["p95_s"] >= snap["p50_s"]


class TestEmulationObservers:
    def test_rs_on_ss_emits_kernel_events_and_decides(self):
        import random
        from repro.emulation import emulate_rs_on_ss

        log = EventLog(clock=_counter_clock())
        trace = emulate_rs_on_ss(
            FloodSet(),
            adversarial_split(3),
            FailurePattern.crash_free(3),
            t=1,
            rng=random.Random(5),
            observer=log,
        )
        assert log.of_kind("msg_sent")
        assert log.of_kind("msg_delivered")
        decided = {e.pid for e in log.of_kind("decide")}
        assert decided == {
            pid for pid, entry in trace.decisions.items() if entry
        }
