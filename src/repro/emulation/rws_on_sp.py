"""Emulating the RWS round model on the SP model (Section 4.2).

The reception rule is the paper's, verbatim: "Process p_i keeps
executing (possibly null) steps of model SP until, for every process
p_j, either p_i receives a message from p_j or p_i suspects p_j."

Because the perfect detector's suspicions may race ahead of message
deliveries, a process can close a round while a message addressed to it
is still in flight — a *pending* message.  Lemma 4.1 proves the
emulation nevertheless guarantees weak round synchrony: the sender of a
pending message crashes by the end of the following round.  Experiment
E12 validates this mechanically on randomized SP runs, and
:func:`count_pending_messages` confirms the phenomenon actually occurs
(the lemma would otherwise hold vacuously).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace
from typing import Any, Mapping, Sequence

from repro.errors import ConfigurationError, ExecutionError
from repro.failures.detectors import PerfectDetector
from repro.failures.pattern import FailurePattern
from repro.models.sp import PerfectFDModel
from repro.obs.events import Observer
from repro.obs.profile import profiled
from repro.rounds.algorithm import RoundAlgorithm
from repro.simulation.automaton import StepAutomaton, StepContext, StepOutcome
from repro.simulation.executor import StepExecutor
from repro.simulation.run import Run
from repro.emulation.rs_on_ss import EmulatedRoundTrace


@dataclass(frozen=True)
class _SPEmuState:
    """Per-process state of the round-on-SP wrapper."""

    round: int
    outbox: tuple[tuple[int, Any], ...]
    inbox: Mapping[int, Mapping[int, Any]]
    algo_state: Any
    self_payload: Any
    delivered_log: tuple[tuple[int, frozenset[int]], ...]
    decision_round: int | None
    finished: bool


class RoundOnSPAutomaton(StepAutomaton):
    """Step automaton executing a round algorithm on SP.

    Each round: send the round's messages (one per step), then take
    null steps until every peer has either delivered its round message
    or is suspected by the local perfect-detector module; then apply
    the round transition.
    """

    def __init__(
        self,
        algorithm: RoundAlgorithm,
        n: int,
        t: int,
        values: Sequence[Any],
        num_rounds: int,
    ) -> None:
        if len(values) != n:
            raise ConfigurationError("one initial value per process required")
        self.algorithm = algorithm
        self.n = n
        self.t = t
        self.values = tuple(values)
        self.num_rounds = num_rounds

    def _build_outbox(
        self, pid: int, algo_state: Any
    ) -> tuple[tuple[tuple[int, Any], ...], Any]:
        outgoing = self.algorithm.messages(pid, algo_state)
        sends = tuple(
            (recipient, payload)
            for recipient, payload in sorted(outgoing.items())
            if recipient != pid
        )
        return sends, outgoing.get(pid)

    def initial_state(self, pid: int, n: int) -> _SPEmuState:
        algo_state = self.algorithm.initial_state(
            pid, self.n, self.t, self.values[pid]
        )
        outbox, self_payload = self._build_outbox(pid, algo_state)
        return _SPEmuState(
            round=1,
            outbox=outbox,
            inbox={},
            algo_state=algo_state,
            self_payload=self_payload,
            delivered_log=(),
            decision_round=None,
            finished=False,
        )

    def on_step(self, ctx: StepContext) -> StepOutcome:
        state: _SPEmuState = ctx.state

        inbox: dict[int, dict[int, Any]] = {
            r: dict(senders) for r, senders in state.inbox.items()
        }
        for message in ctx.received:
            message_round, payload = message.payload
            inbox.setdefault(message_round, {})[message.sender] = payload

        if state.finished:
            return StepOutcome(state=replace(state, inbox=inbox))

        send_to: int | None = None
        send_payload: Any = None
        outbox = state.outbox
        if outbox:
            (send_to, raw_payload), outbox = outbox[0], outbox[1:]
            send_payload = (state.round, raw_payload)

        new_state = replace(state, inbox=inbox, outbox=outbox)

        # Round-completion rule (requires all sends done first): every
        # peer delivered-or-suspected.
        if not outbox:
            suspects = ctx.suspects if ctx.suspects is not None else frozenset()
            heard = inbox.get(state.round, {})
            if all(
                peer in heard or peer in suspects
                for peer in range(self.n)
                if peer != ctx.pid
            ):
                new_state = self._apply_transition(ctx.pid, new_state)

        return StepOutcome(
            state=new_state, send_to=send_to, payload=send_payload
        )

    def _apply_transition(self, pid: int, state: _SPEmuState) -> _SPEmuState:
        received = dict(state.inbox.get(state.round, {}))
        if state.self_payload is not None:
            received[pid] = state.self_payload
        algo_state = self.algorithm.transition(pid, state.algo_state, received)
        decision_round = state.decision_round
        if (
            decision_round is None
            and self.algorithm.decision_of(algo_state) is not None
        ):
            decision_round = state.round
        delivered_log = state.delivered_log + (
            (state.round, frozenset(received)),
        )
        next_round = state.round + 1
        if next_round > self.num_rounds:
            return replace(
                state,
                algo_state=algo_state,
                decision_round=decision_round,
                delivered_log=delivered_log,
                finished=True,
            )
        outbox, self_payload = self._build_outbox(pid, algo_state)
        return replace(
            state,
            round=next_round,
            algo_state=algo_state,
            outbox=outbox,
            self_payload=self_payload,
            decision_round=decision_round,
            delivered_log=delivered_log,
        )


def emulate_rws_on_sp(
    algorithm: RoundAlgorithm,
    values: Sequence[Any],
    pattern: FailurePattern,
    *,
    t: int,
    num_rounds: int | None = None,
    rng: random.Random | None = None,
    max_steps: int = 20_000,
    max_detection_delay: int = 30,
    delivery_prob: float = 0.5,
    max_age: int = 60,
    observer: Observer | None = None,
) -> EmulatedRoundTrace:
    """Run a round algorithm on the SP step kernel and lift the trace.

    The detector history's arbitrary (finite) detection delays and the
    scheduler's arbitrary (bounded-by-``max_age``) message delays are
    the two slacks that produce pending messages.

    ``observer`` receives the underlying step kernel's events (message
    sends/deliveries, crashes, detector suspicions) plus a lifted
    ``decide`` event per deciding process.
    """
    n = len(values)
    rounds = num_rounds if num_rounds is not None else t + 2
    automaton = RoundOnSPAutomaton(algorithm, n, t, values, rounds)
    model = PerfectFDModel(
        max_detection_delay=max_detection_delay,
        delivery_prob=delivery_prob,
        max_age=max_age,
    )
    executor = StepExecutor(
        automaton,
        n,
        pattern,
        model.make_scheduler(rng),
        history=model.make_history(pattern, horizon=max_steps, rng=rng),
        observer=observer,
    )

    def everyone_finished(states: Mapping[int, _SPEmuState]) -> bool:
        return all(
            states[pid].finished
            for pid in range(n)
            if pid in pattern.correct
        )

    with profiled("emulation.rws_on_sp"):
        run = executor.execute(max_steps, stop_when=everyone_finished)

    senders_used: dict[int, dict[int, frozenset[int]]] = {}
    decisions: dict[int, tuple[int, Any] | None] = {}
    completed: dict[int, int] = {}
    for pid in range(n):
        state: _SPEmuState = run.final_states[pid]
        senders_used[pid] = {r: senders for r, senders in state.delivered_log}
        completed[pid] = max((r for r, _ in state.delivered_log), default=0)
        decision_value = algorithm.decision_of(state.algo_state)
        if state.decision_round is not None and decision_value is not None:
            decisions[pid] = (state.decision_round, decision_value)
        else:
            decisions[pid] = None
        if pid in pattern.correct and not state.finished:
            raise ExecutionError(
                f"correct process {pid} did not finish {rounds} rounds "
                f"within {max_steps} SP steps"
            )
    trace = EmulatedRoundTrace(
        n=n,
        num_rounds=rounds,
        senders_used=senders_used,
        decisions=decisions,
        completed_rounds=completed,
        run=run,
    )
    if observer is not None:
        for pid, entry in sorted(decisions.items()):
            if entry is not None:
                observer.decide(pid, entry[1], entry[0])
        # Lift the emulation's pending messages into round-tagged
        # ``msg_withheld`` events so the weak-round-synchrony trace
        # checker applies to SP runs too (the exact Lemma 4.1 round
        # bound is checked on the step run by
        # check_emulated_weak_round_synchrony, which sees crash times).
        uid_by_triple: dict[tuple[int, int, int], int] = {}
        for message in run.messages.values():
            message_round, _ = message.payload
            uid_by_triple.setdefault(
                (message.sender, message.recipient, message_round),
                message.uid,
            )
        for sender, recipient, round_index in sorted(_pending_triples(trace)):
            observer.msg_withheld(
                sender,
                recipient,
                round_index,
                msg_id=uid_by_triple.get((sender, recipient, round_index)),
            )
        # Halt is graceful termination: a pattern-faulty process never
        # halts in the lifted round-level view, even when its crash time
        # falls after it completed the round horizon (the kernel's crash
        # event is already in the trace and would contradict a halt).
        for pid in range(n):
            if pid in pattern.correct and run.final_states[pid].finished:
                observer.halt(pid, completed[pid])
    return trace


def _pending_triples(trace: EmulatedRoundTrace) -> list[tuple[int, int, int]]:
    """(sender, recipient, round) messages sent but unused by a process
    that completed the round — the emulation's pending messages."""
    sent_index: set[tuple[int, int, int]] = set()
    for message in trace.run.messages.values():
        message_round, _ = message.payload
        sent_index.add((message.sender, message.recipient, message_round))
    pending: list[tuple[int, int, int]] = []
    for pid, per_round in trace.senders_used.items():
        for round_index, senders in per_round.items():
            for peer in range(trace.n):
                if peer == pid or peer in senders:
                    continue
                if (peer, pid, round_index) in sent_index:
                    pending.append((peer, pid, round_index))
    return pending


def check_emulated_weak_round_synchrony(trace: EmulatedRoundTrace) -> list[str]:
    """Verify Lemma 4.1 on an emulated trace.

    For every pending message from ``p_j`` at round ``r`` towards a
    process that completed round ``r``: ``p_j`` crashes by the end of
    round ``r + 1`` — operationally, ``p_j`` never begins round
    ``r + 2``, i.e. it completes at most round ``r + 1``.
    """
    violations: list[str] = []
    for sender, recipient, round_index in _pending_triples(trace):
        if trace.completed_rounds.get(sender, 0) > round_index + 1:
            violations.append(
                f"round {round_index}: message p{sender}->p{recipient} was "
                f"pending, yet p{sender} completed round "
                f"{trace.completed_rounds[sender]} > {round_index + 1}"
            )
    return violations


def count_pending_messages(trace: EmulatedRoundTrace) -> int:
    """How many pending messages the emulation produced (Lemma 4.1 is
    only interesting when this is occasionally non-zero)."""
    return len(_pending_triples(trace))
