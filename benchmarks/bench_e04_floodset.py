"""E4 — FloodSet in RS (Figure 1): t+1 rounds, uniform, exhaustive.

Regenerates the t-sweep: for each (n, t), the exhaustive run space is
explored once, asserting safety and the exact ``Lat = t + 1`` latency.
"""

import pytest

from repro.analysis import profile_and_verify
from repro.consensus import FloodSet
from repro.rounds import RoundModel


@pytest.mark.parametrize("n,t", [(3, 1), (4, 2)])
def bench_e4_floodset_sweep(once, n, t):
    profile, report = once(
        profile_and_verify, FloodSet(), n, t, RoundModel.RS
    )
    assert report.ok
    assert profile.Lat == t + 1
    assert profile.Lambda == t + 1
