"""Extension experiments (X1–X5): beyond the paper's explicit claims.

These ablations probe the design space around the paper — larger
resilience, more processes, the emulation's step cost as a function of
the synchrony bounds, and the agreement stack built on top (atomic
broadcast).  They reuse the same claim-vs-measured reporting as the
E-series but are clearly separated: the paper asserts none of these
numbers, they characterise *this implementation's* behaviour in
paper-adjacent regimes.
"""

from __future__ import annotations

import random
from typing import Callable

from repro.analysis import latency_profile, profile_and_verify, verify_algorithm
from repro.broadcast import (
    AtomicBroadcast,
    AtomicBroadcastWS,
    check_atomic_broadcast_run,
)
from repro.commit import commit_rate
from repro.commit.algorithms import PerfectFDCommit, SynchronousCommit
from repro.consensus import (
    EarlyDecidingUniformFloodSet,
    FloodSet,
    FloodSetWS,
)
from repro.core.experiments import ExperimentResult
from repro.emulation import emulate_rs_on_ss, round_deadlines
from repro.failures import FailurePattern
from repro.rounds import RoundModel


def extension_x1(quick: bool = True) -> ExperimentResult:
    """t = 2: the t+1-round pattern persists at higher resilience."""
    profile_rs, report_rs = profile_and_verify(
        FloodSet(), 4, 2, RoundModel.RS
    )
    sampled_ws = verify_algorithm(
        FloodSetWS(), 4, 2, RoundModel.RWS,
        sample=300 if quick else 2_000, rng=random.Random(1),
    )
    early = verify_algorithm(
        EarlyDecidingUniformFloodSet(), 4, 2, RoundModel.RS, horizon=6
    )
    ok = (
        report_rs.ok
        and profile_rs.Lat == 3
        and profile_rs.Lambda == 3
        and sampled_ws.ok
        and early.ok
    )
    return ExperimentResult(
        exp_id="X1",
        title="Resilience sweep: t = 2",
        paper_claim="(extension) FloodSet's t+1-round behaviour and the "
        "WS repair scale beyond t = 1",
        measured=(
            f"FloodSet RS (n=4, t=2): safe={report_rs.ok}, "
            f"Lat={profile_rs.Lat}, Λ={profile_rs.Lambda} over "
            f"{profile_rs.runs_explored} exhaustive runs; FloodSetWS RWS "
            f"sampled({sampled_ws.runs_checked}): safe={sampled_ws.ok}; "
            f"EarlyUniform RS: safe={early.ok}"
        ),
        ok=ok,
    )


def extension_x2(quick: bool = True) -> ExperimentResult:
    """Commit-rate gap as the system grows."""
    rows = []
    ok = True
    sizes = (3, 4) if quick else (3, 4, 5)
    for n in sizes:
        sync = commit_rate(SynchronousCommit(), RoundModel.RS, n=n, t=1)
        safe = commit_rate(PerfectFDCommit(), RoundModel.RWS, n=n, t=1)
        rows.append(
            f"n={n}: SyncCommit@RS {sync.commit_rate:.0%} vs P-Commit@RWS "
            f"{safe.commit_rate:.1%}"
        )
        ok = ok and sync.commit_rate == 1.0 and safe.commit_rate < 1.0
        ok = ok and sync.safe and safe.safe
    return ExperimentResult(
        exp_id="X2",
        title="Commit-rate gap vs system size",
        paper_claim="(extension) the SS commit advantage is not a small-n "
        "artefact",
        measured="; ".join(rows),
        ok=ok,
    )


def extension_x3(quick: bool = True) -> ExperimentResult:
    """The emulation's step price as a function of Φ and Δ."""
    details = []
    for phi, delta in ((1, 1), (1, 3), (2, 1), (2, 2), (3, 1)):
        deadlines = round_deadlines(3, phi, delta, 3)
        details.append(f"Φ={phi},Δ={delta}: S_r={deadlines}")
    # Measure actual global steps of one emulated 2-round execution per
    # configuration and confirm it stays within n x (S_2 + slack).
    ok = True
    measured = []
    for phi, delta in ((1, 1), (2, 2)):
        trace = emulate_rs_on_ss(
            FloodSet(),
            [0, 1, 1],
            FailurePattern.crash_free(3),
            t=1,
            phi=phi,
            delta=delta,
            num_rounds=2,
            rng=random.Random(3),
        )
        deadline = round_deadlines(3, phi, delta, 2)[-1]
        steps = len(trace.run.schedule)
        measured.append(f"Φ={phi},Δ={delta}: {steps} global steps "
                        f"(deadline {deadline} local)")
        ok = ok and steps <= 3 * (deadline + 2)
    return ExperimentResult(
        exp_id="X3",
        title="RS-on-SS emulation cost ablation",
        paper_claim="(extension) the per-round step budget k grows "
        "linearly in Δ and geometrically in Φ",
        measured="; ".join(measured),
        ok=ok,
        details=details,
    )


def extension_x4(quick: bool = True) -> ExperimentResult:
    """Atomic broadcast inherits the RS/RWS split of its consensus core."""
    domain = (("x",), ("y",))
    rs = verify_algorithm(
        AtomicBroadcast(), 3, 1, RoundModel.RS,
        checker=check_atomic_broadcast_run, domain=domain, horizon=4,
    )
    ws = verify_algorithm(
        AtomicBroadcastWS(), 3, 1, RoundModel.RWS,
        checker=check_atomic_broadcast_run, domain=domain, horizon=4,
    )
    plain_rws = verify_algorithm(
        AtomicBroadcast(), 3, 1, RoundModel.RWS,
        checker=check_atomic_broadcast_run, domain=domain, horizon=4,
        stop_after=1,
    )
    ok = rs.ok and ws.ok and not plain_rws.ok
    return ExperimentResult(
        exp_id="X4",
        title="Atomic broadcast over the two round models",
        paper_claim="(extension) the paper's motivating agreement problem "
        "— atomic broadcast — shows the same RS/RWS split as its "
        "consensus core",
        measured=(
            f"AtomicBroadcast@RS safe over {rs.runs_checked} runs: {rs.ok}; "
            f"AtomicBroadcastWS@RWS safe over {ws.runs_checked} runs: "
            f"{ws.ok}; plain variant violates total order in RWS: "
            f"{not plain_rws.ok}"
        ),
        ok=ok,
        details=[str(v) for v in plain_rws.violations[:1]],
    )


#: Registry of extension experiments.
EXTENSIONS: dict[str, Callable[[bool], ExperimentResult]] = {
    "X1": extension_x1,
    "X2": extension_x2,
    "X3": extension_x3,
    "X4": extension_x4,
}


def run_extension(ext_id: str, quick: bool = True) -> ExperimentResult:
    """Run one extension experiment by id (e.g. ``"X2"``)."""
    key = ext_id.upper()
    if key not in EXTENSIONS:
        raise KeyError(
            f"unknown extension {ext_id!r}; choose from {sorted(EXTENSIONS)}"
        )
    return EXTENSIONS[key](quick)


def run_all_extensions(quick: bool = True) -> list[ExperimentResult]:
    """Run every extension experiment in order."""
    ordered = sorted(EXTENSIONS, key=lambda k: int(k[1:]))
    return [EXTENSIONS[key](quick) for key in ordered]


def extension_x5(quick: bool = True) -> ExperimentResult:
    """The companion theorem: uniform consensus is harder than consensus.

    In RS with t >= 2, plain consensus can decide at round 1 of every
    failure-free run (EarlyDecidingConsensus does), but no *uniform*
    consensus algorithm can: every round-1-deciding candidate is
    refuted by exhaustive search, and the uniform algorithms measured
    all have Λ = 2.
    """
    from repro.analysis import refute_round_one_decision
    from repro.consensus import EagerFloodSetWS, EarlyDecidingConsensus
    from repro.consensus.candidates import LeaderOrOwn, MinRoundOne
    from repro.rounds.executor import execute
    from repro.rounds.scenario import FailureScenario

    n, t = 4, 2
    # (a) consensus reaches Λ = 1: EarlyConsensus decides failure-free
    # runs at round 1 (its safety at (4,2) is E14's business).
    scenario = FailureScenario.failure_free(n)
    run = execute(
        EarlyDecidingConsensus(), (0, 1, 1, 0), scenario,
        t=t, model=RoundModel.RS, max_rounds=t + 2, validate=False,
    )
    consensus_round_one = all(
        run.decision_round(pid) == 1 for pid in range(n)
    )

    # (b) every uniform round-1 candidate falls in RS at t = 2.
    candidates = [MinRoundOne(), LeaderOrOwn(), EagerFloodSetWS()]
    verdicts = [
        refute_round_one_decision(c, n, t, model=RoundModel.RS)
        for c in candidates
    ]
    survey_ok = all(
        v.refuted or not v.has_round_one_property for v in verdicts
    )

    # (c) the uniform algorithms pay the extra round even without failures.
    from repro.consensus import EarlyDecidingUniformFloodSet, FloodSetWS

    uniform_lambdas = {}
    for algorithm in (EarlyDecidingUniformFloodSet(),):
        ff = execute(
            algorithm, (0, 1, 1, 0), scenario,
            t=t, model=RoundModel.RS, max_rounds=t + 3, validate=False,
        )
        uniform_lambdas[algorithm.name] = max(
            ff.decision_round(pid) for pid in range(n)
        )
    lambda_ok = all(v >= 2 for v in uniform_lambdas.values())

    return ExperimentResult(
        exp_id="X5",
        title="Uniform consensus is harder than consensus (RS, t = 2)",
        paper_claim="(extension; companion paper [7]) consensus decides "
        "failure-free runs at round 1 in RS, uniform consensus cannot",
        measured=(
            f"EarlyConsensus failure-free round-1 decisions: "
            f"{consensus_round_one}; {len(verdicts)} uniform round-1 "
            f"candidates refuted in RS(4,2): {survey_ok}; failure-free "
            f"decision rounds of uniform algorithms: {uniform_lambdas}"
        ),
        ok=consensus_round_one and survey_ok and lambda_ok,
        details=[v.describe() for v in verdicts],
    )


EXTENSIONS["X5"] = extension_x5


def extension_x6(quick: bool = True) -> ExperimentResult:
    """Timeouts give ◊P under partial synchrony (the intro's [12] remark).

    Before the (unknown) stabilisation time the adaptive-timeout
    detector makes genuine mistakes; after it, every refuted suspicion
    has lengthened the timers enough that accuracy holds — the lifted
    history satisfies ◊P but, thanks to the pre-GST mistakes, not P.
    """
    import random as _random

    from repro.failures import (
        AdaptiveTimeoutDetector,
        classify_history,
        history_from_run,
    )
    from repro.models import PartiallySynchronousModel
    from repro.simulation.executor import StepExecutor

    seeds = 6 if quick else 25
    eventually_perfect = 0
    mistakes = 0
    suffix_clean = 0
    for seed in range(seeds):
        rng = _random.Random(seed)
        model = PartiallySynchronousModel(
            phi=1, delta=2, gst=120, pre_gst_delivery_prob=0.15
        )
        pattern = FailurePattern.with_crashes(
            3, {1: 250} if seed % 2 else {}
        )
        executor = StepExecutor(
            AdaptiveTimeoutDetector(3),
            3,
            pattern,
            model.make_scheduler(rng),
            record_states=True,
        )
        run = executor.execute(900)
        suffix_clean += not model.validate(run)
        history = history_from_run(run)
        report = classify_history(history, pattern, len(run.schedule) - 1)
        eventually_perfect += report.matches_class("<>P")
        mistakes += not report.strong_accuracy
    return ExperimentResult(
        exp_id="X6",
        title="◊P from adaptive timeouts under partial synchrony",
        paper_claim="(extension; the intro's reference [12]) time-outs "
        "implement an eventually perfect failure detector when the "
        "synchrony bounds hold only eventually",
        measured=(
            f"{seeds} partially synchronous runs: {eventually_perfect} "
            f"satisfy ◊P; {mistakes} contain pre-GST false suspicions "
            f"(the eventual clause is non-vacuous); {suffix_clean} "
            "post-GST suffixes are SS-admissible"
        ),
        ok=(
            eventually_perfect == seeds
            and mistakes > 0
            and suffix_clean == seeds
        ),
    )


EXTENSIONS["X6"] = extension_x6


def extension_x7(quick: bool = True) -> ExperimentResult:
    """Early-deciding bounds: Lat(A, f) tables for the f+1 / f+2 gap.

    The companion paper quantifies the uniform-consensus penalty: plain
    consensus admits decision by round f+1 (f = actual failures),
    uniform consensus by f+2.  We measure Lat(A, f) exactly over the
    exhaustive RS space at (n, t) = (4, 2) for the two early-deciding
    algorithms and check the shapes.
    """
    from repro.analysis.latency import explore_runs
    from repro.consensus import (
        EarlyDecidingConsensus,
        EarlyDecidingUniformFloodSet,
    )
    from repro.consensus.spec import (
        check_consensus_run,
        check_uniform_consensus_run,
    )

    n, t = 4, 2
    tables: dict[str, dict[int, int]] = {}
    safety_ok = True
    for algorithm, checker in (
        (EarlyDecidingConsensus(), check_consensus_run),
        (EarlyDecidingUniformFloodSet(), check_uniform_consensus_run),
    ):
        worst: dict[int, int] = {}
        for run in explore_runs(
            algorithm, n, t, RoundModel.RS, horizon=t + 4
        ):
            if checker(run):
                safety_ok = False
            latency = run.latency()
            if latency is None:
                safety_ok = False
                continue
            failures = run.scenario.num_failures()
            for f in range(failures, t + 1):
                worst[f] = max(worst.get(f, 0), latency)
        tables[algorithm.name] = dict(sorted(worst.items()))

    consensus_table = tables["EarlyConsensus"]
    uniform_table = tables["EarlyUniform"]
    # Shapes: consensus decides failure-free at round 1; uniform pays
    # one more round at every failure budget.
    shape_ok = (
        consensus_table[0] == 1
        and uniform_table[0] == 2
        and all(
            uniform_table[f] >= consensus_table[f] + 1
            for f in consensus_table
        )
        and all(
            consensus_table[f] <= f + 2 for f in consensus_table
        )
        and all(uniform_table[f] <= f + 3 for f in uniform_table)
    )
    return ExperimentResult(
        exp_id="X7",
        title="Early-deciding bounds: Lat(A, f) for the f+1 / f+2 gap",
        paper_claim="(extension; companion paper [7]) plain consensus "
        "decides by ~f+1 rounds, uniform consensus pays about one round "
        "more at every failure budget",
        measured=(
            f"exhaustive RS (n={n}, t={t}): Lat(EarlyConsensus, f) = "
            f"{consensus_table}; Lat(EarlyUniform, f) = {uniform_table}; "
            f"safety: {safety_ok}"
        ),
        ok=safety_ok and shape_ok,
    )


EXTENSIONS["X7"] = extension_x7
