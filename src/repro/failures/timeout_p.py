"""Timeout-based implementation of the perfect failure detector on SS.

Section 3 of the paper opens with the observation that in the
synchronous model "a simple time-out mechanism with time-out periods
that depend on the Δ and Φ bounds" implements a perfect failure
detector.  This module makes that observation executable.

The construction, adapted to the paper's one-send-per-step semantics:

* every process cycles through the other ``n-1`` processes, sending one
  heartbeat per step;
* process ``p`` suspects ``q`` once ``p`` has taken more than
  ``(n-1)·(Φ+1) + Δ`` steps without receiving a heartbeat from ``q``.

Why the threshold is safe (strong accuracy): while ``q`` is alive, any
window in which ``p`` takes ``(n-1)·(Φ+1)`` steps contains, by process
synchrony, at least ``n-1`` steps of ``q`` — hence at least one
heartbeat addressed to ``p``.  By message synchrony that heartbeat
reaches ``p`` within ``Δ`` further global steps, during which ``p``
takes at most ``Δ`` steps.  So an alive ``q`` is heard from at least
every ``(n-1)·(Φ+1) + Δ`` of ``p``'s steps and is never suspected.

Strong completeness is immediate: after ``q`` crashes it sends nothing,
so ``p``'s silence counter crosses any finite threshold.

For ``n = 2`` the threshold specialises to ``Φ + 1 + Δ`` — exactly the
detection bound the paper quotes when discussing SDD.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING

from repro.errors import ConfigurationError
from repro.failures.history import FailureDetectorHistory, TableHistory
from repro.simulation.automaton import StepAutomaton, StepContext, StepOutcome

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.simulation.run import Run


def detection_threshold(n: int, phi: int, delta: int) -> int:
    """Steps of silence after which suspicion is sound in SS.

    Returns ``(n-1)·(Φ+1) + Δ``; see the module docstring for the
    derivation.
    """
    if n < 2:
        raise ConfigurationError("timeout detector needs at least 2 processes")
    if phi < 1 or delta < 1:
        raise ConfigurationError("SS bounds require Φ >= 1 and Δ >= 1")
    return (n - 1) * (phi + 1) + delta


@dataclass(frozen=True)
class TimeoutDetectorState:
    """Local state of the heartbeat/timeout module.

    Attributes:
        last_heard: For each peer, the local step at which a heartbeat
            was last received (0 = never; every process starts with an
            implicit grace period of one full threshold).
        suspected: Peers currently suspected.
        next_target: Round-robin pointer for heartbeat destinations.
        local_step: Steps taken so far.
    """

    last_heard: dict[int, int] = field(default_factory=dict)
    suspected: frozenset[int] = frozenset()
    next_target: int = 0
    local_step: int = 0


class TimeoutPerfectDetector(StepAutomaton):
    """Step automaton realising ``P`` on an SS-conforming schedule.

    Run it under an SS scheduler (:mod:`repro.models.ss`) and read each
    process's ``suspected`` set as the detector output.  On schedules
    that honour the Φ/Δ bounds the induced history satisfies strong
    completeness and strong accuracy (verified mechanically in the test
    suite and in experiment E13).
    """

    def __init__(self, n: int, phi: int, delta: int) -> None:
        self.n = n
        self.phi = phi
        self.delta = delta
        self.threshold = detection_threshold(n, phi, delta)

    def initial_state(self, pid: int, n: int) -> TimeoutDetectorState:
        return TimeoutDetectorState(
            last_heard={q: 0 for q in range(n) if q != pid},
        )

    def _peers(self, pid: int) -> list[int]:
        return [q for q in range(self.n) if q != pid]

    def on_step(self, ctx: StepContext) -> StepOutcome:
        state: TimeoutDetectorState = ctx.state
        local_step = state.local_step + 1

        last_heard = dict(state.last_heard)
        for message in ctx.received:
            if message.payload == "heartbeat":
                last_heard[message.sender] = local_step

        suspected = set(state.suspected)
        for peer, heard in last_heard.items():
            if local_step - heard > self.threshold:
                suspected.add(peer)

        peers = self._peers(ctx.pid)
        target = peers[state.next_target % len(peers)]
        new_state = replace(
            state,
            last_heard=last_heard,
            suspected=frozenset(suspected),
            next_target=(state.next_target + 1) % len(peers),
            local_step=local_step,
        )
        return StepOutcome(state=new_state, send_to=target, payload="heartbeat")


def history_from_run(run: "Run") -> FailureDetectorHistory:
    """Lift the detector output of a timeout-detector run into a history.

    Requires the run to have been executed with ``record_states=True``:
    the suspicion set of process ``p`` at time ``t`` is read off the
    state snapshot of ``p``'s most recent step at or before ``t``
    (empty before its first step).  The resulting
    :class:`~repro.failures.history.FailureDetectorHistory` can be fed
    to the axiom checkers of :mod:`repro.failures.properties` — this is
    how experiment E13 verifies that timeouts implement ``P`` on SS.
    """
    if run.state_snapshots is None:
        raise ConfigurationError(
            "history_from_run needs a run recorded with record_states=True"
        )
    table: dict[tuple[int, int], frozenset[int]] = {}
    current: dict[int, frozenset[int]] = {
        pid: frozenset() for pid in range(run.n)
    }
    for step, state in zip(run.schedule, run.state_snapshots):
        current[step.pid] = frozenset(state.suspected)
        for pid in range(run.n):
            table[(pid, step.time)] = current[pid]
    return TableHistory(table)


def detection_delays(run: "Run") -> dict[tuple[int, int], int | None]:
    """Measure, per (observer, crashed) pair, the detection delay.

    The delay is the number of *observer* steps between the crash time
    and the observer's first step whose state suspects the crashed
    process; ``None`` when detection never happened within the run
    (e.g. the observer itself crashed first).
    """
    if run.state_snapshots is None:
        raise ConfigurationError(
            "detection_delays needs a run recorded with record_states=True"
        )
    delays: dict[tuple[int, int], int | None] = {}
    for crashed, crash_time in run.pattern.crash_times.items():
        for observer in range(run.n):
            if observer == crashed:
                continue
            delays[(observer, crashed)] = None
            steps_since_crash = 0
            for step, state in zip(run.schedule, run.state_snapshots):
                if step.pid != observer or step.time < crash_time:
                    continue
                steps_since_crash += 1
                if crashed in state.suspected:
                    delays[(observer, crashed)] = steps_since_crash
                    break
    return delays
