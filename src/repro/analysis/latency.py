"""Exact latency measures by exhaustive run-space exploration."""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, Sequence

from repro.consensus.spec import (
    SpecViolation,
    check_uniform_consensus_run,
)
from repro.errors import ExecutionError
from repro.rounds.algorithm import RoundAlgorithm
from repro.rounds.enumeration import (
    all_scenarios,
    all_value_assignments,
    random_scenario,
)
from repro.rounds.executor import RoundModel, RoundRun, execute


def explore_runs(
    algorithm: RoundAlgorithm,
    n: int,
    t: int,
    model: RoundModel,
    *,
    domain: Sequence[Any] = (0, 1),
    max_round: int | None = None,
    horizon: int | None = None,
    sample: int | None = None,
    rng: random.Random | None = None,
) -> Iterator[RoundRun]:
    """Yield runs of ``algorithm`` over the bounded adversary space.

    Exhaustive by default: the cartesian product of every initial
    configuration over ``domain`` with every admissible scenario whose
    crashes happen within ``max_round`` (default ``t + 1``) rounds.
    With ``sample`` set, draws that many (configuration, scenario)
    pairs at random instead — for spaces too large to enumerate.

    ``horizon`` bounds executed rounds (default ``t + 3``, enough for
    every algorithm in this library to terminate).
    """
    crash_bound = max_round if max_round is not None else t + 1
    run_horizon = horizon if horizon is not None else t + 3
    allow_pending = model is RoundModel.RWS

    if sample is None:
        for values in all_value_assignments(n, domain):
            for scenario in all_scenarios(
                n,
                t,
                max_round=crash_bound,
                allow_pending=allow_pending,
            ):
                yield execute(
                    algorithm,
                    values,
                    scenario,
                    t=t,
                    model=model,
                    max_rounds=run_horizon,
                    validate=False,
                )
    else:
        if rng is None:
            rng = random.Random(0)
        for _ in range(sample):
            values = tuple(rng.choice(list(domain)) for _ in range(n))
            scenario = random_scenario(
                n,
                t,
                max_round=crash_bound,
                allow_pending=allow_pending,
                rng=rng,
            )
            yield execute(
                algorithm,
                values,
                scenario,
                t=t,
                model=model,
                max_rounds=run_horizon,
                validate=False,
            )


@dataclass
class LatencyProfile:
    """All of Section 5.2's latency measures for one algorithm/model."""

    algorithm: str
    model: str
    n: int
    t: int
    lat: int
    lat_by_config: dict[tuple, int]
    Lat: int
    Lat_by_failures: dict[int, int]
    Lambda: int
    runs_explored: int

    def describe(self) -> str:
        lat_f = ", ".join(
            f"Lat(A,{f})={v}" for f, v in sorted(self.Lat_by_failures.items())
        )
        return (
            f"{self.algorithm} in {self.model} (n={self.n}, t={self.t}): "
            f"lat={self.lat}, Lat={self.Lat}, Λ={self.Lambda} [{lat_f}] "
            f"over {self.runs_explored} runs"
        )


def latency_profile(
    algorithm: RoundAlgorithm,
    n: int,
    t: int,
    model: RoundModel,
    *,
    domain: Sequence[Any] = (0, 1),
    max_round: int | None = None,
    horizon: int | None = None,
) -> LatencyProfile:
    """Compute lat, Lat, Lat(·, f) and Λ exactly over the bounded space.

    Raises :class:`~repro.errors.ExecutionError` if some run leaves a
    correct process undecided — a termination failure (or a horizon too
    short), which would make the latency measures meaningless.
    """
    lat_by_config: dict[tuple, int] = {}
    lat_overall: int | None = None
    lat_by_failures: dict[int, int] = {}
    runs_explored = 0

    for run in explore_runs(
        algorithm,
        n,
        t,
        model,
        domain=domain,
        max_round=max_round,
        horizon=horizon,
    ):
        runs_explored += 1
        latency = run.latency()
        if latency is None:
            raise ExecutionError(
                f"{algorithm.name} in {model.value}: correct process "
                f"undecided (values={run.values}, "
                f"scenario={run.scenario.describe()})"
            )
        config = run.values
        if config not in lat_by_config or latency < lat_by_config[config]:
            lat_by_config[config] = latency
        if lat_overall is None or latency < lat_overall:
            lat_overall = latency
        failures = run.scenario.num_failures()
        # A run with f crashes belongs to Run(A, S, f') for every f' >= f.
        for f in range(failures, t + 1):
            if f not in lat_by_failures or latency > lat_by_failures[f]:
                lat_by_failures[f] = latency
        # Failure-free runs feed every Lat(A, f) including f = 0 —
        # handled by the loop above starting at `failures`.

    if lat_overall is None:
        raise ExecutionError("no runs were explored")

    return LatencyProfile(
        algorithm=algorithm.name,
        model=model.value,
        n=n,
        t=t,
        lat=lat_overall,
        lat_by_config=lat_by_config,
        Lat=max(lat_by_config.values()),
        Lat_by_failures=lat_by_failures,
        Lambda=lat_by_failures[0],
        runs_explored=runs_explored,
    )


@dataclass
class VerificationReport:
    """Outcome of checking an algorithm against a spec on a run space."""

    algorithm: str
    model: str
    n: int
    t: int
    runs_checked: int
    violations: list[SpecViolation] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def first_violations(self, k: int = 3) -> list[str]:
        return [str(v) for v in self.violations[:k]]

    def describe(self) -> str:
        verdict = "OK" if self.ok else f"{len(self.violations)} violations"
        return (
            f"{self.algorithm} in {self.model} (n={self.n}, t={self.t}): "
            f"{verdict} over {self.runs_checked} runs"
        )


def verify_algorithm(
    algorithm: RoundAlgorithm,
    n: int,
    t: int,
    model: RoundModel,
    *,
    checker: Callable[[RoundRun], list[SpecViolation]] = check_uniform_consensus_run,
    domain: Sequence[Any] = (0, 1),
    max_round: int | None = None,
    horizon: int | None = None,
    sample: int | None = None,
    rng: random.Random | None = None,
    stop_after: int | None = None,
) -> VerificationReport:
    """Check every explored run against a problem specification.

    ``stop_after`` short-circuits once that many violations were found
    (useful when a single counterexample suffices).
    """
    report = VerificationReport(
        algorithm=algorithm.name,
        model=model.value,
        n=n,
        t=t,
        runs_checked=0,
    )
    for run in explore_runs(
        algorithm,
        n,
        t,
        model,
        domain=domain,
        max_round=max_round,
        horizon=horizon,
        sample=sample,
        rng=rng,
    ):
        report.runs_checked += 1
        report.violations.extend(checker(run))
        if stop_after is not None and len(report.violations) >= stop_after:
            break
    return report


def profile_and_verify(
    algorithm: RoundAlgorithm,
    n: int,
    t: int,
    model: RoundModel,
    *,
    checker: Callable[[RoundRun], list[SpecViolation]] = check_uniform_consensus_run,
    domain: Sequence[Any] = (0, 1),
    max_round: int | None = None,
    horizon: int | None = None,
) -> tuple[LatencyProfile, VerificationReport]:
    """Compute the latency profile and the spec report in one exploration.

    Exploring the run space dominates both computations, so large
    exhaustive sweeps (e.g. n=4, t=2) should use this instead of
    calling :func:`latency_profile` and :func:`verify_algorithm`
    separately.  Semantics match the two separate calls exactly, except
    that a termination failure is reported as a violation rather than
    raising (the profile then excludes the undecided run from latency
    minima/maxima).
    """
    lat_by_config: dict[tuple, int] = {}
    lat_overall: int | None = None
    lat_by_failures: dict[int, int] = {}
    report = VerificationReport(
        algorithm=algorithm.name, model=model.value, n=n, t=t, runs_checked=0
    )

    for run in explore_runs(
        algorithm, n, t, model,
        domain=domain, max_round=max_round, horizon=horizon,
    ):
        report.runs_checked += 1
        report.violations.extend(checker(run))
        latency = run.latency()
        if latency is None:
            continue
        config = run.values
        if config not in lat_by_config or latency < lat_by_config[config]:
            lat_by_config[config] = latency
        if lat_overall is None or latency < lat_overall:
            lat_overall = latency
        for f in range(run.scenario.num_failures(), t + 1):
            if f not in lat_by_failures or latency > lat_by_failures[f]:
                lat_by_failures[f] = latency

    if lat_overall is None:
        raise ExecutionError("no runs produced a complete decision")
    profile = LatencyProfile(
        algorithm=algorithm.name,
        model=model.value,
        n=n,
        t=t,
        lat=lat_overall,
        lat_by_config=lat_by_config,
        Lat=max(lat_by_config.values()),
        Lat_by_failures=lat_by_failures,
        Lambda=lat_by_failures.get(0, 0),
        runs_explored=report.runs_checked,
    )
    return profile, report
