"""Columnar kernel vs object engine — scenario throughput by batch size.

Each benchmark builds an e10-lambda-shaped workload (failure-free
FloodSetWS cells over n=3 binary initial configurations, the shape the
Λ sweep executes thousands of times) at batch sizes 1, 64 and 1024, runs
it per-cell through the object engine and wholesale through
``execute_batch``, and asserts byte parity — the events of every vector
cell must serialize identically to its object twin's.  The timings land
as ``vector.bench.object.bN`` / ``vector.bench.batch.bN`` spans in
``benchmarks/metrics.jsonl``, from which ``scripts/bench_report.py``
derives the committed report's per-batch speedups (BENCH_PR8.json).
"""

from time import perf_counter

from repro.obs.profile import profiled
from repro.rounds.enumeration import all_value_assignments
from repro.runtime import execute_batch, execute_request
from repro.runtime.request import ExecutionRequest
from repro.workloads import failure_free

#: One shared failure-free scenario per batch: every cell lands in the
#: same plan group, which is the amortization the kernel is built for.
N = 3


def _cells(batch: int, engine: str) -> list[ExecutionRequest]:
    scenario = failure_free(N)
    assignments = list(all_value_assignments(N))
    return [
        ExecutionRequest(
            name=f"bench-vec-{engine}-{index:04d}",
            engine=engine,
            algorithm="floodset-ws",
            values=assignments[index % len(assignments)],
            t=1,
            model="RWS",
            scenario=scenario,
            max_rounds=4,
        )
        for index in range(batch)
    ]


def _run_object(cells):
    with profiled(f"vector.bench.object.b{len(cells)}"):
        return [execute_request(cell) for cell in cells]


def _run_batch(cells):
    with profiled(f"vector.bench.batch.b{len(cells)}"):
        return execute_batch(cells)


#: Timed rounds per leg: a sweep amortizes plan/template construction
#: over thousands of cells, so the steady-state per-cell cost is the
#: figure the speedup claims — round 1 warms the caches and eats the
#: allocation/GC transient, the mean over all rounds is what lands in
#: the profiler span (and hence in BENCH_PR8.json's speedups).
ROUNDS = 5


def _compare(benchmark, batch: int) -> None:
    started = perf_counter()
    for _ in range(ROUNDS):
        base = _run_object(_cells(batch, "rounds"))
    object_s = (perf_counter() - started) / ROUNDS
    results = benchmark.pedantic(
        _run_batch, args=(_cells(batch, "vector"),), rounds=ROUNDS
    )
    vector_s = min(benchmark.stats.stats.data)
    assert len(results) == batch
    for twin, result in zip(base, results):
        assert result.decisions == twin.decisions
        assert [e.to_json() for e in result.events] == [
            e.to_json() for e in twin.events
        ]
    benchmark.extra_info["batch"] = batch
    benchmark.extra_info["object_s"] = object_s
    benchmark.extra_info["speedup_vs_object"] = (
        object_s / vector_s if vector_s > 0 else None
    )


def bench_vector_batch_1(benchmark):
    """Single-cell overhead: per-call dispatch with warm plan caches."""
    _compare(benchmark, 1)


def bench_vector_batch_64(benchmark):
    """One template-shared group at the sweep's typical chunk size."""
    _compare(benchmark, 64)


def bench_vector_batch_1024(benchmark):
    """Λ-sweep scale: a thousand cells through one vectorized call."""
    _compare(benchmark, 1024)
