#!/usr/bin/env python
"""Validate a JSONL event trace: schema, ordering, causal metadata.

Usage::

    PYTHONPATH=src python scripts/check_trace.py [--schema-only] [--causal] TRACE.jsonl

Three layers of validation:

1. **Schema** — every line is a well-formed event dict (known kind,
   correctly-typed fields, well-typed ``extra`` keys), via
   ``repro.obs.validate_jsonl_lines``.
2. **Ordering** — the event *sequence* is well-formed: rounds start at
   1 and increase by exactly 1, global step times are monotone, alive
   lists match the crash history, and no process acts after its crash
   or halt — via ``repro.obs.ordering_problems``.  Skipped with
   ``--schema-only`` (or automatically when the schema layer already
   failed, since ordering over malformed events is noise).
3. **Causal** (``--causal``) — the PR 7 metadata a live trace must
   carry: every message event's ``extra`` has a ``msg_id`` and a
   ``wall_s`` stamp, every ``msg_id`` pairs at most one delivery with
   exactly one send, and the happens-before graph reconstructs without
   Λ-bound anomalies.  Pre-PR7 traces (no ``extra`` fields) still pass
   ``--schema-only`` untouched; ``--causal`` is for traces produced by
   the live runtime with causal tracing.

Exits 0 when the trace is valid, 1 otherwise (listing each problem),
2 on usage errors.  Used by ``make trace-smoke``, ``make causal-smoke``
and the CLI tests.
"""

from __future__ import annotations

import sys


def causal_problems(events) -> list[str]:
    """The ``--causal`` layer: msg_id/wall coverage plus the Λ bound."""
    from repro.obs import annotate, verify_round_paths

    problems: list[str] = []
    sends: dict = {}
    delivered: dict = {}
    for index, event in enumerate(events):
        if event.kind not in ("msg_sent", "msg_delivered", "msg_withheld"):
            continue
        extra = event.extra if isinstance(event.extra, dict) else {}
        msg_id = extra.get("msg_id")
        if msg_id is None:
            problems.append(
                f"event {index} ({event.kind} p{event.peer}->p{event.pid}): "
                "no msg_id in extra"
            )
            continue
        if event.kind != "msg_withheld" and extra.get("wall_s") is None:
            problems.append(
                f"event {index} ({event.kind}, msg_id {msg_id}): no wall_s stamp"
            )
        if event.kind == "msg_sent":
            if msg_id in sends:
                problems.append(f"msg_id {msg_id} sent twice ({sends[msg_id]}, {index})")
            sends[msg_id] = index
        elif event.kind == "msg_delivered":
            if msg_id in delivered:
                problems.append(
                    f"msg_id {msg_id} delivered twice "
                    f"({delivered[msg_id]}, {index})"
                )
            delivered[msg_id] = index
    for msg_id, index in sorted(delivered.items(), key=lambda kv: kv[1]):
        if msg_id not in sends:
            problems.append(
                f"event {index}: delivery of msg_id {msg_id} with no send"
            )
        elif sends[msg_id] > index:
            problems.append(
                f"msg_id {msg_id}: delivered (event {index}) before "
                f"sent (event {sends[msg_id]})"
            )
    problems.extend(verify_round_paths(events, graph=annotate(events)))
    return problems


def main(argv: list[str] | None = None) -> int:
    args = sys.argv[1:] if argv is None else list(argv)
    schema_only = "--schema-only" in args
    causal = "--causal" in args
    args = [a for a in args if a not in ("--schema-only", "--causal")]
    if len(args) != 1 or (schema_only and causal):
        print(__doc__, file=sys.stderr)
        return 2
    try:
        from repro.obs import (
            events_from_jsonl_lines,
            ordering_problems,
            validate_jsonl_lines,
        )
    except ImportError:
        print(
            "cannot import repro.obs — run with PYTHONPATH=src or after "
            "`pip install -e .`",
            file=sys.stderr,
        )
        return 2
    try:
        with open(args[0], encoding="utf-8") as fp:
            lines = fp.readlines()
    except OSError as exc:
        print(f"cannot read {args[0]}: {exc}", file=sys.stderr)
        return 2
    problems = validate_jsonl_lines(lines)
    if not problems and not schema_only:
        events = events_from_jsonl_lines(lines)
        problems = ordering_problems(events)
        if not problems and causal:
            problems = causal_problems(events)
    if problems:
        for problem in problems:
            print(problem, file=sys.stderr)
        print(f"{args[0]}: INVALID ({len(problems)} problems)")
        return 1
    checked = (
        "schema"
        if schema_only
        else "schema + ordering + causal" if causal else "schema + ordering"
    )
    print(f"{args[0]}: OK ({checked})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
