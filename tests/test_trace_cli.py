"""CLI-level tests for ``repro trace`` / ``repro metrics`` — including
the shelled-out smoke path that ``make trace-smoke`` uses."""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.cli.main import main
from repro.workloads import floodset_rws_violation

REPO_ROOT = Path(__file__).resolve().parent.parent


def _shell(*args: str) -> subprocess.CompletedProcess:
    """Run a command with src/ importable, as make trace-smoke does."""
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = (
        src + os.pathsep + env["PYTHONPATH"]
        if env.get("PYTHONPATH")
        else src
    )
    return subprocess.run(
        args, capture_output=True, text=True, env=env, cwd=REPO_ROOT
    )


class TestTraceSmoke:
    """The trace-smoke pipeline: CLI export, then schema validation."""

    def test_trace_export_then_schema_check(self, tmp_path):
        out = tmp_path / "trace.jsonl"
        exported = _shell(
            sys.executable,
            "-m",
            "repro",
            "trace",
            "floodset-rws-violation",
            "--jsonl",
            str(out),
        )
        assert exported.returncode == 0, exported.stderr
        assert "wrote" in exported.stdout

        checked = _shell(
            sys.executable, "scripts/check_trace.py", str(out)
        )
        assert checked.returncode == 0, checked.stderr
        assert "OK" in checked.stdout

    def test_exported_withheld_events_match_scenario(self, tmp_path):
        out = tmp_path / "trace.jsonl"
        result = _shell(
            sys.executable,
            "-m",
            "repro",
            "trace",
            "floodset-rws-violation",
            "--jsonl",
            str(out),
        )
        assert result.returncode == 0, result.stderr
        events = [
            json.loads(line)
            for line in out.read_text().splitlines()
            if line.strip()
        ]
        withheld = {
            (e["peer"], e["pid"], e["round"])
            for e in events
            if e["kind"] == "msg_withheld"
        }
        declared = {
            (p.sender, p.recipient, p.round)
            for p in floodset_rws_violation(3).pending
        }
        assert withheld == declared

    def test_schema_check_rejects_corrupt_trace(self, tmp_path):
        bad = tmp_path / "bad.jsonl"
        bad.write_text('{"kind": "teleport", "ts": 1.0}\n')
        result = _shell(sys.executable, "scripts/check_trace.py", str(bad))
        assert result.returncode == 1
        assert "unknown event kind" in result.stderr


class TestTraceCommand:
    def test_trace_to_stdout(self, capsys):
        assert main(["trace", "floodset-rws"]) == 0
        out = capsys.readouterr().out
        kinds = [json.loads(line)["kind"] for line in out.splitlines()]
        assert "msg_withheld" in kinds
        assert kinds[0] == "round_start"

    def test_trace_alias_resolves(self, capsys, tmp_path):
        out = tmp_path / "t.jsonl"
        assert main(["trace", "a1-rws-disagreement", "--jsonl", str(out)]) == 0
        assert out.exists()

    def test_trace_unknown_scenario_exits_2(self, capsys):
        assert main(["trace", "nope"]) == 2
        assert "unknown scenario" in capsys.readouterr().err


class TestMetricsCommand:
    def test_metrics_prints_per_round_counters(self, capsys):
        assert main(["metrics"]) == 0
        out = capsys.readouterr().out
        assert "messages.sent.round.1 = 9" in out
        assert "messages.withheld.round.1 = 2" in out
        assert "decisions.round.2 = 2" in out
        assert "profile.rounds.execute.seconds" in out

    def test_metrics_unknown_scenario_exits_2(self, capsys):
        assert main(["metrics", "nope"]) == 2
        assert "unknown scenario" in capsys.readouterr().err


class TestCheckCommand:
    def test_clean_rs_scenario_passes(self, capsys):
        assert main(["check", "fopt-fast"]) == 0
        out = capsys.readouterr().out
        assert "all invariants hold" in out

    def test_documented_disagreement_is_reproduced(self, capsys):
        assert main(["check", "floodset-rws"]) == 0
        out = capsys.readouterr().out
        assert "consensus" in out
        assert "disagreement is reproduced" in out

    def test_all_builtin_scenarios_pass(self):
        from repro.cli.main import SCENARIOS

        for name in SCENARIOS:
            assert main(["check", name]) == 0, name

    def test_jsonl_mode_flags_seeded_violation(self, capsys, tmp_path):
        trace = tmp_path / "t.jsonl"
        assert main(["trace", "fopt-fast", "--jsonl", str(trace)]) == 0
        capsys.readouterr()
        lines = trace.read_text().splitlines()
        seeded = lines[:3] + [
            '{"kind": "suspect", "pid": 1, "peer": 0, "round": 1, "ts": 3.5}'
        ] + lines[3:]
        bad = tmp_path / "seeded.jsonl"
        bad.write_text("\n".join(seeded) + "\n")
        assert main(["check", "--jsonl", str(bad), "--model", "RS"]) == 1
        out = capsys.readouterr().out
        assert "event 3" in out
        assert "detector.accuracy" in out

    def test_jsonl_mode_passes_clean_trace(self, capsys, tmp_path):
        trace = tmp_path / "t.jsonl"
        assert main(["trace", "fopt-fast", "--jsonl", str(trace)]) == 0
        assert main(["check", "--jsonl", str(trace), "--model", "RS"]) == 0

    def test_missing_arguments_exit_2(self, capsys):
        assert main(["check"]) == 2
        assert "scenario name or --jsonl" in capsys.readouterr().err

    def test_unknown_scenario_exits_2(self, capsys):
        assert main(["check", "nope"]) == 2

    def test_unreadable_file_exits_2(self, capsys, tmp_path):
        assert main(["check", "--jsonl", str(tmp_path / "missing.jsonl")]) == 2


class TestReplayCommand:
    def test_rs_export_replays_byte_for_byte(self, capsys, tmp_path):
        trace = tmp_path / "rs.jsonl"
        assert main(["trace", "fopt-fast", "--jsonl", str(trace)]) == 0
        capsys.readouterr()
        assert main(["replay", "fopt-fast", str(trace)]) == 0
        assert "byte-for-byte" in capsys.readouterr().out

    def test_rws_export_replays_byte_for_byte(self, capsys, tmp_path):
        trace = tmp_path / "rws.jsonl"
        assert main(["trace", "floodset-rws", "--jsonl", str(trace)]) == 0
        capsys.readouterr()
        assert main(["replay", "floodset-rws", str(trace)]) == 0
        assert "byte-for-byte" in capsys.readouterr().out

    def test_wall_clock_export_still_matches_modulo_ts(self, capsys, tmp_path):
        trace = tmp_path / "wall.jsonl"
        assert main(
            ["trace", "floodset-rws", "--wall-ts", "--jsonl", str(trace)]
        ) == 0
        capsys.readouterr()
        assert main(["replay", "floodset-rws", str(trace)]) == 0
        assert "modulo timestamps" in capsys.readouterr().out

    def test_wrong_scenario_diverges_nonzero(self, capsys, tmp_path):
        trace = tmp_path / "rws.jsonl"
        assert main(["trace", "floodset-rws", "--jsonl", str(trace)]) == 0
        capsys.readouterr()
        assert main(["replay", "a1-rws", str(trace)]) == 1
        assert "divergence" in capsys.readouterr().out

    def test_missing_file_exits_2(self, capsys, tmp_path):
        assert main(
            ["replay", "fopt-fast", str(tmp_path / "missing.jsonl")]
        ) == 2


class TestDiffCommand:
    def _export(self, scenario, path):
        assert main(["trace", scenario, "--jsonl", str(path)]) == 0

    def test_identical_traces(self, capsys, tmp_path):
        a = tmp_path / "a.jsonl"
        self._export("floodset-rws", a)
        capsys.readouterr()
        assert main(["diff", str(a), str(a)]) == 0
        assert "identical" in capsys.readouterr().out

    def test_different_traces_diverge_nonzero(self, capsys, tmp_path):
        a, b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        self._export("fopt-fast", a)
        self._export("floodset-rws", b)
        capsys.readouterr()
        assert main(["diff", str(a), str(b)]) == 1
        assert "diverge at position" in capsys.readouterr().out

    def test_pid_lane_comparison(self, capsys, tmp_path):
        a = tmp_path / "a.jsonl"
        self._export("floodset-rws", a)
        capsys.readouterr()
        assert main(["diff", str(a), str(a), "--pid", "1"]) == 0
        assert "indistinguishable" in capsys.readouterr().out

    def test_sdd_quadruple_demo(self, capsys):
        assert main(["diff", "--sdd", "suspicion"]) == 0
        out = capsys.readouterr().out
        assert "r0 ~ r0'" in out
        assert "r1 ~ r1'" in out
        assert "contradiction" in out

    def test_sdd_unknown_candidate_exits_2(self, capsys):
        assert main(["diff", "--sdd", "nope"]) == 2
        assert "unknown SDD candidate" in capsys.readouterr().err

    def test_missing_operands_exit_2(self, capsys):
        assert main(["diff"]) == 2


class TestCheckTraceScriptOrdering:
    """scripts/check_trace.py now layers ordering atop the schema."""

    def test_ordering_violation_detected(self, tmp_path):
        bad = tmp_path / "bad_order.jsonl"
        bad.write_text(
            '{"kind": "round_start", "round": 1, "ts": 1.0, "value": [0, 1]}\n'
            '{"kind": "round_start", "round": 3, "ts": 2.0, "value": [0, 1]}\n'
        )
        result = _shell(sys.executable, "scripts/check_trace.py", str(bad))
        assert result.returncode == 1
        assert "increase by exactly 1" in result.stderr

    def test_schema_only_skips_ordering(self, tmp_path):
        bad = tmp_path / "bad_order.jsonl"
        bad.write_text(
            '{"kind": "round_start", "round": 1, "ts": 1.0, "value": [0, 1]}\n'
            '{"kind": "round_start", "round": 3, "ts": 2.0, "value": [0, 1]}\n'
        )
        result = _shell(
            sys.executable,
            "scripts/check_trace.py",
            "--schema-only",
            str(bad),
        )
        assert result.returncode == 0
        assert "OK (schema)" in result.stdout


class TestShowErrorPath:
    def test_show_unknown_scenario_is_clean_error(self, capsys):
        """No traceback, nonzero exit, helpful message."""
        assert main(["show", "definitely-not-a-scenario"]) == 2
        err = capsys.readouterr().err
        assert "unknown scenario" in err
        assert "choose from" in err

    def test_show_accepts_alias(self, capsys):
        assert main(["show", "floodset-rws-violation"]) == 0
        assert "round" in capsys.readouterr().out
