"""The campaign coordinator: leased shards in, merged run artifacts out.

One :class:`Coordinator` owns one scenario space and one
content-addressed run directory (the same ``runs/<run_id>`` layout
``repro sweep --run-dir`` writes — the run id derives from the request
cache keys, so a distributed campaign and a single-process sweep of the
same space land in the *same* directory and resume each other).  The
coordinator never executes cells; it

* plans shards over the cells the run directory has not completed
  (:func:`repro.serve.shards.plan_shards` — completed cells are never
  resharded, so a restarted coordinator provably re-executes nothing);
* leases shards to workers and re-queues shards whose lease expired
  (a killed or stalled worker forfeits its shard, nothing else);
* merges submitted results into the run's ``results/`` store, deduping
  on request cache key — at-least-once execution is safe because two
  executions of one request produce byte-identical results, and the
  first accepted submission wins;
* quarantines malformed submissions under ``quarantine/`` without
  letting them near the result store;
* finalizes ``summary.json`` (through the same
  :func:`~repro.obs.report.summarize_sweep` path as ``repro sweep``)
  once every planned cell's result is on disk, adding a ``serve``
  section with the fabric's own telemetry.

All public methods are thread-safe: the HTTP layer
(:mod:`repro.serve.api`) calls them from handler threads.
"""

from __future__ import annotations

import json
import threading
import time
import uuid
from typing import Any, Callable, Mapping

from repro.errors import ConfigurationError
from repro.obs.artifacts import RunDir
from repro.obs.metrics import MetricsRegistry
from repro.runtime.cache import ResultCache
from repro.runtime.request import (
    ExecutionRequest,
    ExecutionResult,
    batch_cache_keys,
)
from repro.runtime.space import ScenarioSpace
from repro.runtime.sweep import SweepResult, check_cell
from repro.serve.shards import (
    DEFAULT_SHARD_SIZE,
    DONE,
    LEASED,
    PENDING,
    ShardState,
    plan_shards,
)

#: Subdirectory of the run directory holding rejected submissions.
QUARANTINE_DIR = "quarantine"

#: Default seconds a worker may hold a shard before it is re-queued.
DEFAULT_LEASE_TTL = 60.0


class SubmitError(ValueError):
    """A malformed or inconsistent submission; the payload is
    quarantined and nothing reaches the result store."""


class Coordinator:
    """Shard, lease, merge and finalize one campaign.

    Args:
        space: The scenario space to execute (already engine-retargeted
            if the campaign runs ``--engine vector``).
        run_root: The runs root (e.g. ``runs/``); the actual directory
            is content-addressed from the request cache keys.
        shard_size: Cells per leased shard.
        lease_ttl: Seconds before an unsubmitted lease is re-queued.
        check: Run the trace oracle over every cell at finalize.
        clock: Monotonic time source (injectable for lease tests).
        on_cell: Optional ``(cell_name, cached)`` callback fired once
            per merged cell — the progress-reporter seam.
    """

    def __init__(
        self,
        space: ScenarioSpace,
        *,
        run_root: str,
        shard_size: int = DEFAULT_SHARD_SIZE,
        lease_ttl: float = DEFAULT_LEASE_TTL,
        check: bool = False,
        clock: Callable[[], float] = time.monotonic,
        on_cell: Callable[[str, bool], None] | None = None,
    ) -> None:
        self.space = space
        self.requests: list[ExecutionRequest] = list(space.requests)
        self.keys: list[str] = batch_cache_keys(self.requests)
        if len(set(self.keys)) != len(self.keys):
            raise ConfigurationError(
                f"space {space.name!r} has colliding request cache keys; "
                "dedupe-by-key needs injective keys"
            )
        self.index_by_key = {key: i for i, key in enumerate(self.keys)}
        self.lease_ttl = float(lease_ttl)
        self.check = check
        self.clock = clock
        self.on_cell = on_cell
        self._lock = threading.RLock()

        self.run_dir = RunDir.open(
            run_root,
            kind="sweep",
            name=space.name,
            identity=sorted(self.keys),
            cells=[(r.name, k) for r, k in zip(self.requests, self.keys)],
            config={"space": space.name, "mode": "serve", "check": check},
        )
        self.cache = ResultCache(self.run_dir.results_dir)

        on_disk = self.run_dir.completed_keys()
        #: Planned keys already completed when this leg started.
        self.completed_before: set[str] = set(self.keys) & on_disk
        #: Every planned key with a result on disk (grows as legs merge).
        self.merged: set[str] = set(self.completed_before)
        #: Keys whose results this leg stored (the leg's "executed").
        self.stored_this_leg: set[str] = set()

        missing = [
            i for i, key in enumerate(self.keys) if key not in self.merged
        ]
        self.shards: list[ShardState] = [
            ShardState(plan)
            for plan in plan_shards(missing, shard_size=shard_size)
        ]

        # Fabric telemetry.
        self.claims = 0
        self.stale_submissions = 0
        self.duplicate_cells = 0
        self.quarantined = 0
        self.workers: dict[str, dict[str, int]] = {}
        self._finalized: dict[str, Any] | None = None

        # Audit the resumed cells like a cache-warm sweep leg would.
        for request, key in zip(self.requests, self.keys):
            if key in self.completed_before:
                self.run_dir.record_cell(
                    name=request.name,
                    key=key,
                    cached=True,
                    engine=request.engine,
                    algorithm=request.algorithm,
                )
                if self.on_cell is not None:
                    self.on_cell(request.name, True)

    # -- lease side (worker-facing) ------------------------------------------

    def claim(self, worker_id: str) -> dict[str, Any]:
        """Lease the next pending shard to ``worker_id``.

        Returns a shard grant (``shard_id``, ``lease_id``, the cells'
        serialized requests), ``{"done": true}`` when every shard is
        merged, or ``{"wait": true}`` when all remaining shards are
        currently leased to other workers.
        """
        worker_id = str(worker_id or "anonymous")
        with self._lock:
            self._expire_leases()
            for shard in self.shards:
                if shard.status != PENDING:
                    continue
                lease_id = uuid.uuid4().hex
                shard.lease(
                    lease_id, worker_id, self.clock() + self.lease_ttl
                )
                self.claims += 1
                stats = self.workers.setdefault(
                    worker_id, {"claims": 0, "cells_merged": 0}
                )
                stats["claims"] += 1
                return {
                    "shard_id": shard.plan.shard_id,
                    "lease_id": lease_id,
                    "lease_ttl_s": self.lease_ttl,
                    "cells": [
                        {
                            "name": self.requests[i].name,
                            "key": self.keys[i],
                            "request": self.requests[i].to_dict(),
                        }
                        for i in shard.plan.indices
                    ],
                }
            if self.is_complete():
                return {"done": True}
            return {"wait": True, "retry_s": min(1.0, self.lease_ttl / 4)}

    def submit(self, payload: Any) -> dict[str, Any]:
        """Merge one shard's results; raise :class:`SubmitError` on junk.

        Validation is all-or-nothing: every entry must parse as an
        :class:`ExecutionResult` whose ``request_key`` is one of the
        named shard's planned keys, or the whole payload is rejected
        (the API layer quarantines it) and the store is untouched.
        A stale lease — expired, re-leased, or already completed — is
        *not* an error: content-addressed results make duplicate
        execution safe, so the results are merged with dedupe and the
        submission is only counted as stale.
        """
        with self._lock:
            if not isinstance(payload, Mapping):
                raise SubmitError(
                    f"payload is not an object (got {type(payload).__name__})"
                )
            shard_id = payload.get("shard_id")
            if not isinstance(shard_id, int) or not (
                0 <= shard_id < len(self.shards)
            ):
                raise SubmitError(f"unknown shard_id {shard_id!r}")
            entries = payload.get("results")
            if not isinstance(entries, list):
                raise SubmitError("'results' is not a list")
            shard = self.shards[shard_id]
            expected = {self.keys[i] for i in shard.plan.indices}
            parsed: list[ExecutionResult] = []
            for position, entry in enumerate(entries):
                try:
                    result = ExecutionResult.from_dict(entry)
                except (TypeError, KeyError, ValueError, AttributeError) as exc:
                    raise SubmitError(
                        f"results[{position}] does not parse as an "
                        f"ExecutionResult: {exc}"
                    ) from exc
                if result.request_key not in expected:
                    raise SubmitError(
                        f"results[{position}] carries key "
                        f"{result.request_key[:16]}… which is not in "
                        f"shard {shard_id}"
                    )
                parsed.append(result)

            worker_id = str(payload.get("worker_id") or "anonymous")
            stale = not (
                shard.status == LEASED
                and shard.lease_id == payload.get("lease_id")
            )
            if stale:
                self.stale_submissions += 1

            accepted = 0
            duplicates = 0
            for result in parsed:
                key = result.request_key
                if key in self.merged:
                    duplicates += 1
                    self.duplicate_cells += 1
                    continue
                index = self.index_by_key[key]
                result.cached = False
                self.cache.put(self.requests[index], result)
                self.merged.add(key)
                self.stored_this_leg.add(key)
                profile = result.extra.get("profile") or {}
                self.run_dir.record_cell(
                    name=result.name,
                    key=key,
                    cached=False,
                    engine=self.requests[index].engine,
                    algorithm=self.requests[index].algorithm,
                    latency=result.latency,
                    num_rounds=result.num_rounds,
                    events=len(result.events),
                    duration_s=profile.get("duration_s"),
                )
                if self.on_cell is not None:
                    self.on_cell(result.name, False)
                accepted += 1
            stats = self.workers.setdefault(
                worker_id, {"claims": 0, "cells_merged": 0}
            )
            stats["cells_merged"] += accepted

            # A submission may complete any shard whose cells it covered
            # (a stale re-lease completes the *new* lease's shard too).
            for candidate in self.shards:
                if candidate.status != DONE and all(
                    self.keys[i] in self.merged
                    for i in candidate.plan.indices
                ):
                    candidate.complete()
            return {
                "accepted": accepted,
                "duplicates": duplicates,
                "stale": stale,
                "done": self.is_complete(),
            }

    def _expire_leases(self) -> None:
        now = self.clock()
        for shard in self.shards:
            if shard.status == LEASED and now > shard.deadline:
                shard.expire()

    # -- quarantine ----------------------------------------------------------

    def quarantine(self, payload: Any, reason: str) -> str:
        """Persist a rejected submission for post-mortem; returns the path.

        The payload never touches ``results/`` — a quarantined
        submission can corrupt nothing, only occupy disk next to the
        artifacts it tried to pollute.
        """
        with self._lock:
            self.quarantined += 1
            directory = self.run_dir.path / QUARANTINE_DIR
            directory.mkdir(exist_ok=True)
            path = directory / f"q-{self.quarantined:04d}.json"
            if isinstance(payload, bytes):
                payload = payload.decode("utf-8", errors="replace")
            path.write_text(
                json.dumps(
                    {"reason": reason, "payload": payload},
                    sort_keys=True,
                    default=repr,
                )
                + "\n",
                encoding="utf-8",
            )
            return str(path)

    # -- status side ---------------------------------------------------------

    def is_complete(self) -> bool:
        """True when every planned cell's result is merged."""
        with self._lock:
            return len(self.merged) == len(self.keys)

    def status(self) -> dict[str, Any]:
        """A JSON-ready snapshot of the fabric's state."""
        with self._lock:
            self._expire_leases()
            by_status = {PENDING: 0, LEASED: 0, DONE: 0}
            requeues = 0
            for shard in self.shards:
                by_status[shard.status] += 1
                requeues += shard.requeues
            return {
                "run_id": self.run_dir.run_id,
                "space": self.space.name,
                "status": (
                    "complete" if self.is_complete() else "serving"
                ),
                "cells": {
                    "planned": len(self.keys),
                    "merged": len(self.merged),
                    "completed_before": len(self.completed_before),
                    "executed": len(self.stored_this_leg),
                },
                "shards": {
                    "total": len(self.shards),
                    "pending": by_status[PENDING],
                    "leased": by_status[LEASED],
                    "done": by_status[DONE],
                    "requeued": requeues,
                },
                "lease_ttl_s": self.lease_ttl,
                "workers": {
                    name: dict(stats)
                    for name, stats in sorted(self.workers.items())
                },
                "claims": self.claims,
                "stale_submissions": self.stale_submissions,
                "duplicate_cells": self.duplicate_cells,
                "quarantined": self.quarantined,
            }

    def serve_stats(self) -> dict[str, Any]:
        """The ``serve`` section of the finalized summary."""
        status = self.status()
        return {
            "shards": status["shards"],
            "cells": status["cells"],
            "workers": status["workers"],
            "lease_ttl_s": self.lease_ttl,
            "claims": self.claims,
            "stale_submissions": self.stale_submissions,
            "duplicate_cells": self.duplicate_cells,
            "quarantined": self.quarantined,
        }

    # -- finalize ------------------------------------------------------------

    def build_sweep_result(self) -> SweepResult:
        """Assemble the campaign's :class:`SweepResult` from the store.

        Results are read back in *space order*, so the merged trace and
        the folded metrics are byte-identical to a single-process
        ``repro sweep`` of the same space — regardless of how many
        workers (or legs, or duplicate submissions) produced them.
        """
        with self._lock:
            results: list[ExecutionResult] = []
            for request, key in zip(self.requests, self.keys):
                result = self.cache.get(request)
                if result is None:
                    raise RuntimeError(
                        f"cell {request.name!r} ({key[:16]}…) has no "
                        "result on disk; campaign is not complete"
                    )
                # "cached" here means "not executed this leg": resumed
                # cells and pre-merged duplicates count as cached, so
                # the summary's resume arithmetic stays exact.
                result.cached = key not in self.stored_this_leg
                results.append(result)
            registry = MetricsRegistry()
            for result in results:
                registry.merge_state(result.metrics)
            registry.counter("sweep.cells.total").inc(len(results))
            checks = (
                [
                    check_cell(request, result)
                    for request, result in zip(self.requests, results)
                ]
                if self.check
                else None
            )
            return SweepResult(
                space_name=self.space.name,
                requests=self.requests,
                results=results,
                executed=len(self.stored_this_leg),
                cached=len(results) - len(self.stored_this_leg),
                metrics=registry,
                checks=checks,
                cache_stats=self.cache.stats.as_dict(),
            )

    def finalize(self) -> tuple[SweepResult, dict[str, Any]]:
        """Write ``summary.json`` once and return ``(result, summary)``."""
        from repro.obs.report import summarize_sweep

        with self._lock:
            if not self.is_complete():
                raise RuntimeError(
                    f"cannot finalize: {len(self.keys) - len(self.merged)} "
                    "cells still missing"
                )
            sweep_result = self.build_sweep_result()
            summary = summarize_sweep(
                self.run_dir,
                sweep_result,
                completed_before=self.completed_before,
            )
            summary["serve"] = self.serve_stats()
            self.run_dir.finalize(summary)
            self._finalized = summary
            return sweep_result, summary

    def mark_interrupted(self) -> None:
        self.run_dir.mark_interrupted()

    def summary_document(self) -> dict[str, Any]:
        """The finalized summary, or an ``in_progress`` status stub."""
        with self._lock:
            if self._finalized is not None:
                return self._finalized
            return {"in_progress": True, "status": self.status()}
