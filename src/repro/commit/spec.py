"""The non-blocking atomic commit (NBAC) specification.

Votes are booleans (True = YES, False = NO); decisions are the strings
:data:`COMMIT` and :data:`ABORT`.

Clauses (uniform NBAC):

* **Uniform agreement** — no two processes decide differently.
* **Commit validity** — COMMIT requires every *cast* vote to be YES,
  where a vote is cast unless its owner is initially dead (in round
  terms: it crashed in round 1 reaching nobody, hence expressed its
  vote to no one — the paper's "initially dead" proviso).
* **Abort validity** — ABORT requires a NO vote or a failure
  (aborting a clean unanimous-YES run is forbidden).
* **Termination** — every correct process decides.

:func:`check_commit_obligation` captures the stronger guarantee the
synchronous model affords: all-YES and nobody initially dead imply
COMMIT, *despite crashes*.  This is exactly the clause an RWS algorithm
cannot honour (a pending YES vote is indistinguishable from a pending
NO vote), which is how SDD's solvability gap becomes a commit-rate gap.
"""

from __future__ import annotations

from repro.consensus.spec import SpecViolation
from repro.rounds.executor import RoundRun

COMMIT = "COMMIT"
ABORT = "ABORT"


def _cast_votes(run: RoundRun) -> dict[int, bool]:
    """The votes actually cast: everyone except the initially dead."""
    dead = run.scenario.initially_dead()
    return {
        pid: bool(run.values[pid])
        for pid in range(run.n)
        if pid not in dead
    }


def _violation(run: RoundRun, clause: str, detail: str) -> SpecViolation:
    return SpecViolation(
        clause=clause,
        detail=detail,
        scenario=run.scenario.describe(),
        values=run.values,
    )


def check_nbac_run(run: RoundRun) -> list[SpecViolation]:
    """Check one finished run against the NBAC specification."""
    violations: list[SpecViolation] = []
    decided = {pid: value for pid, (_, value) in run.decisions.items()}

    distinct = set(decided.values())
    if len(distinct) > 1:
        violations.append(
            _violation(
                run,
                "uniform agreement",
                "processes decided differently: "
                + ", ".join(
                    f"p{pid}={value}" for pid, value in sorted(decided.items())
                ),
            )
        )

    cast = _cast_votes(run)
    if COMMIT in distinct and not all(cast.values()):
        no_voters = sorted(pid for pid, vote in cast.items() if not vote)
        violations.append(
            _violation(
                run,
                "commit validity",
                f"COMMIT decided although processes {no_voters} cast NO",
            )
        )

    clean = run.scenario.num_failures() == 0
    if ABORT in distinct and clean and all(cast.values()):
        violations.append(
            _violation(
                run,
                "abort validity",
                "ABORT decided in a failure-free unanimous-YES run",
            )
        )

    for pid in run.scenario.correct:
        if pid not in run.decisions:
            violations.append(
                _violation(
                    run,
                    "termination",
                    f"correct process p{pid} never decided within "
                    f"{run.num_rounds} rounds",
                )
            )
    return violations


def check_commit_obligation(run: RoundRun) -> list[SpecViolation]:
    """The synchronous extra: all-YES + nobody initially dead => COMMIT.

    Returns violations for correct processes that decided ABORT in a
    run where every process voted YES and none was initially dead.
    This clause is *not* part of NBAC proper — it is the guarantee
    whose achievability separates SS from SP.
    """
    violations: list[SpecViolation] = []
    if not all(bool(v) for v in run.values):
        return violations
    if run.scenario.initially_dead():
        return violations
    for pid, (_, value) in run.decisions.items():
        if pid in run.scenario.correct and value != COMMIT:
            violations.append(
                _violation(
                    run,
                    "commit obligation",
                    f"all voted YES and nobody was initially dead, yet "
                    f"p{pid} decided {value}",
                )
            )
    return violations
