"""Uniform consensus algorithms for the RS and RWS round models.

Contents map directly onto the paper's figures:

* :class:`FloodSet` — Figure 1, the classical (t+1)-round algorithm.
* :class:`FloodSetWS` — Figure 2, FloodSet hardened against pending
  messages by the ``halt`` bookkeeping.
* :class:`COptFloodSet` / :class:`COptFloodSetWS` — the Section 5.2
  unanimity fast path (decide at round 1 on ``n`` identical values),
  witnessing ``lat = 1``.
* :class:`FOptFloodSet` — Figure 3 — and :class:`FOptFloodSetWS`: the
  ``n - t`` fast path (decide at round 1 when ``t`` processes are
  initially dead), witnessing ``Lat = 1``.
* :class:`A1` — Figure 4, the two-round algorithm with ``Λ = 1`` in RS
  for ``t = 1``.
* :class:`EarlyDecidingConsensus` / :class:`EarlyDecidingUniformFloodSet`
  — early-deciding baselines used to exhibit the consensus vs uniform
  consensus gap (Section 5.1's remark).
"""

from repro.consensus.spec import (
    SpecViolation,
    check_consensus_run,
    check_uniform_consensus_run,
    check_many,
)
from repro.consensus.floodset import FloodSet, FloodSetWS
from repro.consensus.opt import COptFloodSet, COptFloodSetWS
from repro.consensus.fopt import FOptFloodSet, FOptFloodSetWS
from repro.consensus.a1 import A1
from repro.consensus.early import (
    EarlyDecidingConsensus,
    EarlyDecidingUniformFloodSet,
    EagerFloodSetWS,
)
from repro.consensus.interactive import (
    InteractiveConsistency,
    InteractiveConsistencyWS,
    check_interactive_consistency_run,
    consensus_from_vector,
)

__all__ = [
    "SpecViolation",
    "check_consensus_run",
    "check_uniform_consensus_run",
    "check_many",
    "FloodSet",
    "FloodSetWS",
    "COptFloodSet",
    "COptFloodSetWS",
    "FOptFloodSet",
    "FOptFloodSetWS",
    "A1",
    "EarlyDecidingConsensus",
    "EarlyDecidingUniformFloodSet",
    "EagerFloodSetWS",
    "InteractiveConsistency",
    "InteractiveConsistencyWS",
    "check_interactive_consistency_run",
    "consensus_from_vector",
]
