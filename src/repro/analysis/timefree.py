"""Time-freeness, mechanised (paper Section 2.7).

A problem is *time-free* when its verdict on a run depends only on the
per-process step projections ``S_i`` — not on the global interleaving
or on the step-time list ``T``.  The paper restricts attention to such
problems (SDD and uniform consensus among them) because they are the
ones for which comparing SS and SP is meaningful.

This module makes the definition executable.  From a finished run we
extract its *causal structure*: each process's step sequence, what each
step received (as per-sender message counts — channels are FIFO in the
kernel, so counts identify messages), and the send→receive edges
across processes.  Any linear extension of that partial order is a
legal rescheduling with identical projections; re-executing the same
deterministic algorithm under a random linear extension must reproduce
the same per-process outcomes.  :func:`check_time_free_execution`
automates the comparison — a mechanical witness that the algorithm's
behaviour (and hence any time-free specification's verdict on it) is
interleaving-invariant.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Callable, Sequence

from repro.errors import ExecutionError
from repro.failures.history import FailureDetectorHistory
from repro.simulation.automaton import StepAutomaton
from repro.simulation.executor import StepExecutor
from repro.simulation.message import Message
from repro.simulation.run import Run
from repro.simulation.schedulers import ScriptedScheduler


@dataclass(frozen=True)
class _StepNode:
    """One step of the original run, in causal-structure form."""

    pid: int
    local_index: int  # 0-based position within the process's projection
    received: tuple[tuple[int, Any], ...]  # (sender, payload) multiset
    depends_on: tuple[tuple[int, int], ...]  # (pid, local_index) of sends


def _causal_structure(run: Run) -> list[_StepNode]:
    """Extract the run's step nodes with their cross-process edges."""
    # Map each message uid to the (pid, local_index) of its sending step.
    send_site: dict[int, tuple[int, int]] = {}
    local_counter = {pid: 0 for pid in range(run.n)}
    step_local: dict[int, tuple[int, int]] = {}
    for step in run.schedule:
        site = (step.pid, local_counter[step.pid])
        step_local[step.index] = site
        local_counter[step.pid] += 1
        if step.sent_uid is not None:
            send_site[step.sent_uid] = site

    nodes: list[_StepNode] = []
    for step in run.schedule:
        received: list[tuple[int, Any]] = []
        depends: list[tuple[int, int]] = []
        for uid in step.received_uids:
            message = run.messages[uid]
            received.append((message.sender, message.payload))
            depends.append(send_site[uid])
        pid, local_index = step_local[step.index]
        nodes.append(
            _StepNode(
                pid=pid,
                local_index=local_index,
                received=tuple(received),
                depends_on=tuple(depends),
            )
        )
    return nodes


def random_linear_extension(
    run: Run, rng: random.Random
) -> list[_StepNode]:
    """A uniform-ish random linear extension of the run's causal order.

    Constraints: each process's steps stay in order, and every step
    follows the steps that sent the messages it receives.
    """
    nodes = _causal_structure(run)
    by_site = {(node.pid, node.local_index): node for node in nodes}
    done: set[tuple[int, int]] = set()
    next_local = {pid: 0 for pid in range(run.n)}
    remaining = len(nodes)
    order: list[_StepNode] = []
    while remaining:
        ready = []
        for pid in range(run.n):
            site = (pid, next_local[pid])
            node = by_site.get(site)
            if node is None:
                continue
            if all(dep in done for dep in node.depends_on):
                ready.append(node)
        if not ready:
            raise ExecutionError(
                "causal structure has no ready step — cyclic dependency "
                "(this indicates a kernel bug)"
            )
        node = rng.choice(ready)
        order.append(node)
        done.add((node.pid, node.local_index))
        next_local[node.pid] += 1
        remaining -= 1
    return order


def _delivery_selector(received: tuple[tuple[int, Any], ...]):
    """Build a ScriptedScheduler selector reproducing a step's exact
    (sender, payload) delivery multiset.

    Matching by content rather than by message uid keeps the replay
    *observation-exact* even when the original scheduler delivered a
    channel's messages out of order: a deterministic automaton cannot
    tell equal payloads apart, so any content-matching choice yields
    the same projection.
    """
    wanted = list(received)

    def select(buffered: Sequence[Message]) -> list[int]:
        pending = list(wanted)
        uids: list[int] = []
        for message in buffered:
            key = (message.sender, message.payload)
            if key in pending:
                pending.remove(key)
                uids.append(message.uid)
        if pending:
            raise ExecutionError(
                f"rescheduled delivery impossible: still owed {pending!r}"
            )
        return uids

    return select


def reexecute_with_projections(
    run: Run,
    automata: StepAutomaton | Sequence[StepAutomaton],
    rng: random.Random,
) -> Run:
    """Re-execute the algorithm under a random projection-preserving
    rescheduling of ``run``.

    The failure pattern is kept, with crash times pushed past the end
    (every step of the original projections must still be takeable; at
    the round/step level the *projections* already encode every effect
    the crashes had).  The detector history, if any, is replayed
    per-process: the i-th step of each process sees the same suspicion
    set as in the original run, which is exactly projection-equivalence
    for the query phase.
    """
    order = random_linear_extension(run, rng)
    script = [
        (node.pid, _delivery_selector(node.received))
        for node in order
    ]

    original_suspects: dict[tuple[int, int], frozenset | None] = {}
    locals_seen = {pid: 0 for pid in range(run.n)}
    for step in run.schedule:
        original_suspects[(step.pid, locals_seen[step.pid])] = step.suspects
        locals_seen[step.pid] += 1

    class _ReplayHistory(FailureDetectorHistory):
        """Replays per-process suspicion sequences positionally."""

        def __init__(self) -> None:
            self._cursor = {pid: 0 for pid in range(run.n)}

        def suspects(self, pid: int, t: int) -> frozenset:
            position = self._cursor[pid]
            self._cursor[pid] = position + 1
            value = original_suspects.get((pid, position))
            return value if value is not None else frozenset()

    needs_history = any(
        suspects is not None for suspects in original_suspects.values()
    )
    from repro.failures.pattern import FailurePattern

    relaxed_pattern = FailurePattern.with_crashes(
        run.n,
        {
            pid: len(order) + 1
            for pid in run.pattern.faulty
        },
    )
    executor = StepExecutor(
        automata,
        run.n,
        relaxed_pattern,
        ScriptedScheduler(script),
        history=_ReplayHistory() if needs_history else None,
    )
    return executor.execute(len(order))


def check_time_free_execution(
    run: Run,
    automata: StepAutomaton | Sequence[StepAutomaton],
    *,
    outcome: Callable[[Run, int], Any],
    rng: random.Random | None = None,
    attempts: int = 3,
) -> list[str]:
    """Verify per-process outcomes are invariant under rescheduling.

    Args:
        run: The original finished run.
        automata: The same (deterministic) algorithm that produced it.
        outcome: Maps ``(run, pid)`` to the value that must be
            preserved — e.g. the process's decision.
        rng: Randomness for picking linear extensions.
        attempts: Number of independent reschedulings to try.

    Returns a list of discrepancy descriptions (empty = time-free as
    far as these reschedulings witness).
    """
    if rng is None:
        rng = random.Random(0)
    problems: list[str] = []
    baseline = {pid: outcome(run, pid) for pid in range(run.n)}
    for attempt in range(attempts):
        replay = reexecute_with_projections(run, automata, rng)
        for pid in range(run.n):
            replayed = outcome(replay, pid)
            if replayed != baseline[pid]:
                problems.append(
                    f"attempt {attempt}: p{pid} produced {replayed!r} "
                    f"instead of {baseline[pid]!r}"
                )
    return problems
