"""Consensus across the detector hierarchy: ◊S vs P vs SS.

The paper compares the *strongest* timing model (SS) with the
*strongest* detector model (SP).  This example rounds out the picture
with the hierarchy's other end: the Chandra–Toueg rotating-coordinator
algorithm needs only ◊S — a detector that may lie for arbitrarily long
— yet keeps uniform agreement through every lie, paying only in rounds.

Run:  python examples/hierarchy_consensus.py
"""

import random

from repro.failures import FailurePattern
from repro.fdconsensus import ct_decisions, run_ct_consensus


def trial(label, *, crashes=None, stabilization=0, noise=0.0, seed=1):
    pattern = FailurePattern.with_crashes(3, crashes or {})
    run = run_ct_consensus(
        [0, 1, 1],
        pattern,
        rng=random.Random(seed),
        stabilization_time=stabilization,
        false_suspicion_prob=noise,
        max_steps=15_000,
    )
    decisions = ct_decisions(run)
    max_round = max(state.round for state in run.final_states.values())
    print(
        f"  {label}: decisions={decisions}, steps={len(run.schedule)}, "
        f"max round={max_round}"
    )
    assert len(set(decisions.values())) <= 1


def main() -> None:
    print("=== Chandra-Toueg consensus with ◊S (n=3, t=1) ===\n")

    print("perfect conditions (instant stabilisation, no crashes):")
    trial("clean", stabilization=0)

    print("\nround-1 coordinator crashes; rotation recovers:")
    trial("p0 crashes", crashes={0: 10})

    print("\nthe detector lies for a long time (◊S's hard regime):")
    trial("noisy pre-GST", stabilization=150, noise=0.5, seed=3)

    print("\ncrash + noise together:")
    trial("both", crashes={0: 30}, stabilization=100, noise=0.4, seed=7)

    print(
        "\nSafety never budged — only the round count grew.  That is the "
        "failure-detector approach's trade: with ◊S, time buys liveness; "
        "with P (the paper's SP), detection itself is reliable but still "
        "unbounded; only SS bounds it — which is the paper's whole point."
    )


if __name__ == "__main__":
    main()
