"""Tests for the RS/RWS round executor."""

from __future__ import annotations

import pytest

from repro.consensus import FloodSet
from repro.errors import ConfigurationError, ScenarioError
from repro.rounds import (
    CrashEvent,
    FailureScenario,
    PendingMessage,
    RoundModel,
    check_round_synchrony,
    check_weak_round_synchrony,
    execute,
    run_rs,
    run_rws,
)
from repro.workloads import a1_rws_disagreement


def rs(values, scenario, t=1, **kw):
    return run_rs(FloodSet(), values, scenario, t=t, **kw)


class TestFailureFreeExecution:
    def test_floodset_decides_min_at_t_plus_one(self):
        run = rs([2, 0, 1], FailureScenario.failure_free(3))
        assert run.decision_value(0) == 0
        assert all(run.decision_round(p) == 2 for p in range(3))

    def test_latency_is_max_correct_decision_round(self):
        run = rs([0, 1, 1], FailureScenario.failure_free(3))
        assert run.latency() == 2

    def test_early_stop_on_quiescence(self):
        run = rs([0, 1, 1], FailureScenario.failure_free(3), max_rounds=9)
        assert run.num_rounds == 2  # stops once everyone decided

    def test_run_all_rounds_forces_full_horizon(self):
        run = rs(
            [0, 1, 1],
            FailureScenario.failure_free(3),
            max_rounds=4,
            run_all_rounds=True,
        )
        assert run.num_rounds == 4

    def test_round_records_track_sends(self):
        run = rs([0, 1, 1], FailureScenario.failure_free(3))
        first = run.rounds[0]
        assert (0, 1) in first.sent and (2, 0) in first.sent
        assert first.transitioned == frozenset({0, 1, 2})


class TestCrashSemantics:
    def test_initially_dead_sends_nothing(self):
        scenario = FailureScenario.initially_dead_set(3, {0})
        run = rs([0, 1, 1], scenario)
        assert all(sender != 0 for sender, _ in run.rounds[0].sent)
        # Survivors never learn 0 and decide 1.
        assert run.decision_value(1) == 1

    def test_partial_broadcast_reaches_exact_subset(self):
        scenario = FailureScenario(
            n=3, crashes=(CrashEvent(pid=0, round=1, sent_to=frozenset({1})),)
        )
        run = rs([0, 1, 1], scenario)
        first = run.rounds[0]
        assert (0, 1) in first.sent
        assert (0, 2) not in first.sent
        # The flood relays value 0 in round 2; both survivors decide 0.
        assert run.decision_value(1) == 0
        assert run.decision_value(2) == 0

    def test_crashed_process_never_transitions_without_flag(self):
        scenario = FailureScenario(
            n=3, crashes=(CrashEvent(pid=0, round=1, sent_to=frozenset({1})),)
        )
        run = rs([0, 1, 1], scenario)
        assert 0 not in run.rounds[0].transitioned
        assert 0 not in run.decisions

    def test_applies_transition_lets_crasher_decide(self):
        scenario = a1_rws_disagreement(3)  # p0 decides then crashes
        from repro.consensus import A1

        run = run_rws(A1(), [0, 1, 1], scenario, t=1)
        assert run.decision_value(0) == 0
        assert run.decision_round(0) == 1

    def test_crashed_stays_dead(self):
        scenario = FailureScenario(
            n=3, crashes=(CrashEvent(pid=1, round=1),)
        )
        run = rs([0, 1, 1], scenario, max_rounds=3, run_all_rounds=True)
        for record in run.rounds:
            assert all(sender != 1 for sender, _ in record.sent)


class TestPendingSemantics:
    def test_pending_withheld_from_recipient(self):
        scenario = FailureScenario(
            n=3,
            crashes=(CrashEvent(pid=0, round=1, sent_to=frozenset({1, 2})),),
            pending=frozenset({PendingMessage(0, 2, 1)}),
        )
        run = run_rws(FloodSet(), [0, 1, 1], scenario, t=1)
        first = run.rounds[0]
        assert 0 in first.delivered[1]
        assert 0 not in first.delivered[2]
        assert (0, 2) in first.sent  # sent, just not delivered

    def test_self_delivery_cannot_be_pending(self):
        # PendingMessage construction forbids it outright.
        with pytest.raises(ScenarioError):
            PendingMessage(0, 0, 1)

    def test_rs_rejects_pending(self):
        scenario = FailureScenario(
            n=3,
            crashes=(CrashEvent(pid=0, round=1, sent_to=frozenset({1, 2})),),
            pending=frozenset({PendingMessage(0, 2, 1)}),
        )
        with pytest.raises(ScenarioError):
            run_rs(FloodSet(), [0, 1, 1], scenario, t=1)

    def test_invalid_scenario_rejected_by_default(self):
        scenario = FailureScenario(
            n=3, pending=frozenset({PendingMessage(0, 1, 1)})
        )
        with pytest.raises(ScenarioError):
            run_rws(FloodSet(), [0, 1, 1], scenario, t=1)


class TestValidators:
    def test_rs_run_satisfies_round_synchrony(self):
        scenario = FailureScenario(
            n=3, crashes=(CrashEvent(pid=0, round=1, sent_to=frozenset({1})),)
        )
        run = rs([0, 1, 1], scenario)
        assert check_round_synchrony(run) == []

    def test_rws_run_satisfies_weak_round_synchrony(self):
        run = run_rws(FloodSet(), [0, 1, 1], a1_rws_disagreement(3), t=1)
        assert check_weak_round_synchrony(run) == []

    def test_pending_run_fails_strict_round_synchrony(self):
        run = run_rws(FloodSet(), [0, 1, 1], a1_rws_disagreement(3), t=1)
        assert check_round_synchrony(run)


class TestExecutorValidation:
    def test_values_scenario_size_mismatch(self):
        with pytest.raises(ConfigurationError):
            execute(
                FloodSet(),
                [0, 1],
                FailureScenario.failure_free(3),
                t=1,
                model=RoundModel.RS,
                max_rounds=3,
            )

    def test_decisions_capture_first_round_only(self):
        run = rs([1, 1, 1], FailureScenario.failure_free(3), max_rounds=4,
                 run_all_rounds=True)
        assert run.decision_round(0) == 2  # not overwritten later

    def test_decided_values_accessor(self):
        run = rs([0, 1, 1], FailureScenario.failure_free(3))
        assert run.decided_values() == {0}
