"""Tests for the consensus / uniform consensus specification checkers."""

from __future__ import annotations

from typing import Any, Mapping

import pytest

from repro.consensus import (
    check_consensus_run,
    check_uniform_consensus_run,
    check_many,
)
from repro.consensus.spec import SpecViolation
from repro.rounds import FailureScenario, RoundModel, run_rs
from repro.rounds.algorithm import RoundAlgorithm, broadcast
from repro.rounds.scenario import CrashEvent


class FixedDecision(RoundAlgorithm):
    """Decides a per-process scripted value at round 1 (for clause tests)."""

    name = "fixed"

    def __init__(self, decisions: Mapping[int, Any]) -> None:
        self.decisions = dict(decisions)

    def initial_state(self, pid, n, t, value):
        return {"pid": pid, "rounds": 0, "decision": None}

    def messages(self, pid, state):
        return {}

    def transition(self, pid, state, received):
        return {
            "pid": pid,
            "rounds": state["rounds"] + 1,
            "decision": self.decisions.get(pid),
        }

    def decision_of(self, state):
        return state["decision"]


def run_fixed(decisions, values=(0, 1, 1), scenario=None):
    scenario = scenario or FailureScenario.failure_free(len(values))
    return run_rs(
        FixedDecision(decisions), list(values), scenario, t=1, max_rounds=2
    )


class TestUniformAgreementClause:
    def test_split_decision_flagged(self):
        run = run_fixed({0: 0, 1: 1, 2: 1})
        violations = check_uniform_consensus_run(run)
        assert any(v.clause == "uniform agreement" for v in violations)

    def test_agreeing_decisions_pass(self):
        run = run_fixed({0: 1, 1: 1, 2: 1})
        clauses = {v.clause for v in check_uniform_consensus_run(run)}
        assert "uniform agreement" not in clauses

    def test_faulty_process_counts_for_uniform(self):
        scenario = FailureScenario(
            n=3,
            crashes=(
                CrashEvent(
                    pid=0,
                    round=1,
                    sent_to=frozenset({1, 2}),
                    applies_transition=True,
                ),
            ),
        )
        run = run_fixed({0: 0, 1: 1, 2: 1}, scenario=scenario)
        uniform = check_uniform_consensus_run(run)
        plain = check_consensus_run(run)
        assert any(v.clause == "uniform agreement" for v in uniform)
        assert not any(v.clause == "agreement" for v in plain)


class TestValidityClauses:
    def test_unanimous_input_other_decision_flagged(self):
        run = run_fixed({0: 1, 1: 1, 2: 1}, values=(0, 0, 0))
        violations = check_uniform_consensus_run(run)
        assert any(v.clause == "uniform validity" for v in violations)

    def test_decision_outside_proposals_flagged(self):
        run = run_fixed({0: 9, 1: 9, 2: 9})
        violations = check_uniform_consensus_run(run)
        assert any(v.clause == "validity" for v in violations)


class TestTerminationClause:
    def test_undecided_correct_process_flagged(self):
        run = run_fixed({0: 1, 1: 1})  # p2 never decides
        violations = check_uniform_consensus_run(run)
        assert any(
            v.clause == "termination" and "p2" in v.detail
            for v in violations
        )

    def test_undecided_faulty_process_not_flagged(self):
        scenario = FailureScenario(
            n=3, crashes=(CrashEvent(pid=2, round=1),)
        )
        run = run_fixed({0: 1, 1: 1}, scenario=scenario)
        violations = check_uniform_consensus_run(run)
        assert not any(v.clause == "termination" for v in violations)


class TestCheckMany:
    def test_aggregates_violations(self):
        runs = [run_fixed({0: 0, 1: 1, 2: 1}) for _ in range(3)]
        violations = check_many(runs)
        assert len(violations) == 3

    def test_custom_checker(self):
        runs = [run_fixed({0: 0, 1: 1, 2: 1})]
        # Consensus checker: all deciders correct & split -> agreement.
        violations = check_many(runs, checker=check_consensus_run)
        assert any(v.clause == "agreement" for v in violations)


class TestViolationFormatting:
    def test_str_contains_context(self):
        run = run_fixed({0: 0, 1: 1, 2: 1})
        violation = check_uniform_consensus_run(run)[0]
        text = str(violation)
        assert "uniform agreement" in text
        assert "values=" in text
