"""Symmetry reduction: orbit-canonical configuration representatives.

Two configurations related by a process-id permutation (for algorithms
whose code is the same at every process) or by a value-domain bijection
(for algorithms that transport values opaquely) have isomorphic
futures, and every property the checker evaluates — agreement, uniform
agreement, validity, termination, latency — is invariant under the
relabeling.  The checker therefore stores only the *orbit-canonical*
representative: the lexicographically least canonical form over the
algorithm's declared symmetry group.

Soundness is per-algorithm and declared explicitly here:

* The FloodSet family (plain, WS, C_Opt, F_Opt, eager) runs identical
  code at every process, so the full symmetric group applies; states
  that name pids (``halt`` / ``last_senders`` sets) are relabeled
  through the permutation.
* A1 gives p0 and p1 fixed roles, so only pids ``>= 2`` are
  interchangeable.  Its transitions never *order* values (`w` and the
  report payloads are opaque), so A1 is additionally value-symmetric.
* FloodSet-style algorithms decide ``min(W)`` — an order-*sensitive*
  rule — so a value permutation does **not** commute with them and is
  never applied.

Algorithms not registered here get the trivial group: canonical state
hashing still deduplicates exact revisits, only the quotient is
coarser.  The ``--no-reduce`` twin mode skips this module entirely;
its verdicts must agree with the reduced run (tested), which is the
executable soundness argument for every declaration above.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, replace
from typing import Any, Callable, Mapping, Sequence

from repro.mc.config import Configuration, canonical_form, value_sort_key


def _identity_state(state: Any, perm: Sequence[int]) -> Any:
    return state


def _relabel_pid_set(state: Any, perm: Sequence[int], field: str) -> Any:
    pids = getattr(state, field)
    return replace(state, **{field: frozenset(perm[pid] for pid in pids)})


def _halt_relabel(state: Any, perm: Sequence[int]) -> Any:
    return _relabel_pid_set(state, perm, "halt")


def _early_relabel(state: Any, perm: Sequence[int]) -> Any:
    return _relabel_pid_set(state, perm, "last_senders")


def _a1_value_relabel(state: Any, vmap: Mapping[Any, Any]) -> Any:
    decision = state.decision
    if decision is not None:
        decision = vmap.get(decision, decision)
    return replace(
        state, w=vmap.get(state.w, state.w), decision=decision
    )


@dataclass(frozen=True)
class SymmetrySpec:
    """One algorithm's declared symmetries.

    Attributes:
        movable: Given ``n``, the pids that are interchangeable (they
            are permuted among themselves; every other pid is fixed).
        relabel_state: Push a pid permutation through one state
            (``perm[old_pid] -> new_pid``); identity for states that
            never name pids.
        value_symmetric: Whether arbitrary bijections of the value
            domain commute with the algorithm.
        relabel_values: Push a value bijection through one state
            (required when ``value_symmetric``).
    """

    movable: Callable[[int], tuple[int, ...]]
    relabel_state: Callable[[Any, Sequence[int]], Any] = _identity_state
    value_symmetric: bool = False
    relabel_values: Callable[[Any, Mapping[Any, Any]], Any] | None = None


def _all_pids(n: int) -> tuple[int, ...]:
    return tuple(range(n))


def _non_role_pids(n: int) -> tuple[int, ...]:
    return tuple(range(2, n))


#: Algorithm registry key -> declared symmetry.
SYMMETRIES: dict[str, SymmetrySpec] = {
    "floodset": SymmetrySpec(movable=_all_pids),
    "floodset-ws": SymmetrySpec(
        movable=_all_pids, relabel_state=_halt_relabel
    ),
    "c-opt": SymmetrySpec(movable=_all_pids),
    "c-opt-ws": SymmetrySpec(movable=_all_pids, relabel_state=_halt_relabel),
    "f-opt": SymmetrySpec(movable=_all_pids),
    "f-opt-ws": SymmetrySpec(movable=_all_pids, relabel_state=_halt_relabel),
    "eager-floodset-ws": SymmetrySpec(
        movable=_all_pids, relabel_state=_early_relabel
    ),
    "a1": SymmetrySpec(
        movable=_non_role_pids,
        value_symmetric=True,
        relabel_values=_a1_value_relabel,
    ),
}

#: The trivial group: nothing moves, no value bijections.
TRIVIAL = SymmetrySpec(movable=lambda n: ())


def symmetry_for(algorithm_key: str) -> SymmetrySpec:
    """The declared symmetry of ``algorithm_key`` (trivial if unknown)."""
    return SYMMETRIES.get(algorithm_key, TRIVIAL)


def _permutations(spec: SymmetrySpec, n: int):
    """All pid maps ``perm[old] = new`` of the declared group."""
    movable = list(spec.movable(n))
    if len(movable) < 2:
        yield tuple(range(n))
        return
    for images in itertools.permutations(movable):
        perm = list(range(n))
        for old, new in zip(movable, images):
            perm[old] = new
        yield tuple(perm)


def _value_maps(spec: SymmetrySpec, config: Configuration):
    """All value bijections of the observed domain (identity-first)."""
    if not spec.value_symmetric:
        yield None
        return
    domain = sorted(set(config.initial_values), key=value_sort_key)
    for images in itertools.permutations(domain):
        yield dict(zip(domain, images))


def _apply(
    config: Configuration,
    spec: SymmetrySpec,
    perm: Sequence[int],
    vmap: Mapping[Any, Any] | None,
) -> Configuration:
    n = config.n
    states: list[Any] = [None] * n
    for old in range(n):
        state = config.states[old]
        if state is None:
            continue
        state = spec.relabel_state(state, perm)
        if vmap is not None:
            assert spec.relabel_values is not None
            state = spec.relabel_values(state, vmap)
        states[perm[old]] = state
    decided = config.decided
    initial_values = config.initial_values
    if vmap is not None:
        decided = tuple(
            sorted(
                (vmap.get(value, value) for value in decided),
                key=value_sort_key,
            )
        )
        initial_values = tuple(
            sorted(
                (vmap.get(value, value) for value in initial_values),
                key=value_sort_key,
            )
        )
    obligations = tuple(
        sorted((perm[pid], deadline) for pid, deadline in config.obligations)
    )
    return Configuration(
        round=config.round,
        states=tuple(states),
        decided=decided,
        initial_values=initial_values,
        obligations=obligations,
    )


def orbit_canonical(
    config: Configuration, spec: SymmetrySpec
) -> tuple[str, Configuration]:
    """``(canonical form, representative)`` over the declared group.

    The representative is the configuration whose canonical JSON form
    is lexicographically least across every (pid permutation × value
    bijection) of the group — a deterministic orbit invariant.
    """
    best_form: str | None = None
    best_config = config
    for vmap in _value_maps(spec, config):
        for perm in _permutations(spec, config.n):
            candidate = _apply(config, spec, perm, vmap)
            form = canonical_form(candidate)
            if best_form is None or form < best_form:
                best_form = form
                best_config = candidate
    assert best_form is not None
    return best_form, best_config
