"""The paper's SS algorithm for SDD.

"In SS, the SDD problem has a very simple algorithm: p_i sends its
initial value to p_j during its first step.  Process p_j executes
Φ + 1 + Δ (possibly empty) steps.  If p_j receives a message from p_i
during this period, p_j decides the value sent by p_i; otherwise, it
decides 0."

Why the deadline is sound: if ``p_i`` is not initially dead it takes
its first step — the send — before ``p_j`` completes ``Φ + 1`` steps
(process synchrony: once ``p_j`` has taken ``Φ + 1`` steps, a still
unstarted-but-alive ``p_i`` would violate the bound... and a crashed
``p_i`` that never stepped is initially dead).  The sent message then
reaches ``p_j`` within ``Δ`` further global steps, during which ``p_j``
takes at most ``Δ`` steps: by its ``(Φ + 1 + Δ)``-th step the value has
arrived.  Note the delivery guarantee does *not* require ``p_i`` to
stay alive — sent messages are delivered in SS regardless.  This
bounded detection is exactly what SP lacks.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace
from typing import Any

from repro.failures.pattern import FailurePattern
from repro.models.ss import SSScheduler
from repro.simulation.automaton import StepAutomaton, StepContext, StepOutcome
from repro.simulation.executor import StepExecutor
from repro.simulation.run import Run


@dataclass(frozen=True)
class SenderState:
    """Sender state: the value and whether it was sent already."""

    value: Any
    sent: bool = False


class SDDSender(StepAutomaton):
    """``p_i``: send the initial value to the receiver in the first step."""

    def __init__(self, value: Any, receiver: int = 1) -> None:
        self.value = value
        self.receiver = receiver

    def initial_state(self, pid: int, n: int) -> SenderState:
        return SenderState(value=self.value)

    def on_step(self, ctx: StepContext) -> StepOutcome:
        state: SenderState = ctx.state
        if not state.sent:
            return StepOutcome(
                state=replace(state, sent=True),
                send_to=self.receiver,
                payload=state.value,
            )
        return StepOutcome(state=state)


@dataclass(frozen=True)
class ReceiverState:
    """Receiver state: step budget spent and the decision log."""

    steps_taken: int = 0
    received_value: Any = None
    decisions: tuple = ()


class SDDReceiverSS(StepAutomaton):
    """``p_j``: wait ``Φ + 1 + Δ`` steps, decide what arrived (or 0)."""

    def __init__(self, phi: int, delta: int, default: Any = 0) -> None:
        self.deadline = phi + 1 + delta
        self.default = default

    def initial_state(self, pid: int, n: int) -> ReceiverState:
        return ReceiverState()

    def on_step(self, ctx: StepContext) -> StepOutcome:
        state: ReceiverState = ctx.state
        steps_taken = state.steps_taken + 1
        received_value = state.received_value
        for message in ctx.received:
            received_value = message.payload
        decisions = state.decisions
        if steps_taken == self.deadline and not decisions:
            decided = (
                received_value if received_value is not None else self.default
            )
            decisions = (decided,)
        return StepOutcome(
            state=replace(
                state,
                steps_taken=steps_taken,
                received_value=received_value,
                decisions=decisions,
            )
        )


def solve_sdd_ss(
    value: Any,
    pattern: FailurePattern,
    *,
    phi: int = 1,
    delta: int = 1,
    rng: random.Random | None = None,
    max_steps: int | None = None,
) -> Run:
    """Run the SS algorithm for SDD and return the finished run.

    Process 0 is the sender (initial value ``value``), process 1 the
    receiver.  The horizon is chosen so the receiver certainly reaches
    its ``Φ + 1 + Δ`` local-step deadline.
    """
    deadline = phi + 1 + delta
    horizon = max_steps if max_steps is not None else (deadline + 2) * 4
    sender = SDDSender(value)
    receiver = SDDReceiverSS(phi, delta)
    executor = StepExecutor(
        [sender, receiver],
        2,
        pattern,
        SSScheduler(phi, delta, rng=rng),
    )

    def receiver_done(states) -> bool:
        return bool(states[1].decisions)

    return executor.execute(horizon, stop_when=receiver_done)
