"""Tests for the asynchronous and SP models."""

from __future__ import annotations

import random

import pytest

from repro.failures import FailurePattern, check_strong_accuracy
from repro.models import (
    AsynchronousModel,
    PerfectFDModel,
    check_admissible_prefix,
    validate_sp_run,
)
from repro.simulation import StepAutomaton, StepExecutor, StepOutcome
from repro.simulation.automaton import IdleAutomaton
from repro.simulation.schedulers import RoundRobinScheduler


class SuspectLogger(StepAutomaton):
    """Records the failure-detector output seen at each step."""

    def initial_state(self, pid, n):
        return ()

    def on_step(self, ctx):
        return StepOutcome(state=ctx.state + (ctx.suspects,))


class TestAsynchronousModel:
    def test_executor_produces_admissible_prefix(self, rng):
        model = AsynchronousModel()
        pattern = FailurePattern.with_crashes(3, {1: 10})
        run = model.executor(IdleAutomaton(), 3, pattern, rng=rng).execute(80)
        assert model.validate(run) == []

    def test_no_detector_history(self, rng):
        model = AsynchronousModel()
        pattern = FailurePattern.crash_free(2)
        run = model.executor(SuspectLogger(), 2, pattern, rng=rng).execute(10)
        assert all(
            suspects is None
            for state in run.final_states.values()
            for suspects in state
        )

    def test_require_delivery_flags_starved_messages(self):
        class Spammer(StepAutomaton):
            def initial_state(self, pid, n):
                return None

            def on_step(self, ctx):
                if ctx.pid == 0:
                    return StepOutcome(state=None, send_to=1, payload="x")
                return StepOutcome(state=None)

        from repro.simulation.schedulers import ScriptedScheduler

        pattern = FailurePattern.crash_free(2)
        executor = StepExecutor(
            Spammer(), 2, pattern, ScriptedScheduler([(0, "all"), (1, [])])
        )
        run = executor.execute(2)
        assert check_admissible_prefix(run) == []
        assert check_admissible_prefix(run, require_delivery=True)


class TestPerfectFDModel:
    def test_steps_observe_perfect_suspicions(self, rng):
        model = PerfectFDModel(max_detection_delay=5)
        pattern = FailurePattern.with_crashes(2, {0: 5})
        executor = model.executor(SuspectLogger(), 2, pattern, rng=rng)
        run = executor.execute(120)
        # The surviving process eventually observed the crash.
        final_views = run.final_states[1]
        assert final_views[-1] == frozenset({0})
        # And never observed a false suspicion.
        for suspects in final_views:
            assert suspects <= frozenset({0})

    def test_validate_accepts_own_runs(self, rng):
        model = PerfectFDModel()
        pattern = FailurePattern.with_crashes(3, {2: 8})
        run = model.executor(IdleAutomaton(), 3, pattern, rng=rng).execute(60)
        assert model.validate(run) == []

    def test_validate_rejects_historyless_run(self):
        pattern = FailurePattern.crash_free(2)
        executor = StepExecutor(
            IdleAutomaton(), 2, pattern, RoundRobinScheduler()
        )
        run = executor.execute(4)
        assert any(
            "no failure-detector history" in v for v in validate_sp_run(run)
        )

    def test_validate_rejects_inaccurate_history(self, rng):
        from repro.failures import ConstantHistory

        pattern = FailurePattern.crash_free(2)
        executor = StepExecutor(
            IdleAutomaton(),
            2,
            pattern,
            RoundRobinScheduler(),
            history=ConstantHistory({0}),  # suspects a live process
        )
        run = executor.execute(4)
        assert any("strong accuracy" in v for v in validate_sp_run(run))

    def test_history_randomized_delays_stay_accurate(self, rng):
        model = PerfectFDModel(max_detection_delay=40)
        pattern = FailurePattern.with_crashes(4, {1: 3, 2: 9})
        history = model.make_history(pattern, horizon=200, rng=rng)
        assert check_strong_accuracy(history, pattern, 200)

    def test_completeness_at_horizon(self, rng):
        model = PerfectFDModel(max_detection_delay=10)
        pattern = FailurePattern.with_crashes(2, {0: 5})
        history = model.make_history(pattern, horizon=100, rng=rng)
        assert 0 in history.suspects(1, 100)
