"""X-series extension benches: the ablations of DESIGN.md's §5.

X1 (t = 2 resilience sweep) is marked slow — its exhaustive RS space is
the largest single sweep in the suite.
"""

import pytest

from repro.core.extensions import (
    extension_x1,
    extension_x2,
    extension_x3,
    extension_x4,
)


@pytest.mark.slow
def bench_x1_resilience_sweep(once):
    result = once(extension_x1, True)
    assert result.ok, result.describe()


def bench_x2_commit_rate_vs_n(once):
    result = once(extension_x2, True)
    assert result.ok, result.describe()


def bench_x3_emulation_cost(once):
    result = once(extension_x3, True)
    assert result.ok, result.describe()


def bench_x4_atomic_broadcast(once):
    result = once(extension_x4, True)
    assert result.ok, result.describe()


@pytest.mark.slow
def bench_x5_uniform_harder_than_consensus(once):
    from repro.core.extensions import extension_x5

    result = once(extension_x5, True)
    assert result.ok, result.describe()


def bench_x6_adaptive_ep(once):
    from repro.core.extensions import extension_x6

    result = once(extension_x6, True)
    assert result.ok, result.describe()


@pytest.mark.slow
def bench_x7_early_deciding_gap(once):
    from repro.core.extensions import extension_x7

    result = once(extension_x7, True)
    assert result.ok, result.describe()
