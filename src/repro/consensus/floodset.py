"""FloodSet (Figure 1) and FloodSetWS (Figure 2).

FloodSet is the classical uniform consensus algorithm for synchronous
rounds: for ``t + 1`` rounds every process broadcasts the set ``W`` of
values it has ever seen and unions in what it receives; after round
``t + 1`` it decides ``min(W)``.  Among ``t + 1`` rounds at least one is
failure-free, so all ``W`` sets are equal by the decision round —
uniform agreement in RS.

In RWS the same code is **unsafe**: a pending message can smuggle a
value to *some* processes in the final round without the sender being
detectably dead, so two correct processes can decide different minima
(experiment E5 finds such scenarios mechanically).  FloodSetWS repairs
this with a ``halt`` set: a process that fails to deliver in round
``r`` is ignored from round ``r + 1`` on, which neutralises exactly the
pending-message anomaly (the sender of a pending message crashes by the
next round, so nothing is lost by ignoring it).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Mapping

from repro.rounds.algorithm import RoundAlgorithm, broadcast


@dataclass(frozen=True)
class FloodSetState:
    """State of Figure 1: a round counter, the value set ``W``, and the
    decision slot (``unknown`` is modelled by ``None``)."""

    rounds: int
    W: frozenset
    decision: Any
    n: int
    t: int


class FloodSet(RoundAlgorithm):
    """Figure 1: broadcast ``W`` for ``t+1`` rounds, decide ``min(W)``."""

    name = "FloodSet"

    def initial_state(self, pid: int, n: int, t: int, value: Any) -> FloodSetState:
        return FloodSetState(
            rounds=0, W=frozenset({value}), decision=None, n=n, t=t
        )

    def messages(self, pid: int, state: FloodSetState) -> Mapping[int, Any]:
        if state.rounds <= state.t:
            return broadcast(state.W, state.n)
        return {}

    def transition(
        self, pid: int, state: FloodSetState, received: Mapping[int, Any]
    ) -> FloodSetState:
        rounds = state.rounds + 1
        W = state.W
        for payload in received.values():
            W = W | payload
        decision = state.decision
        if rounds == state.t + 1 and decision is None:
            decision = min(W)
        return replace(state, rounds=rounds, W=W, decision=decision)

    def decision_of(self, state: FloodSetState) -> Any:
        return state.decision


@dataclass(frozen=True)
class FloodSetWSState:
    """State of Figure 2: FloodSet plus the ``halt`` set of processes
    whose future messages are ignored."""

    rounds: int
    W: frozenset
    halt: frozenset
    decision: Any
    n: int
    t: int


class FloodSetWS(RoundAlgorithm):
    """Figure 2: FloodSet with the ``halt`` guard, safe in RWS.

    The one-line difference from Figure 1: values received from
    processes already in ``halt`` are discarded, and any process from
    which no message arrived this round joins ``halt``.
    """

    name = "FloodSetWS"

    def initial_state(self, pid: int, n: int, t: int, value: Any) -> FloodSetWSState:
        return FloodSetWSState(
            rounds=0,
            W=frozenset({value}),
            halt=frozenset(),
            decision=None,
            n=n,
            t=t,
        )

    def messages(self, pid: int, state: FloodSetWSState) -> Mapping[int, Any]:
        if state.rounds <= state.t:
            return broadcast(state.W, state.n)
        return {}

    def transition(
        self, pid: int, state: FloodSetWSState, received: Mapping[int, Any]
    ) -> FloodSetWSState:
        rounds = state.rounds + 1
        W = state.W
        for sender, payload in received.items():
            if sender not in state.halt:
                W = W | payload
        halt = state.halt | frozenset(
            q for q in range(state.n) if q not in received
        )
        decision = state.decision
        if rounds == state.t + 1 and decision is None:
            decision = min(W)
        return replace(state, rounds=rounds, W=W, halt=halt, decision=decision)

    def decision_of(self, state: FloodSetWSState) -> Any:
        return state.decision
