"""Tests for campaign progress heartbeats and ``repro top``.

Covers the pieces the smoke targets exercise only incidentally: the
reporter's thread lifecycle and interrupted-status context manager,
heartbeat math, and the ``repro top --follow`` polling loop (which must
terminate on its own when the campaign completes or is interrupted).
"""

from __future__ import annotations

import io
import json
import time

import pytest

from repro.cli.main import main
from repro.obs.artifacts import RunDir
from repro.obs.progress import ProgressReporter, latest_progress


def read_records(path):
    if not path.exists():
        return []
    return [
        json.loads(line)
        for line in path.read_text(encoding="utf-8").splitlines()
        if line.strip()
    ]


class TestHeartbeat:
    def test_counters_and_verdicts(self):
        reporter = ProgressReporter(total=4, stream=None)
        reporter.advance(verdict="ok")
        reporter.advance(cached=True, verdict="ok")
        reporter.advance(verdict="fail")
        record = reporter.heartbeat()
        assert record["done"] == 3
        assert record["total"] == 4
        assert record["cached"] == 1
        assert record["verdicts"] == {"ok": 2, "fail": 1}
        assert record["eta_s"] is not None

    def test_zero_rate_has_no_eta(self):
        record = ProgressReporter(total=4, stream=None).heartbeat()
        assert record["done"] == 0
        assert record["eta_s"] is None

    def test_emit_writes_stream_and_file(self, tmp_path):
        stream = io.StringIO()
        path = tmp_path / "progress.jsonl"
        reporter = ProgressReporter(
            total=2, path=path, stream=stream, label="unit"
        )
        reporter.advance()
        reporter.emit()
        assert "[unit] 1/2" in stream.getvalue()
        records = read_records(path)
        assert len(records) == 1
        assert records[0]["t"] == "progress"
        assert records[0]["status"] == "running"

    def test_unwritable_path_never_raises(self, tmp_path):
        reporter = ProgressReporter(
            total=1, path=tmp_path / "no-such-dir" / "p.jsonl", stream=None
        )
        reporter.emit()  # swallowed: progress must never kill a campaign


class TestLifecycle:
    def test_stop_emits_final_heartbeat(self, tmp_path):
        path = tmp_path / "progress.jsonl"
        reporter = ProgressReporter(
            total=1, path=path, stream=None, interval_s=60.0
        ).start()
        reporter.advance()
        record = reporter.stop()
        assert record["status"] == "complete"
        assert read_records(path)[-1]["status"] == "complete"

    def test_heartbeat_thread_emits_on_interval(self, tmp_path):
        path = tmp_path / "progress.jsonl"
        reporter = ProgressReporter(
            total=10, path=path, stream=None, interval_s=0.02
        ).start()
        deadline = time.monotonic() + 2.0
        while (
            len(read_records(path)) < 2 and time.monotonic() < deadline
        ):
            time.sleep(0.01)
        reporter.stop()
        assert len(read_records(path)) >= 3  # >= 2 interval + 1 final

    def test_context_manager_completes(self, tmp_path):
        path = tmp_path / "progress.jsonl"
        with ProgressReporter(
            total=1, path=path, stream=None, interval_s=60.0
        ) as reporter:
            reporter.advance()
        assert read_records(path)[-1]["status"] == "complete"

    def test_context_manager_marks_interruption(self, tmp_path):
        path = tmp_path / "progress.jsonl"
        with pytest.raises(RuntimeError):
            with ProgressReporter(
                total=3, path=path, stream=None, interval_s=60.0
            ) as reporter:
                reporter.advance()
                raise RuntimeError("campaign died")
        final = read_records(path)[-1]
        assert final["status"] == "interrupted"
        assert final["done"] == 1

    def test_start_is_idempotent(self):
        reporter = ProgressReporter(total=1, stream=None, interval_s=60.0)
        assert reporter.start() is reporter
        thread = reporter._thread
        reporter.start()
        assert reporter._thread is thread
        reporter.stop()


class TestLatestProgress:
    def test_picks_last_progress_record(self):
        records = [
            {"t": "progress", "done": 1},
            {"t": "cell", "name": "x"},
            {"t": "progress", "done": 2},
        ]
        assert latest_progress(records)["done"] == 2

    def test_none_without_progress_records(self):
        assert latest_progress([]) is None
        assert latest_progress([{"t": "cell"}]) is None


@pytest.fixture()
def finished_run(tmp_path):
    """A minimal completed run directory with two heartbeats."""
    run = RunDir.open(
        tmp_path / "runs",
        kind="sweep",
        name="unit",
        identity={"unit": True},
        cells=[("cell-0", "k0")],
    )
    reporter = ProgressReporter(
        total=1, path=run.progress_path, stream=None, interval_s=60.0
    )
    reporter.emit()
    reporter.advance(verdict="ok")
    reporter.emit(status="complete")
    run.finalize({"schema": 1})
    return run


class TestTopCommand:
    def test_single_frame(self, finished_run, capsys):
        assert main(["top", str(finished_run.path)]) == 0
        out = capsys.readouterr().out
        assert "1/1" in out

    def test_follow_stops_when_run_is_complete(self, finished_run, capsys):
        # finalize() flipped the manifest out of "running", so the
        # follow loop must exit after the first frame on its own.
        assert main(
            ["top", str(finished_run.path), "--follow", "--interval", "0.01"]
        ) == 0
        capsys.readouterr()

    def test_follow_stops_on_final_heartbeat(self, tmp_path, capsys):
        # Manifest still says "running" (no finalize), but the last
        # heartbeat says complete: --follow must still terminate.
        run = RunDir.open(
            tmp_path / "runs",
            kind="sweep",
            name="unit",
            identity={"unit": True},
            cells=[("cell-0", "k0")],
        )
        reporter = ProgressReporter(
            total=1, path=run.progress_path, stream=None, interval_s=60.0
        )
        reporter.advance()
        reporter.emit(status="complete")
        assert run.manifest.get("status") == "running"
        assert main(
            ["top", str(run.path), "--follow", "--interval", "0.01"]
        ) == 0
        capsys.readouterr()

    def test_follow_polls_until_completion(self, tmp_path, capsys):
        # A genuinely in-flight run: complete it from a helper thread
        # while --follow is polling; the loop must pick the transition
        # up and return rather than spin forever.
        import threading

        run = RunDir.open(
            tmp_path / "runs",
            kind="sweep",
            name="unit",
            identity={"unit": True},
            cells=[("cell-0", "k0")],
        )
        reporter = ProgressReporter(
            total=1, path=run.progress_path, stream=None, interval_s=60.0
        )
        reporter.emit()  # status: running

        def finish():
            time.sleep(0.1)
            reporter.advance(verdict="ok")
            reporter.emit(status="complete")

        worker = threading.Thread(target=finish)
        worker.start()
        try:
            assert main(
                ["top", str(run.path), "--follow", "--interval", "0.02"]
            ) == 0
        finally:
            worker.join()
        frames = capsys.readouterr().out
        assert "0/1" in frames and "1/1" in frames

    def test_missing_rundir(self, tmp_path, capsys):
        assert main(["top", str(tmp_path / "nope")]) == 2
        capsys.readouterr()
