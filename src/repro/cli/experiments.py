"""Subcommands over the experiment registry and the analysis tables:
``experiments``, ``summary``, ``sdd``, ``commit``, ``latency``.

The ``report`` subcommand is registered by :mod:`repro.cli.report`
(which delegates its legacy EXPERIMENTS.md mode to
:func:`_cmd_report` here)."""

from __future__ import annotations

import argparse
import random
import sys

from repro.analysis import format_table, latency_profile, latency_summary_table
from repro.cli.common import ALGORITHMS
from repro.commit import compare_commit_rates
from repro.consensus import (
    A1,
    COptFloodSet,
    COptFloodSetWS,
    FloodSet,
    FloodSetWS,
    FOptFloodSet,
    FOptFloodSetWS,
)
from repro.core import (
    run_all_experiments,
    run_all_extensions,
    run_experiment,
    run_extension,
    write_report,
)
from repro.failures import FailurePattern
from repro.rounds import RoundModel
from repro.sdd import SP_CANDIDATE_FACTORIES, refute_sdd_candidate, solve_sdd_ss
from repro.trace import describe_run, step_diagram


def _run_by_id(exp_id: str, quick: bool):
    if exp_id.upper().startswith("X"):
        return run_extension(exp_id, quick)
    return run_experiment(exp_id, quick)


def _cmd_experiments(args: argparse.Namespace) -> int:
    quick = not args.full
    if args.ids:
        results = [_run_by_id(exp_id, quick) for exp_id in args.ids]
    else:
        results = run_all_experiments(quick, jobs=args.jobs)
        if args.extensions:
            results.extend(run_all_extensions(quick))
    failures = 0
    for result in results:
        print(result.describe())
        print()
        failures += 0 if result.ok else 1
    print(f"{len(results) - failures}/{len(results)} experiments passed")
    return 1 if failures else 0


def _cmd_report(args: argparse.Namespace) -> int:
    passed = write_report(args.output, quick=not args.full)
    print(f"wrote {args.output} ({passed} experiments passing)")
    return 0


def _cmd_summary(args: argparse.Namespace) -> int:
    algorithms = [
        FloodSet(),
        FloodSetWS(),
        COptFloodSet(),
        COptFloodSetWS(),
        FOptFloodSet(),
        FOptFloodSetWS(),
        A1(),
    ]
    rows = latency_summary_table(algorithms, n=args.n, t=1)
    print(format_table(rows))
    return 0


def _cmd_sdd(args: argparse.Namespace) -> int:
    print("SS solves SDD (value 1, sender crashes at time 2):")
    pattern = FailurePattern.with_crashes(2, {0: 2})
    run = solve_sdd_ss(1, pattern, phi=1, delta=1, rng=random.Random(args.seed))
    print(" ", describe_run(run))
    print(step_diagram(run, max_rows=12))
    print()
    print("Theorem 3.1 refutations in SP:")
    for name, factory in SP_CANDIDATE_FACTORIES.items():
        print(refute_sdd_candidate(factory, name).describe())
    return 0


def _cmd_commit(args: argparse.Namespace) -> int:
    for name, report in compare_commit_rates(n=args.n, t=1).items():
        print(f"{name}: {report.describe()}")
    return 0


def _cmd_latency(args: argparse.Namespace) -> int:
    factory = ALGORITHMS.get(args.algorithm)
    if factory is None:
        print(
            f"unknown algorithm {args.algorithm!r}; choose from "
            f"{sorted(ALGORITHMS)}",
            file=sys.stderr,
        )
        return 2
    algorithm = factory()
    for model in (RoundModel.RS, RoundModel.RWS):
        try:
            profile = latency_profile(algorithm, args.n, 1, model)
        except Exception as exc:  # unsafe pairs raise on non-termination
            print(f"{model.value}: not measurable ({exc})")
            continue
        print(profile.describe())
    return 0


def register(sub: argparse._SubParsersAction) -> None:
    """Attach this module's subcommands to the root parser."""
    p_exp = sub.add_parser("experiments", help="run the E1-E15 suite")
    p_exp.add_argument("--ids", nargs="*", help="experiment ids (default all)")
    p_exp.add_argument(
        "--full", action="store_true", help="larger sweeps (slower)"
    )
    p_exp.add_argument(
        "--extensions",
        action="store_true",
        help="also run the X1-X4 extension experiments",
    )
    p_exp.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="worker processes for the full suite (default: 1, serial)",
    )
    p_exp.set_defaults(func=_cmd_experiments)

    p_summary = sub.add_parser("summary", help="headline latency table")
    p_summary.add_argument("--n", type=int, default=3)
    p_summary.set_defaults(func=_cmd_summary)

    p_sdd = sub.add_parser("sdd", help="the SDD story")
    p_sdd.add_argument("--seed", type=int, default=7)
    p_sdd.set_defaults(func=_cmd_sdd)

    p_commit = sub.add_parser("commit", help="commit-rate comparison")
    p_commit.add_argument("--n", type=int, default=3)
    p_commit.set_defaults(func=_cmd_commit)

    p_lat = sub.add_parser("latency", help="latency profile of an algorithm")
    p_lat.add_argument("algorithm", choices=sorted(ALGORITHMS))
    p_lat.add_argument("--n", type=int, default=3)
    p_lat.set_defaults(func=_cmd_latency)
