"""Named failure scenarios, including the paper's own counterexamples."""

from __future__ import annotations

from repro.rounds.scenario import CrashEvent, FailureScenario, PendingMessage


def failure_free(n: int) -> FailureScenario:
    """No crashes, no pending messages — the Λ-defining runs."""
    return FailureScenario.failure_free(n)


def initially_dead_t(n: int, t: int) -> FailureScenario:
    """The last ``t`` processes are dead from the start.

    The scenario behind ``Lat(F_OptFloodSet) = 1``: every survivor
    receives exactly ``n - t`` messages at round 1 and fast-decides.
    """
    return FailureScenario.initially_dead_set(
        n, set(range(n - t, n))
    )


def crash_mid_broadcast(
    n: int, pid: int = 0, round_index: int = 1, reached: tuple[int, ...] = (1,)
) -> FailureScenario:
    """``pid`` crashes in ``round_index`` reaching only ``reached``.

    The canonical RS adversary move: a partial broadcast.
    """
    return FailureScenario(
        n=n,
        crashes=(
            CrashEvent(
                pid=pid, round=round_index, sent_to=frozenset(reached)
            ),
        ),
    )


def decide_then_crash_pending(n: int, pid: int = 0) -> FailureScenario:
    """The paper's A1-in-RWS disagreement scenario (Section 5.3).

    "At round 1, p1 succeeds in broadcasting v1, decides, and then
    crashes.  In addition, suppose that all the messages sent by p1 are
    pending."  The process completes its sends (so it may apply its
    transition and decide on its own copy) while every other copy is
    withheld.
    """
    others = frozenset(q for q in range(n) if q != pid)
    return FailureScenario(
        n=n,
        crashes=(
            CrashEvent(
                pid=pid,
                round=1,
                sent_to=others,
                applies_transition=True,
            ),
        ),
        pending=frozenset(
            PendingMessage(pid, q, 1) for q in others
        ),
    )


def a1_rws_disagreement(n: int = 3) -> FailureScenario:
    """Alias for the A1 counterexample with the paper's process naming."""
    return decide_then_crash_pending(n, pid=0)


def floodset_rws_violation(n: int = 3) -> FailureScenario:
    """A scenario under which plain FloodSet disagrees in RWS (t = 1).

    Process 0's round-1 broadcast is entirely pending; it then crashes
    in round 2 having managed to send its (value-carrying) flood to
    process 1 only.  Process 1 learns value ``v0`` in the decision
    round; process 2 never does: with an adversarial split
    configuration they decide different minima.  FloodSetWS's ``halt``
    set neutralises exactly this run.
    """
    others = frozenset(q for q in range(n) if q != 0)
    return FailureScenario(
        n=n,
        crashes=(
            CrashEvent(pid=0, round=2, sent_to=frozenset({1})),
        ),
        pending=frozenset(PendingMessage(0, q, 1) for q in others),
    )
