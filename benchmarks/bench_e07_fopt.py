"""E7 — F_OptFloodSet (Figure 3, Theorem 5.1): Lat = 1.

The paradox the paper highlights: the best worst-case-per-configuration
runs are the ones where all t allowed failures happen *initially*.
"""

from repro.analysis import profile_and_verify
from repro.consensus import FOptFloodSet, FOptFloodSetWS
from repro.rounds import RoundModel


def bench_e7_fopt_rs(once):
    profile, report = once(
        profile_and_verify, FOptFloodSet(), 3, 1, RoundModel.RS
    )
    assert report.ok
    assert profile.Lat == 1
    assert profile.Lambda == 2  # failure-free runs are slower!


def bench_e7_fopt_rws(once):
    profile, report = once(
        profile_and_verify, FOptFloodSetWS(), 3, 1, RoundModel.RWS
    )
    assert report.ok
    assert profile.Lat == 1
