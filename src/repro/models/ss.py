"""The synchronous model SS (paper Section 2.4).

SS is parameterised by two constants ``Φ >= 1`` and ``Δ >= 1``:

* **Process synchrony.**  In any finite subsequence of consecutive
  steps in which some process takes ``Φ+1`` steps, every process still
  alive at the end of the subsequence has taken at least one step.
* **Message synchrony.**  If message ``m`` is sent to ``p_i`` during
  the ``k``-th step (of the global schedule) and ``p_i`` takes the
  ``l``-th step with ``l >= k + Δ``, then ``m`` is received by the end
  of the ``l``-th step.

Both conditions speak only about schedule *indices*; they never mention
real time.  This module provides exact validators for both conditions
and a randomized scheduler that provably never violates them.
"""

from __future__ import annotations

import random

from repro.errors import ConfigurationError
from repro.models.base import SystemModel
from repro.simulation.run import Run
from repro.simulation.schedulers import Scheduler, SchedulerView, StepChoice


def check_process_synchrony(run: Run, phi: int) -> list[str]:
    """Exactly check the Φ process-synchrony condition on a run prefix.

    For every process ``q`` we look at the maximal index intervals that
    contain no step of ``q``; within the portion of such an interval
    during which ``q`` is alive, no other process may take ``Φ+1``
    steps.  (A window in which ``q`` steps, or at whose end ``q`` is
    crashed, imposes no constraint on ``q``.)
    """
    violations: list[str] = []
    length = len(run.schedule)
    for q in range(run.n):
        q_indices = [s.index for s in run.schedule if s.pid == q]
        # Gap boundaries: intervals of indices strictly between q's steps,
        # plus the prefix before its first step and the suffix after its
        # last one.
        boundaries = [-1] + q_indices + [length]
        crash = run.pattern.crash_time(q)
        for left, right in zip(boundaries, boundaries[1:]):
            gap_start = left + 1
            gap_end = right  # exclusive
            if crash is not None:
                # q must be alive at the end of the window: the window can
                # only extend to indices (times) strictly before the crash.
                gap_end = min(gap_end, crash)
            if gap_end - gap_start <= phi:
                continue  # too short for anyone to take Φ+1 steps
            counts: dict[int, int] = {}
            for step in run.schedule.steps_in_window(gap_start, gap_end):
                counts[step.pid] = counts.get(step.pid, 0) + 1
                if counts[step.pid] == phi + 1:
                    violations.append(
                        f"process {step.pid} took {phi + 1} steps in "
                        f"[{gap_start}, {gap_end}) while alive process {q} "
                        "took none"
                    )
                    break
    return violations


def check_message_synchrony(run: Run, delta: int) -> list[str]:
    """Exactly check the Δ message-synchrony condition on a run prefix.

    For each message ``m`` sent at global index ``k`` to recipient
    ``p``: every step of ``p`` at an index ``l >= k + Δ`` must find
    ``m`` already received (i.e. ``m`` was delivered at some step of
    ``p`` with index ``<= l``).  It suffices to check the *first* such
    step.
    """
    violations: list[str] = []
    received_at: dict[int, int] = {}
    steps_by_pid: dict[int, list[int]] = {pid: [] for pid in range(run.n)}
    for step in run.schedule:
        steps_by_pid[step.pid].append(step.index)
        for uid in step.received_uids:
            received_at[uid] = step.index
    for message in run.messages.values():
        deadline = message.sent_step + delta
        late_steps = [
            idx for idx in steps_by_pid[message.recipient] if idx >= deadline
        ]
        if not late_steps:
            continue  # recipient never stepped past the deadline: no constraint
        first_late = late_steps[0]
        got = received_at.get(message.uid)
        if got is None or got > first_late:
            violations.append(
                f"message {message.uid} ({message.sender}->"
                f"{message.recipient}, sent at step {message.sent_step}) "
                f"not received by recipient's step at index {first_late} "
                f"(Δ={delta})"
            )
    return violations


def validate_ss_run(run: Run, phi: int, delta: int) -> list[str]:
    """Validate both SS synchrony conditions plus crash safety."""
    violations = []
    for step in run.schedule:
        if not run.pattern.is_alive(step.pid, step.time):
            violations.append(
                f"crashed process {step.pid} took step {step.index}"
            )
    violations.extend(check_process_synchrony(run, phi))
    violations.extend(check_message_synchrony(run, delta))
    return violations


class SSScheduler(Scheduler):
    """A randomized scheduler that never violates the Φ/Δ bounds.

    Interleaving: we keep, for every ordered pair ``(q, p)``, the number
    of steps ``p`` has taken since ``q``'s last step; process ``p`` is
    *eligible* when that count is at most ``Φ - 1`` for every alive
    ``q``.  The process with the oldest last step is always eligible, so
    the scheduler can never deadlock.  A uniformly random eligible
    process is chosen, which exercises the full slack the Φ bound
    allows.

    Delivery: when ``p`` steps at global index ``g``, every buffered
    message sent at index ``<= g - Δ`` *must* be delivered (the Δ
    condition); younger messages are delivered with probability
    ``eager_prob``, exercising the slack the Δ bound allows.
    """

    def __init__(
        self,
        phi: int,
        delta: int,
        rng: random.Random | None = None,
        eager_prob: float = 0.3,
    ) -> None:
        if phi < 1 or delta < 1:
            raise ConfigurationError("SS requires Φ >= 1 and Δ >= 1")
        if not 0.0 <= eager_prob <= 1.0:
            raise ConfigurationError("eager_prob must be in [0, 1]")
        self.phi = phi
        self.delta = delta
        self._rng = rng if rng is not None else random.Random(0)
        self._eager_prob = eager_prob
        # _since[q][p] = steps p has taken since q's last step.
        self._since: dict[int, dict[int, int]] | None = None

    def _ensure_counters(self, n: int) -> dict[int, dict[int, int]]:
        if self._since is None:
            self._since = {
                q: {p: 0 for p in range(n) if p != q} for q in range(n)
            }
        return self._since

    def choose(self, view: SchedulerView) -> StepChoice | None:
        if not view.alive:
            return None
        since = self._ensure_counters(view.n)
        eligible = [
            p
            for p in sorted(view.alive)
            if all(
                since[q][p] <= self.phi - 1
                for q in view.alive
                if q != p
            )
        ]
        if not eligible:  # impossible by construction; fail loudly if not
            raise ConfigurationError(
                "SSScheduler invariant broken: no eligible process"
            )
        pid = self._rng.choice(eligible)

        deliver: set[int] = set()
        for message in view.buffered(pid):
            mandatory = view.time - message.sent_step >= self.delta
            if mandatory or self._rng.random() < self._eager_prob:
                deliver.add(message.uid)

        # Bookkeeping: pid stepped, so every other q sees one more step of
        # pid; pid's own view of everyone resets.
        for q in range(view.n):
            if q != pid:
                since[q][pid] += 1
        since[pid] = {p: 0 for p in range(view.n) if p != pid}
        return StepChoice(pid=pid, deliver_uids=frozenset(deliver))


class SynchronousModel(SystemModel):
    """The SS model with bounds Φ and Δ."""

    name = "SS"

    def __init__(self, phi: int = 1, delta: int = 1, eager_prob: float = 0.3) -> None:
        if phi < 1 or delta < 1:
            raise ConfigurationError("SS requires Φ >= 1 and Δ >= 1")
        self.phi = phi
        self.delta = delta
        self.eager_prob = eager_prob

    def make_scheduler(self, rng: random.Random | None = None) -> Scheduler:
        return SSScheduler(
            self.phi, self.delta, rng=rng, eager_prob=self.eager_prob
        )

    def validate(self, run: Run) -> list[str]:
        return validate_ss_run(run, self.phi, self.delta)
