"""The Chandra–Toueg failure-detector hierarchy.

A failure detector class is defined axiomatically by a *completeness*
property and an *accuracy* property (Chandra & Toueg, JACM 1996 — the
paper's reference [6]):

================  ==============================================
strong completeness   eventually every crashed process is permanently
                      suspected by **every** correct process
weak completeness     eventually every crashed process is permanently
                      suspected by **some** correct process
strong accuracy       no process is suspected before it crashes
weak accuracy         some correct process is never suspected
eventual variants     the accuracy property holds from some time on
================  ==============================================

The eight combinations give the hierarchy; its strongest element,
``P`` (strong completeness + strong accuracy), defines the SP model
studied by the paper.

Each detector class here is a *generator* of histories: given a failure
pattern it produces a compatible history, optionally randomized.  The
randomness models the adversary's freedom inside the axioms — for ``P``
the detection delay of each crash is finite but arbitrary, which is
exactly the slack Theorem 3.1 exploits.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.failures.history import FailureDetectorHistory, FunctionHistory
from repro.failures.pattern import FailurePattern
from repro.obs.profile import profiled


@dataclass(frozen=True)
class DetectorProperties:
    """The axioms a detector class promises."""

    strong_completeness: bool
    weak_completeness: bool
    strong_accuracy: bool
    weak_accuracy: bool
    eventual_accuracy: bool

    def describe(self) -> str:
        comp = "strong" if self.strong_completeness else "weak"
        if self.strong_accuracy:
            acc = "strong"
        elif self.weak_accuracy:
            acc = "weak"
        else:
            acc = "none"
        when = "eventual " if self.eventual_accuracy else ""
        return f"{comp} completeness + {when}{acc} accuracy"


class FailureDetector(ABC):
    """A failure-detector class: maps failure patterns to histories."""

    name: str = "abstract"
    properties: DetectorProperties

    @abstractmethod
    def history(
        self,
        pattern: FailurePattern,
        *,
        horizon: int = 1_000,
        rng: random.Random | None = None,
    ) -> FailureDetectorHistory:
        """Return one history of this detector for ``pattern``.

        ``horizon`` bounds the time range over which the history must
        honour "eventual" clauses: by ``horizon`` every eventual
        property has kicked in.  ``rng`` drives the adversarial freedom
        within the axioms; ``None`` yields the canonical deterministic
        history (zero detection delay, no false suspicions).
        """


def _crash_detection_times(
    pattern: FailurePattern,
    horizon: int,
    rng: random.Random | None,
    max_delay: int,
) -> dict[tuple[int, int], int]:
    """Pick, per (observer, crashed) pair, the suspicion onset time.

    Detection is never earlier than the crash itself (strong accuracy)
    and never later than ``horizon`` (so completeness is visible within
    the finite history).
    """
    onsets: dict[tuple[int, int], int] = {}
    with profiled("detectors.crash_detection_times"):
        for crashed, crash_time in pattern.crash_times.items():
            for observer in range(pattern.n):
                if rng is None:
                    delay = 0
                else:
                    delay = rng.randint(0, max_delay)
                onset = min(crash_time + delay, horizon)
                onsets[(observer, crashed)] = onset
    return onsets


class PerfectDetector(FailureDetector):
    """``P``: strong completeness + strong accuracy.

    Suspects a process iff it has crashed; each (observer, crashed)
    pair gets an arbitrary finite detection delay.  The unbounded delay
    is the essential difference from the synchronous model: SS detects
    crashes within ``Φ+1+Δ`` steps, ``P`` merely *eventually*.
    """

    name = "P"
    properties = DetectorProperties(
        strong_completeness=True,
        weak_completeness=True,
        strong_accuracy=True,
        weak_accuracy=True,
        eventual_accuracy=False,
    )

    def __init__(self, max_delay: int = 50) -> None:
        if max_delay < 0:
            raise ConfigurationError("max_delay must be non-negative")
        self.max_delay = max_delay

    def history(
        self,
        pattern: FailurePattern,
        *,
        horizon: int = 1_000,
        rng: random.Random | None = None,
    ) -> FailureDetectorHistory:
        onsets = _crash_detection_times(pattern, horizon, rng, self.max_delay)

        def suspects(pid: int, t: int) -> frozenset[int]:
            return frozenset(
                q
                for q in pattern.faulty
                if onsets[(pid, q)] <= t
            )

        return FunctionHistory(suspects)


class EventuallyPerfectDetector(FailureDetector):
    """``◊P``: strong completeness + eventual strong accuracy.

    Before a stabilisation time the detector may suspect anyone; after
    it, it behaves like ``P`` with zero delay.
    """

    name = "<>P"
    properties = DetectorProperties(
        strong_completeness=True,
        weak_completeness=True,
        strong_accuracy=False,
        weak_accuracy=False,
        eventual_accuracy=True,
    )

    def __init__(self, stabilization_time: int = 20,
                 false_suspicion_prob: float = 0.3) -> None:
        if stabilization_time < 0:
            raise ConfigurationError("stabilization_time must be >= 0")
        if not 0.0 <= false_suspicion_prob <= 1.0:
            raise ConfigurationError("false_suspicion_prob must be in [0, 1]")
        self.stabilization_time = stabilization_time
        self.false_suspicion_prob = false_suspicion_prob

    def history(
        self,
        pattern: FailurePattern,
        *,
        horizon: int = 1_000,
        rng: random.Random | None = None,
    ) -> FailureDetectorHistory:
        gst = min(self.stabilization_time, horizon)
        # Pre-draw the chaotic pre-GST suspicions so the history is a
        # stable function of (pid, t) rather than of query order.
        chaos: dict[tuple[int, int], frozenset[int]] = {}
        if rng is not None:
            with profiled("detectors.eventual_chaos"):
                for t in range(gst):
                    for pid in range(pattern.n):
                        wrong = frozenset(
                            q for q in range(pattern.n)
                            if q != pid
                            and rng.random() < self.false_suspicion_prob
                        )
                        chaos[(pid, t)] = wrong

        def suspects(pid: int, t: int) -> frozenset[int]:
            if t >= gst:
                return pattern.crashed_by(t)
            return chaos.get((pid, t), frozenset())

        return FunctionHistory(suspects)


class StrongDetector(FailureDetector):
    """``S``: strong completeness + weak accuracy.

    Some correct process is never suspected; every other process may be
    falsely suspected, permanently.
    """

    name = "S"
    properties = DetectorProperties(
        strong_completeness=True,
        weak_completeness=True,
        strong_accuracy=False,
        weak_accuracy=True,
        eventual_accuracy=False,
    )

    def __init__(self, false_suspicion_prob: float = 0.2) -> None:
        self.false_suspicion_prob = false_suspicion_prob

    def history(
        self,
        pattern: FailurePattern,
        *,
        horizon: int = 1_000,
        rng: random.Random | None = None,
    ) -> FailureDetectorHistory:
        correct = sorted(pattern.correct)
        if not correct:
            raise ConfigurationError(
                "weak accuracy needs at least one correct process"
            )
        if rng is None:
            immune = correct[0]
            falsely = frozenset()
        else:
            immune = rng.choice(correct)
            falsely = frozenset(
                q for q in range(pattern.n)
                if q != immune and rng.random() < self.false_suspicion_prob
            )

        def suspects(pid: int, t: int) -> frozenset[int]:
            return (pattern.crashed_by(t) | falsely) - {immune}

        return FunctionHistory(suspects)


class EventuallyStrongDetector(FailureDetector):
    """``◊S``: strong completeness + eventual weak accuracy."""

    name = "<>S"
    properties = DetectorProperties(
        strong_completeness=True,
        weak_completeness=True,
        strong_accuracy=False,
        weak_accuracy=False,
        eventual_accuracy=True,
    )

    def __init__(self, stabilization_time: int = 20,
                 false_suspicion_prob: float = 0.3) -> None:
        self.stabilization_time = stabilization_time
        self.false_suspicion_prob = false_suspicion_prob

    def history(
        self,
        pattern: FailurePattern,
        *,
        horizon: int = 1_000,
        rng: random.Random | None = None,
    ) -> FailureDetectorHistory:
        correct = sorted(pattern.correct)
        if not correct:
            raise ConfigurationError(
                "eventual weak accuracy needs a correct process"
            )
        gst = min(self.stabilization_time, horizon)
        immune = correct[0] if rng is None else rng.choice(correct)
        chaos: dict[tuple[int, int], frozenset[int]] = {}
        if rng is not None:
            for t in range(gst):
                for pid in range(pattern.n):
                    chaos[(pid, t)] = frozenset(
                        q for q in range(pattern.n)
                        if q != pid and rng.random() < self.false_suspicion_prob
                    )

        def suspects(pid: int, t: int) -> frozenset[int]:
            if t >= gst:
                return pattern.crashed_by(t) - {immune}
            return chaos.get((pid, t), frozenset())

        return FunctionHistory(suspects)


def _witnesses(
    pattern: FailurePattern, rng: random.Random | None
) -> dict[int, int]:
    """Assign to each faulty process one correct witness that suspects it."""
    correct = sorted(pattern.correct)
    if not correct:
        raise ConfigurationError("weak completeness needs a correct process")
    witnesses: dict[int, int] = {}
    for q in sorted(pattern.faulty):
        witnesses[q] = correct[0] if rng is None else rng.choice(correct)
    return witnesses


class WeakDetector(FailureDetector):
    """``W``: weak completeness + weak accuracy."""

    name = "W"
    properties = DetectorProperties(
        strong_completeness=False,
        weak_completeness=True,
        strong_accuracy=False,
        weak_accuracy=True,
        eventual_accuracy=False,
    )

    def history(
        self,
        pattern: FailurePattern,
        *,
        horizon: int = 1_000,
        rng: random.Random | None = None,
    ) -> FailureDetectorHistory:
        witnesses = _witnesses(pattern, rng)

        def suspects(pid: int, t: int) -> frozenset[int]:
            return frozenset(
                q for q, w in witnesses.items()
                if w == pid and not pattern.is_alive(q, t)
            )

        return FunctionHistory(suspects)


class EventuallyWeakDetector(FailureDetector):
    """``◊W``: weak completeness + eventual weak accuracy."""

    name = "<>W"
    properties = DetectorProperties(
        strong_completeness=False,
        weak_completeness=True,
        strong_accuracy=False,
        weak_accuracy=False,
        eventual_accuracy=True,
    )

    def __init__(self, stabilization_time: int = 20) -> None:
        self.stabilization_time = stabilization_time

    def history(
        self,
        pattern: FailurePattern,
        *,
        horizon: int = 1_000,
        rng: random.Random | None = None,
    ) -> FailureDetectorHistory:
        witnesses = _witnesses(pattern, rng)
        gst = min(self.stabilization_time, horizon)

        def suspects(pid: int, t: int) -> frozenset[int]:
            base = frozenset(
                q for q, w in witnesses.items()
                if w == pid and not pattern.is_alive(q, t)
            )
            if t >= gst or rng is None:
                return base
            return base  # pre-GST chaos omitted: axioms permit, not require

        return FunctionHistory(suspects)


class QuasiDetector(FailureDetector):
    """``Q``: weak completeness + strong accuracy."""

    name = "Q"
    properties = DetectorProperties(
        strong_completeness=False,
        weak_completeness=True,
        strong_accuracy=True,
        weak_accuracy=True,
        eventual_accuracy=False,
    )

    def history(
        self,
        pattern: FailurePattern,
        *,
        horizon: int = 1_000,
        rng: random.Random | None = None,
    ) -> FailureDetectorHistory:
        witnesses = _witnesses(pattern, rng)

        def suspects(pid: int, t: int) -> frozenset[int]:
            return frozenset(
                q for q, w in witnesses.items()
                if w == pid and not pattern.is_alive(q, t)
            )

        return FunctionHistory(suspects)


class EventuallyQuasiDetector(FailureDetector):
    """``◊Q``: weak completeness + eventual strong accuracy."""

    name = "<>Q"
    properties = DetectorProperties(
        strong_completeness=False,
        weak_completeness=True,
        strong_accuracy=False,
        weak_accuracy=False,
        eventual_accuracy=True,
    )

    def __init__(self, stabilization_time: int = 20) -> None:
        self.stabilization_time = stabilization_time

    def history(
        self,
        pattern: FailurePattern,
        *,
        horizon: int = 1_000,
        rng: random.Random | None = None,
    ) -> FailureDetectorHistory:
        witnesses = _witnesses(pattern, rng)
        gst = min(self.stabilization_time, horizon)

        def suspects(pid: int, t: int) -> frozenset[int]:
            if t < gst and rng is not None:
                # Pre-GST, accuracy may be violated; we keep it simple
                # and suspect nothing (allowed: axioms are upper bounds
                # on required suspicions before stabilisation).
                return frozenset()
            return frozenset(
                q for q, w in witnesses.items()
                if w == pid and not pattern.is_alive(q, t)
            )

        return FunctionHistory(suspects)


#: The eight classes of the hierarchy, keyed by conventional name.
DETECTOR_CLASSES: dict[str, type[FailureDetector]] = {
    "P": PerfectDetector,
    "<>P": EventuallyPerfectDetector,
    "S": StrongDetector,
    "<>S": EventuallyStrongDetector,
    "W": WeakDetector,
    "<>W": EventuallyWeakDetector,
    "Q": QuasiDetector,
    "<>Q": EventuallyQuasiDetector,
}
