"""Atomic broadcast built on uniform consensus.

The paper's opening line places agreement protocols — "atomic
broadcast, atomic commit" — at the heart of fault-tolerant systems and
motivates the model comparison through them.  Atomic commit lives in
:mod:`repro.commit`; this package supplies the other classic: **atomic
broadcast**, via the standard reduction to a sequence of consensus
instances (Chandra & Toueg, the paper's reference [6]).

Each *instance* occupies ``t + 1`` rounds and runs a FloodSet-style
uniform consensus whose values are *batches* (sets of undelivered
application messages).  The decided batch is delivered in a
deterministic order; leftovers — and messages learned from other
processes' floods during the instance — carry over to the next
instance.  Uniform agreement of each instance then yields uniform
total-order delivery, and the flood-based gossip yields validity:
a message a correct process broadcasts is in every proposal of the
following instance, hence in its decision.

The same code runs in RS and RWS (the WS variant adds the FloodSetWS
``halt`` guard); the RS-only variant inherits FloodSet's RWS anomaly,
which the test suite demonstrates at the broadcast level: a pending
batch can split the *delivery sequences* of two correct processes.
"""

from repro.broadcast.algorithm import (
    AtomicBroadcast,
    AtomicBroadcastWS,
    BroadcastState,
    delivered_sequence,
)
from repro.broadcast.spec import (
    BroadcastViolation,
    check_atomic_broadcast_run,
)

__all__ = [
    "AtomicBroadcast",
    "AtomicBroadcastWS",
    "BroadcastState",
    "delivered_sequence",
    "BroadcastViolation",
    "check_atomic_broadcast_run",
]
