"""Tests for deterministic replay: trace -> scenario -> identical trace."""

from __future__ import annotations

import pytest

from repro.consensus import A1, FloodSet, FOptFloodSet
from repro.obs import (
    EventLog,
    events_from_jsonl_lines,
    infer_model,
    logical_clock,
    reconstruct_scenario,
    replay_events,
)
from repro.rounds import RoundModel, run_rs, run_rws
from repro.workloads import (
    a1_rws_disagreement,
    adversarial_split,
    floodset_rws_violation,
    initially_dead_t,
)


def _record(algorithm, values, scenario, model, **kwargs):
    log = EventLog(clock=logical_clock())
    runner = run_rws if model is RoundModel.RWS else run_rs
    runner(
        algorithm, values, scenario, observer=log, **{"t": 1, "max_rounds": 4, **kwargs}
    )
    return log


class TestScenarioReconstruction:
    def test_rws_scenario_round_trips_exactly(self):
        scenario = floodset_rws_violation(3)
        log = _record(
            FloodSet(), adversarial_split(3), scenario, RoundModel.RWS
        )
        rebuilt = reconstruct_scenario(log.events)
        assert rebuilt == scenario

    def test_a1_scenario_round_trips_exactly(self):
        scenario = a1_rws_disagreement(3)
        log = _record(A1(), adversarial_split(3), scenario, RoundModel.RWS)
        assert reconstruct_scenario(log.events) == scenario

    def test_initially_dead_scenario_round_trips(self):
        scenario = initially_dead_t(3, 1)
        log = _record(
            FOptFloodSet(), adversarial_split(3), scenario, RoundModel.RS
        )
        rebuilt = reconstruct_scenario(log.events)
        assert rebuilt.n == scenario.n
        assert rebuilt.crashes == scenario.crashes
        assert rebuilt.pending == scenario.pending

    def test_step_trace_rejected(self):
        log = EventLog()
        log.crash(0, time=3)
        with pytest.raises(ValueError, match="not a round-model trace"):
            reconstruct_scenario(log.events)


class TestModelInference:
    def test_withheld_means_rws(self):
        log = _record(
            FloodSet(),
            adversarial_split(3),
            floodset_rws_violation(3),
            RoundModel.RWS,
        )
        assert infer_model(log.events) == "RWS"

    def test_no_withheld_means_rs(self):
        log = _record(
            FOptFloodSet(),
            adversarial_split(3),
            initially_dead_t(3, 1),
            RoundModel.RS,
        )
        assert infer_model(log.events) == "RS"


class TestByteForByteReplay:
    def test_rs_trace_replays_byte_for_byte(self):
        values = adversarial_split(3)
        log = _record(
            FOptFloodSet(), values, initially_dead_t(3, 1), RoundModel.RS
        )
        report = replay_events(FOptFloodSet(), values, log.events, t=1)
        assert report.model == "RS"
        assert report.exact
        assert report.original_lines == report.replayed_lines

    def test_rws_trace_replays_byte_for_byte(self):
        values = adversarial_split(3)
        log = _record(
            FloodSet(), values, floodset_rws_violation(3), RoundModel.RWS
        )
        report = replay_events(FloodSet(), values, log.events, t=1)
        assert report.model == "RWS"
        assert report.exact
        assert "byte-for-byte" in report.describe()

    def test_replay_from_jsonl_round_trip(self):
        """The full pipeline: record -> serialize -> parse -> replay."""
        values = adversarial_split(3)
        log = _record(A1(), values, a1_rws_disagreement(3), RoundModel.RWS)
        events = events_from_jsonl_lines(log.jsonl_lines())
        report = replay_events(A1(), values, events, t=1)
        assert report.exact

    def test_replay_flags_divergence_with_index(self):
        """A tampered trace replays to a different stream; the report
        points at the first diverging event."""
        values = adversarial_split(3)
        log = _record(
            FloodSet(), values, floodset_rws_violation(3), RoundModel.RWS
        )
        tampered = list(log.events)
        # drop one withheld event: the reconstructed scenario loses one
        # pending message, so the replay delivers where the original
        # withheld
        index = next(
            i for i, e in enumerate(tampered) if e.kind == "msg_withheld"
        )
        del tampered[index]
        report = replay_events(FloodSet(), values, tampered, t=1)
        assert not report.matches
        assert report.first_mismatch is not None
        assert "divergence" in report.describe()

    def test_replay_with_different_values_diverges(self):
        values = adversarial_split(3)
        log = _record(
            FloodSet(), values, floodset_rws_violation(3), RoundModel.RWS
        )
        report = replay_events(FloodSet(), [1, 1, 1], log.events, t=1)
        # same structure up to payloads; decide values differ
        assert not report.exact
