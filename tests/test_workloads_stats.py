"""Tests for workload builders and the stats helpers."""

from __future__ import annotations

import random

import pytest

from repro.rounds import validate_scenario
from repro.stats import rate, summarize
from repro.workloads import (
    a1_rws_disagreement,
    adversarial_split,
    crash_mid_broadcast,
    decide_then_crash_pending,
    failure_free,
    floodset_rws_violation,
    initially_dead_t,
    random_values,
    unanimous,
)


class TestConfigs:
    def test_unanimous(self):
        assert unanimous(3, 4) == (4, 4, 4)

    def test_adversarial_split(self):
        assert adversarial_split(4) == (0, 1, 1, 1)

    def test_random_values_domain(self):
        values = random_values(6, random.Random(1), domain=("a", "b"))
        assert len(values) == 6
        assert set(values) <= {"a", "b"}


class TestScenarios:
    def test_failure_free(self):
        scenario = failure_free(3)
        assert scenario.num_failures() == 0

    def test_initially_dead_t(self):
        scenario = initially_dead_t(4, 2)
        assert scenario.initially_dead() == frozenset({2, 3})
        assert validate_scenario(scenario, t=2, allow_pending=False) == []

    def test_crash_mid_broadcast(self):
        scenario = crash_mid_broadcast(3, pid=1, reached=(0,))
        event = scenario.crash_of(1)
        assert event.sent_to == frozenset({0})
        assert validate_scenario(scenario, t=1, allow_pending=False) == []

    def test_decide_then_crash_pending_is_rws_admissible(self):
        scenario = decide_then_crash_pending(4, pid=2)
        assert validate_scenario(scenario, t=1, allow_pending=True) == []
        event = scenario.crash_of(2)
        assert event.applies_transition
        assert len(scenario.pending) == 3

    def test_a1_scenario_alias(self):
        assert a1_rws_disagreement(3) == decide_then_crash_pending(3, pid=0)

    def test_floodset_violation_scenario_admissible(self):
        scenario = floodset_rws_violation(3)
        assert validate_scenario(scenario, t=1, allow_pending=True) == []
        assert scenario.crash_of(0).round == 2


class TestStats:
    def test_summarize_basics(self):
        summary = summarize([1, 2, 3, 4])
        assert summary.count == 4
        assert summary.minimum == 1
        assert summary.maximum == 4
        assert summary.mean == 2.5
        assert summary.median == 2.5

    def test_single_value_has_zero_stdev(self):
        assert summarize([7]).stdev == 0.0

    def test_empty_sample_rejected(self):
        with pytest.raises(ValueError):
            summarize([])

    def test_describe_format(self):
        text = summarize([1.0, 2.0]).describe("rounds")
        assert "mean=1.5 rounds" in text

    def test_rate(self):
        assert rate(1, 4) == 0.25
        assert rate(0, 0) == 0.0
