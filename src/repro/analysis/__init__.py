"""Latency analysis and mechanical verification over run spaces.

This package turns the paper's Section 5.2 definitions into exact
computations:

* ``|r|`` — the latency degree of run ``r``: rounds until all correct
  processes have decided;
* ``lat(A) = min |r|`` over all runs;
* ``lat(A, C) = min |r|`` over runs from initial configuration ``C``;
* ``Lat(A) = max_C lat(A, C)``;
* ``Lat(A, f) = max |r|`` over runs with at most ``f`` crashes;
* ``Λ(A) = min_f Lat(A, f) = Lat(A, 0)``.

For small systems the run space of a round model is finite once crash
rounds are bounded, so every quantity is computed exactly by exhaustive
enumeration; randomized exploration covers larger systems.
"""

from repro.analysis.latency import (
    LatencyProfile,
    explore_runs,
    latency_profile,
    profile_and_verify,
    verify_algorithm,
    VerificationReport,
)
from repro.analysis.lowerbound import (
    RoundOneVerdict,
    refute_round_one_decision,
    round_one_survey,
)
from repro.analysis.summary import SummaryRow, latency_summary_table, format_table
from repro.analysis.indistinguishability import (
    Observation,
    observations,
    indistinguishable,
    first_divergence,
)
from repro.analysis.timefree import (
    check_time_free_execution,
    random_linear_extension,
    reexecute_with_projections,
)

__all__ = [
    "LatencyProfile",
    "explore_runs",
    "latency_profile",
    "profile_and_verify",
    "verify_algorithm",
    "VerificationReport",
    "RoundOneVerdict",
    "refute_round_one_decision",
    "round_one_survey",
    "SummaryRow",
    "latency_summary_table",
    "format_table",
    "Observation",
    "observations",
    "indistinguishable",
    "first_divergence",
    "check_time_free_execution",
    "random_linear_extension",
    "reexecute_with_projections",
]
