"""Tests for atomic broadcast on RS and RWS."""

from __future__ import annotations

import pytest

from repro.analysis import verify_algorithm
from repro.broadcast import (
    AtomicBroadcast,
    AtomicBroadcastWS,
    check_atomic_broadcast_run,
)
from repro.errors import ConfigurationError
from repro.rounds import (
    CrashEvent,
    FailureScenario,
    RoundModel,
    run_rs,
    run_rws,
)

# Three processes each broadcasting one tagged message.
VALUES = (("m0",), ("m1",), ("m2",))


def sequences(run):
    return {pid: state.delivered for pid, state in run.final_states.items()}


class TestFailureFree:
    def test_everyone_delivers_everything_in_same_order(self):
        run = run_rs(
            AtomicBroadcast(), VALUES, FailureScenario.failure_free(3),
            t=1, max_rounds=4,
        )
        seqs = sequences(run)
        assert len({seqs[p] for p in range(3)}) == 1
        assert set(seqs[0]) == {"m0", "m1", "m2"}
        assert check_atomic_broadcast_run(run) == []

    def test_multiple_messages_per_process(self):
        values = (("a1", "a2"), ("b1",), ())
        run = run_rs(
            AtomicBroadcast(), values, FailureScenario.failure_free(3),
            t=1, max_rounds=4,
        )
        assert set(sequences(run)[2]) == {"a1", "a2", "b1"}
        assert check_atomic_broadcast_run(run) == []

    def test_empty_broadcast_is_fine(self):
        values = ((), (), ())
        run = run_rs(
            AtomicBroadcast(), values, FailureScenario.failure_free(3),
            t=1, max_rounds=4,
        )
        assert sequences(run) == {0: (), 1: (), 2: ()}

    def test_instances_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            AtomicBroadcast(instances=0)

    def test_decision_is_the_delivery_sequence(self):
        run = run_rs(
            AtomicBroadcast(), VALUES, FailureScenario.failure_free(3),
            t=1, max_rounds=4,
        )
        assert run.decision_value(0) == sequences(run)[0]


class TestCrashes:
    def test_partial_broadcast_message_survives(self):
        """m0 reaches only p1 in round 1; flooding spreads it anyway."""
        scenario = FailureScenario(
            n=3, crashes=(CrashEvent(pid=0, round=1, sent_to=frozenset({1})),)
        )
        run = run_rs(AtomicBroadcast(), VALUES, scenario, t=1, max_rounds=4)
        seqs = sequences(run)
        assert "m0" in seqs[1]
        assert "m0" in seqs[2]
        assert check_atomic_broadcast_run(run) == []

    def test_initially_dead_message_is_lost_but_order_holds(self):
        scenario = FailureScenario.initially_dead_set(3, {0})
        run = run_rs(AtomicBroadcast(), VALUES, scenario, t=1, max_rounds=4)
        seqs = sequences(run)
        assert "m0" not in seqs[1]
        assert check_atomic_broadcast_run(run) == []

    def test_exhaustive_rs_safety(self):
        report = verify_algorithm(
            AtomicBroadcast(), 3, 1, RoundModel.RS,
            checker=check_atomic_broadcast_run,
            domain=(("x",), ("y",)),
            horizon=4,
        )
        assert report.ok, report.first_violations()


class TestRWS:
    def test_ws_variant_exhaustive_safety(self):
        report = verify_algorithm(
            AtomicBroadcastWS(), 3, 1, RoundModel.RWS,
            checker=check_atomic_broadcast_run,
            domain=(("x",), ("y",)),
            horizon=4,
        )
        assert report.ok, report.first_violations()

    def test_plain_variant_splits_delivery_sequences_in_rws(self):
        """FloodSet's RWS anomaly lifts to broadcast: a pending batch in
        the decision round splits the delivery *order* of two correct
        processes — total order broken."""
        report = verify_algorithm(
            AtomicBroadcast(), 3, 1, RoundModel.RWS,
            checker=check_atomic_broadcast_run,
            domain=(("x",), ("y",)),
            horizon=4,
            stop_after=1,
        )
        assert not report.ok
        assert any(
            v.clause in ("uniform total order", "validity")
            for v in report.violations
        )

    def test_ws_variant_named_scenario(self):
        from repro.workloads import floodset_rws_violation

        run = run_rws(
            AtomicBroadcastWS(), VALUES, floodset_rws_violation(3),
            t=1, max_rounds=4,
        )
        assert check_atomic_broadcast_run(run) == []


class TestSpecChecker:
    def test_total_order_violation_detected(self):
        """Manufacture incompatible sequences via the plain variant."""
        report = verify_algorithm(
            AtomicBroadcast(), 3, 1, RoundModel.RWS,
            checker=check_atomic_broadcast_run,
            domain=(("x",), ("y",)),
            horizon=4,
        )
        # At least one concrete violation mentions both sequences.
        assert report.violations
        assert "delivered" in report.violations[0].detail
