"""``repro causal``: happens-before analysis of a trace or run dir.

Given a JSONL trace (``repro trace --jsonl``, ``repro live --jsonl``,
``make causal-smoke`` artifacts) the command reconstructs the causal
graph and prints, per decision, the critical path — the longest chain
of message hops behind the decide, the hop count the Λ latency
measures count — plus, for live traces, the wall-latency split into
``send`` / ``retransmit`` / ``detector-wait`` / ``local`` legs and a
forensic audit of every suspicion (which heartbeats were missed,
whether the ground-truth crash justifies it).

Given a run directory (``repro sweep --run-dir``), the same analysis
runs over every cached cell result and prints one summary line per
cell, flagging Λ-bound anomalies.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.cli.common import load_trace
from repro.obs.causal import annotate
from repro.obs.critical import causal_summary, critical_paths
from repro.trace.diagram import event_diagram


def _print_trace_report(events, args: argparse.Namespace) -> int:
    graph = annotate(events)
    summary = causal_summary(events, graph=graph)
    paths = critical_paths(events, graph=graph)
    if args.decide is not None:
        paths = [path for path in paths if path.pid == args.decide]
        if not paths:
            print(
                f"error: no decide event for p{args.decide} in the trace",
                file=sys.stderr,
            )
            return 2
        summary["decisions"] = [path.to_dict() for path in paths]
    if args.suspect is not None:
        summary["suspicions"] = [
            report
            for report in summary["suspicions"]
            if report["suspected"] == args.suspect
        ]
        if not summary["suspicions"]:
            print(
                f"error: nobody suspects p{args.suspect} in the trace",
                file=sys.stderr,
            )
            return 2

    if args.json:
        print(json.dumps(summary, indent=2, sort_keys=True, default=repr))
        return 1 if summary["anomalies"] else 0

    print(
        f"{summary['events']} events ({summary['clock']} clock), "
        f"{summary['message_edges']} message edges, "
        f"max critical path {summary['max_path_length']} hops"
    )
    for path in paths:
        line = (
            f"  decide p{path.pid}={path.value!r}"
            + (f" @ round {path.round}" if path.round is not None else "")
            + f": {path.length} message hops"
        )
        if path.wall_latency_s is not None:
            line += f", {1000 * path.wall_latency_s:.1f} ms wall"
        print(line)
        for leg in path.legs:
            where = f" round {leg.round}" if leg.round is not None else ""
            via = f" via {leg.via}" if leg.via is not None else ""
            print(
                f"    {leg.kind:<14} {1000 * leg.seconds:8.2f} ms{where}{via}"
            )
    for report in summary["suspicions"]:
        verdict = {True: "justified", False: "UNJUSTIFIED", None: "unknown"}[
            report.get("justified")
        ]
        line = f"  suspect p{report['observer']}->p{report['suspected']}: {verdict}"
        if report.get("misses") is not None:
            line += (
                f", {report['misses']}/{report['threshold']} silent passes"
            )
        if report.get("silence_s") is not None:
            line += f", {1000 * report['silence_s']:.1f} ms silence"
        print(line)
    for problem in summary["anomalies"]:
        print(f"  ANOMALY: {problem}")

    if args.diagram:
        marked = paths[0] if paths else None
        if marked is not None:
            print(
                f"\ncritical path of p{marked.pid}'s decision "
                f"(rows marked *):"
            )
        print(event_diagram(events, highlight=marked.nodes if marked else ()))
    return 1 if summary["anomalies"] else 0


def _print_rundir_report(path: Path, args: argparse.Namespace) -> int:
    from repro.obs.artifacts import RunDir
    from repro.obs.report import find_run_dir
    from repro.runtime.request import ExecutionResult

    try:
        run_dir = RunDir.load(find_run_dir(path))
    except (FileNotFoundError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    cells: list[dict] = []
    anomalies = 0
    for entry in sorted(run_dir.results_dir.glob("*.json")):
        if entry.name.startswith(".tmp-"):
            continue
        try:
            result = ExecutionResult.from_dict(
                json.loads(entry.read_text(encoding="utf-8"))
            )
        except (OSError, ValueError, KeyError) as exc:
            print(f"error: {entry.name}: {exc}", file=sys.stderr)
            return 2
        if not result.events:
            continue
        summary = causal_summary(result.events)
        summary["cell"] = result.name
        anomalies += len(summary["anomalies"])
        cells.append(summary)
    if args.json:
        print(json.dumps(cells, indent=2, sort_keys=True, default=repr))
        return 1 if anomalies else 0
    print(f"{run_dir.run_id}: {len(cells)} cells with events")
    for summary in cells:
        lengths = sorted(
            {entry["length"] for entry in summary["decisions"]}
        )
        line = (
            f"  {summary['cell']:<24} decisions={len(summary['decisions'])} "
            f"path-hops={lengths or '-'}"
        )
        if summary["suspicions"]:
            line += f" suspicions={len(summary['suspicions'])}"
        if summary["anomalies"]:
            line += f" ANOMALIES={len(summary['anomalies'])}"
        print(line)
        for problem in summary["anomalies"]:
            print(f"    {problem}")
    return 1 if anomalies else 0


def _cmd_causal(args: argparse.Namespace) -> int:
    target = Path(args.target)
    if target.is_dir():
        return _print_rundir_report(target, args)
    events = load_trace(args.target)
    if events is None:
        return 2
    return _print_trace_report(events, args)


def register(sub: argparse._SubParsersAction) -> None:
    """Attach this module's subcommands to the root parser."""
    p_causal = sub.add_parser(
        "causal",
        help=(
            "happens-before analysis: critical paths, latency legs, "
            "suspicion forensics"
        ),
    )
    p_causal.add_argument(
        "target",
        help="a JSONL trace file, or a run directory with results/",
    )
    p_causal.add_argument(
        "--decide",
        type=int,
        metavar="PID",
        help="only the critical path of PID's decision",
    )
    p_causal.add_argument(
        "--suspect",
        type=int,
        metavar="PID",
        help="only suspicions *of* PID (forensic audit)",
    )
    p_causal.add_argument(
        "--diagram",
        action="store_true",
        help=(
            "render the trace as a space-time diagram with the first "
            "selected decision's critical path marked"
        ),
    )
    p_causal.add_argument(
        "--json",
        action="store_true",
        help="emit the full analysis as JSON",
    )
    p_causal.set_defaults(func=_cmd_causal)
