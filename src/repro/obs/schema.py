"""A lightweight schema check for exported JSONL traces.

There is no jsonschema dependency to lean on, so the schema is encoded
directly: each event kind names its required and permitted fields.
``scripts/check_trace.py`` applies this to a file; the ``trace-smoke``
Makefile target and the CLI tests shell through it.
"""

from __future__ import annotations

import json
from typing import Any, Iterable

from repro.obs.events import EVENT_KINDS

#: Fields every event must carry.
_COMMON_REQUIRED = ("kind", "ts")

#: Per-kind required fields beyond the common ones.
_REQUIRED: dict[str, tuple[str, ...]] = {
    "round_start": ("round",),
    "msg_sent": ("pid", "peer"),
    "msg_withheld": ("round", "pid", "peer"),
    "msg_delivered": ("pid", "peer"),
    "crash": ("pid",),
    "suspect": ("pid", "peer"),
    "decide": ("pid", "value"),
    "halt": ("pid",),
}

#: All fields any event may carry.
_ALLOWED = frozenset(
    {"kind", "ts", "round", "time", "pid", "peer", "value", "extra"}
)

#: Typed keys inside the optional ``extra`` causal-metadata object.
#: ``msg_id`` pairs sends with deliveries; the rest are live wall-clock
#: and forensics fields.  Unknown keys are permitted (the channel is a
#: side band), but known keys must be well-typed.
_EXTRA_TYPES: dict[str, tuple[type, ...]] = {
    "msg_id": (int, str),
    "wall_s": (int, float),
    "attempts": (int,),
    "retransmits": (int,),
    "wire_s": (int, float),
    "delivered_s": (int, float),
    "misses": (int,),
    "threshold": (int,),
    "last_heard_s": (int, float),
}


def validate_event_dict(data: dict[str, Any], line: int = 0) -> list[str]:
    """Return schema problems for one decoded event (empty when valid)."""
    where = f"line {line}: " if line else ""
    problems: list[str] = []
    kind = data.get("kind")
    if kind not in EVENT_KINDS:
        problems.append(f"{where}unknown event kind {kind!r}")
        return problems
    for field in _COMMON_REQUIRED + _REQUIRED[kind]:
        if field not in data:
            problems.append(f"{where}{kind} event missing field {field!r}")
    extra = set(data) - _ALLOWED
    if extra:
        problems.append(
            f"{where}{kind} event has unknown fields {sorted(extra)}"
        )
    if "ts" in data and not isinstance(data["ts"], (int, float)):
        problems.append(f"{where}ts must be numeric, got {data['ts']!r}")
    for field in ("round", "time", "pid", "peer"):
        if field in data and data[field] is not None and not isinstance(
            data[field], int
        ):
            problems.append(
                f"{where}{field} must be an integer, got {data[field]!r}"
            )
    if "extra" in data and data["extra"] is not None:
        if not isinstance(data["extra"], dict):
            problems.append(
                f"{where}extra must be an object, got {data['extra']!r}"
            )
        else:
            for key, types in _EXTRA_TYPES.items():
                if key in data["extra"] and not isinstance(
                    data["extra"][key], types
                ):
                    problems.append(
                        f"{where}extra.{key} must be "
                        f"{' or '.join(t.__name__ for t in types)}, "
                        f"got {data['extra'][key]!r}"
                    )
    return problems


def validate_jsonl_lines(lines: Iterable[str]) -> list[str]:
    """Validate a whole JSONL trace; returns all problems found."""
    problems: list[str] = []
    count = 0
    for number, line in enumerate(lines, start=1):
        stripped = line.strip()
        if not stripped:
            continue
        count += 1
        try:
            data = json.loads(stripped)
        except json.JSONDecodeError as exc:
            problems.append(f"line {number}: not valid JSON ({exc})")
            continue
        if not isinstance(data, dict):
            problems.append(f"line {number}: event must be a JSON object")
            continue
        problems.extend(validate_event_dict(data, line=number))
    if count == 0:
        problems.append("trace contains no events")
    return problems
