"""F_OptFloodSet (Figure 3) and F_OptFloodSetWS (failure fast path).

If a process receives exactly ``n - t`` messages at round 1, then all
``t`` allowed failures have already happened (every missing sender is
necessarily faulty), so the receiver knows the exact set of correct
processes and can decide immediately — *provided* it notifies its
decision at round 2 so the decision is forced on everyone else.

This witnesses ``Lat(F_OptFloodSet) = Lat(F_OptFloodSetWS) = 1``: for
*every* initial configuration there is a run — the one where ``t``
processes are initially dead — whose latency degree is 1.  As the paper
notes, this "contradicts a widespread idea that minimal latency degree
is typically obtained with failure free runs".

The decided/undecided message split follows Figure 3 exactly: an
undecided process floods ``W``; a decided one floods ``(D, decision)``,
and any process seeing a ``(D, v)`` adopts ``v``.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Mapping

from repro.rounds.algorithm import RoundAlgorithm, broadcast

#: Tag distinguishing a forced-decision message from a plain ``W`` flood.
DECIDED_TAG = "D"


@dataclass(frozen=True)
class FOptState:
    """State of Figure 3: FloodSet plus the ``decided`` flag."""

    rounds: int
    W: frozenset
    decided: bool
    decision: Any
    n: int
    t: int


class FOptFloodSet(RoundAlgorithm):
    """Figure 3: FloodSet with the ``n - t`` round-1 fast path (RS)."""

    name = "F_OptFloodSet"

    def initial_state(self, pid: int, n: int, t: int, value: Any) -> FOptState:
        return FOptState(
            rounds=0,
            W=frozenset({value}),
            decided=False,
            decision=None,
            n=n,
            t=t,
        )

    def messages(self, pid: int, state: FOptState) -> Mapping[int, Any]:
        if state.rounds > state.t:
            return {}
        if state.decided:
            return broadcast((DECIDED_TAG, state.decision), state.n)
        return broadcast(state.W, state.n)

    def _filtered(self, state: FOptState, received: Mapping[int, Any]) -> Mapping[int, Any]:
        """Hook for the WS variant's ``halt`` filtering; identity in RS."""
        return received

    def transition(
        self, pid: int, state: FOptState, received: Mapping[int, Any]
    ) -> FOptState:
        rounds = state.rounds + 1
        usable = self._filtered(state, received)
        W = state.W
        decided = state.decided
        decision = state.decision

        forced = [
            payload[1]
            for payload in usable.values()
            if isinstance(payload, tuple) and payload[0] == DECIDED_TAG
        ]
        plain = {
            sender: payload
            for sender, payload in usable.items()
            if not (isinstance(payload, tuple) and payload[0] == DECIDED_TAG)
        }

        if rounds == 1 and len(received) == state.n - state.t and not decided:
            for payload in plain.values():
                W = W | payload
            decision = min(W)
            decided = True
        elif forced and not decided:
            decision = forced[0]
            decided = True
        else:
            for payload in plain.values():
                W = W | payload

        if rounds == state.t + 1 and not decided:
            decision = min(W)
            decided = True

        new_state = replace(
            state, rounds=rounds, W=W, decided=decided, decision=decision
        )
        return self._after_transition(new_state, received)

    def _after_transition(
        self, state: FOptState, received: Mapping[int, Any]
    ) -> FOptState:
        """Hook for the WS variant's ``halt`` bookkeeping."""
        return state

    def decision_of(self, state: FOptState) -> Any:
        return state.decision

    def halted(self, pid: int, state: FOptState) -> bool:
        # A fast decider must keep running one more round to force its
        # decision on the others; it is quiescent only once its rounds
        # counter has passed the last sending round or everyone it could
        # inform has been informed.  Conservatively: halted when decided
        # and at least two rounds have elapsed, or all t+1 rounds ran.
        if not state.decided:
            return False
        return state.rounds >= 2 or state.rounds > state.t


@dataclass(frozen=True)
class FOptWSState(FOptState):
    """F_OptFloodSetWS state: Figure 3 plus FloodSetWS's ``halt`` set."""

    halt: frozenset = frozenset()


class FOptFloodSetWS(FOptFloodSet):
    """F_OptFloodSetWS: the Figure 3 fast path hardened for RWS.

    Safety of the fast path in RWS: a sender missing from a round-1
    reception is either initially dead or the sender of a pending
    message, and in both cases is faulty.  Seeing exactly ``n - t``
    senders therefore still identifies the missing ``t`` as the precise
    set of faulty processes.  The ``halt`` guard handles the late
    messages those faulty processes may still deliver.
    """

    name = "F_OptFloodSetWS"

    def initial_state(self, pid: int, n: int, t: int, value: Any) -> FOptWSState:
        return FOptWSState(
            rounds=0,
            W=frozenset({value}),
            decided=False,
            decision=None,
            n=n,
            t=t,
            halt=frozenset(),
        )

    def _filtered(self, state: FOptWSState, received: Mapping[int, Any]) -> Mapping[int, Any]:
        return {
            sender: payload
            for sender, payload in received.items()
            if sender not in state.halt
        }

    def _after_transition(
        self, state: FOptWSState, received: Mapping[int, Any]
    ) -> FOptWSState:
        halt = state.halt | frozenset(
            q for q in range(state.n) if q not in received
        )
        return replace(state, halt=halt)
