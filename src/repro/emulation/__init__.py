"""Emulations tying the round models to the step-level system models.

Section 4 of the paper introduces RS and RWS as models "that can be
easily emulated from SS and SP"; this package implements both
emulations on the step kernel, making the tie executable:

* :mod:`repro.emulation.rs_on_ss` — synchronous rounds on the SS step
  model.  Each round costs a precomputed number of local steps derived
  from Φ, Δ and n (the paper's "n + k steps, k a function of n, Δ, Φ
  and r"); the derived per-round delivery pattern satisfies *round
  synchrony* on every run.
* :mod:`repro.emulation.rws_on_sp` — weakly synchronous rounds on the
  SP model: a process finishes a round once, for every peer, it has
  either received that peer's round message or suspects the peer.
  Pending messages genuinely occur, and every run satisfies *weak round
  synchrony* (Lemma 4.1).
"""

from repro.emulation.rs_on_ss import (
    RoundOnSSAutomaton,
    round_deadlines,
    emulate_rs_on_ss,
    EmulatedRoundTrace,
    check_emulated_round_synchrony,
)
from repro.emulation.rws_on_sp import (
    RoundOnSPAutomaton,
    emulate_rws_on_sp,
    check_emulated_weak_round_synchrony,
    count_pending_messages,
)
from repro.emulation.induce import induced_scenario

__all__ = [
    "RoundOnSSAutomaton",
    "round_deadlines",
    "emulate_rs_on_ss",
    "EmulatedRoundTrace",
    "check_emulated_round_synchrony",
    "RoundOnSPAutomaton",
    "emulate_rws_on_sp",
    "check_emulated_weak_round_synchrony",
    "count_pending_messages",
    "induced_scenario",
]
