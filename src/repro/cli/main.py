"""The ``repro`` command: run experiments and inspect runs from a shell.

Subcommands:

* ``repro experiments [--ids E1 E9] [--full]`` — run the paper's
  experiment suite and print claim-vs-measured reports.
* ``repro summary`` — print the headline RS-vs-RWS latency table (E15).
* ``repro sdd`` — the SDD story: the SS algorithm at work plus the
  Theorem 3.1 refutations.
* ``repro commit`` — commit-rate comparison (E3).
* ``repro latency ALGORITHM`` — latency profile of one algorithm in
  both round models.
* ``repro show SCENARIO`` — execute a named scenario and print the
  round tableau.
* ``repro trace SCENARIO [--jsonl PATH]`` — execute a named scenario
  under an event-log observer and export the structured trace.
* ``repro metrics [SCENARIO]`` — execute a named scenario under a
  metrics observer and print the counter/histogram dump.
"""

from __future__ import annotations

import argparse
import random
import sys
from typing import Any, Sequence

from repro.analysis import format_table, latency_profile, latency_summary_table
from repro.commit import compare_commit_rates
from repro.consensus import (
    A1,
    COptFloodSet,
    COptFloodSetWS,
    FloodSet,
    FloodSetWS,
    FOptFloodSet,
    FOptFloodSetWS,
)
from repro.core import (
    run_all_experiments,
    run_all_extensions,
    run_experiment,
    run_extension,
    write_report,
)
from repro.failures import FailurePattern
from repro.obs import (
    CompositeObserver,
    EventLog,
    MetricsObserver,
    MetricsRegistry,
    Profiler,
    set_profiler,
)
from repro.rounds import RoundModel, run_rs, run_rws
from repro.sdd import SP_CANDIDATE_FACTORIES, refute_sdd_candidate, solve_sdd_ss
from repro.trace import describe_run, round_tableau, step_diagram
from repro.workloads import (
    a1_rws_disagreement,
    adversarial_split,
    floodset_rws_violation,
    initially_dead_t,
)

ALGORITHMS = {
    "floodset": FloodSet,
    "floodset-ws": FloodSetWS,
    "c-opt": COptFloodSet,
    "c-opt-ws": COptFloodSetWS,
    "f-opt": FOptFloodSet,
    "f-opt-ws": FOptFloodSetWS,
    "a1": A1,
}

SCENARIOS = {
    "a1-rws": (
        "the Section 5.3 disagreement: p1 decides on its own pending "
        "broadcast",
        lambda: (A1(), adversarial_split(3), a1_rws_disagreement(3), RoundModel.RWS),
    ),
    "floodset-rws": (
        "plain FloodSet split by a pending value in the decision round",
        lambda: (
            FloodSet(),
            adversarial_split(3),
            floodset_rws_violation(3),
            RoundModel.RWS,
        ),
    ),
    "fopt-fast": (
        "t initial crashes let F_OptFloodSet decide at round 1",
        lambda: (
            FOptFloodSet(),
            adversarial_split(3),
            initially_dead_t(3, 1),
            RoundModel.RS,
        ),
    ),
    "broadcast-split": (
        "plain atomic broadcast loses total order under a pending batch",
        lambda: _broadcast_split_scenario(),
    ),
}


#: Long-form names accepted anywhere a scenario name is (docs and the
#: paper's prose refer to the counterexamples by these).
SCENARIO_ALIASES = {
    "floodset-rws-violation": "floodset-rws",
    "a1-rws-disagreement": "a1-rws",
}


def _broadcast_split_scenario():
    from repro.broadcast import AtomicBroadcast

    return (
        AtomicBroadcast(),
        (("x",), ("y",), ("z",)),
        floodset_rws_violation(3),
        RoundModel.RWS,
    )


def _resolve_scenario(name: str) -> tuple[str, Any] | None:
    """Look a scenario up by name or alias; ``None`` when unknown."""
    return SCENARIOS.get(SCENARIO_ALIASES.get(name, name))


def _unknown_scenario(name: str) -> int:
    """Print the standard unknown-scenario message; returns exit code 2."""
    known = sorted(SCENARIOS) + sorted(SCENARIO_ALIASES)
    print(
        f"error: unknown scenario {name!r}; choose from {known}",
        file=sys.stderr,
    )
    return 2


def _run_by_id(exp_id: str, quick: bool):
    if exp_id.upper().startswith("X"):
        return run_extension(exp_id, quick)
    return run_experiment(exp_id, quick)


def _cmd_experiments(args: argparse.Namespace) -> int:
    quick = not args.full
    if args.ids:
        results = [_run_by_id(exp_id, quick) for exp_id in args.ids]
    else:
        results = run_all_experiments(quick)
        if args.extensions:
            results.extend(run_all_extensions(quick))
    failures = 0
    for result in results:
        print(result.describe())
        print()
        failures += 0 if result.ok else 1
    print(f"{len(results) - failures}/{len(results)} experiments passed")
    return 1 if failures else 0


def _cmd_report(args: argparse.Namespace) -> int:
    passed = write_report(args.output, quick=not args.full)
    print(f"wrote {args.output} ({passed} experiments passing)")
    return 0


def _cmd_summary(args: argparse.Namespace) -> int:
    algorithms = [
        FloodSet(),
        FloodSetWS(),
        COptFloodSet(),
        COptFloodSetWS(),
        FOptFloodSet(),
        FOptFloodSetWS(),
        A1(),
    ]
    rows = latency_summary_table(algorithms, n=args.n, t=1)
    print(format_table(rows))
    return 0


def _cmd_sdd(args: argparse.Namespace) -> int:
    print("SS solves SDD (value 1, sender crashes at time 2):")
    pattern = FailurePattern.with_crashes(2, {0: 2})
    run = solve_sdd_ss(1, pattern, phi=1, delta=1, rng=random.Random(args.seed))
    print(" ", describe_run(run))
    print(step_diagram(run, max_rows=12))
    print()
    print("Theorem 3.1 refutations in SP:")
    for name, factory in SP_CANDIDATE_FACTORIES.items():
        print(refute_sdd_candidate(factory, name).describe())
    return 0


def _cmd_commit(args: argparse.Namespace) -> int:
    for name, report in compare_commit_rates(n=args.n, t=1).items():
        print(f"{name}: {report.describe()}")
    return 0


def _cmd_latency(args: argparse.Namespace) -> int:
    factory = ALGORITHMS.get(args.algorithm)
    if factory is None:
        print(
            f"unknown algorithm {args.algorithm!r}; choose from "
            f"{sorted(ALGORITHMS)}",
            file=sys.stderr,
        )
        return 2
    algorithm = factory()
    for model in (RoundModel.RS, RoundModel.RWS):
        try:
            profile = latency_profile(algorithm, args.n, 1, model)
        except Exception as exc:  # unsafe pairs raise on non-termination
            print(f"{model.value}: not measurable ({exc})")
            continue
        print(profile.describe())
    return 0


def _cmd_show(args: argparse.Namespace) -> int:
    entry = _resolve_scenario(args.scenario)
    if entry is None:
        return _unknown_scenario(args.scenario)
    blurb, build = entry
    algorithm, values, scenario, model = build()
    runner = run_rws if model is RoundModel.RWS else run_rs
    run = runner(algorithm, values, scenario, t=1, max_rounds=4)
    if getattr(args, "dot", False):
        from repro.trace import round_run_to_dot

        print(round_run_to_dot(run))
        return 0
    print(f"{args.scenario}: {blurb}")
    print(f"algorithm={algorithm.name}, model={model.value}, values={values}")
    print()
    print(round_tableau(run))
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    entry = _resolve_scenario(args.scenario)
    if entry is None:
        return _unknown_scenario(args.scenario)
    blurb, build = entry
    algorithm, values, scenario, model = build()
    log = EventLog()
    registry = MetricsRegistry()
    observer = CompositeObserver(log, MetricsObserver(registry))
    runner = run_rws if model is RoundModel.RWS else run_rs
    runner(
        algorithm, values, scenario, t=1, max_rounds=4, observer=observer
    )
    if args.jsonl:
        count = log.write_jsonl(args.jsonl)
        print(f"wrote {count} events to {args.jsonl}")
    else:
        for line in log.jsonl_lines():
            print(line)
    kinds: dict[str, int] = {}
    for event in log:
        kinds[event.kind] = kinds.get(event.kind, 0) + 1
    summary = ", ".join(f"{k}={v}" for k, v in sorted(kinds.items()))
    print(f"# {args.scenario}: {blurb}", file=sys.stderr)
    print(f"# events: {summary}", file=sys.stderr)
    return 0


def _cmd_metrics(args: argparse.Namespace) -> int:
    entry = _resolve_scenario(args.scenario)
    if entry is None:
        return _unknown_scenario(args.scenario)
    blurb, build = entry
    algorithm, values, scenario, model = build()
    registry = MetricsRegistry()
    profiler = Profiler()
    set_profiler(profiler)
    try:
        runner = run_rws if model is RoundModel.RWS else run_rs
        runner(
            algorithm,
            values,
            scenario,
            t=1,
            max_rounds=4,
            observer=MetricsObserver(registry),
        )
    finally:
        set_profiler(None)
    profiler.merge_into(registry)
    print(f"{args.scenario}: {blurb}")
    print(registry.render())
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Synchronous System and Perfect Failure "
            "Detector' (DSN 2000)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_exp = sub.add_parser("experiments", help="run the E1-E15 suite")
    p_exp.add_argument("--ids", nargs="*", help="experiment ids (default all)")
    p_exp.add_argument(
        "--full", action="store_true", help="larger sweeps (slower)"
    )
    p_exp.add_argument(
        "--extensions",
        action="store_true",
        help="also run the X1-X4 extension experiments",
    )
    p_exp.set_defaults(func=_cmd_experiments)

    p_report = sub.add_parser(
        "report", help="regenerate EXPERIMENTS.md from live runs"
    )
    p_report.add_argument("--output", default="EXPERIMENTS.md")
    p_report.add_argument("--full", action="store_true")
    p_report.set_defaults(func=_cmd_report)

    p_summary = sub.add_parser("summary", help="headline latency table")
    p_summary.add_argument("--n", type=int, default=3)
    p_summary.set_defaults(func=_cmd_summary)

    p_sdd = sub.add_parser("sdd", help="the SDD story")
    p_sdd.add_argument("--seed", type=int, default=7)
    p_sdd.set_defaults(func=_cmd_sdd)

    p_commit = sub.add_parser("commit", help="commit-rate comparison")
    p_commit.add_argument("--n", type=int, default=3)
    p_commit.set_defaults(func=_cmd_commit)

    p_lat = sub.add_parser("latency", help="latency profile of an algorithm")
    p_lat.add_argument("algorithm", choices=sorted(ALGORITHMS))
    p_lat.add_argument("--n", type=int, default=3)
    p_lat.set_defaults(func=_cmd_latency)

    p_show = sub.add_parser("show", help="render a named scenario")
    p_show.add_argument("scenario", help=f"one of {sorted(SCENARIOS)}")
    p_show.add_argument(
        "--dot",
        action="store_true",
        help="emit Graphviz DOT instead of the ASCII tableau",
    )
    p_show.set_defaults(func=_cmd_show)

    p_trace = sub.add_parser(
        "trace", help="export a scenario's structured event trace"
    )
    p_trace.add_argument("scenario", help=f"one of {sorted(SCENARIOS)}")
    p_trace.add_argument(
        "--jsonl",
        metavar="PATH",
        help="write the trace to PATH (default: print to stdout)",
    )
    p_trace.set_defaults(func=_cmd_trace)

    p_metrics = sub.add_parser(
        "metrics", help="print a scenario's metrics snapshot"
    )
    p_metrics.add_argument(
        "scenario",
        nargs="?",
        default="floodset-rws",
        help=f"one of {sorted(SCENARIOS)} (default: floodset-rws)",
    )
    p_metrics.set_defaults(func=_cmd_metrics)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)
