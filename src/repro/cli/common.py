"""Shared CLI vocabulary: named scenarios, algorithms, and helpers.

Every subcommand module draws its scenario table, algorithm registry
and error conventions from here, so the per-subcommand files stay pure
command logic.
"""

from __future__ import annotations

import sys
from typing import Any

from repro.consensus import (
    A1,
    COptFloodSet,
    COptFloodSetWS,
    FloodSet,
    FloodSetWS,
    FOptFloodSet,
    FOptFloodSetWS,
)
from repro.obs import EventLog, events_from_jsonl_lines, logical_clock
from repro.rounds import RoundModel, run_rs, run_rws
from repro.workloads import (
    a1_rws_disagreement,
    adversarial_split,
    floodset_rws_violation,
    initially_dead_t,
)

#: The algorithms ``repro latency`` (and friends) accept by name.
ALGORITHMS = {
    "floodset": FloodSet,
    "floodset-ws": FloodSetWS,
    "c-opt": COptFloodSet,
    "c-opt-ws": COptFloodSetWS,
    "f-opt": FOptFloodSet,
    "f-opt-ws": FOptFloodSetWS,
    "a1": A1,
}


def _broadcast_split_scenario():
    from repro.broadcast import AtomicBroadcast

    return (
        AtomicBroadcast(),
        (("x",), ("y",), ("z",)),
        floodset_rws_violation(3),
        RoundModel.RWS,
    )


SCENARIOS = {
    "a1-rws": (
        "the Section 5.3 disagreement: p1 decides on its own pending "
        "broadcast",
        lambda: (A1(), adversarial_split(3), a1_rws_disagreement(3), RoundModel.RWS),
    ),
    "floodset-rws": (
        "plain FloodSet split by a pending value in the decision round",
        lambda: (
            FloodSet(),
            adversarial_split(3),
            floodset_rws_violation(3),
            RoundModel.RWS,
        ),
    ),
    "fopt-fast": (
        "t initial crashes let F_OptFloodSet decide at round 1",
        lambda: (
            FOptFloodSet(),
            adversarial_split(3),
            initially_dead_t(3, 1),
            RoundModel.RS,
        ),
    ),
    "broadcast-split": (
        "plain atomic broadcast loses total order under a pending batch",
        lambda: _broadcast_split_scenario(),
    ),
}


#: Long-form names accepted anywhere a scenario name is (docs and the
#: paper's prose refer to the counterexamples by these).
SCENARIO_ALIASES = {
    "floodset-rws-violation": "floodset-rws",
    "a1-rws-disagreement": "a1-rws",
}


#: Scenarios whose whole point is a consensus violation (the paper's
#: counterexamples).  ``repro check`` treats them as reproduction
#: oracles: the *model* invariants must hold and the documented
#: disagreement must actually show up in the trace.
EXPECTED_DISAGREEMENT = {"a1-rws", "floodset-rws", "broadcast-split"}

#: Scenarios whose decide values are not drawn from the initial values
#: (atomic broadcast decides delivery sequences), so validity cannot be
#: checked against the inputs.
NON_CONSENSUS_VALUES = {"broadcast-split"}


def resolve_scenario(name: str) -> tuple[str, Any] | None:
    """Look a scenario up by name or alias; ``None`` when unknown."""
    return SCENARIOS.get(SCENARIO_ALIASES.get(name, name))


def unknown_scenario(name: str) -> int:
    """Print the standard unknown-scenario message; returns exit code 2."""
    known = sorted(SCENARIOS) + sorted(SCENARIO_ALIASES)
    print(
        f"error: unknown scenario {name!r}; choose from {known}",
        file=sys.stderr,
    )
    return 2


def run_scenario_trace(build: Any) -> tuple[Any, Any, Any, RoundModel, EventLog]:
    """Execute a scenario under a deterministic event log."""
    algorithm, values, scenario, model = build()
    log = EventLog(clock=logical_clock())
    runner = run_rws if model is RoundModel.RWS else run_rs
    runner(algorithm, values, scenario, t=1, max_rounds=4, observer=log)
    return algorithm, values, scenario, model, log


def load_trace(path: str) -> list[Any] | None:
    """Parse a JSONL trace file; prints the error and returns None on failure."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            return events_from_jsonl_lines(handle)
    except OSError as exc:
        print(f"error: cannot read {path}: {exc}", file=sys.stderr)
        return None
    except ValueError as exc:
        print(f"error: {path}: {exc}", file=sys.stderr)
        return None
