"""``repro trace`` and ``repro metrics``: structured observability
exports for a named scenario."""

from __future__ import annotations

import argparse
import json
import sys

from repro.cli.common import SCENARIOS, resolve_scenario, unknown_scenario
from repro.obs import (
    CompositeObserver,
    EventLog,
    MetricsObserver,
    MetricsRegistry,
    Profiler,
    logical_clock,
    set_profiler,
)
from repro.rounds import RoundModel, run_rs, run_rws


def _cmd_trace(args: argparse.Namespace) -> int:
    entry = resolve_scenario(args.scenario)
    if entry is None:
        return unknown_scenario(args.scenario)
    blurb, build = entry
    algorithm, values, scenario, model = build()
    # Logical (counter) timestamps by default so exported traces are
    # deterministic and `repro replay` can match them byte-for-byte.
    log = EventLog() if args.wall_ts else EventLog(clock=logical_clock())
    registry = MetricsRegistry()
    observer = CompositeObserver(log, MetricsObserver(registry))
    runner = run_rws if model is RoundModel.RWS else run_rs
    runner(
        algorithm, values, scenario, t=1, max_rounds=4, observer=observer
    )
    if args.jsonl:
        count = log.write_jsonl(args.jsonl)
        print(f"wrote {count} events to {args.jsonl}")
    else:
        for line in log.jsonl_lines():
            print(line)
    kinds: dict[str, int] = {}
    for event in log:
        kinds[event.kind] = kinds.get(event.kind, 0) + 1
    summary = ", ".join(f"{k}={v}" for k, v in sorted(kinds.items()))
    print(f"# {args.scenario}: {blurb}", file=sys.stderr)
    print(f"# events: {summary}", file=sys.stderr)
    return 0


def _cmd_metrics(args: argparse.Namespace) -> int:
    entry = resolve_scenario(args.scenario)
    if entry is None:
        return unknown_scenario(args.scenario)
    blurb, build = entry
    algorithm, values, scenario, model = build()
    registry = MetricsRegistry()
    profiler = Profiler()
    set_profiler(profiler)
    try:
        runner = run_rws if model is RoundModel.RWS else run_rs
        runner(
            algorithm,
            values,
            scenario,
            t=1,
            max_rounds=4,
            observer=MetricsObserver(registry),
        )
    finally:
        set_profiler(None)
    profiler.merge_into(registry)
    if args.json:
        print(json.dumps(registry.snapshot(), indent=2, sort_keys=True))
    else:
        print(f"{args.scenario}: {blurb}")
        print(registry.render())
    return 0


def register(sub: argparse._SubParsersAction) -> None:
    """Attach this module's subcommands to the root parser."""
    p_trace = sub.add_parser(
        "trace", help="export a scenario's structured event trace"
    )
    p_trace.add_argument("scenario", help=f"one of {sorted(SCENARIOS)}")
    p_trace.add_argument(
        "--jsonl",
        metavar="PATH",
        help="write the trace to PATH (default: print to stdout)",
    )
    p_trace.add_argument(
        "--wall-ts",
        action="store_true",
        help=(
            "timestamp events with wall-clock time instead of the "
            "deterministic logical counter"
        ),
    )
    p_trace.set_defaults(func=_cmd_trace)

    p_metrics = sub.add_parser(
        "metrics", help="print a scenario's metrics snapshot"
    )
    p_metrics.add_argument(
        "scenario",
        nargs="?",
        default="floodset-rws",
        help=f"one of {sorted(SCENARIOS)} (default: floodset-rws)",
    )
    p_metrics.add_argument(
        "--json",
        action="store_true",
        help=(
            "emit the full snapshot as JSON (histograms keep their "
            "p50/p90/p99 summaries)"
        ),
    )
    p_metrics.set_defaults(func=_cmd_metrics)
