"""Shared helpers for the benchmark suite.

Every benchmark regenerates one experiment of DESIGN.md's index (the
paper has no numeric tables; its "figures" are algorithms and its
results are theorems and latency equalities, so each bench times the
mechanical reproduction and asserts the claim's shape).  Heavy
exhaustive sweeps use ``benchmark.pedantic`` with a single round;
kernel microbenchmarks use the default calibrated timing.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.obs import Profiler, get_profiler, set_profiler

#: Where the per-phase span breakdown lands, next to the timing output.
METRICS_PATH = Path(__file__).resolve().parent / "metrics.jsonl"


def pytest_configure(config):
    """Install a process-wide profiler so the engines' spans
    (``rounds.execute``, ``simulation.execute``, ...) are collected
    alongside pytest-benchmark's own timings."""
    set_profiler(Profiler())


def pytest_sessionfinish(session, exitstatus):
    """Emit ``benchmarks/metrics.jsonl``: one JSON object per span with
    count/total/mean/max/p95 — the per-phase breakdown that the
    benchmark JSON alone cannot show."""
    profiler = get_profiler()
    set_profiler(None)
    if profiler is None or not profiler.spans:
        return
    with open(METRICS_PATH, "w", encoding="utf-8") as fp:
        for name, stats in profiler.snapshot().items():
            fp.write(json.dumps({"span": name, **stats}) + "\n")


@pytest.fixture
def once(benchmark):
    """Run a heavyweight callable exactly once under timing."""

    def runner(func, *args, **kwargs):
        return benchmark.pedantic(
            func, args=args, kwargs=kwargs, rounds=1, iterations=1
        )

    return runner
