"""Atomic broadcast: total order from repeated consensus.

The paper opens by placing agreement protocols — atomic broadcast,
atomic commit — at the heart of fault-tolerant systems.  This example
runs the library's atomic broadcast (a sequence of FloodSet consensus
instances) through both round models and shows that the RS/RWS split
carries all the way up the stack: the plain algorithm loses *total
order* in RWS through exactly the pending-message anomaly that breaks
its consensus core.

Run:  python examples/broadcast_pipeline.py
"""

from repro.analysis import verify_algorithm
from repro.broadcast import (
    AtomicBroadcast,
    AtomicBroadcastWS,
    check_atomic_broadcast_run,
)
from repro.rounds import FailureScenario, RoundModel, run_rs, run_rws
from repro.workloads import crash_mid_broadcast


def sequences(run):
    return {pid: state.delivered for pid, state in run.final_states.items()}


def main() -> None:
    values = (("p0/a", "p0/b"), ("p1/a",), ("p2/a",))

    print("=== failure-free: everyone delivers in the same order ===")
    run = run_rs(
        AtomicBroadcast(), values, FailureScenario.failure_free(3),
        t=1, max_rounds=4,
    )
    for pid, sequence in sorted(sequences(run).items()):
        print(f"  p{pid}: {list(sequence)}")
    print()

    print("=== a crash mid-broadcast: flooding repairs the order ===")
    run = run_rs(
        AtomicBroadcast(), values, crash_mid_broadcast(3, reached=(1,)),
        t=1, max_rounds=4,
    )
    for pid, sequence in sorted(sequences(run).items()):
        print(f"  p{pid}: {list(sequence)}")
    print("  spec violations:", check_atomic_broadcast_run(run) or "none")
    print()

    print("=== the RWS split, measured over the full adversary space ===")
    domain = (("x",), ("y",))
    for algorithm, model in (
        (AtomicBroadcast(), RoundModel.RS),
        (AtomicBroadcastWS(), RoundModel.RWS),
        (AtomicBroadcast(), RoundModel.RWS),
    ):
        report = verify_algorithm(
            algorithm, 3, 1, model,
            checker=check_atomic_broadcast_run, domain=domain, horizon=4,
        )
        print(f"  {algorithm.name}@{model.value}: "
              f"{'SAFE' if report.ok else 'VIOLATED'} "
              f"over {report.runs_checked} runs")
        if not report.ok:
            print(f"    e.g. {report.violations[0]}")


if __name__ == "__main__":
    main()
