"""``ExecutionRequest`` glue: the live engine behind the uniform seam.

The unified runtime describes a cell as an
:class:`~repro.runtime.request.ExecutionRequest`; this module maps that
onto a :class:`~repro.live.cluster.LiveConfig` and runs it, so sweeps,
the fuzzer and the CLI can target ``engine="live"`` exactly like the
logical engines.

Mapping conventions:

* the request's :class:`~repro.failures.pattern.FailurePattern` carries
  crash *times*; the logical engines read them as step indices, the
  live engine reads them as **centiseconds** (units of 10 ms) of wall
  clock from cluster start — small integer patterns land inside a
  typical run either way;
* ``params`` may carry ``net_profile`` (default ``"lan"``),
  ``detector`` (``"p"``/``"ep"``), ``sessions``, ``concurrency`` and
  ``timeout_s``;
* the run's trace is wall-clock nondeterministic, so it is replayed
  into the observer post-hoc in the serialized logical order (see
  :meth:`~repro.live.cluster.LiveRun.replay_into`).
"""

from __future__ import annotations

from typing import Any

from repro.errors import ConfigurationError
from repro.live.cluster import LiveCluster, LiveConfig, LiveRun
from repro.live.detector import DetectorConfig
from repro.live.profiles import profile_by_name
from repro.obs.profile import profiled

#: Seconds of wall clock per unit of a failure pattern's crash time.
SECONDS_PER_CRASH_UNIT = 0.01


def config_from_request(request: Any) -> LiveConfig:
    """Translate a ``live``-engine request into a :class:`LiveConfig`."""
    params = dict(request.params)
    known = {"net_profile", "detector", "sessions", "concurrency", "timeout_s"}
    unknown = sorted(set(params) - known)
    if unknown:
        raise ConfigurationError(
            f"{request.name}: unknown live params {unknown}; "
            f"known: {sorted(known)}"
        )
    crash_at = tuple(
        (pid, crash_time * SECONDS_PER_CRASH_UNIT)
        for pid, crash_time in sorted(request.pattern.crash_times.items())
    )
    return LiveConfig(
        algorithm=request.algorithm,
        values=request.values,
        profile=profile_by_name(params.get("net_profile", "lan")),
        t=request.t,
        detector=DetectorConfig(kind=params.get("detector", "p")),
        crash_at=crash_at,
        max_rounds=request.max_rounds,
        seed=request.seed if request.seed is not None else 0,
        sessions=int(params.get("sessions", 1)),
        concurrency=int(params.get("concurrency", 8)),
        timeout_s=float(params.get("timeout_s", 30.0)),
    )


def run_live_request(request: Any, *, observer: Any = None) -> LiveRun:
    """Execute one live cell and replay its serialized trace."""
    config = config_from_request(request)
    with profiled("live.execute"):
        run = LiveCluster(config).run()
    run.replay_into(observer)
    return run
