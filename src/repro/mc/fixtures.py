"""Biely's SDD hardness constructions as named checker fixtures.

The Theorem 3.1 impossibility quadruple — four two-process runs whose
receiver cannot tell ``r0`` from ``r0'`` (nor ``r1`` from ``r1'``) yet
would have to decide ``0`` in one pair and ``1`` in the other — exists
in the repo as :func:`repro.sdd.impossibility.sdd_quadruple_traces`.
This module registers each SP candidate's quadruple as a *named
counterexample fixture* and classifies it: a fixture is a **genuine
indistinguishability witness** when (a) the receiver's local views
coincide within both pairs (the premise, checked on the recorded
traces with :func:`repro.obs.diff.view_divergence`), and (b) the
candidate actually violates the SDD specification on at least one run
(the conclusion, via :func:`repro.sdd.impossibility.refute_sdd_candidate`).

``repro check --sdd-fixture NAME`` and
``repro mc indistinguishability --fixture NAME`` surface the
classification; ``tests/test_mc_fixtures.py`` pins every registered
candidate to ``genuine=True``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.obs.diff import view_divergence
from repro.sdd import (
    SP_CANDIDATE_FACTORIES,
    refute_sdd_candidate,
    sdd_quadruple_traces,
)
from repro.sdd.spec import RECEIVER

#: The indistinguishable pairs of the quadruple.
FIXTURE_PAIRS = (("r0", "r0'"), ("r1", "r1'"))


def sdd_fixture_names() -> list[str]:
    """The registered fixture names (one per SP candidate receiver)."""
    return sorted(SP_CANDIDATE_FACTORIES)


@dataclass
class SddClassification:
    """The checker's judgement of one SDD quadruple fixture."""

    candidate: str
    #: pair label -> the receiver's views coincide.
    indistinguishable: dict[str, bool] = field(default_factory=dict)
    #: run name -> the receiver's decision in that run.
    decisions: dict[str, object] = field(default_factory=dict)
    #: the candidate violates the SDD spec somewhere in the quadruple.
    refuted: bool = False
    problems: list[str] = field(default_factory=list)

    @property
    def genuine(self) -> bool:
        """True when the fixture carries the full Theorem 3.1 argument."""
        return (
            all(self.indistinguishable.values())
            and len(self.indistinguishable) == len(FIXTURE_PAIRS)
            and self.refuted
            and not self.problems
        )

    def describe(self) -> str:
        lines = [f"sdd fixture {self.candidate!r}:"]
        for pair, ok in sorted(self.indistinguishable.items()):
            lines.append(
                f"  {pair}: "
                + ("receiver views indistinguishable" if ok else "views DIVERGE")
            )
        lines.append(
            "  spec violated somewhere in the quadruple: "
            + ("yes" if self.refuted else "NO")
        )
        lines.extend(f"  {problem}" for problem in self.problems)
        lines.append(
            "  => genuine indistinguishability witness"
            if self.genuine
            else "  => NOT a genuine witness"
        )
        return "\n".join(lines)


def classify_sdd_quadruple(candidate: str) -> SddClassification:
    """Classify one named fixture; see the module docstring."""
    factory = SP_CANDIDATE_FACTORIES.get(candidate)
    if factory is None:
        raise ConfigurationError(
            f"unknown SDD fixture {candidate!r}; choose from "
            f"{sdd_fixture_names()}"
        )
    classification = SddClassification(candidate=candidate)
    traces = sdd_quadruple_traces(factory)
    for left, right in FIXTURE_PAIRS:
        divergence = view_divergence(
            traces[left].events, traces[right].events, RECEIVER
        )
        label = f"{left} ~ {right}"
        classification.indistinguishable[label] = divergence is None
        if divergence is not None:
            classification.problems.append(
                f"{label}: {divergence.describe()}"
            )
    refutation = refute_sdd_candidate(factory, candidate)
    classification.decisions = dict(refutation.decisions)
    classification.refuted = refutation.refuted
    if not refutation.refuted:
        classification.problems.append(
            "candidate satisfied the SDD spec on every run of the "
            "quadruple (Theorem 3.1 says that cannot happen)"
        )
    return classification
