"""SDD quadruple fixtures: every registered candidate is genuine."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.mc.fixtures import classify_sdd_quadruple, sdd_fixture_names


class TestSddFixtures:
    def test_registry_is_populated(self):
        names = sdd_fixture_names()
        assert names
        assert names == sorted(names)

    @pytest.mark.parametrize("name", sdd_fixture_names())
    def test_every_fixture_is_a_genuine_witness(self, name):
        classification = classify_sdd_quadruple(name)
        assert classification.candidate == name
        # Premise: the receiver cannot tell the runs within each pair
        # apart (Theorem 3.1's indistinguishability hypothesis)...
        assert classification.indistinguishable
        assert all(classification.indistinguishable.values())
        # ...conclusion: the candidate still violates SDD somewhere.
        assert classification.refuted
        assert classification.genuine
        assert not classification.problems

    @pytest.mark.parametrize("name", sdd_fixture_names())
    def test_describe_mentions_the_verdict(self, name):
        text = classify_sdd_quadruple(name).describe()
        assert "genuine" in text.lower()
        assert name in text

    def test_unknown_fixture_raises(self):
        with pytest.raises(ConfigurationError):
            classify_sdd_quadruple("not-a-fixture")
