"""Executors for the RS and RWS round models.

One engine runs both models; the difference is whether the scenario may
contain pending messages (validated up front) — precisely the paper's
framing, where RS and RWS algorithms share the ``(states, msgs, trans)``
interface and only the delivery guarantee differs.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from types import MappingProxyType
from typing import Any, Mapping, Sequence

from repro.errors import ConfigurationError, ScenarioError
from repro.obs.causal import round_msg_id
from repro.obs.events import Observer
from repro.obs.profile import profiled
from repro.rounds.algorithm import RoundAlgorithm
from repro.rounds.scenario import FailureScenario, validate_scenario


class RoundModel(enum.Enum):
    """Which round model an execution takes place in."""

    RS = "RS"
    RWS = "RWS"


@dataclass(frozen=True)
class RoundRecord:
    """What happened during one round.

    Attributes:
        index: 1-based round number.
        sent: ``(sender, recipient) -> payload`` for every message that
            was actually sent (reached the network).
        delivered: ``recipient -> {sender: payload}`` for every message
            received this round.  Both mapping levels are read-only
            views; mutating them raises ``TypeError``.
        transitioned: Processes that applied their transition.
        crashed: Processes that crashed during this round.
    """

    index: int
    sent: Mapping[tuple[int, int], Any]
    delivered: Mapping[int, Mapping[int, Any]]
    transitioned: frozenset[int]
    crashed: frozenset[int]


@dataclass
class RoundRun:
    """A finite execution of a round algorithm under one scenario."""

    model: RoundModel
    algorithm_name: str
    n: int
    t: int
    values: tuple[Any, ...]
    scenario: FailureScenario
    rounds: list[RoundRecord] = field(default_factory=list)
    final_states: dict[int, Any] = field(default_factory=dict)
    decisions: dict[int, tuple[int, Any]] = field(default_factory=dict)

    @property
    def num_rounds(self) -> int:
        return len(self.rounds)

    def decision_value(self, pid: int) -> Any:
        entry = self.decisions.get(pid)
        return entry[1] if entry is not None else None

    def decision_round(self, pid: int) -> int | None:
        entry = self.decisions.get(pid)
        return entry[0] if entry is not None else None

    def decided_values(self) -> set[Any]:
        """All distinct decision values (of correct *and* faulty processes)."""
        return {value for _, value in self.decisions.values()}

    def latency(self) -> int | None:
        """The latency degree ``|r|``: rounds until all correct decide.

        Returns ``None`` when some correct process has not decided
        within the executed rounds (an incomplete run).
        """
        latest = 0
        for pid in self.scenario.correct:
            entry = self.decisions.get(pid)
            if entry is None:
                return None
            latest = max(latest, entry[0])
        return latest

    def all_correct_decided(self) -> bool:
        return self.latency() is not None


def execute(
    algorithm: RoundAlgorithm,
    values: Sequence[Any],
    scenario: FailureScenario,
    *,
    t: int,
    model: RoundModel,
    max_rounds: int,
    validate: bool = True,
    run_all_rounds: bool = False,
    observer: Observer | None = None,
) -> RoundRun:
    """Execute ``algorithm`` from ``values`` under ``scenario``.

    Args:
        algorithm: The round algorithm to run.
        values: Initial value of each process; ``len(values)`` fixes ``n``.
        scenario: The adversary's complete decision.
        t: Resilience parameter passed to the algorithm's initial states.
        model: ``RoundModel.RS`` or ``RoundModel.RWS``.
        max_rounds: Upper bound on executed rounds.
        validate: Check the scenario against the model first (on by
            default; exhaustive searches that pre-validate can skip it).
        run_all_rounds: By default the run stops once every process that
            is still alive has decided and no process will send again
            (``algorithm.halted``).  Set True to always execute exactly
            ``max_rounds`` rounds.
        observer: Optional :class:`~repro.obs.Observer` receiving the
            run's structured events (``round_start``, ``msg_sent``,
            ``msg_withheld``, ...).  ``None`` (default) costs nothing.

    Returns:
        The completed :class:`RoundRun`.
    """
    n = len(values)
    if n != scenario.n:
        raise ConfigurationError(
            f"{n} initial values but scenario is over {scenario.n} processes"
        )
    if validate:
        problems = validate_scenario(
            scenario,
            t=t,
            allow_pending=(model is RoundModel.RWS),
            horizon=max_rounds,
        )
        if problems:
            if observer is not None:
                observer.scenario_rejected(problems)
            raise ScenarioError("; ".join(problems))

    states: dict[int, Any] = {
        pid: algorithm.initial_state(pid, n, t, values[pid])
        for pid in range(n)
    }
    run = RoundRun(
        model=model,
        algorithm_name=algorithm.name,
        n=n,
        t=t,
        values=tuple(values),
        scenario=scenario,
    )

    with profiled("rounds.execute"):
        for round_index in range(1, max_rounds + 1):
            record = _execute_round(
                algorithm, states, scenario, round_index, run, observer
            )
            run.rounds.append(record)
            if not run_all_rounds and _quiescent(
                algorithm, states, scenario, round_index
            ):
                break

    if observer is not None:
        final_round = len(run.rounds)
        for pid in range(n):
            if scenario.alive_at_start(
                pid, final_round + 1
            ) and algorithm.halted(pid, states[pid]):
                observer.halt(pid, final_round)

    run.final_states = dict(states)
    return run


def _execute_round(
    algorithm: RoundAlgorithm,
    states: dict[int, Any],
    scenario: FailureScenario,
    round_index: int,
    run: RoundRun,
    observer: Observer | None = None,
) -> RoundRecord:
    n = scenario.n

    if observer is not None:
        observer.round_start(
            round_index,
            [
                pid
                for pid in range(n)
                if scenario.alive_at_start(pid, round_index)
            ],
        )

    # Send phase: every process beginning the round generates messages.
    sent: dict[tuple[int, int], Any] = {}
    for pid in range(n):
        if not scenario.alive_at_start(pid, round_index):
            continue
        outgoing = algorithm.messages(pid, states[pid])
        for recipient, payload in outgoing.items():
            if not 0 <= recipient < n:
                raise ConfigurationError(
                    f"{algorithm.name}: p{pid} addressed unknown process "
                    f"{recipient}"
                )
            if not scenario.sends_reach(pid, recipient, round_index):
                continue  # crashed mid-broadcast before this send
            sent[(pid, recipient)] = payload
            if observer is not None:
                observer.msg_sent(
                    pid,
                    recipient,
                    round_index=round_index,
                    msg_id=round_msg_id(round_index, pid, recipient),
                )

    # Delivery phase: withhold pending messages (RWS only; validated).
    delivered: dict[int, dict[int, Any]] = {pid: {} for pid in range(n)}
    for (sender, recipient), payload in sent.items():
        if scenario.withholds(sender, recipient, round_index):
            if observer is not None:
                observer.msg_withheld(
                    sender,
                    recipient,
                    round_index,
                    msg_id=round_msg_id(round_index, sender, recipient),
                )
            continue
        delivered[recipient][sender] = payload
        if observer is not None:
            observer.msg_delivered(
                sender,
                recipient,
                round_index=round_index,
                msg_id=round_msg_id(round_index, sender, recipient),
            )

    # Transition phase: processes completing the round apply trans.
    transitioned: set[int] = set()
    crashed_now: set[int] = set()
    for pid in range(n):
        crash = scenario.crash_of(pid)
        if crash is not None and crash.round == round_index:
            crashed_now.add(pid)
            if observer is not None:
                observer.crash(
                    pid,
                    round_index=round_index,
                    applies_transition=crash.applies_transition,
                )
        if not scenario.alive_at_end(pid, round_index):
            continue
        if not scenario.alive_at_start(pid, round_index):
            continue
        states[pid] = algorithm.transition(pid, states[pid], delivered[pid])
        transitioned.add(pid)
        decision = algorithm.decision_of(states[pid])
        if decision is not None and pid not in run.decisions:
            run.decisions[pid] = (round_index, decision)
            if observer is not None:
                observer.decide(pid, decision, round_index)

    # The record exposes read-only views of the freshly built delivery
    # maps instead of copying them — nothing mutates them after this
    # point, and MappingProxyType makes that a guarantee for consumers.
    return RoundRecord(
        index=round_index,
        sent=MappingProxyType(sent),
        delivered=MappingProxyType(
            {pid: MappingProxyType(msgs) for pid, msgs in delivered.items()}
        ),
        transitioned=frozenset(transitioned),
        crashed=frozenset(crashed_now),
    )


def _quiescent(
    algorithm: RoundAlgorithm,
    states: dict[int, Any],
    scenario: FailureScenario,
    round_index: int,
) -> bool:
    """True when every process alive after this round is halted."""
    return all(
        algorithm.halted(pid, states[pid])
        for pid in range(scenario.n)
        if scenario.alive_at_start(pid, round_index + 1)
    )


def run_rs(
    algorithm: RoundAlgorithm,
    values: Sequence[Any],
    scenario: FailureScenario,
    *,
    t: int,
    max_rounds: int | None = None,
    run_all_rounds: bool = False,
    observer: Observer | None = None,
) -> RoundRun:
    """Execute in the RS model (round synchrony; no pending messages)."""
    horizon = max_rounds if max_rounds is not None else t + 2
    return execute(
        algorithm,
        values,
        scenario,
        t=t,
        model=RoundModel.RS,
        max_rounds=horizon,
        run_all_rounds=run_all_rounds,
        observer=observer,
    )


def run_rws(
    algorithm: RoundAlgorithm,
    values: Sequence[Any],
    scenario: FailureScenario,
    *,
    t: int,
    max_rounds: int | None = None,
    run_all_rounds: bool = False,
    observer: Observer | None = None,
) -> RoundRun:
    """Execute in the RWS model (weak round synchrony; pending allowed)."""
    horizon = max_rounds if max_rounds is not None else t + 2
    return execute(
        algorithm,
        values,
        scenario,
        t=t,
        model=RoundModel.RWS,
        max_rounds=horizon,
        run_all_rounds=run_all_rounds,
        observer=observer,
    )
