"""The sharded campaign fabric: ``repro serve`` / ``repro work``.

A stdlib-only coordinator/worker service that executes any registered
scenario space (or fuzz stream) across processes and hosts while
keeping every artifact — result store, merged trace, summary — exactly
what a single-process ``repro sweep`` would have produced.  See
:mod:`repro.serve.coordinator` for the lease/merge semantics,
:mod:`repro.serve.api` for the wire protocol, and
:mod:`repro.serve.worker` for the execution loop.
"""

from repro.serve.api import (
    CoordinatorServer,
    CoordinatorUnreachable,
    ServeAPIError,
    ServeClient,
)
from repro.serve.coordinator import Coordinator, SubmitError
from repro.serve.shards import (
    DEFAULT_SHARD_SIZE,
    ShardPlan,
    ShardState,
    plan_shards,
)
from repro.serve.worker import default_worker_id, execute_shard, run_worker

__all__ = [
    "Coordinator",
    "CoordinatorServer",
    "CoordinatorUnreachable",
    "DEFAULT_SHARD_SIZE",
    "ServeAPIError",
    "ServeClient",
    "ShardPlan",
    "ShardState",
    "SubmitError",
    "default_worker_id",
    "execute_shard",
    "plan_shards",
    "run_worker",
]
