"""Background campaign heartbeats: cells/sec, ETA, verdict tallies.

An overnight sweep that prints nothing until it finishes is
indistinguishable from a hung one.  :class:`ProgressReporter` fixes
that with a tiny daemon thread that, every ``interval_s`` seconds,
emits one heartbeat — a human line to a stream (stderr in the CLIs)
and a JSON record to ``progress.jsonl`` in the run directory, which is
what ``repro top`` tails.

The reporter is deliberately decoupled from the runner: workers call
:meth:`advance` (thread-safe, O(1)) and the reporter samples that
state on its own clock.  ``stop()`` always emits one final heartbeat,
so even sub-interval campaigns leave a complete progress record.
"""

from __future__ import annotations

import json
import sys
import threading
from time import monotonic
from typing import Any, IO, Mapping


class ProgressReporter:
    """Heartbeat emitter for one campaign leg.

    Args:
        total: Planned work items (cells, cases, sessions) this leg.
        path: Where to append JSON heartbeats (``progress.jsonl``), or
            ``None`` for stream-only reporting.
        stream: Where to print human heartbeat lines (default stderr);
            ``None`` silences the stream side.
        interval_s: Seconds between heartbeats.
        label: Campaign tag shown in every line (e.g. the space name).
    """

    def __init__(
        self,
        total: int,
        *,
        path: Any = None,
        stream: IO[str] | None = sys.stderr,
        interval_s: float = 2.0,
        label: str = "run",
    ) -> None:
        self.total = total
        self.path = path
        self.stream = stream
        self.interval_s = interval_s
        self.label = label
        self._done = 0
        self._cached = 0
        self._verdicts: dict[str, int] = {}
        self._lock = threading.Lock()
        self._started = monotonic()
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    # -- producer side (the runner) -----------------------------------------

    def advance(
        self, *, cached: bool = False, verdict: str | None = None
    ) -> None:
        """Record one completed work item (any thread)."""
        with self._lock:
            self._done += 1
            if cached:
                self._cached += 1
            if verdict is not None:
                self._verdicts[verdict] = self._verdicts.get(verdict, 0) + 1

    # -- sampling side -------------------------------------------------------

    def heartbeat(self, *, status: str = "running") -> dict[str, Any]:
        """One JSON-ready snapshot of where the campaign stands."""
        with self._lock:
            done, cached = self._done, self._cached
            verdicts = dict(self._verdicts)
        elapsed = max(monotonic() - self._started, 1e-9)
        rate = done / elapsed
        remaining = max(self.total - done, 0)
        eta = remaining / rate if rate > 0 else None
        return {
            "t": "progress",
            "label": self.label,
            "status": status,
            "done": done,
            "total": self.total,
            "cached": cached,
            "elapsed_s": round(elapsed, 3),
            "cells_per_s": round(rate, 3),
            "eta_s": round(eta, 3) if eta is not None else None,
            "verdicts": verdicts,
        }

    def emit(self, *, status: str = "running") -> dict[str, Any]:
        """Emit one heartbeat now (stream + file); returns the record."""
        record = self.heartbeat(status=status)
        if self.path is not None:
            try:
                with open(self.path, "a", encoding="utf-8") as handle:
                    handle.write(json.dumps(record, sort_keys=True) + "\n")
            except OSError:
                pass  # progress must never kill the campaign
        if self.stream is not None:
            eta = record["eta_s"]
            eta_text = f"{eta:.0f}s" if eta is not None else "?"
            verdicts = record["verdicts"]
            verdict_text = (
                " [" + " ".join(f"{k}={v}" for k, v in sorted(verdicts.items())) + "]"
                if verdicts
                else ""
            )
            print(
                f"[{self.label}] {record['done']}/{record['total']} "
                f"({record['cached']} cached) "
                f"{record['cells_per_s']:.1f} cells/s eta {eta_text}"
                f"{verdict_text}",
                file=self.stream,
            )
            try:
                self.stream.flush()
            except (OSError, ValueError):
                pass
        return record

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> "ProgressReporter":
        """Spawn the heartbeat thread (daemon: never blocks exit)."""
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._loop, name="progress-reporter", daemon=True
            )
            self._thread.start()
        return self

    def stop(self, *, status: str = "complete") -> dict[str, Any]:
        """Stop the thread and emit the final heartbeat."""
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=self.interval_s + 1.0)
            self._thread = None
        return self.emit(status=status)

    def __enter__(self) -> "ProgressReporter":
        return self.start()

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> None:
        self.stop(status="complete" if exc_type is None else "interrupted")

    def _loop(self) -> None:
        while not self._stop.wait(self.interval_s):
            self.emit()


def latest_progress(records: list[Mapping[str, Any]]) -> Mapping[str, Any] | None:
    """The most recent heartbeat of a ``progress.jsonl`` record list."""
    for record in reversed(records):
        if record.get("t") == "progress":
            return record
    return None
