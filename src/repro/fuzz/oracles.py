"""Differential oracles: what "the engines agree" means, executably.

Each per-case oracle takes an :class:`ExecutionRequest` plus its
:class:`ExecutionResult` and returns a list of problem strings (empty
when the oracle holds):

* ``trace-check`` — the PR-2 trace oracle (model invariants, detector
  axioms, consensus) over the cell's event trace, via the sweep
  machinery's :func:`~repro.runtime.sweep.check_cell`.
* ``emulation-twin`` — the Section-4 refinement claim.  An emulation
  result carries the *induced* round scenario of its step-level run
  (``result.extra["induced_scenario"]``); that scenario must be
  admissible in the emulated round model, and the round executor run
  under it (the cell's *twin*) must reach exactly the same decisions.
  An emulation whose step run realises adversary behaviour the round
  model forbids — or whose decisions the round engine cannot
  reproduce — fails here.
* ``replay`` — determinism of the rounds engine: re-executing the
  scenario reconstructed from the trace must reproduce the event
  stream byte-for-byte (timestamps included, thanks to the logical
  clock).

The batch parity oracles (``jobs-parity``, ``cache-parity``) live in
:mod:`repro.fuzz.campaign`: they quantify over a *set* of cells, not
one.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.obs.replay import replay_events
from repro.rounds.scenario import FailureScenario, validate_scenario
from repro.runtime.harness import execute_request
from repro.runtime.registry import make_algorithm
from repro.runtime.request import ExecutionRequest, ExecutionResult
from repro.runtime.sweep import check_cell
from repro.serialize import scenario_from_dict


@dataclass
class OracleFailure:
    """One oracle's verdict on one failing case."""

    case: str
    oracle: str
    problems: list[str] = field(default_factory=list)

    def describe(self) -> str:
        lines = [f"{self.case}: {self.oracle} FAILED"]
        lines.extend(f"  {problem}" for problem in self.problems)
        return "\n".join(lines)


def induced_model(engine: str) -> str:
    """The round model an emulation engine realises."""
    return "RS" if engine == "rs_on_ss" else "RWS"


def twin_request(
    request: ExecutionRequest, induced: FailureScenario
) -> ExecutionRequest:
    """The rounds-engine twin of an emulation cell.

    Same algorithm, values and horizon; the adversary is the induced
    round scenario the emulated step run actually realised.  Safe
    algorithms must reach consensus here, so the twin asserts it.
    """
    return ExecutionRequest(
        name=f"{request.name}-twin",
        engine="rounds",
        algorithm=request.algorithm,
        values=request.values,
        t=request.t,
        model=induced_model(request.engine),
        scenario=induced,
        max_rounds=request.max_rounds,
    )


def check_oracle(
    request: ExecutionRequest, result: ExecutionResult
) -> list[str]:
    """The trace oracle over one cell (``trace-check``)."""
    verdict = check_cell(request, result)
    if verdict.ok:
        return []
    problems = list(verdict.model_errors)
    if verdict.expected_disagreement and not verdict.consensus_violations:
        problems.append("expected disagreement did not appear")
    if not verdict.expected_disagreement and verdict.consensus_violations:
        problems.append(
            f"{verdict.consensus_violations} unexpected consensus "
            "violation(s)"
        )
    return problems


def twin_oracle(
    request: ExecutionRequest,
    result: ExecutionResult,
    twin_result: ExecutionResult | None = None,
) -> list[str]:
    """The emulation↔rounds differential (``emulation-twin``).

    ``twin_result`` may be supplied when the campaign already executed
    the twin through the sweep runner; otherwise the twin runs
    in-process here (the shrinker's path).  Only the step-kernel
    emulations carry an induced scenario; the rounds engine has no twin
    and a live run's crash pattern is wall-clock timing, which no
    logical scenario reconstructs, so both are vacuously clean here.
    """
    if request.engine not in ("rs_on_ss", "rws_on_sp"):
        return []
    data = result.extra.get("induced_scenario")
    if data is None:
        return [
            "emulation result carries no induced scenario "
            "(extra['induced_scenario'] missing)"
        ]
    induced = scenario_from_dict(data)
    model = induced_model(request.engine)
    problems = [
        f"induced scenario inadmissible in {model}: {problem}"
        for problem in validate_scenario(
            induced,
            t=request.t,
            allow_pending=(model == "RWS"),
            horizon=request.max_rounds,
        )
    ]
    if problems:
        # An inadmissible scenario has no well-defined twin run.
        return problems
    if twin_result is None:
        twin_result = execute_request(twin_request(request, induced))
    if twin_result.decisions != result.decisions:
        problems.append(
            "decisions diverge from the rounds twin under the induced "
            f"scenario [{induced.describe()}]: emulation="
            f"{_fmt_decisions(result.decisions)} "
            f"rounds={_fmt_decisions(twin_result.decisions)}"
        )
    problems.extend(
        f"twin trace: {problem}"
        for problem in check_oracle(twin_request(request, induced), twin_result)
    )
    return problems


def replay_oracle(
    request: ExecutionRequest, result: ExecutionResult
) -> list[str]:
    """Byte-exact deterministic replay of a rounds cell (``replay``).

    Vector cells run through the same oracle: the replay re-executes
    the reconstructed scenario on the *object* engine, so for them this
    check is the vector↔object differential in one move — a columnar
    trace that the object executor cannot reproduce byte-for-byte
    fails here.
    """
    if request.engine not in ("rounds", "vector"):
        return []
    try:
        # No max_rounds override: the replay must re-run exactly the
        # rounds the trace shows, so early-quiescent originals (the
        # executor stops once every alive process halted) compare
        # against an equally short replay.
        report = replay_events(
            make_algorithm(request.algorithm),
            request.values,
            result.events,
            t=request.t,
            model=request.model,
        )
    except ValueError as exc:
        return [f"replay rejected the trace: {exc}"]
    if report.exact:
        return []
    return [line.strip() for line in report.describe().splitlines()[1:]]


def case_failures(
    request: ExecutionRequest,
    result: ExecutionResult,
    *,
    twin_result: ExecutionResult | None = None,
) -> list[OracleFailure]:
    """Every per-case oracle's verdict on one executed cell."""
    failures = []
    for oracle, problems in (
        ("trace-check", check_oracle(request, result)),
        ("emulation-twin", twin_oracle(request, result, twin_result)),
        ("replay", replay_oracle(request, result)),
    ):
        if problems:
            failures.append(
                OracleFailure(case=request.name, oracle=oracle, problems=problems)
            )
    return failures


def run_case(request: ExecutionRequest) -> list[OracleFailure]:
    """Execute one case in-process and apply every per-case oracle.

    This is the shrinker's predicate: cheap, serial, no cache (an
    active bug injection is folded into cache keys anyway, but the
    shrinker probes many throwaway mutants that would only churn the
    cache directory).
    """
    result = execute_request(request)
    return case_failures(request, result)


def _fmt_decisions(decisions: dict[int, tuple[int, Any]]) -> str:
    if not decisions:
        return "{}"
    return (
        "{"
        + ", ".join(
            f"p{pid}:(r{entry[0]},{entry[1]})"
            for pid, entry in sorted(decisions.items())
        )
        + "}"
    )
