"""``repro check``, ``repro replay`` and ``repro diff``: the trace
oracle, deterministic replay, and divergence diffing."""

from __future__ import annotations

import argparse
import sys

from repro.cli.common import (
    EXPECTED_DISAGREEMENT,
    NON_CONSENSUS_VALUES,
    SCENARIO_ALIASES,
    SCENARIOS,
    load_trace,
    resolve_scenario,
    run_scenario_trace,
    unknown_scenario,
)
from repro.obs import (
    check_events,
    clock_kind,
    diff_traces,
    replay_events,
    view_divergence,
)
from repro.sdd import SP_CANDIDATE_FACTORIES, sdd_quadruple_traces
from repro.sdd.spec import RECEIVER


def _cmd_check(args: argparse.Namespace) -> int:
    if args.sdd_fixture:
        from repro.errors import ConfigurationError
        from repro.mc.fixtures import classify_sdd_quadruple

        try:
            classification = classify_sdd_quadruple(args.sdd_fixture)
        except ConfigurationError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        print(classification.describe())
        return 0 if classification.genuine else 1

    if args.jsonl:
        events = load_trace(args.jsonl)
        if events is None:
            return 2
        report = check_events(events, model=args.model)
        print(report.describe())
        return 0 if report.ok else 1

    if args.scenario is None:
        print(
            "error: provide a scenario name or --jsonl PATH",
            file=sys.stderr,
        )
        return 2
    entry = resolve_scenario(args.scenario)
    if entry is None:
        return unknown_scenario(args.scenario)
    canonical = SCENARIO_ALIASES.get(args.scenario, args.scenario)
    blurb, build = entry
    _, values, _, model, log = run_scenario_trace(build)
    initial_values = None if canonical in NON_CONSENSUS_VALUES else values
    report = check_events(
        log.events, model=model.value, initial_values=initial_values
    )
    print(f"{args.scenario}: {blurb}")
    print(report.describe())
    consensus_errors = [
        v for v in report.errors if v.checker == "consensus"
    ]
    model_errors = [v for v in report.errors if v.checker != "consensus"]
    if model_errors:
        print("FAIL: model invariants violated", file=sys.stderr)
        return 1
    if canonical in EXPECTED_DISAGREEMENT:
        if not consensus_errors:
            print(
                "FAIL: expected the documented disagreement but the trace "
                "is clean",
                file=sys.stderr,
            )
            return 1
        print(
            "ok: model invariants hold; the documented disagreement is "
            f"reproduced ({len(consensus_errors)} consensus violation(s))"
        )
        return 0
    if consensus_errors:
        print("FAIL: consensus violated", file=sys.stderr)
        return 1
    print("ok: all invariants hold")
    return 0


def _cmd_replay(args: argparse.Namespace) -> int:
    if args.repro:
        return _replay_counterexample(args.repro)
    if args.scenario is None or args.trace is None:
        print(
            "error: provide a scenario name and a trace file "
            "(or --repro FILE)",
            file=sys.stderr,
        )
        return 2
    entry = resolve_scenario(args.scenario)
    if entry is None:
        return unknown_scenario(args.scenario)
    blurb, build = entry
    algorithm, values, _, model = build()
    events = load_trace(args.trace)
    if events is None:
        return 2
    try:
        report = replay_events(
            algorithm, values, events, t=1, model=model.value
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(f"{args.scenario}: {blurb}")
    print(report.describe())
    return 0 if report.matches else 1


def _replay_counterexample(path: str) -> int:
    """Re-execute a ``repro fuzz`` counterexample file.

    Exit 0 when the stored failure reproduces (the file is a faithful
    counterexample), 1 when the run is now clean — e.g. the bug was
    fixed, or the recorded injection is no longer active.
    """
    from repro.errors import ConfigurationError
    from repro.fuzz import load_counterexample, run_case
    from repro.inject import INJECT_ENV, active_injection

    try:
        request, document = load_counterexample(path)
    except ConfigurationError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    recorded = document.get("injected_bug")
    if recorded != active_injection():
        print(
            f"note: counterexample was found with {INJECT_ENV}="
            f"{recorded or '<unset>'}, current is "
            f"{active_injection() or '<unset>'}"
        )
    print(
        f"{path}: case {request.name} "
        f"({request.engine}/{request.algorithm}, n={request.n})"
    )
    failures = run_case(request)
    if failures:
        print("counterexample reproduces:")
        for failure in failures:
            print(failure.describe())
        return 0
    print("run is clean: the recorded failure no longer reproduces")
    return 1


def _cmd_diff(args: argparse.Namespace) -> int:
    if args.sdd:
        return _diff_sdd(args.sdd)
    if not args.trace_a or not args.trace_b:
        print(
            "error: provide two trace files (or --sdd CANDIDATE)",
            file=sys.stderr,
        )
        return 2
    a = load_trace(args.trace_a)
    b = load_trace(args.trace_b)
    if a is None or b is None:
        return 2
    kind_a, kind_b = clock_kind(a), clock_kind(b)
    if kind_a != kind_b:
        print(
            f"warning: {args.trace_a} uses a {kind_a} clock but "
            f"{args.trace_b} uses a {kind_b} clock; timestamps are not "
            "comparable across the two traces (structural diffing still is)",
            file=sys.stderr,
        )
    ignore = tuple(
        name.strip() for name in args.ignore.split(",") if name.strip()
    )
    if args.pid is not None:
        divergence = view_divergence(a, b, args.pid)
        if divergence is None:
            print(
                f"p{args.pid}'s local views are indistinguishable "
                "(deliveries, suspicions and decisions match in order)"
            )
            return 0
        print(f"p{args.pid}: " + divergence.describe())
        return 1
    diff = diff_traces(a, b, ignore=ignore)
    print(diff.describe())
    return 0 if diff.identical else 1


def _diff_sdd(candidate: str) -> int:
    """The Theorem 3.1 demo: r0 ~ r0' and r1 ~ r1' for the receiver."""
    factory = SP_CANDIDATE_FACTORIES.get(candidate)
    if factory is None:
        print(
            f"error: unknown SDD candidate {candidate!r}; choose from "
            f"{sorted(SP_CANDIDATE_FACTORIES)}",
            file=sys.stderr,
        )
        return 2
    traces = sdd_quadruple_traces(factory)
    print(
        f"Theorem 3.1 quadruple for candidate {candidate!r} "
        "(receiver's local views):"
    )
    all_indistinguishable = True
    for left, right in (("r0", "r0'"), ("r1", "r1'")):
        divergence = view_divergence(
            traces[left].events, traces[right].events, RECEIVER
        )
        if divergence is None:
            print(f"  {left} ~ {right}: indistinguishable to the receiver")
        else:
            all_indistinguishable = False
            print(f"  {left} vs {right}: " + divergence.describe())
    if all_indistinguishable:
        print(
            "  => the receiver must decide identically within each pair; "
            "validity forces 0 in r0' and 1 in r1' — contradiction"
        )
    return 0 if all_indistinguishable else 1


def register(sub: argparse._SubParsersAction) -> None:
    """Attach this module's subcommands to the root parser."""
    p_check = sub.add_parser(
        "check", help="run the trace oracle over a scenario or JSONL file"
    )
    p_check.add_argument(
        "scenario",
        nargs="?",
        help=f"one of {sorted(SCENARIOS)} (or use --jsonl)",
    )
    p_check.add_argument(
        "--jsonl",
        metavar="PATH",
        help="check an exported trace file instead of a live scenario",
    )
    p_check.add_argument(
        "--model",
        choices=["RS", "RWS"],
        help=(
            "synchrony checker for --jsonl traces (default: weak round "
            "synchrony, sound for both models)"
        ),
    )
    p_check.add_argument(
        "--sdd-fixture",
        metavar="NAME",
        help=(
            "classify a named SDD quadruple fixture (one of "
            f"{sorted(SP_CANDIDATE_FACTORIES)}) as a Theorem 3.1 "
            "indistinguishability witness"
        ),
    )
    p_check.set_defaults(func=_cmd_check)

    p_replay = sub.add_parser(
        "replay",
        help="re-execute an exported trace and assert event equality",
    )
    p_replay.add_argument(
        "scenario", nargs="?", help=f"one of {sorted(SCENARIOS)}"
    )
    p_replay.add_argument(
        "trace",
        nargs="?",
        metavar="TRACE.jsonl",
        help="trace exported by `repro trace`",
    )
    p_replay.add_argument(
        "--repro",
        metavar="FILE",
        help=(
            "re-execute a counterexample emitted by `repro fuzz --out` "
            "and report whether the failure reproduces"
        ),
    )
    p_replay.set_defaults(func=_cmd_replay)

    p_diff = sub.add_parser(
        "diff", help="divergence diff of two traces (Theorem 3.1 lens)"
    )
    p_diff.add_argument(
        "trace_a", nargs="?", metavar="A.jsonl", help="first trace"
    )
    p_diff.add_argument(
        "trace_b", nargs="?", metavar="B.jsonl", help="second trace"
    )
    p_diff.add_argument(
        "--pid",
        type=int,
        help="compare only this process's local view (indistinguishability)",
    )
    p_diff.add_argument(
        "--ignore",
        default="ts",
        help="comma-separated event fields to ignore (default: ts)",
    )
    p_diff.add_argument(
        "--sdd",
        metavar="CANDIDATE",
        help=(
            "run the Theorem 3.1 quadruple for an SP candidate and diff "
            f"the receiver's views; one of {sorted(SP_CANDIDATE_FACTORIES)}"
        ),
    )
    p_diff.set_defaults(func=_cmd_diff)
