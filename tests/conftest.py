"""Shared fixtures for the test suite."""

from __future__ import annotations

import random

import pytest

from repro.consensus import (
    A1,
    COptFloodSet,
    COptFloodSetWS,
    FloodSet,
    FloodSetWS,
    FOptFloodSet,
    FOptFloodSetWS,
)


@pytest.fixture
def rng() -> random.Random:
    """A deterministic RNG; tests needing different streams reseed."""
    return random.Random(0xC0FFEE)


@pytest.fixture(
    params=[
        FloodSet,
        FloodSetWS,
        COptFloodSet,
        COptFloodSetWS,
        FOptFloodSet,
        FOptFloodSetWS,
    ],
    ids=lambda cls: cls.__name__,
)
def floodset_family(request):
    """Every FloodSet-derived algorithm (excludes A1, which needs t=1)."""
    return request.param()


@pytest.fixture(
    params=[FloodSet, FloodSetWS, COptFloodSet, COptFloodSetWS,
            FOptFloodSet, FOptFloodSetWS, A1],
    ids=lambda cls: cls.__name__,
)
def any_algorithm(request):
    """Every paper algorithm (all support t=1)."""
    return request.param()
