"""Tests for the trace oracle: the streaming invariant checkers."""

from __future__ import annotations

import itertools

import pytest

from repro.consensus import A1, FloodSet, FOptFloodSet
from repro.obs import (
    ConsensusChecker,
    DetectorAccuracyChecker,
    DetectorCompletenessChecker,
    Event,
    EventLog,
    OrderingChecker,
    RoundSynchronyChecker,
    WeakRoundSynchronyChecker,
    check_events,
    default_checkers,
    events_from_jsonl_lines,
    logical_clock,
    run_checkers,
)
from repro.rounds import RoundModel, run_rs, run_rws
from repro.workloads import (
    adversarial_split,
    floodset_rws_violation,
    initially_dead_t,
)


def _ev(kind: str, **fields) -> Event:
    """Shorthand event constructor with an auto timestamp."""
    data = {"kind": kind, "ts": fields.pop("ts", 0.0), **fields}
    return Event.from_dict(data)


def _trace(*events: Event) -> list[Event]:
    """Stamp events with increasing timestamps."""
    counter = itertools.count(1)
    return [
        Event.from_dict({**e.to_dict(), "ts": float(next(counter))})
        for e in events
    ]


class TestDetectorCheckers:
    def test_premature_suspicion_flagged_with_index(self):
        events = _trace(
            _ev("round_start", round=1, value=[0, 1, 2]),
            _ev("suspect", pid=1, peer=2),
            _ev("crash", pid=2, round=1),
        )
        report = run_checkers(events, [DetectorAccuracyChecker()])
        assert not report.ok
        (violation,) = report.errors
        assert violation.index == 1
        assert violation.checker == "detector.accuracy"
        assert "before any crash" in violation.message

    def test_suspicion_after_crash_is_accurate(self):
        events = _trace(
            _ev("crash", pid=2, round=1),
            _ev("suspect", pid=1, peer=2),
        )
        assert run_checkers(events, [DetectorAccuracyChecker()]).ok

    def test_completeness_miss_is_a_warning(self):
        events = _trace(
            _ev("crash", pid=2, time=3),
            _ev("suspect", pid=0, peer=2),
            _ev("decide", pid=0, value=1),
            _ev("decide", pid=1, value=1),
        )
        report = run_checkers(events, [DetectorCompletenessChecker()])
        assert report.ok  # warnings only
        (warning,) = report.warnings
        assert "p1 never suspects" in warning.message

    def test_completeness_vacuous_without_detector(self):
        events = _trace(
            _ev("crash", pid=0, round=1),
            _ev("decide", pid=1, value=1),
        )
        report = run_checkers(events, [DetectorCompletenessChecker()])
        assert not report.violations


class TestSynchronyCheckers:
    def test_rs_forbids_withholding_from_live_sender(self):
        events = _trace(
            _ev("round_start", round=1, value=[0, 1, 2]),
            _ev("msg_sent", peer=0, pid=1, round=1),
            _ev("msg_withheld", peer=0, pid=1, round=1),
        )
        report = run_checkers(events, [RoundSynchronyChecker()])
        (violation,) = report.errors
        assert violation.index == 2
        assert "round synchrony violated" in violation.message

    def test_rs_allows_withholding_from_previously_crashed_sender(self):
        events = _trace(
            _ev("crash", pid=0, round=1),
            _ev("msg_withheld", peer=0, pid=1, round=2),
        )
        assert run_checkers(events, [RoundSynchronyChecker()]).ok

    def test_rws_requires_crash_by_next_round(self):
        events = _trace(
            _ev("msg_withheld", peer=0, pid=1, round=1),
            _ev("crash", pid=0, round=3),  # too late: bound is round 2
        )
        report = run_checkers(events, [WeakRoundSynchronyChecker()])
        (violation,) = report.errors
        assert violation.index == 0
        assert "weak round synchrony violated" in violation.message

    def test_rws_satisfied_by_crash_within_bound(self):
        events = _trace(
            _ev("msg_withheld", peer=0, pid=1, round=1),
            _ev("crash", pid=0, round=2),
        )
        assert run_checkers(events, [WeakRoundSynchronyChecker()]).ok

    def test_rws_exempts_recipients_that_died_in_the_round(self):
        events = _trace(
            _ev("msg_withheld", peer=0, pid=1, round=1),
            _ev("crash", pid=1, round=1),  # the *recipient* died
        )
        assert run_checkers(events, [WeakRoundSynchronyChecker()]).ok

    def test_rws_unsettled_obligation_is_a_warning(self):
        """A run that quiesces before round k+2 cannot settle the
        crash-by-round-k+1 obligation — warning, not error."""
        events = _trace(
            _ev("round_start", round=1, value=[0, 1, 2]),
            _ev("msg_withheld", peer=0, pid=1, round=1),
            _ev("decide", pid=1, round=1, value=0),
            _ev("halt", pid=1, round=1),
        )
        report = run_checkers(events, [WeakRoundSynchronyChecker()])
        assert report.ok
        (warning,) = report.warnings
        assert "unsettled" in warning.message

    def test_rws_missing_crash_is_an_error_once_round_over(self):
        """Round k+1 provably over (a round-k+2 event exists) and the
        sender never crashed: a hard violation."""
        events = _trace(
            _ev("round_start", round=1, value=[0, 1, 2]),
            _ev("msg_withheld", peer=0, pid=1, round=1),
            _ev("round_start", round=2, value=[0, 1, 2]),
            _ev("round_start", round=3, value=[0, 1, 2]),
        )
        report = run_checkers(events, [WeakRoundSynchronyChecker()])
        (violation,) = report.errors
        assert violation.index == 1

    def test_rws_discharged_by_step_model_crash(self):
        events = _trace(
            _ev("crash", pid=0, time=17),
            _ev("msg_withheld", peer=0, pid=1, round=1),
        )
        assert run_checkers(events, [WeakRoundSynchronyChecker()]).ok


class TestConsensusChecker:
    def test_agreement_violation_carries_both_parties(self):
        events = _trace(
            _ev("decide", pid=1, round=2, value=0),
            _ev("decide", pid=2, round=2, value=1),
        )
        report = run_checkers(events, [ConsensusChecker()])
        messages = [v.message for v in report.errors]
        assert any("agreement violated" in m for m in messages)
        assert any("uniform agreement" in m for m in messages)

    def test_uniform_agreement_sees_crashed_deciders(self):
        # the Section 5.3 move: decide, then crash
        events = _trace(
            _ev("decide", pid=0, round=1, value=0),
            _ev("crash", pid=0, round=2),
            _ev("decide", pid=1, round=2, value=1),
        )
        report = run_checkers(events, [ConsensusChecker()])
        assert len(report.errors) == 1  # uniform only: p0 crashed
        assert "uniform agreement" in report.errors[0].message

    def test_validity_needs_initial_values(self):
        events = _trace(_ev("decide", pid=0, round=1, value=7))
        assert run_checkers(events, [ConsensusChecker()]).ok
        report = run_checkers(events, [ConsensusChecker([0, 1, 1])])
        (violation,) = report.errors
        assert "validity violated" in violation.message

    def test_double_decide_flagged(self):
        events = _trace(
            _ev("decide", pid=0, round=1, value=1),
            _ev("decide", pid=0, round=2, value=1),
        )
        report = run_checkers(events, [ConsensusChecker()])
        assert any("decides twice" in v.message for v in report.errors)


class TestOrderingChecker:
    def test_round_gap_flagged(self):
        events = _trace(
            _ev("round_start", round=1, value=[0, 1]),
            _ev("round_start", round=3, value=[0, 1]),
        )
        report = run_checkers(events, [OrderingChecker()])
        assert any("increase by exactly 1" in v.message for v in report.errors)

    def test_first_round_must_be_one(self):
        events = _trace(_ev("round_start", round=2, value=[0, 1]))
        report = run_checkers(events, [OrderingChecker()])
        assert any("expected 1" in v.message for v in report.errors)

    def test_time_must_be_monotone(self):
        events = _trace(
            _ev("msg_delivered", pid=0, peer=1, time=5),
            _ev("msg_delivered", pid=0, peer=1, time=3),
        )
        report = run_checkers(events, [OrderingChecker()])
        assert any("monotone" in v.message for v in report.errors)

    def test_no_activity_after_halt(self):
        events = _trace(
            _ev("round_start", round=1, value=[0, 1]),
            _ev("halt", pid=0, round=1),
            _ev("decide", pid=0, round=1, value=1),
        )
        report = run_checkers(events, [OrderingChecker()])
        assert any("after its halt" in v.message for v in report.errors)

    def test_alive_list_must_match_crash_history(self):
        events = _trace(
            _ev("round_start", round=1, value=[0, 1, 2]),
            _ev("crash", pid=0, round=1),
            _ev("round_start", round=2, value=[0, 1, 2]),  # p0 still listed
        )
        report = run_checkers(events, [OrderingChecker()])
        assert any("crash history" in v.message for v in report.errors)

    def test_sender_activity_after_round_crash(self):
        events = _trace(
            _ev("crash", pid=0, round=1),
            _ev("msg_sent", peer=0, pid=1, round=2),
        )
        report = run_checkers(events, [OrderingChecker()])
        assert any(
            "message from p0" in v.message and "crash in round 1" in v.message
            for v in report.errors
        )

    def test_double_crash_flagged(self):
        events = _trace(
            _ev("crash", pid=0, round=1),
            _ev("crash", pid=0, round=2),
        )
        report = run_checkers(events, [OrderingChecker()])
        assert any("crashes twice" in v.message for v in report.errors)


class TestDefaultSuite:
    def test_model_selects_synchrony_checker(self):
        names_rs = [c.name for c in default_checkers(model="RS")]
        names_rws = [c.name for c in default_checkers(model=RoundModel.RWS)]
        names_none = [c.name for c in default_checkers()]
        assert "synchrony.rs" in names_rs
        assert "synchrony.rws" in names_rws
        assert "synchrony.rws" in names_none  # sound for both models

    def test_unknown_model_rejected(self):
        with pytest.raises(ValueError):
            default_checkers(model="RSX")

    def test_clean_rs_run_passes_everything(self):
        log = EventLog(clock=logical_clock())
        run_rs(
            FOptFloodSet(),
            adversarial_split(3),
            initially_dead_t(3, 1),
            t=1,
            max_rounds=4,
            observer=log,
        )
        report = check_events(
            log.events, model="RS", initial_values=adversarial_split(3)
        )
        assert report.ok
        assert not report.warnings

    def test_documented_rws_violation_is_consensus_only(self):
        log = EventLog(clock=logical_clock())
        run_rws(
            FloodSet(),
            adversarial_split(3),
            floodset_rws_violation(3),
            t=1,
            max_rounds=4,
            observer=log,
        )
        report = check_events(
            log.events, model="RWS", initial_values=adversarial_split(3)
        )
        assert not report.ok
        assert {v.checker for v in report.errors} == {"consensus"}
        # violations point at the decide events
        for violation in report.errors:
            assert log.events[violation.index].kind == "decide"


class TestSeededViolationRoundTrip:
    """The acceptance path: export, hand-edit, re-check via JSONL."""

    def test_seeded_premature_suspect_flagged_at_its_index(self):
        log = EventLog(clock=logical_clock())
        run_rs(
            FOptFloodSet(),
            adversarial_split(3),
            initially_dead_t(3, 1),
            t=1,
            max_rounds=4,
            observer=log,
        )
        lines = list(log.jsonl_lines())
        seeded = (
            lines[:3]
            + ['{"kind": "suspect", "pid": 1, "peer": 0, "round": 1, "ts": 3.5}']
            + lines[3:]
        )
        events = events_from_jsonl_lines(seeded)
        report = check_events(events, model="RS")
        assert not report.ok
        accuracy = report.by_checker("detector.accuracy")
        assert [v.index for v in accuracy] == [3]

    def test_clean_export_reparses_clean(self):
        log = EventLog(clock=logical_clock())
        run_rws(
            A1(),
            adversarial_split(3),
            floodset_rws_violation(3),
            t=1,
            max_rounds=4,
            observer=log,
        )
        events = events_from_jsonl_lines(log.jsonl_lines())
        report = check_events(events, model="RWS")
        model_errors = [
            v for v in report.errors if v.checker != "consensus"
        ]
        assert model_errors == []
