"""Trace diffing: divergence points and indistinguishability of runs.

The paper's central proof device (Theorem 3.1) is a *pair of runs a
process cannot tell apart*: the receiver makes the same observations in
``r0`` and ``r0'``, hence must decide the same value.  Over event
traces this becomes executable: project each trace onto what one
process observes — its deliveries, its detector output, its own
decisions — and compare the projections, ignoring global timing (a
process has no access to global time, only to the order of its own
observations).

Two granularities:

* :func:`first_divergence` / :func:`diff_traces` — full-trace
  comparison with per-process lanes, reporting the first diverging
  event and its index in *both* traces.
* :func:`local_view` / :func:`indistinguishable` — the projection a
  single process sees, the formal object indistinguishability
  arguments quantify over.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Sequence

from repro.obs.events import Event

#: What a process can actually observe about a run: messages delivered
#: to it, its detector module's reports, and its own decisions.  Sends
#: are network facts, ``crash``/``halt`` are adversary/engine facts, and
#: ``round_start`` is global — none of them are local observations.
OBSERVATION_KINDS = frozenset({"msg_delivered", "suspect", "decide"})

#: Fields ignored by default when comparing whole traces.
DEFAULT_IGNORE = ("ts",)

#: Fields ignored when comparing local views: a process sees neither
#: wall-clock time nor the global step counter.
VIEW_IGNORE = ("ts", "time")


@dataclass(frozen=True)
class Divergence:
    """The first point at which two (sub)sequences of events differ.

    Attributes:
        position: 0-based position within the compared sequences.
        index_a / index_b: Index of the diverging event in the full
            original traces (``None`` when that trace's sequence ended).
        event_a / event_b: The diverging events themselves.
    """

    position: int
    index_a: int | None
    index_b: int | None
    event_a: Event | None
    event_b: Event | None

    def describe(self) -> str:
        def side(index: int | None, event: Event | None) -> str:
            if event is None:
                return "<ended>"
            return f"event {index}: {event.to_json()}"

        return (
            f"diverge at position {self.position}:\n"
            f"  a: {side(self.index_a, self.event_a)}\n"
            f"  b: {side(self.index_b, self.event_b)}"
        )


def _projection(event: Event, ignore: Sequence[str]) -> dict[str, Any]:
    data = event.to_dict()
    for name in ignore:
        data.pop(name, None)
    return data


def first_divergence(
    a: Sequence[Event],
    b: Sequence[Event],
    *,
    ignore: Sequence[str] = DEFAULT_IGNORE,
    indices_a: Sequence[int] | None = None,
    indices_b: Sequence[int] | None = None,
) -> Divergence | None:
    """The first position where the two sequences differ, or ``None``.

    ``indices_a``/``indices_b`` map sequence positions back to indices
    in the full traces (used by :func:`diff_traces` for per-process
    lanes); by default positions index the sequences themselves.
    """
    if indices_a is None:
        indices_a = range(len(a))
    if indices_b is None:
        indices_b = range(len(b))
    for position in range(max(len(a), len(b))):
        event_a = a[position] if position < len(a) else None
        event_b = b[position] if position < len(b) else None
        if (
            event_a is not None
            and event_b is not None
            and _projection(event_a, ignore) == _projection(event_b, ignore)
        ):
            continue
        return Divergence(
            position=position,
            index_a=indices_a[position] if event_a is not None else None,
            index_b=indices_b[position] if event_b is not None else None,
            event_a=event_a,
            event_b=event_b,
        )
    return None


@dataclass
class TraceDiff:
    """Full-trace comparison with per-process lanes."""

    divergence: Divergence | None
    per_process: dict[int, Divergence | None] = field(default_factory=dict)

    @property
    def identical(self) -> bool:
        return self.divergence is None

    def diverging_processes(self) -> list[int]:
        return sorted(
            pid for pid, div in self.per_process.items() if div is not None
        )

    def describe(self) -> str:
        if self.identical:
            return "traces identical"
        lines = [self.divergence.describe()]
        diverging = self.diverging_processes()
        if diverging:
            lines.append(
                "per-process lanes diverging: "
                + ", ".join(f"p{pid}" for pid in diverging)
            )
            for pid in diverging:
                lane = self.per_process[pid]
                lines.append(f"p{pid}: " + lane.describe())
        else:
            lines.append("no single-process lane diverges (global order only)")
        return "\n".join(lines)


def diff_traces(
    a: Sequence[Event],
    b: Sequence[Event],
    *,
    ignore: Sequence[str] = DEFAULT_IGNORE,
) -> TraceDiff:
    """Compare two traces globally and per-process.

    The global comparison finds the first event (in stream order) that
    differs modulo ``ignore``.  Each per-process lane compares only the
    events naming that pid in their ``pid`` field, so a divergence can
    be attributed: two runs that differ globally but agree on every
    lane differ only in interleaving.
    """
    global_div = first_divergence(a, b, ignore=ignore)
    pids = sorted(
        {e.pid for e in a if e.pid is not None}
        | {e.pid for e in b if e.pid is not None}
    )
    per_process: dict[int, Divergence | None] = {}
    for pid in pids:
        lane_a = [(i, e) for i, e in enumerate(a) if e.pid == pid]
        lane_b = [(i, e) for i, e in enumerate(b) if e.pid == pid]
        per_process[pid] = first_divergence(
            [e for _, e in lane_a],
            [e for _, e in lane_b],
            ignore=ignore,
            indices_a=[i for i, _ in lane_a],
            indices_b=[i for i, _ in lane_b],
        )
    return TraceDiff(divergence=global_div, per_process=per_process)


def local_view(
    events: Sequence[Event],
    pid: int,
    *,
    kinds: frozenset[str] = OBSERVATION_KINDS,
) -> list[tuple[int, Event]]:
    """``(index, event)`` pairs process ``pid`` observes, in order."""
    return [
        (index, event)
        for index, event in enumerate(events)
        if event.pid == pid and event.kind in kinds
    ]


def view_divergence(
    a: Sequence[Event],
    b: Sequence[Event],
    pid: int,
    *,
    ignore: Sequence[str] = VIEW_IGNORE,
) -> Divergence | None:
    """First divergence in ``pid``'s local observation sequences."""
    lane_a = local_view(a, pid)
    lane_b = local_view(b, pid)
    return first_divergence(
        [e for _, e in lane_a],
        [e for _, e in lane_b],
        ignore=ignore,
        indices_a=[i for i, _ in lane_a],
        indices_b=[i for i, _ in lane_b],
    )


def indistinguishable(
    a: Sequence[Event], b: Sequence[Event], pid: int
) -> bool:
    """True iff ``pid`` observes the same sequence in both traces.

    The executable form of the paper's indistinguishability relation:
    deliveries, suspicions and own decisions match in content and
    order, with global step times ignored (a process cannot read the
    global clock — only its local observation order).
    """
    return view_divergence(a, b, pid) is None
