"""Tests for the RWS-on-SP emulation and Lemma 4.1."""

from __future__ import annotations

import random

import pytest

from repro.consensus import FloodSet, FloodSetWS
from repro.emulation import (
    check_emulated_weak_round_synchrony,
    count_pending_messages,
    emulate_rws_on_sp,
)
from repro.failures import FailurePattern


def emulate(seed, algorithm=None, crash_time=None, **kwargs):
    rng = random.Random(seed)
    crashes = {}
    if crash_time is not None:
        crashes[0] = crash_time
    pattern = FailurePattern.with_crashes(3, crashes)
    defaults = dict(
        t=1,
        num_rounds=2,
        rng=rng,
        max_detection_delay=2,
        delivery_prob=0.15,
        max_age=80,
    )
    defaults.update(kwargs)
    return emulate_rws_on_sp(
        algorithm or FloodSetWS(), [0, 1, 1], pattern, **defaults
    )


class TestLemma41:
    @pytest.mark.parametrize("seed", range(12))
    def test_weak_round_synchrony_always_holds(self, seed):
        trace = emulate(seed, crash_time=3 + seed)
        assert check_emulated_weak_round_synchrony(trace) == []

    def test_pending_messages_do_occur(self):
        total = sum(
            count_pending_messages(emulate(seed, crash_time=3 + seed))
            for seed in range(20)
        )
        assert total > 0, "Lemma 4.1 would be checked vacuously"

    def test_no_pending_without_crashes(self):
        """Perfect accuracy means live processes are never suspected, so
        every message is awaited: pending needs a crash."""
        for seed in range(5):
            trace = emulate(seed)  # crash-free
            assert count_pending_messages(trace) == 0


class TestEmulatedExecution:
    @pytest.mark.parametrize("seed", range(6))
    def test_floodsetws_agreement_through_emulation(self, seed):
        trace = emulate(seed, crash_time=2 + seed)
        decided = {
            trace.decisions[pid][1]
            for pid in (1, 2)
            if trace.decisions[pid] is not None
        }
        assert len(decided) == 1

    def test_crash_free_decides_min(self):
        trace = emulate(3)
        assert all(trace.decisions[pid] == (2, 0) for pid in range(3))

    def test_correct_processes_complete_all_rounds(self):
        trace = emulate(1, crash_time=4)
        assert trace.completed_rounds[1] == 2
        assert trace.completed_rounds[2] == 2

    def test_crashed_process_lags(self):
        trace = emulate(2, crash_time=1)
        assert trace.completed_rounds[0] < 2

    def test_plain_floodset_disagrees_on_the_real_sp_substrate(self):
        """The RWS anomaly is not an artefact of the round abstraction:
        a hand-scheduled SP execution of plain FloodSet splits correct
        processes.  The schedule realises the paper's scenario at the
        step level: p0's round-1 broadcasts are delayed past the
        suspicion, p0 crashes between its two round-2 sends, and the
        one round-2 message it did send smuggles value 0 to p1 only."""
        from repro.emulation.rws_on_sp import RoundOnSPAutomaton
        from repro.failures import FailurePattern
        from repro.failures.history import FunctionHistory
        from repro.simulation import ScriptedScheduler, StepExecutor

        automaton = RoundOnSPAutomaton(FloodSet(), 3, 1, [0, 1, 1], 2)
        pattern = FailurePattern.with_crashes(3, {0: 7})
        history = FunctionHistory(
            lambda pid, t: {0} if t >= 7 else set()
        )

        def not_from_p0(buffered):
            return [m.uid for m in buffered if m.sender != 0]

        def everything(buffered):
            return [m.uid for m in buffered]

        script = [
            (1, []), (1, []),          # p1 sends its round-1 messages
            (2, []), (2, []),          # p2 sends its round-1 messages
            (0, "all"), (0, "all"),    # p0 sends round 1, completes it
            (0, "all"),                # p0 sends round-2 W={0,1} to p1...
            # ... and crashes at time 7, before sending to p2.
            (1, not_from_p0),          # p1 completes round 1 (p0 suspected)
            (1, []), (1, []),          # p1 sends round-2 messages
            (2, not_from_p0),          # p2 completes round 1 (p0 suspected)
            (2, []), (2, []),          # p2 sends round-2 messages
            (1, everything),           # p1 gets p0's round-2 W -> decides 0
            (2, not_from_p0),          # p2 never hears p0 -> decides 1
        ]
        executor = StepExecutor(
            automaton, 3, pattern, ScriptedScheduler(script), history=history
        )
        run = executor.execute(len(script))
        decisions = {
            pid: FloodSet().decision_of(run.final_states[pid].algo_state)
            for pid in (1, 2)
        }
        assert decisions == {1: 0, 2: 1}
