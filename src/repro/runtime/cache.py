"""On-disk result cache for sweep cells.

One JSON file per executed cell, named by the request's stable
:meth:`~repro.runtime.request.ExecutionRequest.cache_key`.  Repeated
sweeps (CI re-runs, ``make bench-report``, iterating on an analysis)
skip every cell whose request hash they have seen before — the second
run of an unchanged sweep executes zero scenarios.

Corrupt or unreadable entries are treated as misses, never as errors: a
cache must only ever make things faster.  A corrupt entry is also
*evicted* on read — leaving it on disk would let ``__len__`` (and the
cache directory's size) count entries that can never serve a hit.

Every cache keeps a :class:`CacheStats` tally (hits, misses, stores,
corrupt evictions).  Silent eviction was the right behavior for the
cache itself, but it is exactly the kind of fact a campaign summary
must surface: a nonzero ``corrupt_evictions`` on a healthy disk means
a writer was killed mid-``put`` or something else is scribbling over
the cache directory — so the counts flow into ``summary.json`` and the
``repro sweep`` output.
"""

from __future__ import annotations

import json
import os
import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import Any

from repro.runtime.request import ExecutionRequest, ExecutionResult


@dataclass
class CacheStats:
    """Telemetry of one cache's lifetime (typically one campaign leg)."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    corrupt_evictions: int = 0

    def as_dict(self) -> dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "corrupt_evictions": self.corrupt_evictions,
        }


class ResultCache:
    """A directory of ``<cache_key>.json`` execution results."""

    def __init__(self, directory: str | Path) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.stats = CacheStats()

    def _path(self, key: str) -> Path:
        return self.directory / f"{key}.json"

    def get(self, request: ExecutionRequest) -> ExecutionResult | None:
        """The cached result for ``request``, or ``None`` on a miss.

        A present-but-unreadable entry (truncated write, foreign junk,
        stale schema) is deleted before reporting the miss: the slot is
        about to be re-written anyway, and keeping the corpse would make
        ``len(cache)`` overcount.  The eviction is tallied in
        :attr:`stats` so campaign summaries can report it.
        """
        path = self._path(request.cache_key())
        try:
            with open(path, "r", encoding="utf-8") as handle:
                data = json.load(handle)
            result = ExecutionResult.from_dict(data)
        except OSError:
            self.stats.misses += 1
            return None
        except (ValueError, KeyError, TypeError):
            self.stats.corrupt_evictions += 1
            self.stats.misses += 1
            try:
                os.unlink(path)
            except OSError:
                pass
            return None
        self.stats.hits += 1
        result.cached = True
        return result

    def put(self, request: ExecutionRequest, result: ExecutionResult) -> None:
        """Store ``result`` under ``request``'s key (atomic replace)."""
        path = self._path(request.cache_key())
        payload = json.dumps(result.to_dict(), sort_keys=True, default=repr)
        fd, tmp_name = tempfile.mkstemp(
            dir=self.directory, prefix=".tmp-", suffix=".json"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                handle.write(payload)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        self.stats.stores += 1

    def completed_keys(self) -> set[str]:
        """The request keys with a (well-named) entry on disk."""
        return {
            entry.stem
            for entry in self.directory.glob("*.json")
            if not entry.name.startswith(".tmp-")
        }

    def __len__(self) -> int:
        return sum(
            1
            for entry in self.directory.glob("*.json")
            if not entry.name.startswith(".tmp-")
        )
