"""The efficiency study: reproduce Section 5's latency comparison.

Computes, by exhaustive exploration of the bounded adversary space,
every latency measure the paper defines — lat(A), Lat(A), Lat(A, f) and
Λ(A) — for every algorithm of Figures 1–4 in both round models, and
prints the paper's headline conclusions.

Run:  python examples/latency_study.py
"""

from repro import (
    A1,
    COptFloodSet,
    COptFloodSetWS,
    FloodSet,
    FloodSetWS,
    FOptFloodSet,
    FOptFloodSetWS,
    RoundModel,
    latency_profile,
    verify_algorithm,
)
from repro.analysis import format_table, latency_summary_table


def main() -> None:
    algorithms = [
        FloodSet(),
        FloodSetWS(),
        COptFloodSet(),
        COptFloodSetWS(),
        FOptFloodSet(),
        FOptFloodSetWS(),
        A1(),
    ]

    print("=== headline table (n=3, t=1) ===")
    rows = latency_summary_table(algorithms, n=3, t=1)
    print(format_table(rows))
    print()

    print("=== the paper's claims, one by one ===")

    c_opt = latency_profile(COptFloodSetWS(), 3, 1, RoundModel.RWS)
    print(
        f"lat(C_OptFloodSetWS) = {c_opt.lat}"
        "  (unanimous configurations decide at round 1)"
    )

    f_opt = latency_profile(FOptFloodSet(), 3, 1, RoundModel.RS)
    print(
        f"Lat(F_OptFloodSet) = {f_opt.Lat}"
        "  (t initial crashes beat failure-free runs!)"
    )
    print(
        f"  ... but Λ(F_OptFloodSet) = {f_opt.Lambda}: failure-free runs "
        "still take 2 rounds"
    )

    a1_rs = latency_profile(A1(), 3, 1, RoundModel.RS)
    print(
        f"Λ(A1) in RS = {a1_rs.Lambda}"
        "  (every failure-free run decides at round 1)"
    )

    a1_rws = verify_algorithm(A1(), 3, 1, RoundModel.RWS, stop_after=1)
    print(
        f"A1 in RWS violates uniform agreement: {not a1_rws.ok}"
        "  (the decide-then-crash pending broadcast)"
    )

    best_rws = min(
        latency_profile(algorithm, 3, 1, RoundModel.RWS).Lambda
        for algorithm in (FloodSetWS(), COptFloodSetWS(), FOptFloodSetWS())
    )
    print(f"best Λ among safe RWS algorithms = {best_rws}  (the paper: >= 2)")
    print()
    print(
        "Conclusion: RS reaches uniform consensus in failure-free runs one "
        "round sooner than RWS — the synchronous model is strictly more "
        "efficient than asynchrony + perfect failure detection."
    )


if __name__ == "__main__":
    main()
