"""E5 — FloodSetWS in RWS (Figure 2): the halt guard works.

Times (a) finding plain FloodSet's RWS counterexample and (b)
certifying FloodSetWS over the complete RWS adversary space.
"""

from repro.analysis import verify_algorithm
from repro.consensus import FloodSet, FloodSetWS
from repro.rounds import RoundModel


def bench_e5_find_floodset_counterexample(benchmark):
    report = benchmark(
        verify_algorithm, FloodSet(), 3, 1, RoundModel.RWS, stop_after=1
    )
    assert not report.ok


def bench_e5_certify_floodsetws(once):
    report = once(verify_algorithm, FloodSetWS(), 3, 1, RoundModel.RWS)
    assert report.ok
    assert report.runs_checked > 1000
