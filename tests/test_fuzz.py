"""Tests for the differential fuzzing harness (repro.fuzz).

Covers the strategy layer (plain generators and, when installed, the
Hypothesis strategies), the differential oracles, the delta-debugging
shrinker, the campaign driver and its CLI, the corrupt-cache-entry
eviction, and the seed-stability goldens that pin the sha256-derived
per-cell seeds.

The mutation smoke test flips ``REPRO_INJECT_BUG`` to plant a known
round-synchrony bug in the RS-on-SS emulation and asserts the fuzzer
finds it within a fixed budget, shrinks it to at most two crashed
processes, and emits a counterexample file that ``repro replay
--repro`` reproduces.
"""

from __future__ import annotations

import json

import pytest

from repro.cli.main import main as cli_main
from repro.errors import ConfigurationError
from repro.fuzz import (
    FUZZ_ENGINES,
    generate_case,
    generate_cases,
    load_counterexample,
    resolve_engines,
    run_campaign,
    run_case,
    shrink,
)
from repro.fuzz.oracles import case_failures, twin_oracle, twin_request
from repro.fuzz.shrink import shrink_moves
from repro.inject import INJECT_ENV, KNOWN_INJECTIONS
from repro.rounds import validate_scenario
from repro.runtime.cache import ResultCache
from repro.runtime.harness import execute_request
from repro.runtime.request import ExecutionRequest, ExecutionResult
from repro.runtime.space import ScenarioSpace, derived_seed
from repro.serialize import scenario_from_dict


# ---------------------------------------------------------------------------
# Strategies: plain generators
# ---------------------------------------------------------------------------


class TestGenerators:
    def test_cases_are_seed_stable(self):
        for index in range(8):
            engine = FUZZ_ENGINES[index % len(FUZZ_ENGINES)]
            a = generate_case(index, seed=7, engine=engine)
            b = generate_case(index, seed=7, engine=engine)
            assert a == b
            assert a.cache_key() == b.cache_key()

    def test_cases_are_independent_of_budget(self):
        engines = resolve_engines(("all",))
        short = generate_cases(5, 3, engines)
        long = generate_cases(20, 3, engines)
        assert long[:5] == short

    def test_rounds_cases_are_admissible(self):
        for index in range(30):
            request = generate_case(index, seed=1, engine="rounds-rs")
            assert request.engine == "rounds"
            assert (
                validate_scenario(
                    request.scenario, t=request.t, allow_pending=False
                )
                == []
            )

    def test_emulation_cases_respect_resilience(self):
        for index in range(30):
            request = generate_case(index, seed=1, engine="rs_on_ss")
            assert len(request.pattern.faulty) <= request.t

    def test_sp_cases_stay_within_sending_horizon(self):
        # More rounds than t + 1 would deadlock the SP emulation's
        # delivered-or-suspected round-completion rule.
        for index in range(20):
            request = generate_case(index, seed=5, engine="rws_on_sp")
            assert request.max_rounds == request.t + 1

    def test_unknown_engine_rejected(self):
        with pytest.raises(ConfigurationError):
            generate_case(0, seed=0, engine="quantum")
        with pytest.raises(ConfigurationError):
            resolve_engines(("quantum",))

    def test_resolve_engines_expands_aliases(self):
        assert resolve_engines(("rounds",)) == ("rounds-rs", "rounds-rws")
        assert resolve_engines(("all",)) == FUZZ_ENGINES
        assert resolve_engines(("rs_on_ss", "rs_on_ss")) == ("rs_on_ss",)


# ---------------------------------------------------------------------------
# Seed stability goldens (regression: derived seeds must never drift)
# ---------------------------------------------------------------------------


class TestSeedGoldens:
    def test_derived_seed_golden_values(self):
        # sha256("{base}:{index}") truncated to 8 bytes; pinned so a
        # refactor cannot silently re-seed every random stream (which
        # would invalidate documented counterexamples and cached cells).
        assert [derived_seed(0, i) for i in range(4)] == [
            12426054289685354689,
            17227200041832915037,
            10603912086726310123,
            8562401648298655379,
        ]
        assert [derived_seed(42, i) for i in range(3)] == [
            6085284259181818738,
            278651779053087998,
            14840890843343779510,
        ]

    def test_random_rounds_stream_golden(self):
        space = ScenarioSpace.random_rounds(
            "golden", algorithm="floodset", model="RS", n=4, t=1,
            count=3, seed=42,
        )
        descriptions = [r.scenario.describe() for r in space.requests]
        assert descriptions == [
            "failure-free",
            "p0@r2(sent=[3])",
            "p2@r3(sent=[0, 1, 3]+trans)",
        ]
        assert [r.cache_key() for r in space.requests] == [
            "05ed7891d6da97f9054a96600f08d9bfacd80d906f432b27d9cecb620808eef8",
            "fe8e061c8bdddd787555e0492bdf2e2ad59833ba189193b975eb0f79fdf991cf",
            "f1a46b2c3191beb9b83630d8c510cfcaf0fe542995af3a92f30c69ee0b0911e7",
        ]

    def test_fuzz_case_golden(self):
        request = generate_case(0, seed=0, engine="rounds-rs")
        assert request.algorithm == "floodset"
        assert request.values == (0, 1, 0, 0)
        assert request.t == 2
        assert request.scenario.describe() == "p0@r2(sent=[1])"
        assert request.cache_key() == (
            "5d1d733f45c7288319ec8905f3df79d970102cfa3f093951e4244729c94eb886"
        )

    def test_injection_changes_cache_key(self, monkeypatch):
        request = generate_case(0, seed=0, engine="rounds-rs")
        clean = request.cache_key()
        monkeypatch.setenv(INJECT_ENV, "ss-drop-received")
        assert request.cache_key() != clean


# ---------------------------------------------------------------------------
# Result cache: corrupt entries are evicted on read
# ---------------------------------------------------------------------------


class TestCacheEviction:
    def _request(self) -> ExecutionRequest:
        return generate_case(0, seed=9, engine="rounds-rs")

    def test_truncated_entry_is_evicted(self, tmp_path):
        cache = ResultCache(tmp_path)
        request = self._request()
        cache.put(request, execute_request(request))
        assert len(cache) == 1
        path = cache._path(request.cache_key())
        # Truncate mid-JSON, as an interrupted writer (or torn disk)
        # would leave it.
        path.write_text(path.read_text()[: 40], encoding="utf-8")
        assert cache.get(request) is None
        assert len(cache) == 0
        assert not path.exists()

    def test_wrong_schema_entry_is_evicted(self, tmp_path):
        cache = ResultCache(tmp_path)
        request = self._request()
        path = cache._path(request.cache_key())
        path.write_text(json.dumps({"foreign": True}), encoding="utf-8")
        assert cache.get(request) is None
        assert not path.exists()

    def test_missing_entry_is_a_plain_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert cache.get(self._request()) is None

    def test_evicted_slot_is_rewritten(self, tmp_path):
        cache = ResultCache(tmp_path)
        request = self._request()
        result = execute_request(request)
        cache.put(request, result)
        cache._path(request.cache_key()).write_text("{", encoding="utf-8")
        assert cache.get(request) is None
        cache.put(request, result)
        hit = cache.get(request)
        assert hit is not None and hit.cached
        assert hit.decisions == result.decisions


# ---------------------------------------------------------------------------
# Oracles
# ---------------------------------------------------------------------------


class TestOracles:
    def test_clean_cases_pass_all_oracles(self):
        for index, engine in enumerate(FUZZ_ENGINES):
            request = generate_case(index, seed=2, engine=engine)
            assert run_case(request) == []

    def test_emulation_result_carries_induced_scenario(self):
        request = generate_case(0, seed=2, engine="rs_on_ss")
        result = execute_request(request)
        induced = scenario_from_dict(result.extra["induced_scenario"])
        assert (
            validate_scenario(induced, t=request.t, allow_pending=False)
            == []
        )
        # The extra survives the JSON round-trip the cache performs.
        restored = ExecutionResult.from_dict(result.to_dict())
        assert restored.extra == result.extra

    def test_twin_decisions_match_emulation(self):
        request = generate_case(0, seed=2, engine="rws_on_sp")
        result = execute_request(request)
        induced = scenario_from_dict(result.extra["induced_scenario"])
        twin = execute_request(twin_request(request, induced))
        assert twin.decisions == result.decisions

    def test_twin_oracle_flags_missing_extra(self):
        request = generate_case(0, seed=2, engine="rs_on_ss")
        result = execute_request(request)
        result.extra = {}
        problems = twin_oracle(request, result)
        assert problems and "induced scenario" in problems[0]

    def test_twin_oracle_flags_decision_divergence(self):
        request = generate_case(0, seed=2, engine="rs_on_ss")
        result = execute_request(request)
        result.decisions = {pid: (1, 999) for pid in result.decisions}
        problems = twin_oracle(request, result)
        assert any("decisions diverge" in p for p in problems)

    def test_case_failures_clean_on_rounds_engine(self):
        request = generate_case(0, seed=2, engine="rounds-rs")
        result = execute_request(request)
        assert case_failures(request, result) == []


# ---------------------------------------------------------------------------
# Shrinker
# ---------------------------------------------------------------------------


class TestShrinker:
    def test_moves_only_simplify(self):
        request = generate_case(1, seed=0, engine="rws_on_sp")
        baseline = len(request.pattern.faulty)
        for mutant in shrink_moves(request):
            assert len(mutant.pattern.faulty) <= baseline
            assert mutant.n <= request.n

    def test_shrinks_pattern_to_single_earliest_crash(self):
        request = generate_case(1, seed=0, engine="rws_on_sp")
        assert len(request.pattern.faulty) == 2

        # Synthetic failure: any case in which process 1 crashes.
        def still_fails(candidate: ExecutionRequest) -> bool:
            return 1 in candidate.pattern.faulty

        outcome = shrink(request, still_fails)
        assert still_fails(outcome.request)
        assert outcome.request.pattern.faulty == frozenset({1})
        assert outcome.request.pattern.crash_times[1] == 0
        assert outcome.request.n == 3  # dropped down from 4

    def test_shrinks_scenario_crashes_and_rounds(self):
        request = generate_case(0, seed=0, engine="rounds-rs")
        assert request.scenario.num_failures() == 1

        def still_fails(candidate: ExecutionRequest) -> bool:
            return candidate.scenario.num_failures() >= 1

        outcome = shrink(request, still_fails)
        scenario = outcome.request.scenario
        assert scenario.num_failures() == 1
        event = scenario.crashes[0]
        assert event.round == 1
        assert event.sent_to == frozenset()
        assert not event.applies_transition
        assert (
            validate_scenario(
                scenario, t=outcome.request.t, allow_pending=False
            )
            == []
        )

    def test_fixpoint_on_unshrinkable_case(self):
        request = generate_case(0, seed=0, engine="rounds-rs")

        def always_fails(candidate: ExecutionRequest) -> bool:
            return True

        outcome = shrink(request, always_fails)
        # Everything shrinkable was shrunk away: failure-free, minimal n,
        # all-zero values.
        assert outcome.request.scenario.num_failures() == 0
        assert outcome.request.n == 3
        assert set(outcome.request.values) == {0}


# ---------------------------------------------------------------------------
# Campaign + mutation smoke (the fuzzer must find a planted bug)
# ---------------------------------------------------------------------------


class TestCampaign:
    def test_clean_campaign_is_green(self, tmp_path):
        report = run_campaign(
            budget=16,
            seed=0,
            engines=("all",),
            cache_dir=str(tmp_path / "cache"),
            out_dir=str(tmp_path / "out"),
        )
        assert report.ok, report.describe()
        assert report.executed == 16
        assert report.twins == 8
        assert report.parity_problems == []
        assert report.repro_files == []

    def test_campaign_warm_cache_executes_nothing(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        run_campaign(budget=8, seed=1, engines=("rounds",), cache_dir=cache_dir)
        warm = run_campaign(
            budget=8, seed=1, engines=("rounds",), cache_dir=cache_dir
        )
        assert warm.executed == 0
        assert warm.cached == 8
        assert warm.ok

    def test_injected_bug_is_found_and_shrunk(self, tmp_path, monkeypatch):
        assert "ss-drop-received" in KNOWN_INJECTIONS
        monkeypatch.setenv(INJECT_ENV, "ss-drop-received")
        out_dir = tmp_path / "out"
        report = run_campaign(
            budget=40,
            seed=0,
            engines=("rs_on_ss",),
            out_dir=str(out_dir),
        )
        assert not report.ok
        assert report.counterexamples, "planted bug not found within budget"
        for ce in report.counterexamples:
            # Shrunk to a minimal trigger: at most two crashed processes.
            assert len(ce.shrunk.pattern.faulty) <= 2
            assert ce.shrunk_failures, "shrunk case no longer fails"
        assert report.repro_files
        # The emitted JSON is a loadable, replayable counterexample.
        request, document = load_counterexample(report.repro_files[0])
        assert document["injected_bug"] == "ss-drop-received"
        assert run_case(request), "replayed counterexample is clean"

    def test_injected_bug_invisible_without_flag(self, tmp_path):
        # Same stream as the mutation smoke: with the flag unset the
        # planted bug's cases are all clean.
        report = run_campaign(budget=40, seed=0, engines=("rs_on_ss",))
        assert report.ok, report.describe()

    def test_load_counterexample_rejects_junk(self, tmp_path):
        path = tmp_path / "junk.json"
        path.write_text("{not json", encoding="utf-8")
        with pytest.raises(ConfigurationError):
            load_counterexample(str(path))
        path.write_text(json.dumps({"kind": "other"}), encoding="utf-8")
        with pytest.raises(ConfigurationError):
            load_counterexample(str(path))


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------


class TestFuzzCLI:
    def test_fuzz_green_exit_zero(self, capsys):
        assert cli_main(["fuzz", "--budget", "12", "--seed", "0"]) == 0
        out = capsys.readouterr().out
        assert "12 cases" in out
        assert "all per-case oracles ok" in out

    def test_fuzz_engine_filter_and_jobs(self, capsys, tmp_path):
        code = cli_main(
            [
                "fuzz",
                "--budget",
                "8",
                "--seed",
                "4",
                "--engine",
                "rounds",
                "--jobs",
                "2",
                "--cache-dir",
                str(tmp_path / "cache"),
            ]
        )
        assert code == 0
        assert "rounds-rs, rounds-rws" in capsys.readouterr().out

    def test_fuzz_finds_injected_bug_exit_one(
        self, capsys, tmp_path, monkeypatch
    ):
        monkeypatch.setenv(INJECT_ENV, "ss-drop-received")
        out_dir = tmp_path / "out"
        code = cli_main(
            [
                "fuzz",
                "--budget",
                "40",
                "--seed",
                "0",
                "--engine",
                "rs_on_ss",
                "--out",
                str(out_dir),
            ]
        )
        assert code == 1
        out = capsys.readouterr().out
        assert "counterexample" in out
        files = sorted(out_dir.glob("*.json"))
        assert files

        # Replay reproduces under the flag...
        assert cli_main(["replay", "--repro", str(files[0])]) == 0
        assert "reproduces" in capsys.readouterr().out

        # ...and reports clean once the injection is lifted.
        monkeypatch.delenv(INJECT_ENV)
        assert cli_main(["replay", "--repro", str(files[0])]) == 1
        assert "no longer reproduces" in capsys.readouterr().out

    def test_fuzz_rejects_unknown_injection(self, capsys, monkeypatch):
        monkeypatch.setenv(INJECT_ENV, "no-such-bug")
        assert cli_main(["fuzz", "--budget", "4"]) == 2
        assert "not a registered injection" in capsys.readouterr().err

    def test_replay_requires_arguments(self, capsys):
        assert cli_main(["replay"]) == 2
        assert "provide a scenario" in capsys.readouterr().err


# ---------------------------------------------------------------------------
# Hypothesis strategies (skip cleanly when the dependency is absent)
# ---------------------------------------------------------------------------


try:
    from hypothesis import given, settings

    from repro.fuzz.strategies import (
        failure_patterns,
        failure_scenarios,
        initial_values,
        rounds_requests,
    )

    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - CI installs hypothesis
    HAVE_HYPOTHESIS = False


if HAVE_HYPOTHESIS:

    class TestHypothesisStrategies:
        @settings(max_examples=50, deadline=None, derandomize=True)
        @given(pattern=failure_patterns(n=5, max_failures=2, horizon=30))
        def test_patterns_respect_bounds(self, pattern):
            assert pattern.n == 5
            assert len(pattern.faulty) <= 2
            assert all(0 <= t <= 30 for t in pattern.crash_times.values())

        @settings(max_examples=50, deadline=None, derandomize=True)
        @given(
            scenario=failure_scenarios(
                n=4, t=2, max_round=3, allow_pending=True
            )
        )
        def test_scenarios_always_admissible(self, scenario):
            assert (
                validate_scenario(scenario, t=2, allow_pending=True) == []
            )

        @settings(max_examples=20, deadline=None, derandomize=True)
        @given(request=rounds_requests(model="RWS", n=4, t=1))
        def test_request_strategy_yields_runnable_cells(self, request):
            result = execute_request(request)
            assert result.num_rounds >= 1
            # Safe algorithm + admissible adversary: agreement holds.
            decided = {value for _, value in result.decisions.values()}
            assert len(decided) <= 1

        @settings(max_examples=30, deadline=None, derandomize=True)
        @given(values=initial_values(6, domain=("a", "b")))
        def test_initial_values_shape(self, values):
            assert len(values) == 6
            assert set(values) <= {"a", "b"}
