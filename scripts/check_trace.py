#!/usr/bin/env python
"""Validate a JSONL event trace against the observability schema.

Usage::

    PYTHONPATH=src python scripts/check_trace.py TRACE.jsonl

Exits 0 when every line is a schema-valid event, 1 otherwise (listing
each problem), 2 on usage errors.  Used by ``make trace-smoke`` and
the CLI tests.
"""

from __future__ import annotations

import sys


def main(argv: list[str] | None = None) -> int:
    args = sys.argv[1:] if argv is None else argv
    if len(args) != 1:
        print(__doc__, file=sys.stderr)
        return 2
    try:
        from repro.obs import validate_jsonl_lines
    except ImportError:
        print(
            "cannot import repro.obs — run with PYTHONPATH=src or after "
            "`pip install -e .`",
            file=sys.stderr,
        )
        return 2
    try:
        with open(args[0], encoding="utf-8") as fp:
            problems = validate_jsonl_lines(fp)
    except OSError as exc:
        print(f"cannot read {args[0]}: {exc}", file=sys.stderr)
        return 2
    if problems:
        for problem in problems:
            print(problem, file=sys.stderr)
        print(f"{args[0]}: INVALID ({len(problems)} problems)")
        return 1
    print(f"{args[0]}: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
