"""Non-blocking atomic commit on RS and RWS — the SDD payoff.

Section 3 of the paper motivates SDD through atomic commit: "solving
SDD provides more efficient atomic commit algorithms, i.e., algorithms
that lead to the commit decision more often...  When all processes
propose to commit and there is no initially dead process, processes may
safely decide to commit despite failures if the SDD problem is
solvable."

The connection, in round-model terms: in RS a vote that was *sent to
anyone* is recoverable (sent messages are delivered — the SS message
synchrony guarantee behind the SDD algorithm), so a voter that is not
initially dead always gets its vote counted and the survivors may
commit whenever every visible vote is YES.  In RWS a missing vote may
be *pending* from a voter that did cast it — possibly a NO — so the
same optimistic rule violates commit-validity and a safe algorithm must
abort whenever any vote is missing.  Hence synchronous commit decides
COMMIT in strictly more runs: experiment E3 measures both rates and
exhibits the optimistic rule's violation in RWS.

Algorithms:

* :class:`SynchronousCommit` — vote flooding + optimistic rule (RS,
  ``t = 1``);
* :class:`PerfectFDCommit` — vote flooding with the FloodSetWS halt
  guard + strict all-votes-visible rule (RWS-safe);
* :class:`OptimisticFDCommit` — the RS rule transplanted to RWS,
  deliberately unsafe (the demonstration);
* :class:`TwoPhaseCommit` — the classical blocking baseline.
"""

from repro.commit.spec import (
    COMMIT,
    ABORT,
    check_nbac_run,
    check_commit_obligation,
)
from repro.commit.algorithms import (
    SynchronousCommit,
    PerfectFDCommit,
    OptimisticFDCommit,
    TwoPhaseCommit,
)
from repro.commit.rates import CommitRateReport, commit_rate, compare_commit_rates

__all__ = [
    "COMMIT",
    "ABORT",
    "check_nbac_run",
    "check_commit_obligation",
    "SynchronousCommit",
    "PerfectFDCommit",
    "OptimisticFDCommit",
    "TwoPhaseCommit",
    "CommitRateReport",
    "commit_rate",
    "compare_commit_rates",
]
