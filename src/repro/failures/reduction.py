"""The Chandra–Toueg weak-to-strong completeness reduction.

Chandra & Toueg (the paper's reference [6]) prove that weak
completeness can be boosted to strong completeness by gossip, without
damaging accuracy: every process repeatedly broadcasts its suspicion
set; a receiver adds the suspicions it hears about and *removes* the
sender (a process it just heard from is evidently not crash-silent).
The transformation maps W to S, ◊W to ◊S, and — the case relevant to
this paper — **Q to P**: a weakly-complete, strongly-accurate detector
plus reliable gossip behaves like the perfect failure detector.

The construction here follows the step model's one-send-per-step
discipline: each process cycles through its peers, sending its current
output suspicion set.  The *input* detector is supplied as the
executor's failure-detector history (each step's ``ctx.suspects`` is
the local input module's value); the *output* is the ``suspected``
field of the automaton state, liftable to a checkable history with
:func:`repro.failures.timeout_p.history_from_run`.

Note the removal rule is what preserves accuracy: a false input
suspicion of a live process is eventually cancelled by that process's
own gossip (the live process keeps sending).  It cannot cancel a true
suspicion — crashed processes send nothing.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.simulation.automaton import StepAutomaton, StepContext, StepOutcome


@dataclass(frozen=True)
class ReductionState:
    """State of the gossip reduction.

    ``suspected`` is the transformed (output) detector's value; the
    field name matches :class:`~repro.failures.timeout_p.TimeoutDetectorState`
    so the same history-lifting helpers apply.
    """

    suspected: frozenset[int] = frozenset()
    next_target: int = 0
    local_step: int = 0


class CompletenessReduction(StepAutomaton):
    """Boost weak completeness to strong completeness by gossip.

    Run under any model whose channels are reliable and whose input
    history has weak completeness.  The output (``state.suspected``)
    then has strong completeness; accuracy properties of the input are
    preserved (strong accuracy in particular, giving Q -> P).
    """

    def __init__(self, n: int) -> None:
        self.n = n

    def initial_state(self, pid: int, n: int) -> ReductionState:
        return ReductionState()

    def on_step(self, ctx: StepContext) -> StepOutcome:
        state: ReductionState = ctx.state
        suspected = set(state.suspected)

        # 1. Adopt the local input module's current suspicions.
        if ctx.suspects is not None:
            suspected |= ctx.suspects

        # 2. Merge gossiped suspicions; 3. clear senders we heard from.
        for message in ctx.received:
            suspected |= set(message.payload)
        for message in ctx.received:
            suspected.discard(message.sender)

        # Never suspect oneself (a live process querying its own module).
        suspected.discard(ctx.pid)

        peers = [q for q in range(self.n) if q != ctx.pid]
        target = peers[state.next_target % len(peers)]
        new_state = replace(
            state,
            suspected=frozenset(suspected),
            next_target=(state.next_target + 1) % len(peers),
            local_step=state.local_step + 1,
        )
        return StepOutcome(
            state=new_state,
            send_to=target,
            payload=frozenset(suspected),
        )
