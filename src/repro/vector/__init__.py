"""The columnar execution kernel: batched array-state runs.

Per-process state lives in arrays (numpy ``(B, n)`` ``uint64`` bitmask
columns with the *scenario-batch* dimension first, or plain ``int``
lists without the ``fast`` extra), message delivery is a plan-computed
send/withhold schedule per round, and the FloodSet / FloodSetWS /
F_OptFloodSet[WS] / A1 transitions are batched bitwise ops — so whole
batches of :class:`~repro.runtime.space.ScenarioSpace` cells execute in
one vectorized call while producing event logs byte-identical to the
object engine's.

Layering:

* :mod:`repro.vector.backend` — numpy detection and the
  ``REPRO_VECTOR_BACKEND`` override;
* :mod:`repro.vector.kernels` — the value-free plan kernels (one per
  supported algorithm) mirroring the object transition tables;
* :mod:`repro.vector.plan` — per-group symbolic execution producing
  the shared hook sequence and the batched value program;
* :mod:`repro.vector.engine` — value kernels, trace materialization,
  and the ``execute_vector_request`` / ``execute_vector_batch`` entry
  points behind the ``engine="vector"`` harness.
"""

from repro.vector.backend import BACKEND_ENV, HAS_NUMPY, backend_name
from repro.vector.engine import (
    MAX_NUMPY_DOMAIN,
    VectorRun,
    cell_domain,
    execute_vector_batch,
    execute_vector_request,
    plan_for_request,
    replay_plan,
    run_value_kernel,
)
from repro.vector.kernels import PLAN_KERNELS, plan_kernel_for
from repro.vector.plan import GroupPlan, build_plan

__all__ = [
    "BACKEND_ENV",
    "GroupPlan",
    "HAS_NUMPY",
    "MAX_NUMPY_DOMAIN",
    "PLAN_KERNELS",
    "VectorRun",
    "backend_name",
    "build_plan",
    "cell_domain",
    "execute_vector_batch",
    "execute_vector_request",
    "plan_for_request",
    "plan_kernel_for",
    "replay_plan",
    "run_value_kernel",
]
