"""``perf_counter`` span timers for the engines' hot paths.

Hot paths wrap themselves in ``with profiled("span.name"):``.  When no
profiler is installed (the default) :func:`profiled` returns a shared
no-op context manager — one attribute read and two trivial method
calls per span, far below measurement noise at the granularity we
instrument (whole executions, not individual steps).  Installing a
:class:`Profiler` with :func:`set_profiler` turns the same call sites
into real timers.

Spans currently emitted by the library:

* ``rounds.execute`` — one round-model execution.
* ``simulation.execute`` — one step-kernel execution.
* ``emulation.rs_on_ss`` / ``emulation.rws_on_sp`` — one emulated run.
* ``detectors.crash_detection_times`` — drawing the per-pair suspicion
  onsets of a perfect-detector history.
* ``detectors.eventual_chaos`` — pre-drawing the pre-GST false
  suspicions of an eventually-perfect history.
"""

from __future__ import annotations

from time import perf_counter
from typing import Any

from repro.stats import percentile


class _Span:
    """A reusable timing context for one span name."""

    __slots__ = ("_profiler", "_name", "_start")

    def __init__(self, profiler: "Profiler", name: str) -> None:
        self._profiler = profiler
        self._name = name
        self._start = 0.0

    def __enter__(self) -> "_Span":
        self._start = perf_counter()
        return self

    def __exit__(self, *exc: Any) -> None:
        self._profiler.record(self._name, perf_counter() - self._start)


class _NoopSpan:
    """Shared do-nothing context manager for the uninstrumented path."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc: Any) -> None:
        pass


_NOOP_SPAN = _NoopSpan()


class Profiler:
    """Accumulates span durations keyed by span name."""

    def __init__(self) -> None:
        self.spans: dict[str, list[float]] = {}

    def span(self, name: str) -> _Span:
        return _Span(self, name)

    def record(self, name: str, seconds: float) -> None:
        self.spans.setdefault(name, []).append(seconds)

    def snapshot(self) -> dict[str, dict[str, float]]:
        """Per-span count/total/mean/p50/max/p95, JSON-ready."""
        out: dict[str, dict[str, float]] = {}
        for name, samples in sorted(self.spans.items()):
            total = sum(samples)
            out[name] = {
                "count": len(samples),
                "total_s": total,
                "mean_s": total / len(samples),
                "p50_s": percentile(samples, 50),
                "max_s": max(samples),
                "p95_s": percentile(samples, 95),
            }
        return out

    def merge_into(self, registry: Any) -> None:
        """Mirror span samples into ``registry`` histograms
        (``profile.<span>.seconds``)."""
        for name, samples in self.spans.items():
            histogram = registry.histogram(f"profile.{name}.seconds")
            for sample in samples:
                histogram.observe(sample)


_active: Profiler | None = None


def set_profiler(profiler: Profiler | None) -> None:
    """Install (or with ``None``, remove) the process-wide profiler."""
    global _active
    _active = profiler


def get_profiler() -> Profiler | None:
    return _active


def profiled(name: str) -> Any:
    """A context manager timing ``name`` under the installed profiler;
    a shared no-op when none is installed."""
    return _active.span(name) if _active is not None else _NOOP_SPAN
