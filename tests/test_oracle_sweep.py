"""Chaos-style sweep: the trace oracle over every workload scenario.

The checkers are only worth trusting if the engines never trip them on
legitimate runs.  Since PR 3 the sweep itself lives in the unified
runtime: :func:`repro.runtime.oracle_sweep_space` enumerates every
named workload, randomized adversaries in both round models, and both
emulation engines; :class:`repro.runtime.SweepRunner` with
``check=True`` runs the full checker suite over each produced trace.
Model invariants must always hold; only consensus may break, and only
on the cells documented to break it.  Replay coverage (byte-for-byte
re-execution and scenario reconstruction) stays here, driven off the
runtime's results.
"""

from __future__ import annotations

import random

import pytest

from repro.consensus import FloodSet
from repro.obs import (
    EventLog,
    logical_clock,
    reconstruct_scenario,
    replay_events,
)
from repro.rounds import run_rws
from repro.rounds.enumeration import random_scenario
from repro.runtime import (
    SweepRunner,
    execute_request,
    make_algorithm,
    oracle_sweep_space,
)
from repro.workloads import adversarial_split

SPACE = oracle_sweep_space()

#: The named workload cells (round engine, one per legacy WORKLOAD).
WORKLOAD_REQUESTS = [
    request
    for request in SPACE
    if request.engine == "rounds" and not request.name.startswith("random-")
]


class TestOracleSweepSpace:
    def test_space_covers_workloads_streams_and_emulations(self):
        names = [request.name for request in SPACE]
        assert len(names) == len(set(names))
        assert len(WORKLOAD_REQUESTS) == 8
        assert sum(1 for n in names if n.startswith("random-rs-")) == 10
        assert sum(1 for n in names if n.startswith("random-rws-")) == 10
        assert "emulation-rs-on-ss" in names
        assert "emulation-rws-on-sp" in names

    def test_full_sweep_passes_oracle(self):
        result = SweepRunner(check=True).run(SPACE)
        assert result.total == len(SPACE)
        assert result.checks_ok, result.describe()

    def test_documented_disagreements_reproduced(self):
        result = SweepRunner(check=True).run(SPACE)
        by_name = {check.name: check for check in result.checks}
        for name in ("floodset-rws", "a1-rws"):
            check = by_name[name]
            assert check.expected_disagreement
            assert check.consensus_violations > 0, check.describe()


class TestWorkloadReplay:
    @pytest.mark.parametrize(
        "request_",
        WORKLOAD_REQUESTS,
        ids=[request.name for request in WORKLOAD_REQUESTS],
    )
    def test_scenario_replays_byte_for_byte(self, request_):
        result = execute_request(request_)
        report = replay_events(
            make_algorithm(request_.algorithm),
            request_.values,
            result.events,
            t=1,
        )
        assert report.exact, report.describe()


class TestRandomScenarioSweep:
    """Randomized adversaries: reconstruction and replay must reproduce
    whatever the validated sampler drives the engine through.  (The
    model-invariant coverage for random streams now runs inside the
    checked sweep above.)"""

    def test_random_scenarios_reconstruct_and_replay(self):
        rng = random.Random(7)
        for trial in range(15):
            scenario = random_scenario(
                3, 1, max_round=3, allow_pending=True, rng=rng
            )
            log = EventLog(clock=logical_clock())
            run_rws(
                FloodSet(),
                adversarial_split(3),
                scenario,
                t=1,
                max_rounds=4,
                observer=log,
            )
            rebuilt = reconstruct_scenario(log.events)
            # crashes after the executed horizon leave no trace; every
            # reconstructed fact must match the original scenario
            assert rebuilt.pending <= scenario.pending
            for crash in rebuilt.crashes:
                assert crash in scenario.crashes
            report = replay_events(
                FloodSet(), adversarial_split(3), log.events, t=1
            )
            assert report.exact, f"trial {trial}: {report.describe()}"
