"""Schedules: the per-step trace of who did what.

A schedule (paper Section 2.2) is a sequence of steps of the algorithm.
The paper's schedules are infinite; we record the finite prefix actually
executed together with enough bookkeeping (message uids, send/receive
step indices) for the synchrony validators of :mod:`repro.models` to
check the SS conditions, which are stated purely in terms of schedule
indices.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator


@dataclass(frozen=True)
class Step:
    """One atomic step of the schedule.

    Attributes:
        index: Global 0-based position of this step in the schedule.
        time: The global-clock tick at which the step occurred.  The
            kernel uses ``time == index`` (any strictly increasing list
            is equivalent for time-free problems, Section 2.7).
        pid: The process that took the step.
        received_uids: Uids of the messages delivered during the step.
        sent_uid: Uid of the message sent during the step, or ``None``.
        sent_to: Recipient of the sent message, or ``None``.
        local_step: 1-based count of steps taken by ``pid`` so far.
        suspects: Failure-detector output observed in the step's query
            phase, or ``None`` in detector-free models.
    """

    index: int
    time: int
    pid: int
    received_uids: tuple[int, ...]
    sent_uid: int | None
    sent_to: int | None
    local_step: int
    suspects: frozenset[int] | None = None


@dataclass
class Schedule:
    """A finite prefix of a schedule, as a list of :class:`Step`.

    Provides the per-process projections ``S_i`` used by the paper's
    definition of time-free problems (Section 2.7): two runs are
    equivalent for a time-free problem whenever every process takes the
    same sequence of steps in both.
    """

    n: int
    steps: list[Step] = field(default_factory=list)

    def append(self, step: Step) -> None:
        if step.index != len(self.steps):
            raise ValueError(
                f"step index {step.index} does not extend schedule of "
                f"length {len(self.steps)}"
            )
        self.steps.append(step)

    def __len__(self) -> int:
        return len(self.steps)

    def __iter__(self) -> Iterator[Step]:
        return iter(self.steps)

    def __getitem__(self, index: int) -> Step:
        return self.steps[index]

    def projection(self, pid: int) -> list[Step]:
        """Return ``S_i``: the subsequence of steps taken by ``pid``."""
        return [s for s in self.steps if s.pid == pid]

    def step_counts(self) -> dict[int, int]:
        """Return the number of steps taken by each process."""
        counts = {pid: 0 for pid in range(self.n)}
        for step in self.steps:
            counts[step.pid] += 1
        return counts

    def steps_in_window(self, start: int, end: int) -> list[Step]:
        """Return the steps with ``start <= index < end``."""
        return self.steps[start:end]
