"""Legacy setup shim: metadata lives in pyproject.toml.

Kept so that ``pip install -e .`` works in offline environments that
lack the ``wheel`` package (legacy editable installs do not need it).
"""

from setuptools import setup

setup()
