"""E3 — atomic commit: the SS vs SP commit-rate gap.

Regenerates the commit-rate table over the full bounded adversary space
of each model and asserts the paper's shape: SyncCommit@RS commits in
every all-YES run, the safe RWS algorithm commits strictly less often,
and the optimistic rule transplanted to RWS is unsafe.
"""

from repro.commit import compare_commit_rates
from repro.core.experiments import experiment_e3


def bench_e3_commit_rate_gap(once):
    result = once(experiment_e3, True)
    assert result.ok, result.describe()


def bench_e3_rate_table(benchmark):
    reports = benchmark(compare_commit_rates, n=3, t=1)
    sync = reports["SyncCommit@RS"]
    safe = reports["P-Commit@RWS"]
    assert sync.commit_rate == 1.0
    assert 0.0 < safe.commit_rate < sync.commit_rate
    benchmark.extra_info["sync_commit_rate"] = sync.commit_rate
    benchmark.extra_info["p_commit_rate"] = safe.commit_rate
