"""C_OptFloodSet and C_OptFloodSetWS (Section 5.2, unanimity fast path).

Because of the validity condition, "any process that receives ``n``
messages with the same value ``v`` at round 1 could safely decide ``v``
at the end of round 1": receiving ``n`` identical values means *every*
process proposed ``v`` (each round-1 message is a singleton initial
value), so every possible decision is ``v`` anyway.  The optimisation
witnesses ``lat(C_OptFloodSet) = lat(C_OptFloodSetWS) = 1`` — the
*minimal* latency degree over all runs is achieved by the failure-free
unanimous runs — and shows why ``lat`` alone is too coarse a measure to
separate RS from RWS.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Any, Mapping

from repro.consensus.floodset import (
    FloodSet,
    FloodSetState,
    FloodSetWS,
    FloodSetWSState,
)


def _unanimous_value(received: Mapping[int, Any], n: int) -> Any:
    """Return ``v`` if all ``n`` round-1 messages carry exactly ``{v}``."""
    if len(received) != n:
        return None
    union: frozenset = frozenset()
    for payload in received.values():
        union = union | payload
    if len(union) == 1:
        return next(iter(union))
    return None


class COptFloodSet(FloodSet):
    """FloodSet with the round-1 unanimity decision rule."""

    name = "C_OptFloodSet"

    def transition(
        self, pid: int, state: FloodSetState, received: Mapping[int, Any]
    ) -> FloodSetState:
        new_state = super().transition(pid, state, received)
        if new_state.rounds == 1 and new_state.decision is None:
            value = _unanimous_value(received, state.n)
            if value is not None:
                new_state = replace(new_state, decision=value)
        return new_state


class COptFloodSetWS(FloodSetWS):
    """FloodSetWS with the round-1 unanimity decision rule.

    The rule is safe in RWS for the same reason as in RS: ``n``
    delivered messages at round 1 means no message was pending and no
    process was initially dead, so the unanimity really covers all
    initial values.
    """

    name = "C_OptFloodSetWS"

    def transition(
        self, pid: int, state: FloodSetWSState, received: Mapping[int, Any]
    ) -> FloodSetWSState:
        new_state = super().transition(pid, state, received)
        if new_state.rounds == 1 and new_state.decision is None:
            value = _unanimous_value(received, state.n)
            if value is not None:
                new_state = replace(new_state, decision=value)
        return new_state
