"""Mechanical reproduction of the RWS ``Λ >= 2`` lower bound.

The paper (Section 5.3, citing the companion paper [7]) states: for
``n >= 3`` there is no uniform consensus algorithm in RWS in which all
correct processes decide at round 1 of all failure-free runs; hence
every RWS algorithm has ``Λ >= 2``, against ``Λ(A1) = 1`` in RS.

The executable counterpart, for any concrete candidate algorithm:

1. decide whether the candidate *has* the round-1 property (every
   failure-free run, over every initial configuration, has all correct
   processes deciding at round 1);
2. if it does, exhaustively search the RWS adversary space for a
   uniform-consensus violation, which by the theorem must exist.

:func:`round_one_survey` applies this to a pool of candidates; that no
candidate survives is the experiment-shaped form of the impossibility.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Sequence

from repro.consensus.spec import SpecViolation, check_uniform_consensus_run
from repro.rounds.algorithm import RoundAlgorithm
from repro.rounds.enumeration import all_scenarios, all_value_assignments
from repro.rounds.executor import RoundModel, execute
from repro.rounds.scenario import FailureScenario


@dataclass
class RoundOneVerdict:
    """Outcome of the two-stage check for one candidate."""

    algorithm: str
    has_round_one_property: bool
    violation: SpecViolation | None
    runs_checked: int

    @property
    def refuted(self) -> bool:
        """True when the candidate has the property and breaks the spec —
        i.e. when it confirms the lower bound."""
        return self.has_round_one_property and self.violation is not None

    def describe(self) -> str:
        if not self.has_round_one_property:
            return (
                f"{self.algorithm}: no round-1 property (Λ >= 2 by itself)"
            )
        if self.violation is None:
            return (
                f"{self.algorithm}: round-1 property and no violation found "
                f"over {self.runs_checked} runs — WOULD CONTRADICT the "
                "lower bound"
            )
        return (
            f"{self.algorithm}: round-1 property, refuted — {self.violation}"
        )


def _has_round_one_property(
    algorithm: RoundAlgorithm,
    n: int,
    t: int,
    domain: Sequence[Any],
    model: RoundModel = RoundModel.RWS,
) -> bool:
    """All correct processes decide at round 1 in every failure-free run."""
    scenario = FailureScenario.failure_free(n)
    for values in all_value_assignments(n, domain):
        run = execute(
            algorithm,
            values,
            scenario,
            t=t,
            model=model,
            max_rounds=t + 3,
            validate=False,
        )
        for pid in range(n):
            if run.decision_round(pid) != 1:
                return False
    return True


def refute_round_one_decision(
    algorithm: RoundAlgorithm,
    n: int,
    t: int = 1,
    *,
    domain: Sequence[Any] = (0, 1),
    max_round: int | None = None,
    model: RoundModel = RoundModel.RWS,
) -> RoundOneVerdict:
    """Run the two-stage lower-bound check on one candidate.

    With ``model=RoundModel.RWS`` and ``t=1`` this is the paper's
    Section 5.3 bound; with ``model=RoundModel.RS`` and ``t>=2`` it is
    the companion-paper bound that uniform consensus cannot decide at
    round 1 of failure-free runs even in fully synchronous rounds —
    the sense in which "uniform consensus is harder than consensus".
    """
    has_property = _has_round_one_property(algorithm, n, t, domain, model)
    if not has_property:
        return RoundOneVerdict(
            algorithm=algorithm.name,
            has_round_one_property=False,
            violation=None,
            runs_checked=0,
        )
    crash_bound = max_round if max_round is not None else t + 1
    runs_checked = 0
    for values in all_value_assignments(n, domain):
        for scenario in all_scenarios(
            n,
            t,
            max_round=crash_bound,
            allow_pending=(model is RoundModel.RWS),
        ):
            run = execute(
                algorithm,
                values,
                scenario,
                t=t,
                model=model,
                max_rounds=t + 3,
                validate=False,
            )
            runs_checked += 1
            violations = check_uniform_consensus_run(run)
            if violations:
                return RoundOneVerdict(
                    algorithm=algorithm.name,
                    has_round_one_property=True,
                    violation=violations[0],
                    runs_checked=runs_checked,
                )
    return RoundOneVerdict(
        algorithm=algorithm.name,
        has_round_one_property=True,
        violation=None,
        runs_checked=runs_checked,
    )


def round_one_survey(
    candidates: Iterable[RoundAlgorithm],
    n: int = 3,
    t: int = 1,
    *,
    domain: Sequence[Any] = (0, 1),
    model: RoundModel = RoundModel.RWS,
) -> list[RoundOneVerdict]:
    """Check every candidate; the lower bound predicts all are refuted
    (or lack the round-1 property to begin with)."""
    return [
        refute_round_one_decision(
            candidate, n, t, domain=domain, model=model
        )
        for candidate in candidates
    ]
