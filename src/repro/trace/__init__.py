"""Trace inspection: ASCII space-time diagrams and round tableaux.

Distributed executions are hard to debug from raw run records; these
renderers give the classic visual forms — a space-time diagram for
step-level runs (one column per process, one row per step) and a
round tableau for round-model runs (who heard whom, who decided what,
round by round).
"""

from repro.trace.diagram import (
    step_diagram,
    round_tableau,
    describe_run,
    describe_round_run,
)
from repro.trace.dot import step_run_to_dot, round_run_to_dot

__all__ = [
    "step_diagram",
    "round_tableau",
    "describe_run",
    "describe_round_run",
    "step_run_to_dot",
    "round_run_to_dot",
]
