"""Tests for the live asyncio cluster runtime (`repro.live`).

The live engine is wall-clock nondeterministic, so these tests assert
*properties*, not bytes: every serialized trace must satisfy the PR-2
oracle (ordering, detector axioms, weak round synchrony, consensus),
decisions must agree, detection quality must be sane, and the unified
runtime / fuzz integrations must accept the engine.
"""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.failures.pattern import FailurePattern
from repro.fuzz import generate_case, resolve_engines
from repro.live import (
    DetectorConfig,
    LiveCluster,
    LiveConfig,
    NET_PROFILES,
    config_from_request,
    profile_by_name,
)
from repro.live.profiles import PartitionWindow
from repro.obs.check import check_events
from repro.obs.events import EventLog, logical_clock
from repro.runtime.harness import execute_request
from repro.runtime.request import ExecutionRequest
from repro.runtime.space import space_by_name
from repro.runtime.sweep import check_cell, run_space


def run_and_check(config: LiveConfig):
    """Run a cluster, serialize its trace, and apply the trace oracle."""
    run = LiveCluster(config).run()
    log = EventLog(clock=logical_clock())
    run.replay_into(log)
    report = check_events(
        log.events, model="RWS", initial_values=config.values
    )
    assert report.ok, "\n".join(v.describe() for v in report.errors)
    return run, log


class TestProfiles:
    def test_catalogue_names(self):
        assert set(NET_PROFILES) == {"lan", "lossy", "adversarial"}

    def test_unknown_profile_is_rejected(self):
        with pytest.raises(ConfigurationError):
            profile_by_name("wan")

    def test_partition_severs_exactly_cross_group_links(self):
        window = PartitionWindow(start_s=1.0, end_s=2.0, group=frozenset({0}))
        assert window.severs(0, 3, 1.5)
        assert window.severs(3, 0, 1.5)
        assert not window.severs(2, 3, 1.5)  # both outside the group
        assert not window.severs(0, 3, 2.5)  # window over

    def test_adversarial_profile_has_a_partition(self):
        assert NET_PROFILES["adversarial"].partitions


class TestConfigValidation:
    def test_needs_two_processes(self):
        with pytest.raises(ConfigurationError):
            LiveConfig(
                algorithm="floodset",
                values=(1,),
                profile=profile_by_name("lan"),
            )

    def test_rejects_unknown_algorithm(self):
        with pytest.raises(ConfigurationError):
            LiveConfig(
                algorithm="paxos",
                values=(0, 1),
                profile=profile_by_name("lan"),
            )

    def test_chandra_toueg_needs_correct_majority(self):
        with pytest.raises(ConfigurationError):
            LiveConfig(
                algorithm="chandra-toueg",
                values=(0, 1, 0, 1),
                t=2,
                profile=profile_by_name("lan"),
            )

    def test_rejects_double_crash(self):
        with pytest.raises(ConfigurationError):
            LiveConfig(
                algorithm="floodset",
                values=(0, 1, 0),
                profile=profile_by_name("lan"),
                crash_at=((1, 0.0), (1, 0.1)),
            )

    def test_detector_config_validation(self):
        with pytest.raises(ConfigurationError):
            DetectorConfig(kind="strong")
        with pytest.raises(ConfigurationError):
            DetectorConfig(interval_s=0.0)
        with pytest.raises(ConfigurationError):
            DetectorConfig(miss_threshold=0)


class TestTraceOracle:
    """Satellite: live traces pass `repro check` invariants across all
    three net profiles, including the adversarial one."""

    @pytest.mark.parametrize("profile", sorted(NET_PROFILES))
    def test_floodset_with_crash_passes_oracle(self, profile):
        config = LiveConfig(
            algorithm="floodset",
            values=(3, 1, 2, 0),
            profile=profile_by_name(profile),
            t=1,
            # On the fast profile the run can finish before a late
            # fault fires, so crash immediately there.
            crash_at=((1, 0.0 if profile == "lan" else 0.03),),
            max_rounds=4,
            seed=7,
        )
        run, log = run_and_check(config)
        assert run.crash_walls.keys() == {1}
        decided = {value for _, value in run.decisions.values()}
        assert len(decided) == 1
        assert set(run.decisions) == {0, 2, 3}

    def test_adversarial_partition_actually_severs(self):
        config = LiveConfig(
            algorithm="floodset-ws",
            values=(0, 1, 0, 1),
            profile=profile_by_name("adversarial"),
            t=1,
            crash_at=((2, 0.05),),
            max_rounds=2,
            seed=3,
            sessions=4,
            concurrency=2,
        )
        run, _ = run_and_check(config)
        assert run.transport_stats.severed > 0
        assert run.detector_summary["false_suspicions"] == 0

    def test_crash_free_run_is_quiet(self):
        config = LiveConfig(
            algorithm="floodset-ws",
            values=(0, 1, 0),
            profile=profile_by_name("lan"),
            max_rounds=2,
            seed=1,
        )
        run, _ = run_and_check(config)
        assert run.crash_walls == {}
        assert run.detector_summary["suspicions"] == 0
        assert set(run.decisions) == {0, 1, 2}

    def test_detection_quality_is_reported(self):
        config = LiveConfig(
            algorithm="floodset",
            values=(1, 0, 1, 0),
            profile=profile_by_name("lossy"),
            crash_at=((0, 0.02),),
            seed=9,
        )
        run, _ = run_and_check(config)
        quality = run.detector_summary
        assert quality["suspicions"] >= 1
        assert quality["false_suspicions"] == 0
        assert quality["detection_delay_ms"]["mean"] > 0
        assert run.transport_stats.heartbeats_sent > 0


class TestChandraToueg:
    def test_step_mode_with_dead_coordinator(self):
        config = LiveConfig(
            algorithm="chandra-toueg",
            values=(5, 7, 7),
            profile=profile_by_name("lossy"),
            detector=DetectorConfig(kind="ep"),
            crash_at=((0, 0.0),),
            seed=5,
        )
        run, log = run_and_check(config)
        # p0 was the round-1 coordinator; the survivors must rotate past
        # it and agree on a surviving value.
        assert {value for _, value in run.decisions.values()} == {7}
        assert set(run.decisions) == {1, 2}
        assert any(e.kind == "suspect" for e in log.events)


class TestLoadMode:
    def test_many_sessions_all_complete_and_agree(self):
        config = LiveConfig(
            algorithm="floodset-ws",
            values=(0, 1, 0, 1),
            profile=profile_by_name("lan"),
            max_rounds=2,
            seed=2,
            sessions=16,
            concurrency=8,
        )
        run = LiveCluster(config).run()
        assert run.sessions_completed == 16
        assert run.total_decisions() == 16 * 4
        for entries in run.all_decisions.values():
            assert len({value for _, value in entries.values()}) == 1
        stats = run.stats_dict()
        assert stats["decisions_per_s"] > 0


class TestRuntimeIntegration:
    def request(self, **overrides):
        base = dict(
            name="live-cell",
            engine="live",
            algorithm="floodset",
            values=(3, 1, 2, 0),
            t=1,
            pattern=FailurePattern.with_crashes(4, {1: 3}),
            max_rounds=4,
            seed=7,
            params=(("net_profile", "lossy"),),
        )
        base.update(overrides)
        return ExecutionRequest(**base)

    def test_crash_times_are_centiseconds(self):
        config = config_from_request(self.request())
        assert config.crash_at == ((1, 0.03),)
        assert config.profile.name == "lossy"

    def test_unknown_param_is_rejected(self):
        with pytest.raises(ConfigurationError):
            config_from_request(
                self.request(params=(("delivery_prob", 0.5),))
            )

    def test_execute_request_runs_live_and_checks(self):
        request = self.request()
        result = execute_request(request)
        assert result.decisions
        assert result.extra["live"]["profile"] == "lossy"
        assert result.extra["live"]["decisions"] == len(result.decisions)
        verdict = check_cell(request, result)
        assert verdict.ok, verdict.describe()

    def test_live_smoke_space_is_oracle_clean(self):
        sweep = run_space(space_by_name("live-smoke"), check=True)
        assert sweep.total == 5
        assert sweep.checks_ok, sweep.describe()


class TestFuzzIntegration:
    def test_live_engine_is_opt_in(self):
        assert "live" not in resolve_engines(("all",))
        assert resolve_engines(("live",)) == ("live",)

    def test_generated_live_cases_are_well_formed(self):
        for index in range(8):
            request = generate_case(index, seed=0, engine="live")
            assert request.engine == "live"
            config = config_from_request(request)
            assert config.n >= 3
            assert len(config.crash_at) <= request.t
