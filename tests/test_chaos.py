"""Chaos soak tests: broad randomized sweeps across the whole stack.

Each test hammers one layer with a wide mix of random parameters and
adversaries, spec-checking every run.  These complement the targeted
exhaustive tests: exhaustiveness pins down small instances completely,
the soak explores larger, messier corners.  All are marked slow.
"""

from __future__ import annotations

import random

import pytest

from repro.analysis import verify_algorithm
from repro.broadcast import AtomicBroadcastWS, check_atomic_broadcast_run
from repro.commit import check_nbac_run
from repro.commit.algorithms import PerfectFDCommit
from repro.consensus import (
    A1,
    COptFloodSetWS,
    FloodSet,
    FloodSetWS,
    FOptFloodSet,
    FOptFloodSetWS,
)
from repro.failures import FailurePattern, random_pattern
from repro.rounds import RoundModel


pytestmark = pytest.mark.slow


class TestRoundModelSoak:
    @pytest.mark.parametrize(
        "algorithm_cls,model",
        [
            (FloodSet, RoundModel.RS),
            (FloodSetWS, RoundModel.RWS),
            (COptFloodSetWS, RoundModel.RWS),
            (FOptFloodSet, RoundModel.RS),
            (FOptFloodSetWS, RoundModel.RWS),
        ],
        ids=lambda x: getattr(x, "__name__", x.value if hasattr(x, "value") else x),
    )
    @pytest.mark.parametrize("n,t", [(4, 1), (5, 2), (6, 2)])
    def test_consensus_sampled_safety(self, algorithm_cls, model, n, t):
        report = verify_algorithm(
            algorithm_cls(), n, t, model,
            sample=400, rng=random.Random(n * 100 + t),
            domain=(0, 1, 2),
        )
        assert report.ok, report.first_violations()

    @pytest.mark.parametrize("n", [4, 5, 6])
    def test_a1_sampled_safety_rs(self, n):
        report = verify_algorithm(
            A1(), n, 1, RoundModel.RS,
            sample=400, rng=random.Random(n),
        )
        assert report.ok, report.first_violations()

    @pytest.mark.parametrize("n", [4, 5])
    def test_commit_sampled_safety(self, n):
        report = verify_algorithm(
            PerfectFDCommit(), n, 1, RoundModel.RWS,
            checker=check_nbac_run,
            domain=(False, True),
            sample=400,
            rng=random.Random(7 + n),
        )
        assert report.ok, report.first_violations()

    @pytest.mark.parametrize("n", [4, 5])
    def test_broadcast_sampled_safety(self, n):
        domain = tuple((f"m{i}",) for i in range(2))
        report = verify_algorithm(
            AtomicBroadcastWS(), n, 1, RoundModel.RWS,
            checker=check_atomic_broadcast_run,
            domain=domain,
            horizon=4,
            sample=300,
            rng=random.Random(13 + n),
        )
        assert report.ok, report.first_violations()


class TestStepModelSoak:
    def test_ss_scheduler_long_runs_many_params(self):
        from repro.models.ss import SSScheduler, validate_ss_run
        from repro.simulation.automaton import IdleAutomaton
        from repro.simulation.executor import StepExecutor

        rng = random.Random(99)
        for _ in range(15):
            n = rng.randint(2, 6)
            phi = rng.randint(1, 4)
            delta = rng.randint(1, 4)
            pattern = random_pattern(n, min(2, n - 1), 60, rng)
            executor = StepExecutor(
                IdleAutomaton(),
                n,
                pattern,
                SSScheduler(phi, delta, rng=rng),
            )
            run = executor.execute(250)
            assert validate_ss_run(run, phi, delta) == []

    def test_timeout_detector_many_params(self):
        from repro.failures import (
            TimeoutPerfectDetector,
            classify_history,
            history_from_run,
        )
        from repro.models import SynchronousModel

        rng = random.Random(41)
        for _ in range(8):
            n = rng.randint(2, 4)
            phi = rng.randint(1, 2)
            delta = rng.randint(1, 2)
            victim = rng.randrange(n)
            pattern = FailurePattern.with_crashes(
                n, {victim: rng.randint(5, 60)}
            )
            model = SynchronousModel(phi=phi, delta=delta)
            executor = model.executor(
                TimeoutPerfectDetector(n, phi, delta),
                n,
                pattern,
                rng=rng,
                record_states=True,
            )
            run = executor.execute(600)
            history = history_from_run(run)
            report = classify_history(
                history, pattern, len(run.schedule) - 1
            )
            assert report.matches_class("P"), report.violations

    def test_ct_consensus_many_params(self):
        from repro.fdconsensus import ct_decisions, run_ct_consensus

        rng = random.Random(55)
        for _ in range(6):
            n = rng.choice([3, 5])
            t = (n - 1) // 2
            victims = rng.sample(range(n), rng.randint(0, t))
            pattern = FailurePattern.with_crashes(
                n, {pid: rng.randint(0, 100) for pid in victims}
            )
            values = [rng.randint(0, 2) for _ in range(n)]
            run = run_ct_consensus(
                values, pattern, rng=rng,
                stabilization_time=rng.randint(0, 120),
                false_suspicion_prob=rng.random() * 0.5,
                max_steps=15_000,
            )
            decisions = ct_decisions(run)
            assert len(set(decisions.values())) <= 1
            assert set(decisions.values()) <= set(values)
            for pid in pattern.correct:
                assert pid in decisions
