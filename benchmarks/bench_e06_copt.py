"""E6 — C_OptFloodSet / C_OptFloodSetWS: lat = 1 (Section 5.2)."""

from repro.analysis import latency_profile
from repro.consensus import COptFloodSet, COptFloodSetWS
from repro.rounds import RoundModel


def bench_e6_copt_lat_rs(benchmark):
    profile = benchmark(
        latency_profile, COptFloodSet(), 3, 1, RoundModel.RS
    )
    assert profile.lat == 1


def bench_e6_copt_lat_rws(once):
    profile = once(latency_profile, COptFloodSetWS(), 3, 1, RoundModel.RWS)
    assert profile.lat == 1
    assert profile.Lat == 2  # the fast path needs unanimity
