"""``repro serve`` / ``repro work``: the sharded campaign fabric CLI.

``repro serve SPACE`` starts the coordinator: it plans leased shards
over the space's not-yet-completed cells, answers workers on a local
HTTP API, merges their results into a content-addressed run directory,
and finalizes the same ``summary.json`` a single-process ``repro
sweep`` would.  The run directory (and therefore the run id, the
result store, and the merged trace) is *identical* to ``repro sweep
SPACE --run-dir ROOT`` — the two commands resume each other.

``repro work --connect HOST:PORT`` starts one worker loop: claim a
shard, execute it through the unified runtime, stream the results
back, repeat until the coordinator reports the campaign done (or
disappears, which is not an error — the submitted work is durable).

The coordinator writes ``serve.json`` (URL + pid) into the run
directory so scripts can discover an ephemeral ``--port 0`` endpoint.
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from repro.errors import ConfigurationError
from repro.obs.progress import ProgressReporter
from repro.runtime import SPACE_FACTORIES, space_by_name
from repro.runtime.space import ScenarioSpace, vectorized_space
from repro.serve.coordinator import Coordinator
from repro.serve.api import CoordinatorServer
from repro.serve.worker import run_worker

#: The synthetic space name that serves a fuzz stream instead of a
#: registered space ("campaign-over-serve").
FUZZ_SPACE = "fuzz"


def _build_space(args: argparse.Namespace) -> ScenarioSpace:
    if args.space.startswith("mc:"):
        # A model-checking frontier (repro mc prints the exact spec):
        # the coordinator rebuilds cell-for-cell the space the solo
        # `repro mc --run-dir` run executes, so the two resume each
        # other.
        from repro.mc import mc_space_from_spec

        return mc_space_from_spec(args.space)
    if args.space == FUZZ_SPACE:
        from repro.fuzz.strategies import fuzz_stream_space

        return fuzz_stream_space(
            budget=args.count if args.count is not None else 16,
            seed=args.seed if args.seed is not None else 42,
        )
    space = space_by_name(args.space, count=args.count, seed=args.seed)
    if args.engine == "vector":
        space = vectorized_space(space)
    return space


def _cmd_serve(args: argparse.Namespace) -> int:
    try:
        space = _build_space(args)
    except ConfigurationError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    coordinator = Coordinator(
        space,
        run_root=args.run_dir,
        shard_size=args.shard_size,
        lease_ttl=args.lease_ttl,
        check=args.check,
    )
    reporter = ProgressReporter(
        total=len(space.requests),
        path=coordinator.run_dir.progress_path,
        stream=sys.stderr,
        label=f"serve:{space.name}",
    ).start()
    for _ in range(len(coordinator.completed_before)):
        reporter.advance(cached=True)
    coordinator.on_cell = lambda name, cached: reporter.advance(cached=cached)

    server = CoordinatorServer(
        coordinator, host=args.host, port=args.port
    ).start()
    endpoint = coordinator.run_dir.path / "serve.json"
    endpoint.write_text(
        json.dumps(
            {
                "url": server.url,
                "run_id": coordinator.run_dir.run_id,
                "space": space.name,
            },
            sort_keys=True,
        )
        + "\n",
        encoding="utf-8",
    )
    print(f"serving {space.name} at {server.url}", file=sys.stderr)
    print(f"run artifacts: {coordinator.run_dir.path}", file=sys.stderr)

    try:
        while not coordinator.is_complete():
            time.sleep(0.2)
        result, _summary = coordinator.finalize()
    except BaseException:
        coordinator.mark_interrupted()
        reporter.stop(status="interrupted")
        server.shutdown()
        raise
    # Grace period: workers that were mid-claim when the last shard
    # merged still get their clean {"done": true} answer.
    time.sleep(args.linger_s)
    server.shutdown()
    reporter.stop()
    print(result.describe())
    print(f"run artifacts: {coordinator.run_dir.path} (inspect with `repro report`)")
    if args.jsonl:
        count = result.write_merged_jsonl(args.jsonl)
        print(f"wrote {count} merged events to {args.jsonl}")
    if args.check and not result.checks_ok:
        return 1
    return 0


def _cmd_work(args: argparse.Namespace) -> int:
    stats = run_worker(
        args.connect,
        worker_id=args.worker_id,
        jobs=args.jobs,
        throttle_s=args.throttle_s,
        max_shards=args.max_shards,
        connect_timeout_s=args.connect_timeout,
        log=lambda message: print(message, file=sys.stderr),
    )
    print(
        f"worker {stats['worker_id']}: {stats['shards']} shard(s), "
        f"{stats['cells']} cell(s) merged ({stats['reason']})"
    )
    # "disconnected" is a normal end: the coordinator finishes and goes
    # away while late workers are still polling.  Only a rejected claim
    # is a caller error.
    return 0 if stats["reason"] != "rejected" else 1


def register(sub: argparse._SubParsersAction) -> None:
    """Attach this module's subcommands to the root parser."""
    p_serve = sub.add_parser(
        "serve",
        help="coordinate a sharded campaign over HTTP (leased shards)",
    )
    p_serve.add_argument(
        "space",
        help=(
            f"one of {sorted(SPACE_FACTORIES)}, '{FUZZ_SPACE}' to "
            "serve a fuzz stream (--count cases of --seed), or an "
            "'mc:...' spec (printed by repro mc) to serve a "
            "model-checking frontier"
        ),
    )
    p_serve.add_argument(
        "--host",
        default="127.0.0.1",
        help="bind address (default: 127.0.0.1)",
    )
    p_serve.add_argument(
        "--port",
        type=int,
        default=0,
        help="bind port (default: 0 = ephemeral; see serve.json)",
    )
    p_serve.add_argument(
        "--run-dir",
        metavar="ROOT",
        default="runs",
        help=(
            "runs root for the content-addressed run directory "
            "(default: runs); shared with `repro sweep --run-dir`"
        ),
    )
    p_serve.add_argument(
        "--engine",
        choices=("rounds", "vector"),
        default="rounds",
        help="retarget rounds cells at the columnar vector engine",
    )
    p_serve.add_argument(
        "--shard-size",
        type=int,
        default=16,
        metavar="N",
        help="cells per leased shard (default: 16)",
    )
    p_serve.add_argument(
        "--lease-ttl",
        type=float,
        default=60.0,
        metavar="S",
        help="seconds before an unsubmitted lease re-queues (default: 60)",
    )
    p_serve.add_argument(
        "--check",
        action="store_true",
        help="run the trace oracle over every merged cell at finalize",
    )
    p_serve.add_argument(
        "--jsonl",
        metavar="PATH",
        help="write the merged (deterministic) campaign trace to PATH",
    )
    p_serve.add_argument(
        "--count",
        type=int,
        help="cells per random stream / fuzz budget (stream spaces only)",
    )
    p_serve.add_argument(
        "--seed",
        type=int,
        help="stream seed (stream spaces only)",
    )
    p_serve.add_argument(
        "--linger-s",
        type=float,
        default=1.0,
        metavar="S",
        help="seconds to keep answering after the last shard merges",
    )
    p_serve.set_defaults(func=_cmd_serve)

    p_work = sub.add_parser(
        "work",
        help="run one campaign worker against a coordinator",
    )
    p_work.add_argument(
        "--connect",
        required=True,
        metavar="HOST:PORT",
        help="coordinator address (see the run directory's serve.json)",
    )
    p_work.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="processes for vector batch chunks within a shard",
    )
    p_work.add_argument(
        "--worker-id",
        help="lease attribution label (default: host-pid)",
    )
    p_work.add_argument(
        "--throttle-s",
        type=float,
        default=0.0,
        metavar="S",
        help="sleep between chunks (fault-injection/smoke pacing)",
    )
    p_work.add_argument(
        "--max-shards",
        type=int,
        metavar="N",
        help="stop after N shards (fault-injection/smoke pacing)",
    )
    p_work.add_argument(
        "--connect-timeout",
        type=float,
        default=30.0,
        metavar="S",
        help="seconds to wait for the coordinator to appear (default: 30)",
    )
    p_work.set_defaults(func=_cmd_work)
