"""Failure-detector histories (paper Section 2.5).

A failure-detector history is a function ``H : Π × T -> 2^Π`` where
``H(p, t)`` is the set of processes that ``p``'s local detector module
suspects at time ``t``.  A failure *detector* maps each failure pattern
to a set of histories; the history actually observed in a run is one
element of that set.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Callable, Iterable, Mapping


class FailureDetectorHistory(ABC):
    """Abstract history: who does each process suspect at each time."""

    @abstractmethod
    def suspects(self, pid: int, t: int) -> frozenset[int]:
        """Return ``H(pid, t)``."""

    def suspects_at(self, t: int, n: int) -> dict[int, frozenset[int]]:
        """Return every process's suspicion set at time ``t``."""
        return {pid: self.suspects(pid, t) for pid in range(n)}


class TableHistory(FailureDetectorHistory):
    """A history backed by an explicit ``(pid, t) -> suspects`` table.

    Queries beyond the last tabulated time return the suspicion set at
    the last tabulated time (histories we tabulate are stable by then);
    queries before the first tabulated entry return the empty set.
    """

    def __init__(self, table: Mapping[tuple[int, int], Iterable[int]]) -> None:
        self._table: dict[tuple[int, int], frozenset[int]] = {
            key: frozenset(value) for key, value in table.items()
        }
        self._max_time: dict[int, int] = {}
        for pid, t in self._table:
            if t > self._max_time.get(pid, -1):
                self._max_time[pid] = t

    def suspects(self, pid: int, t: int) -> frozenset[int]:
        if (pid, t) in self._table:
            return self._table[(pid, t)]
        last = self._max_time.get(pid)
        if last is not None and t > last:
            return self._table[(pid, last)]
        # Walk backwards to the most recent tabulated entry.
        for back in range(t, -1, -1):
            if (pid, back) in self._table:
                return self._table[(pid, back)]
        return frozenset()


class FunctionHistory(FailureDetectorHistory):
    """A history computed on the fly by a ``(pid, t) -> set`` function."""

    def __init__(self, fn: Callable[[int, int], Iterable[int]]) -> None:
        self._fn = fn

    def suspects(self, pid: int, t: int) -> frozenset[int]:
        return frozenset(self._fn(pid, t))


class ConstantHistory(FailureDetectorHistory):
    """A history in which every process always suspects the same set.

    Mostly useful in tests and as a degenerate adversarial history (for
    instance, the empty constant history never suspects anyone, which
    violates completeness whenever somebody crashes).
    """

    def __init__(self, suspected: Iterable[int] = ()) -> None:
        self._suspected = frozenset(suspected)

    def suspects(self, pid: int, t: int) -> frozenset[int]:
        return self._suspected
