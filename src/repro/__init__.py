"""repro — Synchronous System vs Perfect Failure Detector, executable.

A from-scratch reproduction of

    Bernadette Charron-Bost, Rachid Guerraoui, André Schiper.
    "Synchronous System and Perfect Failure Detector: solvability and
    efficiency issues."  DSN 2000.

The library implements every system the paper builds on — a step-level
message-passing kernel, the synchronous model SS (Φ/Δ bounds), the
Chandra–Toueg failure-detector hierarchy and the SP model, the round
models RS and RWS with reified adversaries, the emulations tying them
together — plus every algorithm the paper presents (FloodSet,
FloodSetWS, the C_Opt/F_Opt fast paths, A1, the SDD algorithms, atomic
commit), and the analysis machinery that turns the paper's theorems and
latency equalities into exhaustive, mechanical experiments (E1–E15).

Quickstart::

    from repro import run_rs, FloodSet, FailureScenario

    run = run_rs(FloodSet(), values=[0, 1, 1],
                 scenario=FailureScenario.failure_free(3), t=1)
    print(run.decisions)      # every process decides 0 at round 2

See ``examples/`` for complete walkthroughs and ``python -m repro
experiments`` for the full reproduction suite.
"""

from repro.errors import (
    ReproError,
    ConfigurationError,
    ScheduleError,
    SynchronyViolation,
    DetectorViolation,
    ScenarioError,
    SpecificationViolation,
    ExecutionError,
)
from repro.failures import FailurePattern, PerfectDetector
from repro.models import AsynchronousModel, PerfectFDModel, SynchronousModel
from repro.rounds import (
    CrashEvent,
    FailureScenario,
    PendingMessage,
    RoundAlgorithm,
    RoundModel,
    RoundRun,
    run_rs,
    run_rws,
)
from repro.consensus import (
    A1,
    COptFloodSet,
    COptFloodSetWS,
    FloodSet,
    FloodSetWS,
    FOptFloodSet,
    FOptFloodSetWS,
    check_consensus_run,
    check_uniform_consensus_run,
)
from repro.analysis import (
    LatencyProfile,
    latency_profile,
    verify_algorithm,
)
from repro.core import (
    EXPERIMENTS,
    ExperimentResult,
    run_all_experiments,
    run_experiment,
)

__version__ = "1.0.0"

__all__ = [
    # errors
    "ReproError",
    "ConfigurationError",
    "ScheduleError",
    "SynchronyViolation",
    "DetectorViolation",
    "ScenarioError",
    "SpecificationViolation",
    "ExecutionError",
    # models & failures
    "FailurePattern",
    "PerfectDetector",
    "AsynchronousModel",
    "SynchronousModel",
    "PerfectFDModel",
    # round models
    "CrashEvent",
    "FailureScenario",
    "PendingMessage",
    "RoundAlgorithm",
    "RoundModel",
    "RoundRun",
    "run_rs",
    "run_rws",
    # algorithms
    "A1",
    "FloodSet",
    "FloodSetWS",
    "COptFloodSet",
    "COptFloodSetWS",
    "FOptFloodSet",
    "FOptFloodSetWS",
    # specs & analysis
    "check_consensus_run",
    "check_uniform_consensus_run",
    "LatencyProfile",
    "latency_profile",
    "verify_algorithm",
    # experiments
    "EXPERIMENTS",
    "ExperimentResult",
    "run_experiment",
    "run_all_experiments",
    "__version__",
]
