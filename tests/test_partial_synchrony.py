"""Tests for partial synchrony (GST) and the adaptive ◊P detector."""

from __future__ import annotations

import random

import pytest

from repro.errors import ConfigurationError
from repro.failures import (
    AdaptiveTimeoutDetector,
    FailurePattern,
    classify_history,
    history_from_run,
)
from repro.models import (
    PartiallySynchronousModel,
    validate_post_gst,
    validate_ss_run,
)
from repro.simulation.automaton import IdleAutomaton
from repro.simulation.executor import StepExecutor


def run_detector(
    *, crashes=None, seed=0, gst=120, steps=900, phi=1, delta=2,
    pre_prob=0.15, n=3,
):
    rng = random.Random(seed)
    model = PartiallySynchronousModel(
        phi=phi, delta=delta, gst=gst, pre_gst_delivery_prob=pre_prob
    )
    pattern = FailurePattern.with_crashes(n, crashes or {})
    executor = StepExecutor(
        AdaptiveTimeoutDetector(n),
        n,
        pattern,
        model.make_scheduler(rng),
        record_states=True,
    )
    run = executor.execute(steps)
    return run, pattern, model


class TestModel:
    def test_rejects_negative_gst(self):
        with pytest.raises(ConfigurationError):
            PartiallySynchronousModel(gst=-1)

    @pytest.mark.parametrize("seed", range(4))
    def test_post_gst_suffix_is_ss_admissible(self, seed):
        run, pattern, model = run_detector(seed=seed, steps=500)
        assert model.validate(run) == []

    def test_pre_gst_chaos_violates_plain_ss(self):
        """The prefix genuinely misbehaves: the full run usually fails
        the plain SS validator even though the suffix passes."""
        violated = 0
        for seed in range(6):
            run, _, model = run_detector(seed=seed, gst=200, steps=500,
                                         pre_prob=0.05)
            if validate_ss_run(run, model.phi, model.delta):
                violated += 1
        assert violated > 0

    def test_gst_zero_degenerates_to_ss(self):
        run, _, model = run_detector(seed=3, gst=0, steps=300)
        assert validate_ss_run(run, model.phi, model.delta) == []

    def test_validate_post_gst_empty_suffix(self):
        run, pattern, model = run_detector(seed=1, steps=50, gst=100)
        # Nothing after GST: vacuously fine.
        assert validate_post_gst(run, model.phi, model.delta, 100) == []


class TestAdaptiveDetector:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ConfigurationError):
            AdaptiveTimeoutDetector(1)
        with pytest.raises(ConfigurationError):
            AdaptiveTimeoutDetector(3, initial_timeout=0)

    @pytest.mark.parametrize("seed", range(5))
    def test_eventually_perfect_with_crash(self, seed):
        run, pattern, _ = run_detector(
            crashes={1: 250}, seed=seed
        )
        history = history_from_run(run)
        report = classify_history(history, pattern, len(run.schedule) - 1)
        assert report.matches_class("<>P"), report.violations

    @pytest.mark.parametrize("seed", range(5))
    def test_eventually_perfect_crash_free(self, seed):
        run, pattern, _ = run_detector(seed=seed)
        history = history_from_run(run)
        report = classify_history(history, pattern, len(run.schedule) - 1)
        assert report.matches_class("<>P"), report.violations

    def test_pre_gst_mistakes_actually_happen(self):
        """The 'eventual' is not vacuous: chaotic prefixes cause false
        suspicions, so the output is ◊P and provably not P."""
        mistakes = 0
        for seed in range(8):
            run, pattern, _ = run_detector(seed=seed)
            history = history_from_run(run)
            report = classify_history(
                history, pattern, len(run.schedule) - 1
            )
            if not report.strong_accuracy:
                mistakes += 1
        assert mistakes > 0

    def test_timeouts_grow_on_refutation(self):
        run, _, _ = run_detector(seed=2)
        initial = AdaptiveTimeoutDetector(3).initial_timeout
        grew = any(
            any(timeout > initial for timeout in state.timeouts.values())
            for state in run.final_states.values()
        )
        assert grew, "no suspicion was ever refuted — test setup too tame"

    def test_crashed_peer_stays_suspected(self):
        run, pattern, _ = run_detector(crashes={1: 200}, seed=4)
        for pid in (0, 2):
            assert 1 in run.final_states[pid].suspected

    def test_survivors_eventually_trust_each_other(self):
        run, pattern, _ = run_detector(crashes={1: 200}, seed=4)
        assert 2 not in run.final_states[0].suspected
        assert 0 not in run.final_states[2].suspected
