"""Tests for the RWS round-1 lower-bound machinery (experiment E10)."""

from __future__ import annotations

import pytest

from repro.analysis import refute_round_one_decision, round_one_survey
from repro.analysis.lowerbound import _has_round_one_property
from repro.consensus import A1, FloodSetWS
from repro.consensus.candidates import (
    ROUND_ONE_CANDIDATES,
    A1Halt,
    LeaderOrOwn,
    MinRoundOne,
)


class TestRoundOneProperty:
    def test_a1_has_it(self):
        assert _has_round_one_property(A1(), 3, 1, (0, 1))

    def test_floodsetws_does_not(self):
        assert not _has_round_one_property(FloodSetWS(), 3, 1, (0, 1))

    @pytest.mark.parametrize(
        "candidate", ROUND_ONE_CANDIDATES, ids=lambda c: c.name
    )
    def test_all_candidates_have_it(self, candidate):
        assert _has_round_one_property(candidate, 3, 1, (0, 1))


class TestRefutation:
    @pytest.mark.parametrize(
        "candidate", ROUND_ONE_CANDIDATES, ids=lambda c: c.name
    )
    def test_every_candidate_is_refuted(self, candidate):
        """The executable shape of the companion paper's lower bound."""
        verdict = refute_round_one_decision(candidate, 3, 1)
        assert verdict.has_round_one_property
        assert verdict.refuted, verdict.describe()

    def test_refutation_names_a_scenario(self):
        verdict = refute_round_one_decision(A1(), 3, 1)
        assert verdict.violation is not None
        assert verdict.violation.scenario

    def test_safe_algorithm_is_not_refuted(self):
        verdict = refute_round_one_decision(FloodSetWS(), 3, 1)
        assert not verdict.has_round_one_property
        assert not verdict.refuted
        assert "Λ >= 2" in verdict.describe()

    def test_survey_covers_all_candidates(self):
        verdicts = round_one_survey(ROUND_ONE_CANDIDATES, 3, 1)
        assert len(verdicts) == len(ROUND_ONE_CANDIDATES)
        assert all(
            v.refuted or not v.has_round_one_property for v in verdicts
        )


class TestCandidateBehaviours:
    def test_a1_halt_still_breaks(self):
        """The FloodSetWS-style repair does not save A1 — the paper's
        'modifications ... do not preclude such disagreement'."""
        verdict = refute_round_one_decision(A1Halt(), 3, 1)
        assert verdict.refuted

    def test_min_round_one_breaks(self):
        verdict = refute_round_one_decision(MinRoundOne(), 3, 1)
        assert verdict.refuted

    def test_leader_or_own_breaks(self):
        verdict = refute_round_one_decision(LeaderOrOwn(), 3, 1)
        assert verdict.refuted
