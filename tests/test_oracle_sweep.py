"""Chaos-style sweep: the trace oracle over every workload scenario.

The checkers are only worth trusting if the engines never trip them on
legitimate runs.  This sweep executes every named workload scenario,
a matrix of algorithms, randomized scenarios from the enumeration
sampler, and both emulation engines — and runs the full checker suite
(plus replay, where the model allows it) over each trace.  Model
invariants must always hold; only consensus may break, and only on the
scenarios documented to break it.
"""

from __future__ import annotations

import random

import pytest

from repro.consensus import (
    A1,
    COptFloodSet,
    FloodSet,
    FloodSetWS,
    FOptFloodSet,
)
from repro.failures import FailurePattern
from repro.obs import (
    EventLog,
    check_events,
    logical_clock,
    reconstruct_scenario,
    replay_events,
)
from repro.rounds import RoundModel, run_rs, run_rws
from repro.rounds.enumeration import random_scenario
from repro.workloads import (
    a1_rws_disagreement,
    adversarial_split,
    crash_mid_broadcast,
    decide_then_crash_pending,
    failure_free,
    floodset_rws_violation,
    initially_dead_t,
    unanimous,
)

#: (name, algorithm factory, values, scenario, model)
WORKLOADS = [
    ("failure-free-rs", FloodSet, adversarial_split(3), failure_free(3), RoundModel.RS),
    ("failure-free-rws", FloodSet, adversarial_split(3), failure_free(3), RoundModel.RWS),
    ("initially-dead", FOptFloodSet, adversarial_split(3), initially_dead_t(3, 1), RoundModel.RS),
    ("mid-broadcast-rs", FloodSet, adversarial_split(3), crash_mid_broadcast(3), RoundModel.RS),
    ("mid-broadcast-copt", COptFloodSet, unanimous(3), crash_mid_broadcast(3), RoundModel.RS),
    ("floodset-rws", FloodSet, adversarial_split(3), floodset_rws_violation(3), RoundModel.RWS),
    ("a1-rws", A1, adversarial_split(3), a1_rws_disagreement(3), RoundModel.RWS),
    ("decide-then-crash", FloodSetWS, adversarial_split(3), decide_then_crash_pending(3), RoundModel.RWS),
]

#: Workloads where a consensus violation is the documented outcome.
MAY_DISAGREE = {"floodset-rws", "a1-rws", "decide-then-crash"}


def _run_and_check(name, algorithm, values, scenario, model):
    log = EventLog(clock=logical_clock())
    runner = run_rws if model is RoundModel.RWS else run_rs
    runner(algorithm, values, scenario, t=1, max_rounds=4, observer=log)
    report = check_events(
        log.events, model=model.value, initial_values=values
    )
    model_errors = [v for v in report.errors if v.checker != "consensus"]
    assert model_errors == [], f"{name}: {[v.describe() for v in model_errors]}"
    consensus = [v for v in report.errors if v.checker == "consensus"]
    if name not in MAY_DISAGREE:
        assert consensus == [], (
            f"{name}: {[v.describe() for v in consensus]}"
        )
    return log


class TestWorkloadSweep:
    @pytest.mark.parametrize(
        "name,factory,values,scenario,model",
        WORKLOADS,
        ids=[w[0] for w in WORKLOADS],
    )
    def test_scenario_passes_oracle(self, name, factory, values, scenario, model):
        _run_and_check(name, factory(), values, scenario, model)

    @pytest.mark.parametrize(
        "name,factory,values,scenario,model",
        WORKLOADS,
        ids=[w[0] for w in WORKLOADS],
    )
    def test_scenario_replays_byte_for_byte(
        self, name, factory, values, scenario, model
    ):
        log = _run_and_check(name, factory(), values, scenario, model)
        report = replay_events(factory(), values, log.events, t=1)
        assert report.exact, report.describe()


class TestRandomScenarioSweep:
    """Randomized adversaries: the oracle must accept whatever the
    validated sampler produces, and replay must reproduce it."""

    @pytest.mark.parametrize("model", [RoundModel.RS, RoundModel.RWS])
    def test_random_scenarios_pass_model_invariants(self, model):
        rng = random.Random(42)
        for trial in range(25):
            scenario = random_scenario(
                4,
                1,
                max_round=3,
                allow_pending=(model is RoundModel.RWS),
                rng=rng,
            )
            # a pending message in round k obliges a crash by round
            # k + 1, so the horizon must extend one round past the
            # sampler's max_round
            log = EventLog(clock=logical_clock())
            runner = run_rws if model is RoundModel.RWS else run_rs
            runner(
                FloodSet(),
                adversarial_split(4),
                scenario,
                t=1,
                max_rounds=4,
                observer=log,
            )
            report = check_events(log.events, model=model.value)
            model_errors = [
                v for v in report.errors if v.checker != "consensus"
            ]
            assert model_errors == [], (
                f"trial {trial} {scenario.describe()}: "
                f"{[v.describe() for v in model_errors]}"
            )

    def test_random_scenarios_reconstruct_and_replay(self):
        rng = random.Random(7)
        for trial in range(15):
            scenario = random_scenario(
                3, 1, max_round=3, allow_pending=True, rng=rng
            )
            log = EventLog(clock=logical_clock())
            run_rws(
                FloodSet(),
                adversarial_split(3),
                scenario,
                t=1,
                max_rounds=4,
                observer=log,
            )
            rebuilt = reconstruct_scenario(log.events)
            # crashes after the executed horizon leave no trace; every
            # reconstructed fact must match the original scenario
            assert rebuilt.pending <= scenario.pending
            for crash in rebuilt.crashes:
                assert crash in scenario.crashes
            report = replay_events(
                FloodSet(), adversarial_split(3), log.events, t=1
            )
            assert report.exact, f"trial {trial}: {report.describe()}"


class TestEmulationSweep:
    """Lifted emulation traces must satisfy the step-level invariants."""

    def test_rs_on_ss_trace_passes_oracle(self):
        from repro.emulation import emulate_rs_on_ss

        log = EventLog(clock=logical_clock())
        emulate_rs_on_ss(
            FloodSet(),
            adversarial_split(3),
            FailurePattern.with_crashes(3, {0: 7}),
            t=1,
            rng=random.Random(3),
            observer=log,
        )
        report = check_events(log.events, model=None)
        model_errors = [v for v in report.errors if v.checker != "consensus"]
        assert model_errors == [], [v.describe() for v in model_errors]

    def test_rws_on_sp_trace_passes_oracle(self):
        from repro.emulation import emulate_rws_on_sp

        log = EventLog(clock=logical_clock())
        emulate_rws_on_sp(
            FloodSet(),
            adversarial_split(3),
            FailurePattern.with_crashes(3, {0: 5}),
            t=1,
            num_rounds=2,
            rng=random.Random(11),
            max_detection_delay=2,
            delivery_prob=0.15,
            max_age=80,
            observer=log,
        )
        report = check_events(log.events, model="RWS")
        model_errors = [v for v in report.errors if v.checker != "consensus"]
        assert model_errors == [], [v.describe() for v in model_errors]
