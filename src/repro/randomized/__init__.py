"""Randomized consensus: the third way around the FLP impossibility.

The paper's introduction frames two approaches to circumventing the
asynchronous impossibility of consensus [13]: timing assumptions
(SS and its relaxations) and failure detectors (SP and the hierarchy).
The literature's third classic is *randomization* — Ben-Or's algorithm
solves consensus in the plain asynchronous model with no detector at
all, at the price of probabilistic (rather than certain) termination.
Including it completes the library's survey of the design space the
paper is positioned in: per-run safety is still deterministic and
checkable; only the number of rounds is a random variable.
"""

from repro.randomized.benor import (
    BenOrConsensus,
    BenOrState,
    benor_decisions,
    run_benor,
)

__all__ = [
    "BenOrConsensus",
    "BenOrState",
    "benor_decisions",
    "run_benor",
]
