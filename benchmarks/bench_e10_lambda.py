"""E10 — the Λ >= 2 lower bound in RWS vs Λ(A1) = 1 in RS.

Times the refutation survey over the round-1-deciding candidate pool
and the Λ computation for every safe RWS algorithm.
"""

from repro.analysis import latency_profile, round_one_survey
from repro.consensus import COptFloodSetWS, FloodSetWS, FOptFloodSetWS
from repro.consensus.candidates import ROUND_ONE_CANDIDATES
from repro.rounds import RoundModel


def bench_e10_round_one_survey(once):
    verdicts = once(round_one_survey, ROUND_ONE_CANDIDATES, 3, 1)
    assert all(
        v.refuted or not v.has_round_one_property for v in verdicts
    )


def bench_e10_safe_rws_lambdas(once):
    def lambdas():
        return {
            algorithm.name: latency_profile(
                algorithm, 3, 1, RoundModel.RWS
            ).Lambda
            for algorithm in (
                FloodSetWS(), COptFloodSetWS(), FOptFloodSetWS()
            )
        }

    measured = once(lambdas)
    assert all(value >= 2 for value in measured.values())
