"""Tests for the report generator and the X-series extensions."""

from __future__ import annotations

import pytest

from repro.core import EXTENSIONS, run_all_extensions, run_extension
from repro.core.report import format_result, generate_report, write_report
from repro.core.experiments import ExperimentResult, run_experiment


class TestExtensions:
    def test_registry_contents(self):
        assert sorted(EXTENSIONS) == [
            "X1", "X2", "X3", "X4", "X5", "X6", "X7",
        ]

    @pytest.mark.parametrize("ext_id", ["X2", "X3", "X4", "X6"])
    def test_fast_extensions_pass(self, ext_id):
        result = run_extension(ext_id)
        assert result.ok, result.describe()

    @pytest.mark.slow
    def test_x1_resilience_sweep_passes(self):
        result = run_extension("X1")
        assert result.ok, result.describe()

    @pytest.mark.slow
    def test_x5_uniform_harder_than_consensus(self):
        result = run_extension("X5")
        assert result.ok, result.describe()

    @pytest.mark.slow
    def test_x7_early_deciding_gap(self):
        result = run_extension("X7")
        assert result.ok, result.describe()

    def test_lowercase_id(self):
        assert run_extension("x3").exp_id == "X3"

    def test_unknown_id(self):
        with pytest.raises(KeyError):
            run_extension("X9")

    def test_extension_claims_are_labelled(self):
        result = run_extension("X3")
        assert result.paper_claim.startswith("(extension)")


class TestReportFormatting:
    def test_format_result_sections(self):
        result = run_experiment("E2")
        text = format_result(result)
        assert text.startswith("## E2")
        assert "*Paper claim.*" in text
        assert "*Verdict.* PASS" in text

    def test_format_includes_details_block(self):
        result = ExperimentResult(
            exp_id="E0",
            title="demo",
            paper_claim="claim",
            measured="measured",
            ok=True,
            details=["line one", "line two"],
        )
        text = format_result(result)
        assert "```" in text and "line two" in text

    @pytest.mark.slow
    def test_generate_report_runs_everything(self):
        content = generate_report(quick=True)
        assert content.count("## E") == 15
        assert "15/15 experiments pass" in content
        assert "Notes and observed deviations" in content

    @pytest.mark.slow
    def test_write_report_to_file(self, tmp_path):
        path = tmp_path / "EXPERIMENTS.md"
        passed = write_report(str(path), quick=True)
        assert passed == 15
        assert path.read_text().startswith("# EXPERIMENTS")
