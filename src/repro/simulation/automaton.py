"""Process automata for the step-level kernel.

An algorithm (paper Section 2.2) is a collection of ``n`` deterministic
automata, one per process.  Each automaton exposes an initial state and a
step function.  Determinism is required by the paper's definitions and is
what makes indistinguishability arguments (and our mechanical replays of
them) possible: a process's behaviour is a function of its initial state
and the sequence of message sets (plus failure-detector values) it
observes.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Any

from repro.simulation.message import Message


@dataclass(frozen=True)
class StepContext:
    """Everything an automaton may observe during one step.

    Attributes:
        pid: Index of the process taking the step.
        n: Total number of processes in the system.
        state: The process state at the beginning of the step.
        received: Messages delivered in this step (possibly empty).
        local_step: How many steps this process has taken so far,
            counting this one (1 for the first step).  Processes do not
            have access to the global clock (paper Section 2), but they
            may count their own steps; the SS algorithm for SDD relies
            on exactly this.
        suspects: The set of processes currently suspected by this
            process's failure-detector module, or ``None`` when the run
            takes place in a model without failure detectors.
    """

    pid: int
    n: int
    state: Any
    received: tuple[Message, ...]
    local_step: int
    suspects: frozenset[int] | None = None

    def payloads_from(self, sender: int) -> list[Any]:
        """Return the payloads of messages received from ``sender``."""
        return [m.payload for m in self.received if m.sender == sender]


@dataclass(frozen=True)
class StepOutcome:
    """The result of one step: a new state and at most one send.

    Per the paper's step semantics a process "may send a message to a
    single process" in each step; broadcast therefore costs ``n`` steps
    at this level (which is precisely why the round emulation of
    Section 4.1 charges ``n + k`` steps per round).

    Attributes:
        state: The process state after the step.
        send_to: Destination process index, or ``None`` for no send.
        payload: Payload of the sent message (ignored when ``send_to``
            is ``None``).
    """

    state: Any
    send_to: int | None = None
    payload: Any = None


class StepAutomaton(ABC):
    """Deterministic automaton run by one (or all) process(es).

    A single :class:`StepAutomaton` instance may serve all processes
    (the common case: the automaton dispatches on ``ctx.pid``), or the
    executor may be given one instance per process.
    """

    @abstractmethod
    def initial_state(self, pid: int, n: int) -> Any:
        """Return the initial state for process ``pid`` of ``n``."""

    @abstractmethod
    def on_step(self, ctx: StepContext) -> StepOutcome:
        """Execute one atomic step and return its outcome.

        Implementations must be deterministic functions of ``ctx`` and
        must not mutate ``ctx.state`` in place — they should build and
        return a fresh state (or return the same object unchanged).
        """


class IdleAutomaton(StepAutomaton):
    """An automaton that never changes state and never sends.

    Useful as a placeholder for processes that only consume messages,
    and in kernel tests.
    """

    def initial_state(self, pid: int, n: int) -> Any:
        return None

    def on_step(self, ctx: StepContext) -> StepOutcome:
        return StepOutcome(state=ctx.state)
