"""Crash failure patterns (paper Section 2.1).

A failure pattern is a function ``F`` from clock ticks to sets of
processes, where ``F(t)`` is the set of processes that have crashed *by*
time ``t``.  Crashes are permanent (``F(t) ⊆ F(t+1)``): a process never
recovers.  We represent a pattern by the crash time of each faulty
process, which makes monotonicity true by construction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class FailurePattern:
    """An immutable crash failure pattern over ``n`` processes.

    Attributes:
        n: Number of processes; process ids are ``0 .. n-1``.
        crash_times: Maps each *faulty* process to the first clock tick
            at which it is crashed.  A process with crash time ``0`` is
            *initially dead*: it never takes a single step.  Processes
            absent from the mapping are correct.
    """

    n: int
    crash_times: Mapping[int, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.n <= 0:
            raise ConfigurationError(f"n must be positive, got {self.n}")
        for pid, time in self.crash_times.items():
            if not 0 <= pid < self.n:
                raise ConfigurationError(
                    f"crash of unknown process {pid} (n={self.n})"
                )
            if time < 0:
                raise ConfigurationError(
                    f"crash time of process {pid} is negative ({time})"
                )
        # Freeze the mapping so the dataclass is genuinely immutable.
        object.__setattr__(self, "crash_times", dict(self.crash_times))

    # -- paper-level queries -------------------------------------------------

    def crashed_by(self, t: int) -> frozenset[int]:
        """Return ``F(t)``: the processes crashed by time ``t``."""
        return frozenset(
            pid for pid, ct in self.crash_times.items() if ct <= t
        )

    def is_alive(self, pid: int, t: int) -> bool:
        """Return True iff ``pid`` has not crashed by time ``t``."""
        ct = self.crash_times.get(pid)
        return ct is None or ct > t

    @property
    def faulty(self) -> frozenset[int]:
        """``Faulty(F)``: processes that crash at some time."""
        return frozenset(self.crash_times)

    @property
    def correct(self) -> frozenset[int]:
        """``Correct(F) = Π \\ Faulty(F)``."""
        return frozenset(range(self.n)) - self.faulty

    @property
    def initially_dead(self) -> frozenset[int]:
        """Processes crashed at time 0, i.e. before taking any step."""
        return self.crashed_by(0)

    def crash_time(self, pid: int) -> int | None:
        """Return the crash time of ``pid``, or ``None`` if correct."""
        return self.crash_times.get(pid)

    def num_failures(self) -> int:
        """Return ``|Faulty(F)|``."""
        return len(self.crash_times)

    # -- constructors ---------------------------------------------------------

    @classmethod
    def crash_free(cls, n: int) -> "FailurePattern":
        """A pattern in which every process is correct."""
        return cls(n=n, crash_times={})

    @classmethod
    def with_crashes(cls, n: int, crashes: Mapping[int, int]) -> "FailurePattern":
        """A pattern with the given ``pid -> crash time`` mapping."""
        return cls(n=n, crash_times=dict(crashes))

    @classmethod
    def initially_dead_set(cls, n: int, pids: Iterable[int]) -> "FailurePattern":
        """A pattern in which ``pids`` are dead from time 0."""
        return cls(n=n, crash_times={pid: 0 for pid in pids})

    # -- misc -----------------------------------------------------------------

    def describe(self) -> str:
        """Return a short human-readable description of the pattern."""
        if not self.crash_times:
            return f"crash-free({self.n})"
        parts = ", ".join(
            f"p{pid}@{t}" for pid, t in sorted(self.crash_times.items())
        )
        return f"crashes({self.n}; {parts})"
