"""JSON round-trips for the library's report and adversary objects.

Experiments produce scenarios, latency profiles and experiment results
that users want to archive, diff across versions, or feed to plotting
tools; this module gives them stable JSON forms.

Only *data* objects are serialised.  Runs and histories are deliberately
excluded: they embed arbitrary application payloads and (for histories)
functions; persist the scenario + seed instead and re-execute — the
library is deterministic by construction.
"""

from __future__ import annotations

import json
from typing import Any

from repro.analysis.latency import LatencyProfile
from repro.commit.rates import CommitRateReport
from repro.core.experiments import ExperimentResult
from repro.errors import ConfigurationError
from repro.failures.pattern import FailurePattern
from repro.rounds.scenario import CrashEvent, FailureScenario, PendingMessage


# -- failure scenarios --------------------------------------------------------


def scenario_to_dict(scenario: FailureScenario) -> dict[str, Any]:
    """A stable, JSON-ready form of a failure scenario."""
    return {
        "n": scenario.n,
        "crashes": [
            {
                "pid": event.pid,
                "round": event.round,
                "sent_to": sorted(event.sent_to),
                "applies_transition": event.applies_transition,
            }
            for event in sorted(scenario.crashes, key=lambda e: e.pid)
        ],
        "pending": [
            {
                "sender": pend.sender,
                "recipient": pend.recipient,
                "round": pend.round,
            }
            for pend in sorted(
                scenario.pending,
                key=lambda m: (m.round, m.sender, m.recipient),
            )
        ],
    }


def scenario_from_dict(data: dict[str, Any]) -> FailureScenario:
    """Inverse of :func:`scenario_to_dict`."""
    try:
        crashes = tuple(
            CrashEvent(
                pid=entry["pid"],
                round=entry["round"],
                sent_to=frozenset(entry.get("sent_to", ())),
                applies_transition=entry.get("applies_transition", False),
            )
            for entry in data.get("crashes", ())
        )
        pending = frozenset(
            PendingMessage(
                sender=entry["sender"],
                recipient=entry["recipient"],
                round=entry["round"],
            )
            for entry in data.get("pending", ())
        )
        return FailureScenario(n=data["n"], crashes=crashes, pending=pending)
    except KeyError as missing:
        raise ConfigurationError(
            f"scenario dict is missing the {missing} field"
        ) from None


def scenario_to_json(scenario: FailureScenario) -> str:
    return json.dumps(scenario_to_dict(scenario), sort_keys=True)


def scenario_from_json(text: str) -> FailureScenario:
    return scenario_from_dict(json.loads(text))


# -- failure patterns ---------------------------------------------------------


def pattern_to_dict(pattern: FailurePattern) -> dict[str, Any]:
    """A stable, JSON-ready form of a step-model failure pattern."""
    return {
        "n": pattern.n,
        "crash_times": {
            str(pid): time
            for pid, time in sorted(pattern.crash_times.items())
        },
    }


def pattern_from_dict(data: dict[str, Any]) -> FailurePattern:
    """Inverse of :func:`pattern_to_dict`."""
    try:
        return FailurePattern(
            n=data["n"],
            crash_times={
                int(pid): time
                for pid, time in data.get("crash_times", {}).items()
            },
        )
    except KeyError as missing:
        raise ConfigurationError(
            f"pattern dict is missing the {missing} field"
        ) from None


# -- latency profiles ----------------------------------------------------------


def profile_to_dict(profile: LatencyProfile) -> dict[str, Any]:
    """JSON-ready form of a latency profile.

    Configuration keys (value tuples) become string keys, since JSON
    objects cannot be keyed by arrays.
    """
    return {
        "algorithm": profile.algorithm,
        "model": profile.model,
        "n": profile.n,
        "t": profile.t,
        "lat": profile.lat,
        "Lat": profile.Lat,
        "Lambda": profile.Lambda,
        "Lat_by_failures": {
            str(f): v for f, v in sorted(profile.Lat_by_failures.items())
        },
        "lat_by_config": {
            json.dumps(list(config)): latency
            for config, latency in sorted(profile.lat_by_config.items())
        },
        "runs_explored": profile.runs_explored,
    }


def profile_from_dict(data: dict[str, Any]) -> LatencyProfile:
    return LatencyProfile(
        algorithm=data["algorithm"],
        model=data["model"],
        n=data["n"],
        t=data["t"],
        lat=data["lat"],
        Lat=data["Lat"],
        Lambda=data["Lambda"],
        Lat_by_failures={
            int(f): v for f, v in data["Lat_by_failures"].items()
        },
        lat_by_config={
            tuple(json.loads(config)): latency
            for config, latency in data["lat_by_config"].items()
        },
        runs_explored=data["runs_explored"],
    )


# -- experiment results ---------------------------------------------------------


def result_to_dict(result: ExperimentResult) -> dict[str, Any]:
    return {
        "exp_id": result.exp_id,
        "title": result.title,
        "paper_claim": result.paper_claim,
        "measured": result.measured,
        "ok": result.ok,
        "details": list(result.details),
    }


def result_from_dict(data: dict[str, Any]) -> ExperimentResult:
    return ExperimentResult(
        exp_id=data["exp_id"],
        title=data["title"],
        paper_claim=data["paper_claim"],
        measured=data["measured"],
        ok=data["ok"],
        details=list(data.get("details", ())),
    )


# -- commit-rate reports ---------------------------------------------------------


def commit_report_to_dict(report: CommitRateReport) -> dict[str, Any]:
    return {
        "algorithm": report.algorithm,
        "model": report.model,
        "n": report.n,
        "t": report.t,
        "runs": report.runs,
        "commits": report.commits,
        "aborts": report.aborts,
        "undecided": report.undecided,
        "commit_rate": report.commit_rate,
        "violations": [str(v) for v in report.violations],
    }
