"""Tests for the A1 algorithm (Figure 4, Theorem 5.2)."""

from __future__ import annotations

import pytest

from repro.analysis import latency_profile, verify_algorithm
from repro.consensus import A1, check_uniform_consensus_run
from repro.errors import ConfigurationError
from repro.rounds import (
    CrashEvent,
    FailureScenario,
    RoundModel,
    run_rs,
    run_rws,
)
from repro.workloads import a1_rws_disagreement


class TestA1Unit:
    def test_requires_t_equal_one(self):
        with pytest.raises(ConfigurationError):
            A1().initial_state(0, 3, 2, 0)

    def test_requires_two_processes(self):
        with pytest.raises(ConfigurationError):
            A1().initial_state(0, 1, 1, 0)

    def test_only_p1_talks_in_round_one(self):
        algorithm = A1()
        s0 = algorithm.initial_state(0, 3, 1, 7)
        s1 = algorithm.initial_state(1, 3, 1, 8)
        assert algorithm.messages(0, s0) != {}
        assert algorithm.messages(1, s1) == {}

    def test_receiver_adopts_p1_value_at_round_one(self):
        algorithm = A1()
        state = algorithm.initial_state(2, 3, 1, 9)
        state = algorithm.transition(2, state, {0: ("value", 4)})
        assert state.decision == 4
        assert state.w == 4


class TestA1FailureFree:
    @pytest.mark.parametrize("n", [2, 3, 4])
    def test_everyone_decides_v1_at_round_one(self, n):
        values = list(range(n))
        run = run_rs(A1(), values, FailureScenario.failure_free(n), t=1)
        assert all(run.decision_round(p) == 1 for p in range(n))
        assert run.decided_values() == {0}

    def test_lambda_is_one(self):
        profile = latency_profile(A1(), 3, 1, RoundModel.RS)
        assert profile.Lambda == 1
        assert profile.Lat == 1
        assert profile.lat == 1


class TestA1CrashCases:
    def test_case_2a_partial_broadcast_relayed(self):
        """p1 reaches only p2 before crashing; p2 relays at round 2."""
        scenario = FailureScenario(
            n=3, crashes=(CrashEvent(pid=0, round=1, sent_to=frozenset({1})),)
        )
        run = run_rs(A1(), [4, 5, 6], scenario, t=1)
        assert run.decision_value(1) == 4
        assert run.decision_value(2) == 4
        assert run.decision_round(2) == 2

    def test_case_2b_p1_reaches_nobody(self):
        """p2 broadcasts its own value at round 2; everyone takes it."""
        scenario = FailureScenario.initially_dead_set(3, {0})
        run = run_rs(A1(), [4, 5, 6], scenario, t=1)
        assert run.decision_value(1) == 5
        assert run.decision_value(2) == 5

    def test_p2_crash_does_not_matter_when_p1_correct(self):
        scenario = FailureScenario(
            n=3, crashes=(CrashEvent(pid=1, round=1),)
        )
        run = run_rs(A1(), [4, 5, 6], scenario, t=1)
        assert run.decision_value(0) == 4
        assert run.decision_value(2) == 4

    def test_theorem_5_2_exhaustively(self):
        report = verify_algorithm(A1(), 3, 1, RoundModel.RS)
        assert report.ok, report.first_violations()

    def test_theorem_5_2_exhaustively_n4(self):
        report = verify_algorithm(A1(), 4, 1, RoundModel.RS)
        assert report.ok, report.first_violations()

    def test_all_runs_decide_within_two_rounds(self):
        profile = latency_profile(A1(), 3, 1, RoundModel.RS)
        assert profile.Lat_by_failures[1] == 2


class TestA1InRWS:
    def test_paper_disagreement_scenario(self):
        """Section 5.3: p1 decides on its own pending broadcast."""
        run = run_rws(A1(), [0, 1, 1], a1_rws_disagreement(3), t=1)
        assert run.decision_value(0) == 0  # the faulty decider
        assert run.decision_value(1) == 1
        assert run.decision_value(2) == 1
        violations = check_uniform_consensus_run(run)
        assert any(v.clause == "uniform agreement" for v in violations)

    def test_enumeration_finds_violations(self):
        report = verify_algorithm(A1(), 3, 1, RoundModel.RWS, stop_after=1)
        assert not report.ok

    def test_rws_failure_free_still_round_one(self):
        """Failure-free RWS runs have no pending messages, so A1 still
        decides at round 1 — the violation needs a crash."""
        run = run_rws(A1(), [0, 1, 1], FailureScenario.failure_free(3), t=1)
        assert all(run.decision_round(p) == 1 for p in range(3))
