"""Ben-Or's randomized binary consensus (crash model, n > 2t).

Each asynchronous round has two exchanges:

* **Report.**  Broadcast ``(R, r, estimate)``; collect ``n - t``
  round-``r`` reports.  If more than ``n/2`` of them carry the same
  value ``v``, propose ``v``; otherwise propose ``⊥``.
* **Proposal.**  Broadcast ``(P, r, proposal)``; collect ``n - t``
  round-``r`` proposals.  If at least ``t + 1`` carry the same
  ``v ≠ ⊥``, *decide* ``v``; else if at least one carries ``v ≠ ⊥``,
  adopt ``v`` as the new estimate; else flip a local coin.

Safety is deterministic.  Two different non-⊥ proposals cannot coexist
in a round (each is backed by a strict majority of reports, and two
majorities intersect), so deciders are unanimous; and a decision
quorum of ``t + 1`` proposals guarantees every process's ``n - t``
proposal sample hits at least one of them, so all survivors adopt the
decided value and every later round re-decides it.  Termination is
probabilistic: when every undecided process flips, all coins agree
with probability at least ``2^-n`` per round — certain in the limit,
and fast for the small systems studied here.

Decisions are relayed (``DECIDE`` messages, re-broadcast once on first
receipt) so laggards terminate without waiting out the lottery.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace
from typing import Any, Mapping, Sequence

from repro.errors import ConfigurationError
from repro.failures.pattern import FailurePattern
from repro.simulation.automaton import StepAutomaton, StepContext, StepOutcome
from repro.simulation.executor import StepExecutor
from repro.simulation.run import Run
from repro.simulation.schedulers import RandomScheduler

REPORT = "R"
PROPOSAL = "P"
DECIDE = "decide"

#: The "no value" proposal marker.
BOTTOM = None

WAIT_REPORTS = "reports"
WAIT_PROPOSALS = "proposals"


@dataclass(frozen=True)
class BenOrState:
    """Per-process state of Ben-Or consensus."""

    round: int = 1
    stage: str = WAIT_REPORTS
    estimate: int = 0
    decided: bool = False
    decision: Any = None
    outbox: tuple = ()
    reports: Mapping[int, Mapping[int, int]] = field(default_factory=dict)
    proposals: Mapping[int, Mapping[int, Any]] = field(default_factory=dict)
    relayed: bool = False
    sent_stage: str = ""  # last (round, stage) whose broadcast was queued


class BenOrConsensus(StepAutomaton):
    """Randomized binary consensus on the asynchronous step kernel.

    ``coin_seed`` keeps the whole algorithm deterministic given the
    executor's inputs: process ``p``'s round-``r`` coin is drawn from
    ``random.Random(f"{coin_seed}:{p}:{r}")`` — reproducible runs, yet
    independent coins across processes and rounds.
    """

    def __init__(
        self, n: int, t: int, values: Sequence[int], coin_seed: int = 0
    ) -> None:
        if n <= 2 * t:
            raise ConfigurationError(
                f"Ben-Or needs n > 2t (got n={n}, t={t})"
            )
        if len(values) != n:
            raise ConfigurationError("one initial value per process required")
        if any(value not in (0, 1) for value in values):
            raise ConfigurationError("Ben-Or is binary: values must be 0/1")
        self.n = n
        self.t = t
        self.values = tuple(values)
        self.coin_seed = coin_seed
        self.quorum = n - t

    def _coin(self, pid: int, round_index: int) -> int:
        return random.Random(
            f"{self.coin_seed}:{pid}:{round_index}"
        ).randint(0, 1)

    def initial_state(self, pid: int, n: int) -> BenOrState:
        return BenOrState(estimate=self.values[pid])

    def _queue_all(self, state: BenOrState, pid: int, payload: tuple) -> BenOrState:
        outbox = state.outbox
        for recipient in range(self.n):
            if recipient != pid:
                outbox = outbox + ((recipient, payload),)
        return replace(state, outbox=outbox)

    def _decide(self, state: BenOrState, pid: int, value: Any) -> BenOrState:
        if state.decided:
            return state
        state = replace(state, decided=True, decision=value, estimate=value)
        if not state.relayed:
            state = self._queue_all(state, pid, (DECIDE, value))
            state = replace(state, relayed=True)
        return state

    def _ingest(self, state: BenOrState, ctx: StepContext) -> BenOrState:
        reports = {r: dict(v) for r, v in state.reports.items()}
        proposals = {r: dict(v) for r, v in state.proposals.items()}
        for message in ctx.received:
            kind = message.payload[0]
            if kind == REPORT:
                _, round_index, value = message.payload
                reports.setdefault(round_index, {})[message.sender] = value
            elif kind == PROPOSAL:
                _, round_index, value = message.payload
                proposals.setdefault(round_index, {})[message.sender] = value
            elif kind == DECIDE:
                state = self._decide(state, ctx.pid, message.payload[1])
        return replace(state, reports=reports, proposals=proposals)

    def on_step(self, ctx: StepContext) -> StepOutcome:
        state: BenOrState = self._ingest(ctx.state, ctx)

        if state.outbox:
            (recipient, payload), rest = state.outbox[0], state.outbox[1:]
            return StepOutcome(
                state=replace(state, outbox=rest),
                send_to=recipient,
                payload=payload,
            )
        if state.decided:
            return StepOutcome(state=state)

        state = self._advance(state, ctx.pid)
        if state.outbox:
            (recipient, payload), rest = state.outbox[0], state.outbox[1:]
            return StepOutcome(
                state=replace(state, outbox=rest),
                send_to=recipient,
                payload=payload,
            )
        return StepOutcome(state=state)

    def _advance(self, state: BenOrState, pid: int) -> BenOrState:
        round_index = state.round

        if state.stage == WAIT_REPORTS:
            tag = f"{round_index}:{WAIT_REPORTS}"
            if state.sent_stage != tag:
                # Broadcast the report (self-report filed directly).
                reports = {r: dict(v) for r, v in state.reports.items()}
                reports.setdefault(round_index, {})[pid] = state.estimate
                state = replace(
                    state, reports=reports, sent_stage=tag
                )
                return self._queue_all(
                    state, pid, (REPORT, round_index, state.estimate)
                )
            collected = state.reports.get(round_index, {})
            if len(collected) < self.quorum:
                return state
            # The report tally is evaluated when the proposal is built.
            return replace(state, stage=WAIT_PROPOSALS, sent_stage="")

        if state.stage == WAIT_PROPOSALS:
            tag = f"{round_index}:{WAIT_PROPOSALS}"
            if state.sent_stage != tag:
                collected = state.reports.get(round_index, {})
                tally = {0: 0, 1: 0}
                for value in collected.values():
                    tally[value] += 1
                proposal: Any = BOTTOM
                for value in (0, 1):
                    if tally[value] * 2 > self.n:
                        proposal = value
                proposals = {
                    r: dict(v) for r, v in state.proposals.items()
                }
                proposals.setdefault(round_index, {})[pid] = proposal
                state = replace(
                    state, proposals=proposals, sent_stage=tag
                )
                return self._queue_all(
                    state, pid, (PROPOSAL, round_index, proposal)
                )
            collected = state.proposals.get(round_index, {})
            if len(collected) < self.quorum:
                return state
            non_bottom = [
                value for value in collected.values() if value is not BOTTOM
            ]
            if non_bottom:
                value = non_bottom[0]
                if non_bottom.count(value) >= self.t + 1:
                    return self._decide(state, pid, value)
                estimate = value
            else:
                estimate = self._coin(pid, round_index)
            return replace(
                state,
                round=round_index + 1,
                stage=WAIT_REPORTS,
                sent_stage="",
                estimate=estimate,
            )

        raise ConfigurationError(f"unknown stage {state.stage}")  # pragma: no cover


def run_benor(
    values: Sequence[int],
    pattern: FailurePattern,
    *,
    t: int | None = None,
    rng: random.Random | None = None,
    coin_seed: int = 0,
    max_steps: int = 20_000,
    delivery_prob: float = 0.5,
    max_age: int = 30,
) -> Run:
    """Execute Ben-Or under a random asynchronous schedule."""
    n = len(values)
    resilience = t if t is not None else (n - 1) // 2
    if rng is None:
        rng = random.Random(0)
    algorithm = BenOrConsensus(n, resilience, values, coin_seed=coin_seed)
    executor = StepExecutor(
        algorithm,
        n,
        pattern,
        RandomScheduler(rng, delivery_prob=delivery_prob, max_age=max_age),
    )

    def all_correct_decided(states: Mapping[int, BenOrState]) -> bool:
        undrained = any(states[pid].outbox for pid in pattern.correct)
        return not undrained and all(
            states[pid].decided for pid in pattern.correct
        )

    return executor.execute(max_steps, stop_when=all_correct_decided)


def benor_decisions(run: Run) -> dict[int, Any]:
    """The decision of every process that decided in the run."""
    return {
        pid: state.decision
        for pid, state in run.final_states.items()
        if isinstance(state, BenOrState) and state.decided
    }
