"""Observability: structured event tracing, metrics, and profiling.

The paper's headline result is quantitative (Λ = 1 in RS vs Λ ≥ 2 in
RWS), but a latency number alone does not explain *why* a run took the
rounds it did — which messages were withheld, when detectors suspected,
where wall-clock time went.  This package is the instrumentation
substrate that answers those questions without perturbing the engines:

* :class:`Observer` — the event protocol both execution engines speak.
  Every hook is a no-op on the base class and every engine call site is
  guarded by ``observer is not None``, so the default path stays
  zero-cost.
* :class:`EventLog` — an observer that records typed, timestamped
  events (``round_start``, ``msg_sent``, ``msg_withheld``,
  ``msg_delivered``, ``crash``, ``suspect``, ``decide``, ``halt``) and
  exports them as JSONL.
* :class:`MetricsRegistry` / :class:`MetricsObserver` — counters,
  gauges and histograms derived from the same event stream (messages
  per round, decision-round distribution, suspicion latency, scenario
  rejections).
* :class:`Profiler` and :func:`profiled` — ``perf_counter`` span
  timers wrapping the engines' hot paths; inert until a profiler is
  installed with :func:`set_profiler`.

On top of the stream sits the *trace oracle* trio:

* :mod:`repro.obs.check` — streaming invariant monitors: P strong
  completeness/accuracy, RS/RWS (weak) round synchrony, consensus
  agreement/uniformity/validity, and trace well-formedness, each
  returning typed :class:`Violation` reports with event indices.
* :mod:`repro.obs.replay` — reconstruct the
  :class:`~repro.rounds.scenario.FailureScenario` behind a trace and
  deterministically re-execute it, asserting event-for-event equality.
* :mod:`repro.obs.diff` — per-process divergence diffing and the
  executable form of the paper's indistinguishability relation.

And the causal layer (PR 7): :mod:`repro.obs.causal` reconstructs the
happens-before DAG (Lamport/vector clocks, ``msg_id`` send→delivery
matching, Theorem 3.1 causal cones) from any trace, and
:mod:`repro.obs.critical` extracts per-decision critical paths,
attributes live wall latency to send/retransmit/detector-wait legs,
and audits suspicions against the ground-truth crash wall.

See ``docs/observability.md`` for the event taxonomy, the checker
catalogue, and a worked example mapping a trace back to the paper's
run notation.
"""

from repro.obs.artifacts import (
    RUN_SCHEMA,
    RunDir,
    SLOConfig,
    compute_run_id,
    evaluate_slos,
    git_provenance,
    identity_for_requests,
)
from repro.obs.causal import (
    CausalEdge,
    CausalGraph,
    CausalObserver,
    annotate,
    cone_signature,
    cones_indistinguishable,
    round_msg_id,
)
from repro.obs.critical import (
    DecisionPath,
    Leg,
    SuspicionReport,
    attribute_decision,
    causal_summary,
    critical_paths,
    is_round_trace,
    suspicion_forensics,
    verify_round_paths,
)
from repro.obs.events import (
    EVENT_KINDS,
    CompositeObserver,
    Event,
    EventLog,
    Observer,
    clock_kind,
    events_from_jsonl_lines,
    logical_clock,
)
from repro.obs.check import (
    CheckReport,
    ConsensusChecker,
    DetectorAccuracyChecker,
    DetectorCompletenessChecker,
    OrderingChecker,
    RoundSynchronyChecker,
    TraceChecker,
    Violation,
    WeakRoundSynchronyChecker,
    check_events,
    default_checkers,
    ordering_problems,
    run_checkers,
)
from repro.obs.diff import (
    Divergence,
    TraceDiff,
    diff_traces,
    first_divergence,
    indistinguishable,
    local_view,
    view_divergence,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsObserver,
    MetricsRegistry,
)
from repro.obs.profile import (
    Profiler,
    get_profiler,
    profiled,
    set_profiler,
)
from repro.obs.progress import ProgressReporter, latest_progress
from repro.obs.report import (
    causal_cells,
    find_run_dir,
    merge_span_snapshots,
    percentile_summary,
    render_report,
    render_top,
    report_json,
    summarize_fuzz,
    summarize_live,
    summarize_sweep,
    summary_problems,
)
from repro.obs.replay import (
    ReplayReport,
    infer_model,
    reconstruct_scenario,
    replay_events,
)
from repro.obs.schema import validate_event_dict, validate_jsonl_lines

__all__ = [
    "RUN_SCHEMA",
    "RunDir",
    "SLOConfig",
    "compute_run_id",
    "evaluate_slos",
    "git_provenance",
    "identity_for_requests",
    "ProgressReporter",
    "latest_progress",
    "causal_cells",
    "find_run_dir",
    "merge_span_snapshots",
    "percentile_summary",
    "render_report",
    "render_top",
    "report_json",
    "summarize_fuzz",
    "summarize_live",
    "summarize_sweep",
    "summary_problems",
    "EVENT_KINDS",
    "Event",
    "Observer",
    "EventLog",
    "CompositeObserver",
    "clock_kind",
    "events_from_jsonl_lines",
    "logical_clock",
    "CausalEdge",
    "CausalGraph",
    "CausalObserver",
    "annotate",
    "cone_signature",
    "cones_indistinguishable",
    "round_msg_id",
    "DecisionPath",
    "Leg",
    "SuspicionReport",
    "attribute_decision",
    "causal_summary",
    "critical_paths",
    "is_round_trace",
    "suspicion_forensics",
    "verify_round_paths",
    "CheckReport",
    "ConsensusChecker",
    "DetectorAccuracyChecker",
    "DetectorCompletenessChecker",
    "OrderingChecker",
    "RoundSynchronyChecker",
    "TraceChecker",
    "Violation",
    "WeakRoundSynchronyChecker",
    "check_events",
    "default_checkers",
    "ordering_problems",
    "run_checkers",
    "Divergence",
    "TraceDiff",
    "diff_traces",
    "first_divergence",
    "indistinguishable",
    "local_view",
    "view_divergence",
    "ReplayReport",
    "infer_model",
    "reconstruct_scenario",
    "replay_events",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "MetricsObserver",
    "Profiler",
    "profiled",
    "get_profiler",
    "set_profiler",
    "validate_event_dict",
    "validate_jsonl_lines",
]
