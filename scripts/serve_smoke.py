#!/usr/bin/env python
"""Fault-injected smoke of the campaign fabric (`make serve-smoke`).

Orchestrates one coordinator and three workers over a real loopback
HTTP fabric, with the fault the lease protocol exists for injected on
purpose:

1. start `repro serve SPACE` on an ephemeral port and discover the
   endpoint from the run directory's ``serve.json``;
2. start a *victim* worker, throttled so its first shard is still in
   flight, and SIGKILL it mid-shard;
3. start two healthy workers that drain the queue (the victim's shard
   re-queues once its lease expires);
4. wait for the coordinator to finalize and assert, from
   ``summary.json``, that at least one shard was re-queued, nothing
   was re-executed, and the distribution telemetry is coherent.

The caller (the Makefile target) then ``cmp``s the merged trace
against a single-process ``repro sweep`` of the same space and runs
``scripts/check_summary.py`` — byte identity and schema validity are
checked outside this process on purpose, so the smoke cannot vouch
for itself.

Exits 0 on success, 1 on any orchestration or telemetry failure.
"""

from __future__ import annotations

import argparse
import json
import signal
import subprocess
import sys
import time
from pathlib import Path


def _spawn(*argv: str) -> subprocess.Popen:
    return subprocess.Popen(
        [sys.executable, "-m", "repro", *argv],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )


def _fail(message: str, *procs: subprocess.Popen) -> int:
    print(f"serve-smoke: FAIL: {message}", file=sys.stderr)
    for proc in procs:
        if proc.poll() is None:
            proc.kill()
        out = proc.communicate()[0]
        if out:
            print(f"--- {proc.args[3]} output ---\n{out}", file=sys.stderr)
    return 1


def _discover_endpoint(runs_root: Path, timeout_s: float) -> str | None:
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        for endpoint in runs_root.glob("*/serve.json"):
            try:
                document = json.loads(endpoint.read_text(encoding="utf-8"))
            except (OSError, ValueError):
                continue  # racing the coordinator's atomic-ish write
            url = document.get("url", "")
            if url.startswith("http://"):
                return url[len("http://"):]
        time.sleep(0.1)
    return None


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--space", default="e10-lambda")
    parser.add_argument("--run-dir", required=True)
    parser.add_argument("--jsonl", required=True,
                        help="merged-trace path (cmp'd by the caller)")
    parser.add_argument("--engine", default="rounds",
                        choices=("rounds", "vector"))
    parser.add_argument("--lease-ttl", type=float, default=2.0)
    parser.add_argument("--shard-size", type=int, default=4)
    args = parser.parse_args(argv)
    runs_root = Path(args.run_dir)

    coordinator = _spawn(
        "serve", args.space, "--run-dir", args.run_dir,
        "--engine", args.engine, "--jsonl", args.jsonl,
        "--shard-size", str(args.shard_size),
        "--lease-ttl", str(args.lease_ttl),
    )
    connect = _discover_endpoint(runs_root, timeout_s=30.0)
    if connect is None:
        return _fail("coordinator never published serve.json", coordinator)
    print(f"serve-smoke: coordinator up at {connect}")

    # The victim: throttled hard enough that its first shard cannot
    # finish before the kill lands, so its lease dies with it.
    victim = _spawn(
        "work", "--connect", connect, "--worker-id", "victim",
        "--throttle-s", str(args.lease_ttl),
    )
    time.sleep(args.lease_ttl / 2)
    if victim.poll() is not None:
        return _fail("victim worker exited before the kill", coordinator, victim)
    victim.send_signal(signal.SIGKILL)
    victim.wait()
    print("serve-smoke: killed worker 'victim' mid-shard")

    survivors = [
        _spawn("work", "--connect", connect, "--worker-id", f"w{index}")
        for index in range(2)
    ]
    try:
        coordinator.wait(timeout=300)
    except subprocess.TimeoutExpired:
        return _fail("coordinator never finalized", coordinator, *survivors)
    if coordinator.returncode != 0:
        return _fail(
            f"coordinator exited {coordinator.returncode}",
            coordinator, *survivors,
        )
    for survivor in survivors:
        if survivor.wait(timeout=30) != 0:
            return _fail("a surviving worker failed", survivor)

    summaries = list(runs_root.glob("*/summary.json"))
    if len(summaries) != 1:
        return _fail(f"expected one summary.json, found {len(summaries)}")
    summary = json.loads(summaries[0].read_text(encoding="utf-8"))
    serve = summary.get("serve", {})
    shards = serve.get("shards", {})
    problems = []
    if shards.get("requeued", 0) < 1:
        problems.append("the killed worker's shard was never re-queued")
    if shards.get("done") != shards.get("total"):
        problems.append(f"unfinished shards: {shards}")
    if summary.get("resume", {}).get("re_executed") != 0:
        problems.append(f"re-execution: {summary.get('resume')}")
    if serve.get("quarantined", 0) != 0:
        problems.append(f"unexpected quarantines: {serve}")
    if problems:
        return _fail("; ".join(problems))
    print(
        "serve-smoke: OK — shards "
        f"{shards.get('done')}/{shards.get('total')} "
        f"({shards.get('requeued')} re-queued), "
        f"workers {serve.get('workers')}, re_executed 0"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
