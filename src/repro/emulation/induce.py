"""Lift an emulated step-level trace to a round-model failure scenario.

The emulations (RS on SS, RWS on SP) and the direct round executors are
two implementations of the same abstraction; this module ties them
together.  From an emulated trace we *induce* the round-level
:class:`~repro.rounds.scenario.FailureScenario` its step-level crash
pattern realised — which round each faulty process died in, which
recipients its last broadcast reached, whether it completed that
round's transition, and (for SP) which sent messages went unused
(pending).  Re-executing the algorithm under the induced scenario in
the plain round executor must reproduce the emulated decisions; the
test suite uses exactly this as a cross-validation of both engines.
"""

from __future__ import annotations

from repro.emulation.rs_on_ss import EmulatedRoundTrace
from repro.rounds.scenario import CrashEvent, FailureScenario, PendingMessage


def induced_scenario(trace: EmulatedRoundTrace) -> FailureScenario:
    """Derive the round-level scenario an emulated trace realised.

    For each faulty process the crash event is reconstructed from what
    it *did*: the last round whose transition it applied and the
    recipients of its sends in the following (partial) round.  Pending
    messages are the sent-but-unused triples — the same extraction
    Lemma 4.1's validator uses.
    """
    pattern = trace.run.pattern
    n = trace.n

    # Index the sends: (sender, recipient, round) for every message that
    # actually reached the network.
    sent: dict[tuple[int, int], set[int]] = {}
    for message in trace.run.messages.values():
        message_round, _ = message.payload
        sent.setdefault((message.sender, message_round), set()).add(
            message.recipient
        )

    crashes: list[CrashEvent] = []
    for pid in sorted(pattern.faulty):
        completed = trace.completed_rounds.get(pid, 0)
        crash_round = completed + 1
        reached = frozenset(sent.get((pid, crash_round), set()) - {pid})
        others = frozenset(q for q in range(n) if q != pid)
        if completed >= trace.num_rounds:
            # Crashed only after finishing every emulated round: at the
            # round level it is indistinguishable from a correct process
            # within the horizon, but the crash is part of the pattern,
            # so record it as a post-horizon transition-completing event.
            crashes.append(
                CrashEvent(
                    pid=pid,
                    round=trace.num_rounds,
                    sent_to=others,
                    applies_transition=True,
                )
            )
            continue
        crashes.append(
            CrashEvent(pid=pid, round=crash_round, sent_to=reached)
        )

    # Pending messages: sent at round r towards a process that completed
    # round r without using them.
    pending: set[PendingMessage] = set()
    for recipient, per_round in trace.senders_used.items():
        for round_index, senders_heard in per_round.items():
            for sender in range(n):
                if sender == recipient or sender in senders_heard:
                    continue
                if recipient in sent.get((sender, round_index), set()):
                    pending.add(
                        PendingMessage(sender, recipient, round_index)
                    )

    return FailureScenario(
        n=n, crashes=tuple(crashes), pending=frozenset(pending)
    )
