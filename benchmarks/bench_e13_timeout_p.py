"""E13 — P from timeouts on SS: axioms + detection-delay bound."""

import random

from repro.core.experiments import experiment_e13
from repro.failures import (
    FailurePattern,
    TimeoutPerfectDetector,
    detection_delays,
    detection_threshold,
)
from repro.models import SynchronousModel


def bench_e13_full_experiment(once):
    result = once(experiment_e13, True)
    assert result.ok, result.describe()


def bench_e13_detection_latency(benchmark):
    """Measure the detector's end-to-end detection delay on one SS run."""
    n, phi, delta = 3, 2, 2

    def detect():
        model = SynchronousModel(phi=phi, delta=delta)
        pattern = FailurePattern.with_crashes(n, {1: 30})
        executor = model.executor(
            TimeoutPerfectDetector(n, phi, delta),
            n,
            pattern,
            rng=random.Random(17),
            record_states=True,
        )
        return executor.execute(350)

    run = benchmark(detect)
    delays = [d for d in detection_delays(run).values() if d is not None]
    bound = detection_threshold(n, phi, delta) + delta + 1
    assert delays and max(delays) <= bound
    benchmark.extra_info["max_detection_delay"] = max(delays)
    benchmark.extra_info["bound"] = bound
