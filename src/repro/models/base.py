"""The abstract system model interface."""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from typing import Sequence

from repro.failures.history import FailureDetectorHistory
from repro.failures.pattern import FailurePattern
from repro.simulation.automaton import StepAutomaton
from repro.simulation.executor import StepExecutor
from repro.simulation.run import Run
from repro.simulation.schedulers import Scheduler


class SystemModel(ABC):
    """A system model in the sense of the paper's Section 2.

    A model is a recipe for producing admissible runs (scheduler +
    optional failure-detector history) together with a validator that
    decides whether a given run is admissible in the model.
    """

    name: str = "abstract"

    @abstractmethod
    def make_scheduler(self, rng: random.Random | None = None) -> Scheduler:
        """Return a fresh scheduler producing admissible runs."""

    def make_history(
        self,
        pattern: FailurePattern,
        *,
        horizon: int = 1_000,
        rng: random.Random | None = None,
    ) -> FailureDetectorHistory | None:
        """Return the detector history for a run, or ``None``.

        The default is ``None``: models without failure detectors.
        """
        return None

    @abstractmethod
    def validate(self, run: Run) -> list[str]:
        """Return a list of model-condition violations (empty if none)."""

    def executor(
        self,
        automata: StepAutomaton | Sequence[StepAutomaton],
        n: int,
        pattern: FailurePattern,
        *,
        rng: random.Random | None = None,
        horizon: int = 1_000,
        record_states: bool = False,
    ) -> StepExecutor:
        """Build a ready-to-run executor for this model."""
        return StepExecutor(
            automata,
            n,
            pattern,
            self.make_scheduler(rng),
            history=self.make_history(pattern, horizon=horizon, rng=rng),
            record_states=record_states,
        )
