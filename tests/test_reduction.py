"""Tests for the weak-to-strong completeness gossip reduction."""

from __future__ import annotations

import random

import pytest

from repro.failures import (
    FailurePattern,
    QuasiDetector,
    WeakDetector,
    classify_history,
    history_from_run,
)
from repro.failures.reduction import CompletenessReduction
from repro.models import SynchronousModel
from repro.simulation import RoundRobinScheduler, StepExecutor


def run_reduction(pattern, input_detector, seed=0, steps=400, horizon=500):
    """Execute the reduction over an input detector's history."""
    rng = random.Random(seed)
    input_history = input_detector.history(pattern, horizon=horizon, rng=rng)
    executor = StepExecutor(
        CompletenessReduction(pattern.n),
        pattern.n,
        pattern,
        RoundRobinScheduler(),
        history=input_history,
        record_states=True,
    )
    run = executor.execute(steps)
    return history_from_run(run), run


PATTERNS = [
    FailurePattern.crash_free(3),
    FailurePattern.with_crashes(3, {1: 30}),
    FailurePattern.with_crashes(4, {0: 0, 2: 50}),
]


class TestWeakToStrong:
    @pytest.mark.parametrize("pattern", PATTERNS, ids=lambda p: p.describe())
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_w_input_gives_strong_completeness(self, pattern, seed):
        """W (weak completeness) in, S-grade completeness out."""
        output, run = run_reduction(pattern, WeakDetector(), seed=seed)
        report = classify_history(
            output, pattern, len(run.schedule) - 1
        )
        assert report.strong_completeness, report.violations

    @pytest.mark.parametrize("pattern", PATTERNS, ids=lambda p: p.describe())
    def test_weak_input_really_was_weak(self, pattern):
        """Sanity: the input history alone is NOT strongly complete when
        there are crashes and several correct observers (only the witness
        suspects), so the reduction genuinely adds something."""
        if not pattern.faulty:
            pytest.skip("vacuous without crashes")
        history = WeakDetector().history(
            pattern, horizon=500, rng=random.Random(1)
        )
        report = classify_history(history, pattern, 400)
        # Weak completeness holds...
        assert report.weak_completeness
        # ... and with >= 2 correct observers, strong completeness fails
        # for the single-witness histories WeakDetector generates.
        if len(pattern.correct) >= 2:
            assert not report.strong_completeness


class TestQToP:
    """The headline corollary: Q + reliable gossip = P."""

    @pytest.mark.parametrize("pattern", PATTERNS, ids=lambda p: p.describe())
    @pytest.mark.parametrize("seed", [0, 3])
    def test_q_input_yields_perfect_output(self, pattern, seed):
        output, run = run_reduction(pattern, QuasiDetector(), seed=seed)
        report = classify_history(output, pattern, len(run.schedule) - 1)
        assert report.matches_class("P"), report.violations

    def test_accuracy_preserved_under_false_free_input(self):
        """Strong accuracy of the output: nobody suspected before their
        crash, at any time, by any process."""
        pattern = FailurePattern.with_crashes(3, {2: 40})
        output, run = run_reduction(pattern, QuasiDetector(), seed=7)
        from repro.failures import check_strong_accuracy

        assert check_strong_accuracy(output, pattern, len(run.schedule) - 1)


class TestGossipMechanics:
    def test_suspicion_spreads_from_single_witness(self):
        """Only the witness's input module reports the crash; gossip must
        carry the suspicion to every other correct process."""
        pattern = FailurePattern.with_crashes(3, {1: 10})
        output, run = run_reduction(pattern, WeakDetector(), seed=0)
        horizon = len(run.schedule) - 1
        for observer in (0, 2):
            assert 1 in output.suspects(observer, horizon)

    def test_live_process_cancels_false_rumors(self):
        """A spurious suspicion of a live process dies out because the
        live process keeps gossiping."""
        from repro.failures.history import FunctionHistory

        pattern = FailurePattern.crash_free(3)
        # Input module: p0 wrongly suspects p1 for a while, then stops.
        noisy_input = FunctionHistory(
            lambda pid, t: {1} if (pid == 0 and t < 30) else set()
        )
        executor = StepExecutor(
            CompletenessReduction(3),
            3,
            pattern,
            RoundRobinScheduler(),
            history=noisy_input,
            record_states=True,
        )
        run = executor.execute(200)
        output = history_from_run(run)
        horizon = len(run.schedule) - 1
        for observer in range(3):
            assert 1 not in output.suspects(observer, horizon)

    def test_never_suspects_self(self):
        from repro.failures.history import ConstantHistory

        pattern = FailurePattern.crash_free(2)
        executor = StepExecutor(
            CompletenessReduction(2),
            2,
            pattern,
            RoundRobinScheduler(),
            history=ConstantHistory({0, 1}),  # pathological input
            record_states=True,
        )
        run = executor.execute(50)
        for pid in range(2):
            assert pid not in run.final_states[pid].suspected
