"""The Strongly Dependent Decision (SDD) problem — Section 3.

SDD is the paper's witness that SS is *strictly* stronger than SP even
for time-free problems.  Two processes: a sender ``p_i`` with an input
in {0, 1} and a receiver ``p_j`` that must output a decision in {0, 1}
subject to

* **Integrity** — ``p_j`` decides at most once;
* **Validity** — if ``p_i`` has not initially crashed, the only
  possible decision value for ``p_j`` is ``p_i``'s initial value;
* **Termination** — if ``p_j`` is correct, it eventually decides.

In SS the problem is trivial (wait ``Φ + 1 + Δ`` steps — module
:mod:`repro.sdd.ss_algorithm`); in SP it is unsolvable (Theorem 3.1 —
mechanised as a run-quadruple refuter in
:mod:`repro.sdd.impossibility`).
"""

from repro.sdd.spec import SDDVerdict, check_sdd_run, sdd_decision
from repro.sdd.ss_algorithm import SDDSender, SDDReceiverSS, solve_sdd_ss
from repro.sdd.impossibility import (
    QUADRUPLE,
    SDDRefutation,
    refute_sdd_candidate,
    sdd_quadruple_traces,
    TimeoutReceiverSP,
    SuspicionReceiverSP,
    PatientReceiverSP,
    SP_CANDIDATE_FACTORIES,
)

__all__ = [
    "SDDVerdict",
    "check_sdd_run",
    "sdd_decision",
    "SDDSender",
    "SDDReceiverSS",
    "solve_sdd_ss",
    "QUADRUPLE",
    "SDDRefutation",
    "refute_sdd_candidate",
    "sdd_quadruple_traces",
    "TimeoutReceiverSP",
    "SuspicionReceiverSP",
    "PatientReceiverSP",
    "SP_CANDIDATE_FACTORIES",
]
