"""Tests for the RS-on-SS emulation (Section 4.1)."""

from __future__ import annotations

import random

import pytest

from repro.consensus import A1, FloodSet
from repro.emulation import (
    check_emulated_round_synchrony,
    emulate_rs_on_ss,
    round_deadlines,
)
from repro.errors import ConfigurationError
from repro.failures import FailurePattern, random_pattern
from repro.models import validate_ss_run


class TestDeadlines:
    def test_recurrence_phi_one_is_linear(self):
        # S_r = S_{r-1} + n + Δ + 1 for Φ = 1.
        deadlines = round_deadlines(3, 1, 1, 4)
        diffs = [b - a for a, b in zip([0] + deadlines, deadlines)]
        assert diffs == [5, 5, 5, 5]

    def test_recurrence_phi_two_grows(self):
        deadlines = round_deadlines(3, 2, 1, 3)
        diffs = [b - a for a, b in zip([0] + deadlines, deadlines)]
        assert diffs[1] > diffs[0]

    def test_formula_first_round(self):
        assert round_deadlines(4, 2, 3, 1) == [2 * (0 + 4) + 3 + 1]

    def test_rejects_bad_parameters(self):
        with pytest.raises(ConfigurationError):
            round_deadlines(1, 1, 1, 2)
        with pytest.raises(ConfigurationError):
            round_deadlines(3, 0, 1, 2)


class TestEmulationCorrectness:
    @pytest.mark.parametrize("seed", range(6))
    def test_round_synchrony_holds(self, seed):
        rng = random.Random(seed)
        pattern = random_pattern(3, 1, 25, rng)
        trace = emulate_rs_on_ss(
            FloodSet(), [0, 1, 1], pattern, t=1,
            phi=1, delta=1, num_rounds=2, rng=rng,
        )
        assert check_emulated_round_synchrony(trace) == []

    @pytest.mark.parametrize("phi,delta", [(1, 1), (2, 2)])
    def test_underlying_run_is_ss_admissible(self, phi, delta):
        rng = random.Random(3)
        pattern = FailurePattern.with_crashes(3, {2: 20})
        trace = emulate_rs_on_ss(
            FloodSet(), [0, 1, 1], pattern, t=1,
            phi=phi, delta=delta, num_rounds=2, rng=rng,
        )
        assert validate_ss_run(trace.run, phi, delta) == []

    def test_crash_free_matches_direct_rs_decision(self):
        trace = emulate_rs_on_ss(
            FloodSet(), [2, 0, 1], FailurePattern.crash_free(3), t=1,
            num_rounds=2, rng=random.Random(0),
        )
        assert all(
            trace.decisions[pid] == (2, 0) for pid in range(3)
        )

    def test_uniform_agreement_over_random_crashes(self):
        for seed in range(8):
            rng = random.Random(seed)
            pattern = FailurePattern.with_crashes(
                3, {seed % 3: rng.randint(0, 20)}
            )
            trace = emulate_rs_on_ss(
                FloodSet(), [0, 1, 1], pattern, t=1,
                num_rounds=2, rng=rng,
            )
            decided = {
                trace.decisions[pid][1]
                for pid in range(3)
                if trace.decisions[pid] is not None
            }
            assert len(decided) <= 1

    def test_a1_round_one_decision_survives_emulation(self):
        trace = emulate_rs_on_ss(
            A1(), [7, 8, 9], FailurePattern.crash_free(3), t=1,
            num_rounds=2, rng=random.Random(1),
        )
        assert all(trace.decisions[pid] == (1, 7) for pid in range(3))

    def test_crashed_process_completes_fewer_rounds(self):
        pattern = FailurePattern.with_crashes(3, {1: 3})
        trace = emulate_rs_on_ss(
            FloodSet(), [0, 1, 1], pattern, t=1,
            num_rounds=2, rng=random.Random(2),
        )
        assert trace.completed_rounds[1] < 2
        assert trace.completed_rounds[0] == 2

    def test_step_cost_matches_deadlines(self):
        """Every correct process finishes within ~n x S_R global steps."""
        deadline = round_deadlines(3, 1, 1, 2)[-1]
        trace = emulate_rs_on_ss(
            FloodSet(), [0, 1, 1], FailurePattern.crash_free(3), t=1,
            num_rounds=2, rng=random.Random(4),
        )
        assert len(trace.run.schedule) <= 3 * (deadline + 2)

    def test_values_length_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            emulate_rs_on_ss(
                FloodSet(), [0, 1], FailurePattern.crash_free(3), t=1
            )
