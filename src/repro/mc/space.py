"""The checker's frontiers as ordinary scenario spaces.

The model checker never grows a private execution path: each frontier
— the reduced leaf schedules of :func:`repro.mc.explore.explore`, the
failure-free Λ matrix, or the emulation crash-time grid — is reified
as a :class:`~repro.runtime.space.ScenarioSpace` and executed through
the same :class:`~repro.runtime.sweep.SweepRunner` that powers ``repro
sweep`` and ``repro fuzz``.  That buys, for free: result caching,
vector-engine batching, run-directory resume, and the ``repro serve``
shard fabric (the ``mc:...`` spec strings below are how a coordinator
rebuilds a checking space without shipping objects).

Scenario instances are *interned* across cells: leaves that realize an
equal adversary share one ``FailureScenario`` object, which is what
lets :func:`~repro.runtime.request.batch_cache_keys` splice fragments
and the vector engine group cells into one columnar plan.

Frontiers also save/load as JSON (``save_frontier``/``load_frontier``)
so fuzz campaigns can seed from deep reachable states
(:func:`repro.fuzz.strategies.mc_frontier_cases`).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from repro.errors import ConfigurationError
from repro.failures.pattern import FailurePattern
from repro.mc.explore import Exploration, ExploreStats, Leaf, explore
from repro.rounds.enumeration import all_value_assignments
from repro.rounds.scenario import FailureScenario
from repro.runtime.request import ExecutionRequest
from repro.runtime.space import ScenarioSpace
from repro.serialize import scenario_from_dict, scenario_to_dict
from repro.workloads import failure_free

#: Engines a schedule frontier can execute on (same round semantics).
SCHEDULE_ENGINES = ("rounds", "vector")

#: Step-kernel engines checked over a crash-time grid instead of the
#: exhaustive schedule frontier (their adversary is wall-clock timing,
#: which no bounded schedule enumeration closes).
GRID_ENGINES = ("rs_on_ss", "rws_on_sp")

#: File format marker of saved frontiers.
FRONTIER_KIND = "mc-frontier"
FRONTIER_SCHEMA = 1

#: Fixed seed of the emulation grid cells — the grid is a deterministic
#: sample, and its verdicts say so (scope "grid", never "exhaustive").
GRID_SEED = 7

#: Crash times (step units) of the emulation grid.
GRID_TIMES = (0, 2, 5, 9)


def _intern_scenarios(leaves: list[Leaf]) -> list[FailureScenario]:
    """One shared instance per distinct adversary, in leaf order."""
    by_form: dict[str, FailureScenario] = {}
    interned: list[FailureScenario] = []
    for leaf in leaves:
        form = json.dumps(scenario_to_dict(leaf.scenario), sort_keys=True)
        interned.append(by_form.setdefault(form, leaf.scenario))
    return interned


def frontier_space(
    exploration: Exploration,
    *,
    engine: str = "rounds",
    name: str | None = None,
) -> ScenarioSpace:
    """The exploration's leaf schedules as an executable space.

    Cell ``i`` re-runs leaf ``i``'s complete schedule on the real
    engine; the checker cross-checks each cell's decisions against the
    leaf's predicted ones, so the exploration's own stepping is itself
    under differential test on every run.
    """
    if engine not in SCHEDULE_ENGINES:
        raise ConfigurationError(
            f"schedule frontiers run on {SCHEDULE_ENGINES}, not {engine!r}"
        )
    scenarios = _intern_scenarios(exploration.leaves)
    requests = tuple(
        ExecutionRequest(
            name=f"mc-{index:05d}",
            engine=engine,
            algorithm=exploration.algorithm,
            values=leaf.values,
            t=exploration.t,
            model=exploration.model,
            scenario=scenario,
            max_rounds=exploration.horizon,
            check_consensus=False,
        )
        for index, (leaf, scenario) in enumerate(
            zip(exploration.leaves, scenarios)
        )
    )
    return ScenarioSpace(
        name=name or f"mc-{exploration.algorithm}-{exploration.model.lower()}",
        requests=requests,
    )


def lambda_space(
    algorithm: str,
    *,
    n: int,
    t: int,
    model: str,
    horizon: int,
    engine: str = "rounds",
    name: str | None = None,
) -> ScenarioSpace:
    """Every failure-free run: the exact domain of ``Λ(A) = Lat(A, 0)``.

    Failure-free runs admit no adversary choice at all (no crashes, and
    weak round synchrony forbids pending without a crash), so this
    space *is* the full run set the paper's Λ quantifies over — one
    cell per initial configuration.
    """
    if engine not in SCHEDULE_ENGINES:
        raise ConfigurationError(
            f"lambda frontiers run on {SCHEDULE_ENGINES}, not {engine!r}"
        )
    scenario = failure_free(n)
    requests = tuple(
        ExecutionRequest(
            name=f"mc-lambda-{''.join(str(v) for v in values)}",
            engine=engine,
            algorithm=algorithm,
            values=values,
            t=t,
            model=model,
            scenario=scenario,
            max_rounds=horizon,
            check_consensus=False,
        )
        for values in all_value_assignments(n)
    )
    return ScenarioSpace(
        name=name or f"mc-lambda-{algorithm}-{model.lower()}",
        requests=requests,
    )


def grid_space(
    algorithm: str,
    *,
    n: int,
    t: int,
    horizon: int,
    engine: str,
    name: str | None = None,
) -> ScenarioSpace:
    """Emulation-engine checking grid: assignments × crash timings.

    Step-kernel adversaries are wall-clock schedules, so exhaustion is
    out of reach; the grid is the deterministic sample the checker runs
    instead (fixed seed, crash-free plus every single-victim timing),
    and its verdicts carry scope ``"grid"`` rather than
    ``"exhaustive"``.  It is exactly the surface the planted-bug
    refutations need: an injected emulation defect breaks agreement on
    some grid cell, and the emitted witness replays through the fuzz
    oracles' emulation-twin differential.
    """
    if engine not in GRID_ENGINES:
        raise ConfigurationError(
            f"grid frontiers run on {GRID_ENGINES}, not {engine!r}"
        )
    patterns: list[FailurePattern] = [FailurePattern.crash_free(n)]
    if t >= 1:
        patterns.extend(
            FailurePattern.with_crashes(n, {pid: time})
            for pid in range(n)
            for time in GRID_TIMES
        )
    max_rounds = horizon if engine == "rs_on_ss" else min(horizon, t + 1)
    params = (
        (("delta", 1), ("phi", 1))
        if engine == "rs_on_ss"
        else (("delivery_prob", 0.2), ("max_age", 80), ("max_detection_delay", 2))
    )
    requests = tuple(
        ExecutionRequest(
            name=(
                f"mc-grid-{''.join(str(v) for v in values)}-{index:03d}"
            ),
            engine=engine,
            algorithm=algorithm,
            values=values,
            t=t,
            pattern=pattern,
            max_rounds=max_rounds,
            seed=GRID_SEED,
            params=params,
            check_consensus=False,
        )
        for values in all_value_assignments(n)
        for index, pattern in enumerate(patterns)
    )
    return ScenarioSpace(
        name=name or f"mc-grid-{algorithm}-{engine}", requests=requests
    )


# ---------------------------------------------------------------------------
# Serve specs: rebuild a checking space from a string
# ---------------------------------------------------------------------------


def spec_for_task(task: Any) -> str:
    """The ``repro serve`` space spec naming this task's frontier.

    The spec carries every parameter the space depends on; a
    coordinator given the spec rebuilds cell-for-cell the same space —
    and therefore the same cache keys and run id — as the solo ``repro
    mc`` run, which is what lets the two resume each other.
    """
    return (
        f"mc:{task.property_name}:{task.algorithm}"
        f":n={task.n}:t={task.t}:model={task.model}"
        f":horizon={task.horizon}:engine={task.engine}"
        f":reduce={'on' if task.reduce else 'off'}"
    )


def parse_spec(spec: str) -> dict[str, Any]:
    """Parse an ``mc:...`` spec into its task parameters."""
    parts = spec.split(":")
    if len(parts) < 3 or parts[0] != "mc":
        raise ConfigurationError(
            f"not an mc space spec: {spec!r} (want "
            "mc:PROPERTY:ALGORITHM[:key=value...])"
        )
    params: dict[str, Any] = {
        "property_name": parts[1],
        "algorithm": parts[2],
        "n": 3,
        "t": 1,
        "model": "RS",
        "horizon": 3,
        "engine": "rounds",
        "reduce": True,
    }
    for part in parts[3:]:
        key, _, value = part.partition("=")
        if key in ("n", "t", "horizon"):
            params[key] = int(value)
        elif key == "model":
            params[key] = value.upper()
        elif key == "engine":
            params[key] = value
        elif key == "reduce":
            params[key] = value != "off"
        else:
            raise ConfigurationError(f"unknown mc spec field {key!r} in {spec!r}")
    return params


def space_for_params(params: dict[str, Any]) -> ScenarioSpace:
    """The executable space of one parameter set (see :func:`parse_spec`)."""
    if params["engine"] in GRID_ENGINES:
        return grid_space(
            params["algorithm"],
            n=params["n"],
            t=params["t"],
            horizon=params["horizon"],
            engine=params["engine"],
        )
    if params["property_name"] == "lambda":
        return lambda_space(
            params["algorithm"],
            n=params["n"],
            t=params["t"],
            model=params["model"],
            horizon=params["horizon"],
            engine=params["engine"],
        )
    exploration = explore(
        params["algorithm"],
        n=params["n"],
        t=params["t"],
        model=params["model"],
        horizon=params["horizon"],
        reduce=params["reduce"],
    )
    return frontier_space(exploration, engine=params["engine"])


def mc_space_from_spec(spec: str) -> ScenarioSpace:
    """Build the checking space an ``mc:...`` serve spec names."""
    return space_for_params(parse_spec(spec))


# ---------------------------------------------------------------------------
# Saved frontiers
# ---------------------------------------------------------------------------


def save_frontier(exploration: Exploration, path: str | Path) -> None:
    """Persist an exploration's leaves (for fuzz seeding and reuse)."""
    document = {
        "kind": FRONTIER_KIND,
        "schema": FRONTIER_SCHEMA,
        "algorithm": exploration.algorithm,
        "n": exploration.n,
        "t": exploration.t,
        "model": exploration.model,
        "horizon": exploration.horizon,
        "reduce": exploration.reduce,
        "stats": exploration.stats.to_dict(),
        "leaves": [
            {
                "values": list(leaf.values),
                "scenario": scenario_to_dict(leaf.scenario),
                "decisions": {
                    str(pid): [entry[0], entry[1]]
                    for pid, entry in sorted(leaf.decisions.items())
                },
                "rounds": leaf.rounds,
            }
            for leaf in exploration.leaves
        ],
    }
    Path(path).write_text(
        json.dumps(document, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )


def load_frontier(path: str | Path) -> Exploration:
    """Load a frontier saved by :func:`save_frontier`."""
    try:
        data = json.loads(Path(path).read_text(encoding="utf-8"))
    except (OSError, ValueError) as exc:
        raise ConfigurationError(f"cannot read frontier {path}: {exc}") from exc
    if not isinstance(data, dict) or data.get("kind") != FRONTIER_KIND:
        raise ConfigurationError(
            f"{path} is not an {FRONTIER_KIND} file"
        )
    stats = ExploreStats()
    for key, value in data.get("stats", {}).items():
        if hasattr(stats, key):
            setattr(stats, key, value)
    leaves = [
        Leaf(
            values=tuple(entry["values"]),
            scenario=scenario_from_dict(entry["scenario"]),
            decisions={
                int(pid): (record[0], record[1])
                for pid, record in entry.get("decisions", {}).items()
            },
            rounds=entry.get("rounds", 0),
        )
        for entry in data.get("leaves", ())
    ]
    return Exploration(
        algorithm=data["algorithm"],
        n=data["n"],
        t=data["t"],
        model=data["model"],
        horizon=data["horizon"],
        reduce=data.get("reduce", True),
        leaves=leaves,
        stats=stats,
    )
