"""The SP model: asynchrony + perfect failure detector (Section 2.6).

Runs in SP are asynchronous runs in which every step additionally
queries a history of the perfect detector ``P``.  The crucial point the
paper builds on: ``P`` constrains *what* is reported (crashed processes,
eventually; never live ones) but not *when* — detection delays are
finite yet unbounded, and message delays remain arbitrary.  Both slacks
are exercised by the randomized scheduler/history used here, and both
are exactly what the SDD impossibility (Theorem 3.1) exploits.
"""

from __future__ import annotations

import random

from repro.failures.detectors import PerfectDetector
from repro.failures.history import FailureDetectorHistory
from repro.failures.pattern import FailurePattern
from repro.failures.properties import (
    check_strong_accuracy,
    check_strong_completeness,
)
from repro.models.asynchronous import check_admissible_prefix
from repro.models.base import SystemModel
from repro.simulation.run import Run
from repro.simulation.schedulers import RandomScheduler, Scheduler


def validate_sp_run(run: Run, *, completeness_horizon: int | None = None) -> list[str]:
    """Validate an SP run: async safety + perfect-detector axioms.

    Strong accuracy is checked over the whole executed prefix; strong
    completeness (a liveness property) is checked at
    ``completeness_horizon`` when given (the history must have caught
    every crash by then).
    """
    violations = check_admissible_prefix(run)
    if run.history is None:
        violations.append("SP run has no failure-detector history")
        return violations
    horizon = len(run.schedule)
    if not check_strong_accuracy(run.history, run.pattern, horizon):
        violations.append(
            "history violates strong accuracy (suspected a live process)"
        )
    if completeness_horizon is not None and not check_strong_completeness(
        run.history, run.pattern, completeness_horizon
    ):
        violations.append(
            "history violates strong completeness at the given horizon"
        )
    return violations


class PerfectFDModel(SystemModel):
    """Asynchronous model augmented with the perfect failure detector."""

    name = "SP"

    def __init__(
        self,
        max_detection_delay: int = 50,
        delivery_prob: float = 0.6,
        max_age: int | None = 40,
    ) -> None:
        self.detector = PerfectDetector(max_delay=max_detection_delay)
        self.delivery_prob = delivery_prob
        self.max_age = max_age

    def make_scheduler(self, rng: random.Random | None = None) -> Scheduler:
        if rng is None:
            rng = random.Random(0)
        return RandomScheduler(
            rng, delivery_prob=self.delivery_prob, max_age=self.max_age
        )

    def make_history(
        self,
        pattern: FailurePattern,
        *,
        horizon: int = 1_000,
        rng: random.Random | None = None,
    ) -> FailureDetectorHistory:
        return self.detector.history(pattern, horizon=horizon, rng=rng)

    def validate(self, run: Run) -> list[str]:
        return validate_sp_run(run)
