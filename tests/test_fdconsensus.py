"""Tests for the Chandra–Toueg ◊S rotating-coordinator consensus."""

from __future__ import annotations

import random

import pytest

from repro.errors import ConfigurationError
from repro.failures import FailurePattern
from repro.fdconsensus import (
    ChandraTouegConsensus,
    ct_decisions,
    run_ct_consensus,
)


def check_safety(run, values, pattern):
    """Uniform agreement + validity + termination of correct processes."""
    decisions = ct_decisions(run)
    assert set(decisions.values()) <= set(values), "validity broken"
    assert len(set(decisions.values())) <= 1, "uniform agreement broken"
    for pid in pattern.correct:
        assert pid in decisions, f"correct p{pid} never decided"
    return decisions


class TestConfiguration:
    def test_majority_requirement(self):
        with pytest.raises(ConfigurationError):
            ChandraTouegConsensus(4, 2, [0, 1, 0, 1])  # n = 2t

    def test_values_length(self):
        with pytest.raises(ConfigurationError):
            ChandraTouegConsensus(3, 1, [0, 1])

    def test_coordinator_rotation(self):
        algorithm = ChandraTouegConsensus(3, 1, [0, 0, 0])
        assert [algorithm.coordinator(r) for r in (1, 2, 3, 4)] == [0, 1, 2, 0]


class TestFailureFree:
    @pytest.mark.parametrize("seed", range(6))
    def test_agreement_and_validity(self, seed):
        rng = random.Random(seed)
        pattern = FailurePattern.crash_free(3)
        values = [rng.randint(0, 3) for _ in range(3)]
        run = run_ct_consensus(values, pattern, rng=rng)
        check_safety(run, values, pattern)

    def test_instant_stabilisation_decides_on_coordinator_estimate(self):
        """With no suspicions at all, round 1's coordinator (p0) gets a
        majority of ACKs and everyone decides p0's proposal — which,
        with all timestamps 0, is some initial value."""
        pattern = FailurePattern.crash_free(3)
        run = run_ct_consensus(
            [7, 8, 9], pattern,
            rng=random.Random(1),
            stabilization_time=0,
            false_suspicion_prob=0.0,
        )
        decisions = check_safety(run, [7, 8, 9], pattern)
        assert set(decisions.values()) <= {7, 8, 9}


class TestCrashes:
    @pytest.mark.parametrize("seed", range(8))
    def test_coordinator_crash_is_survived(self, seed):
        """p0 (round-1 coordinator) dies; rounds rotate past it."""
        rng = random.Random(seed)
        pattern = FailurePattern.with_crashes(3, {0: rng.randint(0, 40)})
        values = [0, 1, 1]
        run = run_ct_consensus(values, pattern, rng=rng)
        check_safety(run, values, pattern)

    @pytest.mark.parametrize("seed", range(6))
    def test_n5_t2_two_crashes(self, seed):
        rng = random.Random(seed)
        victims = rng.sample(range(5), 2)
        pattern = FailurePattern.with_crashes(
            5, {pid: rng.randint(0, 80) for pid in victims}
        )
        values = [rng.randint(0, 1) for _ in range(5)]
        run = run_ct_consensus(
            values, pattern, rng=rng, max_steps=12_000
        )
        check_safety(run, values, pattern)

    def test_initially_dead_coordinator(self):
        pattern = FailurePattern.with_crashes(3, {0: 0})
        run = run_ct_consensus([0, 1, 1], pattern, rng=random.Random(3))
        decisions = check_safety(run, [0, 1, 1], pattern)
        # p0's value died with it; survivors decide among their own.
        assert set(decisions.values()) <= {1}


class TestUnreliableDetection:
    """The ◊S regime: the detector lies before stabilisation."""

    @pytest.mark.parametrize("seed", range(8))
    def test_false_suspicions_never_break_safety(self, seed):
        rng = random.Random(seed)
        pattern = FailurePattern.crash_free(3)
        values = [0, 1, 1]
        run = run_ct_consensus(
            values, pattern, rng=rng,
            stabilization_time=120,
            false_suspicion_prob=0.5,
            max_steps=12_000,
        )
        check_safety(run, values, pattern)

    def test_late_stabilisation_costs_rounds_not_safety(self):
        """Compare rounds used under instant vs late stabilisation."""
        pattern = FailurePattern.crash_free(3)

        def rounds_used(stabilization):
            run = run_ct_consensus(
                [0, 1, 1], pattern,
                rng=random.Random(5),
                stabilization_time=stabilization,
                false_suspicion_prob=0.6,
                max_steps=15_000,
            )
            check_safety(run, [0, 1, 1], pattern)
            return max(
                state.round for state in run.final_states.values()
            )

        assert rounds_used(0) <= rounds_used(150)


class TestUniformity:
    @pytest.mark.parametrize("seed", range(6))
    def test_decisions_of_faulty_processes_also_agree(self, seed):
        """Uniform agreement: a process that decided then crashed still
        decided the same value (quorum locking)."""
        rng = random.Random(seed)
        pattern = FailurePattern.with_crashes(3, {1: rng.randint(50, 200)})
        values = [0, 1, 1]
        run = run_ct_consensus(values, pattern, rng=rng)
        decisions = ct_decisions(run)
        assert len(set(decisions.values())) <= 1

    def test_timestamp_locking_preserves_decided_value(self):
        """A decided value is carried by a majority's timestamps: after
        any decision, every later estimate pick must return it.  Tested
        indirectly over many adversarial seeds."""
        for seed in range(10):
            rng = random.Random(seed)
            pattern = FailurePattern.with_crashes(
                3, {seed % 3: rng.randint(30, 150)}
            )
            values = [rng.randint(0, 2) for _ in range(3)]
            run = run_ct_consensus(
                values, pattern, rng=rng,
                stabilization_time=80, false_suspicion_prob=0.4,
                max_steps=12_000,
            )
            assert len(set(ct_decisions(run).values())) <= 1
