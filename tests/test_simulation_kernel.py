"""Tests for the step-level simulation kernel."""

from __future__ import annotations

import random

import pytest

from repro.errors import ConfigurationError, ScheduleError
from repro.failures import FailurePattern
from repro.simulation import (
    RandomScheduler,
    RoundRobinScheduler,
    Schedule,
    ScriptedScheduler,
    Step,
    StepAutomaton,
    StepContext,
    StepExecutor,
    StepOutcome,
)
from repro.simulation.automaton import IdleAutomaton
from repro.simulation.executor import run_until_quiet


class PingAutomaton(StepAutomaton):
    """Sends its step count to the next process; state is the count."""

    def initial_state(self, pid: int, n: int):
        return 0

    def on_step(self, ctx: StepContext) -> StepOutcome:
        target = (ctx.pid + 1) % ctx.n
        return StepOutcome(
            state=ctx.state + 1, send_to=target, payload=ctx.state + 1
        )


class EchoCollector(StepAutomaton):
    """Collects every received payload; never sends."""

    def initial_state(self, pid: int, n: int):
        return ()

    def on_step(self, ctx: StepContext) -> StepOutcome:
        payloads = tuple(m.payload for m in ctx.received)
        return StepOutcome(state=ctx.state + payloads)


def make_executor(automaton, n=3, crashes=None, scheduler=None):
    pattern = FailurePattern.with_crashes(n, crashes or {})
    return StepExecutor(
        automaton, n, pattern, scheduler or RoundRobinScheduler()
    )


class TestSchedule:
    def test_projection_selects_process_steps(self):
        schedule = Schedule(n=2)
        schedule.append(Step(0, 0, 0, (), None, None, 1))
        schedule.append(Step(1, 1, 1, (), None, None, 1))
        schedule.append(Step(2, 2, 0, (), None, None, 2))
        assert [s.index for s in schedule.projection(0)] == [0, 2]

    def test_append_requires_contiguous_indices(self):
        schedule = Schedule(n=1)
        with pytest.raises(ValueError):
            schedule.append(Step(3, 3, 0, (), None, None, 1))

    def test_step_counts(self):
        schedule = Schedule(n=2)
        schedule.append(Step(0, 0, 1, (), None, None, 1))
        assert schedule.step_counts() == {0: 0, 1: 1}


class TestExecutorBasics:
    def test_round_robin_gives_equal_steps(self):
        executor = make_executor(IdleAutomaton())
        run = executor.execute(9)
        assert run.schedule.step_counts() == {0: 3, 1: 3, 2: 3}

    def test_messages_are_routed_and_delivered(self):
        executor = make_executor(PingAutomaton(), n=2)
        run = executor.execute(10)
        # p0 and p1 alternate; every sent message is delivered next step.
        assert len(run.messages) == 10
        received = run.messages_received_by(1)
        assert all(m.sender == 0 for m in received)

    def test_crashed_process_takes_no_steps(self):
        executor = make_executor(IdleAutomaton(), crashes={1: 4})
        run = executor.execute(30)
        for step in run.schedule:
            assert run.pattern.is_alive(step.pid, step.time)

    def test_initially_dead_never_steps(self):
        executor = make_executor(IdleAutomaton(), crashes={0: 0})
        run = executor.execute(10)
        assert all(step.pid != 0 for step in run.schedule)

    def test_all_crashed_ends_run(self):
        pattern = FailurePattern.with_crashes(2, {0: 0, 1: 0})
        executor = StepExecutor(
            IdleAutomaton(), 2, pattern, RoundRobinScheduler()
        )
        run = executor.execute(10)
        assert len(run.schedule) == 0

    def test_stop_when_predicate(self):
        executor = make_executor(PingAutomaton(), n=2)
        run = executor.execute(100, stop_when=lambda s: s[0] >= 3)
        assert run.final_states[0] == 3

    def test_undelivered_tracked(self):
        # Sender sends to p1 but p1 crashes immediately: messages pile up.
        executor = make_executor(
            PingAutomaton(), n=2, crashes={1: 0}
        )
        run = executor.execute(6)
        assert len(run.undelivered[1]) == 6
        # p1 is faulty, so these do not count against admissibility.
        assert run.undelivered_to_correct() == []

    def test_local_step_counter(self):
        executor = make_executor(IdleAutomaton(), n=2)
        run = executor.execute(6)
        locals_of_p0 = [s.local_step for s in run.steps_of(0)]
        assert locals_of_p0 == [1, 2, 3]

    def test_record_states_snapshots(self):
        executor = StepExecutor(
            PingAutomaton(),
            2,
            FailurePattern.crash_free(2),
            RoundRobinScheduler(),
            record_states=True,
        )
        run = executor.execute(4)
        assert len(run.state_snapshots) == 4


class TestExecutorValidation:
    def test_pattern_size_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            StepExecutor(
                IdleAutomaton(),
                3,
                FailurePattern.crash_free(2),
                RoundRobinScheduler(),
            )

    def test_wrong_automata_count_rejected(self):
        with pytest.raises(ConfigurationError):
            StepExecutor(
                [IdleAutomaton()],
                2,
                FailurePattern.crash_free(2),
                RoundRobinScheduler(),
            )

    def test_scheduler_choosing_crashed_process_rejected(self):
        executor = StepExecutor(
            IdleAutomaton(),
            2,
            FailurePattern.with_crashes(2, {1: 0}),
            ScriptedScheduler([(1, "all")]),
        )
        with pytest.raises(ScheduleError):
            executor.execute(1)

    def test_send_to_unknown_process_rejected(self):
        class BadSender(StepAutomaton):
            def initial_state(self, pid, n):
                return None

            def on_step(self, ctx):
                return StepOutcome(state=None, send_to=99, payload="x")

        executor = make_executor(BadSender(), n=2)
        with pytest.raises(ScheduleError):
            executor.execute(1)


class TestSchedulers:
    def test_random_scheduler_only_picks_alive(self, rng):
        pattern = FailurePattern.with_crashes(3, {0: 5})
        executor = StepExecutor(
            IdleAutomaton(), 3, pattern, RandomScheduler(rng)
        )
        run = executor.execute(50)
        for step in run.schedule:
            assert pattern.is_alive(step.pid, step.time)

    def test_random_scheduler_eventually_delivers(self, rng):
        executor = StepExecutor(
            PingAutomaton(),
            2,
            FailurePattern.crash_free(2),
            RandomScheduler(rng, delivery_prob=0.1, max_age=15),
        )
        run = executor.execute(300)
        # With forced delivery at max_age, nothing old remains buffered.
        for pending in run.undelivered.values():
            for message in pending:
                assert len(run.schedule) - message.sent_step < 40

    def test_random_scheduler_rejects_bad_probability(self, rng):
        with pytest.raises(ScheduleError):
            RandomScheduler(rng, delivery_prob=1.5)

    def test_scripted_scheduler_replays_script(self):
        executor = StepExecutor(
            PingAutomaton(),
            2,
            FailurePattern.crash_free(2),
            ScriptedScheduler([(0, "all"), (0, "all"), (1, "all")]),
        )
        run = executor.execute(10)
        assert [s.pid for s in run.schedule] == [0, 0, 1]

    def test_scripted_scheduler_delivers_selected_uids(self):
        # p0 sends twice to p1, then p1 receives only the first message.
        executor = StepExecutor(
            PingAutomaton(),
            2,
            FailurePattern.crash_free(2),
            ScriptedScheduler([(0, "all"), (0, "all"), (1, [0])]),
        )
        run = executor.execute(3)
        assert run.schedule[2].received_uids == (0,)
        assert len(run.undelivered[1]) == 1

    def test_scripted_scheduler_callable_selector(self):
        executor = StepExecutor(
            PingAutomaton(),
            2,
            FailurePattern.crash_free(2),
            ScriptedScheduler(
                [(0, "all"), (1, lambda buffered: [m.uid for m in buffered])]
            ),
        )
        run = executor.execute(2)
        assert run.schedule[1].received_uids == (0,)

    def test_scripted_scheduler_unknown_uid_rejected(self):
        executor = StepExecutor(
            IdleAutomaton(),
            2,
            FailurePattern.crash_free(2),
            ScriptedScheduler([(0, [42])]),
        )
        with pytest.raises(ScheduleError):
            executor.execute(1)

    def test_scripted_scheduler_exhaustion_ends_run(self):
        executor = StepExecutor(
            IdleAutomaton(),
            2,
            FailurePattern.crash_free(2),
            ScriptedScheduler([(0, "all")]),
        )
        run = executor.execute(10)
        assert len(run.schedule) == 1


class TestRunUntilQuiet:
    def test_stops_when_correct_processes_decided(self):
        class DecideAfterThree(StepAutomaton):
            def initial_state(self, pid, n):
                return 0

            def on_step(self, ctx):
                return StepOutcome(state=ctx.state + 1)

        executor = make_executor(DecideAfterThree(), n=2)
        run = run_until_quiet(executor, 100, decided=lambda s: s >= 3)
        assert all(v >= 3 for v in run.final_states.values())
        assert len(run.schedule) <= 8
