"""Model checker throughput — exploration, reduction and full verdicts.

Times the three costs of a ``repro mc`` verdict on the paper's small
instances: frontier exploration with reductions on and off (same
instance, so the ratio of the two spans is the state-space payoff of
symmetry + dominance pruning), and an end-to-end ``check`` including
the engine sweep and property evaluation.

Timings land as ``mc.bench.*`` spans in ``benchmarks/metrics.jsonl``;
the explorations also record their frontier counters as
``mc.bench.stats.<mode>.<counter>`` spans whose *sample value* is the
raw count (not seconds — ``scripts/bench_report.py`` reads them back
as counts to derive states/sec and prune ratios for the committed
report's ``mc_timings`` section).
"""

from repro.mc import McTask, check, explore
from repro.obs.profile import get_profiler, profiled

#: The reference instance: FloodSet under RS, the paper's baseline.
INSTANCE = dict(n=3, t=1, model="RS", horizon=3)


def _record_stats(mode: str, stats) -> None:
    profiler = get_profiler()
    if profiler is None:
        return
    for counter, value in stats.to_dict().items():
        if isinstance(value, (int, float)):
            profiler.record(f"mc.bench.stats.{mode}.{counter}", float(value))


def _explore(reduce: bool):
    mode = "reduced" if reduce else "unreduced"
    with profiled(f"mc.bench.explore.{mode}"):
        exploration = explore("floodset", reduce=reduce, **INSTANCE)
    _record_stats(mode, exploration.stats)
    return exploration


def test_explore_reduced(benchmark):
    exploration = benchmark(_explore, True)
    assert exploration.leaves


def test_explore_unreduced(benchmark):
    exploration = benchmark(_explore, False)
    assert exploration.leaves


def test_explore_reduced_n4_t2(once):
    """The largest acceptance instance, explored once under timing."""

    def run():
        with profiled("mc.bench.explore.n4t2"):
            exploration = explore(
                "floodset", n=4, t=2, model="RS", horizon=4, reduce=True
            )
        _record_stats("n4t2", exploration.stats)
        return exploration

    exploration = once(run)
    assert exploration.stats.leaves > 0


def test_check_agreement(once):
    """One full verdict: explore + engine sweep + property + stats."""

    def run():
        with profiled("mc.bench.check.agreement"):
            return check(
                McTask(property_name="agreement", algorithm="floodset", **INSTANCE)
            )

    outcome = once(run)
    assert outcome.verdict.holds
