"""The fuzz campaign: generate, execute, cross-check, shrink, report.

One campaign is four phases, all deterministic in ``(budget, seed)``:

1. **Generate** — ``budget`` cases round-robin over the selected
   engines, each from its :func:`~repro.runtime.space.derived_seed`
   stream (case ``i`` is the same no matter the budget or worker
   count).
2. **Execute** — one :class:`~repro.runtime.sweep.SweepRunner` pass
   over the whole case list (parallel, optionally cached), then a
   second pass over the *twins* of every emulation case (the rounds
   engine under each case's induced scenario).
3. **Cross-check** — the per-case oracles of :mod:`repro.fuzz.oracles`
   plus two batch parity oracles over a fixed-size sample:
   ``jobs-parity`` (the sample's merged trace and folded metrics must
   be byte-identical between ``jobs=1`` and ``jobs=2``) and
   ``cache-parity`` (a cache-warm re-run must execute zero cells and
   reproduce the cold merged trace byte-for-byte).
4. **Shrink** — every failing case is reduced by
   :func:`repro.fuzz.shrink.shrink` (predicate: *any* per-case oracle
   still fails) and emitted as a replayable JSON counterexample that
   ``repro replay --repro FILE`` re-executes.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Sequence

from repro.errors import ConfigurationError
from repro.fuzz.oracles import (
    OracleFailure,
    case_failures,
    run_case,
    twin_request,
)
from repro.obs.artifacts import RunDir, identity_for_requests
from repro.obs.progress import ProgressReporter
from repro.obs.report import summarize_fuzz
from repro.fuzz.shrink import shrink
from repro.fuzz.strategies import (
    FUZZ_ENGINES,
    LIVE_FUZZ_ENGINE,
    VECTOR_FUZZ_ENGINES,
    generate_case,
    mc_frontier_cases,
)
from repro.inject import active_injection
from repro.rounds.scenario import validate_scenario
from repro.runtime.cache import ResultCache
from repro.runtime.request import ExecutionRequest, ExecutionResult
from repro.runtime.space import ScenarioSpace
from repro.runtime.sweep import SweepResult, SweepRunner
from repro.serialize import scenario_from_dict

#: File format marker of emitted counterexamples.
REPRO_KIND = "fuzz-counterexample"
REPRO_SCHEMA = 1

#: Cells sampled for the batch parity oracles (kept small: every cell
#: in the sample is re-executed twice more).
PARITY_SAMPLE = 8


@dataclass
class Counterexample:
    """One failing case, before and after shrinking."""

    original: ExecutionRequest
    failures: list[OracleFailure]
    shrunk: ExecutionRequest
    shrunk_failures: list[OracleFailure]
    shrink_attempts: int

    @property
    def oracles(self) -> list[str]:
        return [failure.oracle for failure in self.failures]

    def to_dict(self) -> dict:
        return {
            "kind": REPRO_KIND,
            "schema": REPRO_SCHEMA,
            "injected_bug": active_injection(),
            "oracles": self.oracles,
            "problems": [
                {"oracle": f.oracle, "problems": f.problems}
                for f in self.shrunk_failures or self.failures
            ],
            "request": self.shrunk.to_dict(),
            "original": self.original.to_dict(),
            "shrink_attempts": self.shrink_attempts,
        }

    def describe(self) -> str:
        lines = [
            f"{self.original.name}: FAILED "
            f"[{', '.join(self.oracles)}]"
        ]
        adversary = (
            self.shrunk.scenario.describe()
            if self.shrunk.scenario is not None
            else self.shrunk.pattern.describe()
        )
        lines.append(
            f"  shrunk to n={self.shrunk.n}, "
            f"{self.shrunk.engine}/{self.shrunk.algorithm}, "
            f"adversary: {adversary} "
            f"({self.shrink_attempts} attempts)"
        )
        for failure in self.shrunk_failures or self.failures:
            for problem in failure.problems:
                lines.append(f"  {failure.oracle}: {problem}")
        return "\n".join(lines)


@dataclass
class FuzzReport:
    """Everything one campaign established."""

    budget: int
    seed: int
    engines: tuple[str, ...]
    executed: int
    cached: int
    twins: int
    parity_cells: int = 0
    counterexamples: list[Counterexample] = field(default_factory=list)
    parity_problems: list[str] = field(default_factory=list)
    repro_files: list[str] = field(default_factory=list)
    #: The campaign's run directory (``runs/<run_id>``), when artifacts
    #: were requested.
    run_dir: str | None = None

    @property
    def ok(self) -> bool:
        return not self.counterexamples and not self.parity_problems

    def describe(self) -> str:
        lines = [
            f"fuzz: {self.budget} cases over {', '.join(self.engines)} "
            f"(seed {self.seed}); executed {self.executed}, "
            f"cached {self.cached}, twins {self.twins}"
        ]
        injected = active_injection()
        if injected is not None:
            lines.append(f"injected bug active: {injected}")
        if self.parity_problems:
            lines.append("parity oracles FAILED:")
            lines.extend(f"  {problem}" for problem in self.parity_problems)
        elif self.parity_cells:
            lines.append(
                f"parity oracles ok (jobs=1 vs jobs=2, cold vs warm cache "
                f"over {self.parity_cells} sampled cells)"
            )
        else:
            lines.append(
                "parity oracles skipped (no deterministic cells to sample)"
            )
        if self.counterexamples:
            lines.append(
                f"{len(self.counterexamples)} counterexample(s):"
            )
            lines.extend(ce.describe() for ce in self.counterexamples)
        else:
            lines.append("all per-case oracles ok")
        for path in self.repro_files:
            lines.append(f"wrote {path}")
        if self.run_dir is not None:
            lines.append(
                f"run artifacts: {self.run_dir} (inspect with `repro report`)"
            )
        return "\n".join(lines)


def resolve_engines(names: Sequence[str]) -> tuple[str, ...]:
    """Expand CLI engine selectors into the fuzz-engine round-robin.

    ``all`` covers the four deterministic engines; ``vector`` expands
    to the columnar kernel under both round models (every vector case's
    replay oracle re-executes its trace on the object engine, a
    built-in vector↔object differential); the wall-clock ``live``
    engine is opt-in by name, so default campaigns stay reproducible
    case-for-case.
    """
    engines: list[str] = []
    for name in names:
        if name == "all":
            engines.extend(FUZZ_ENGINES)
        elif name == "rounds":
            engines.extend(("rounds-rs", "rounds-rws"))
        elif name == "vector":
            engines.extend(VECTOR_FUZZ_ENGINES)
        elif name in FUZZ_ENGINES + VECTOR_FUZZ_ENGINES + (LIVE_FUZZ_ENGINE,):
            engines.append(name)
        else:
            raise ConfigurationError(
                f"unknown engine {name!r}; choose from "
                f"{('all', 'rounds', 'vector') + FUZZ_ENGINES + VECTOR_FUZZ_ENGINES + (LIVE_FUZZ_ENGINE,)}"
            )
    return tuple(dict.fromkeys(engines))


def generate_cases(
    budget: int, seed: int, engines: Sequence[str], *, max_n: int = 4
) -> list[ExecutionRequest]:
    """The campaign's deterministic case list, round-robin by engine."""
    return [
        generate_case(
            index, seed=seed, engine=engines[index % len(engines)], max_n=max_n
        )
        for index in range(budget)
    ]


def _twin_results(
    runner: SweepRunner,
    requests: Sequence[ExecutionRequest],
    results: Sequence[ExecutionResult],
) -> dict[str, ExecutionResult]:
    """Execute the rounds twin of every emulation cell, in one sweep.

    Cells whose induced scenario is missing or inadmissible get no
    twin: the rounds executor would (rightly) refuse such a scenario,
    and ``twin_oracle`` reports the inadmissibility from the result
    itself before ever looking for a twin.
    """
    twins: list[ExecutionRequest] = []
    owners: list[str] = []
    for request, result in zip(requests, results):
        if request.engine in ("rounds", "vector"):
            continue
        data = result.extra.get("induced_scenario")
        if data is None:
            continue
        try:
            induced = scenario_from_dict(data)
        except Exception:
            continue
        if validate_scenario(
            induced,
            t=request.t,
            allow_pending=(request.engine == "rws_on_sp"),
            horizon=request.max_rounds,
        ):
            continue
        twins.append(twin_request(request, induced))
        owners.append(request.name)
    if not twins:
        return {}
    sweep = runner.run(ScenarioSpace.explicit("fuzz-twins", twins))
    return dict(zip(owners, sweep.results))


def _parity_problems(
    sample: Sequence[ExecutionRequest], cache_dir: str | None
) -> list[str]:
    """The batch oracles: scheduling and caching must not change bytes."""
    if not sample:
        return []
    problems: list[str] = []
    space = ScenarioSpace.explicit("fuzz-parity", list(sample))

    serial = SweepRunner(jobs=1, cache=None, check=False).run(space)
    parallel = SweepRunner(jobs=2, cache=None, check=False).run(space)
    problems.extend(_compare_sweeps("jobs-parity(1 vs 2)", serial, parallel))

    if cache_dir is not None:
        parity_cache = ResultCache(Path(cache_dir) / "parity")
        cold = SweepRunner(jobs=1, cache=parity_cache, check=False).run(space)
        warm = SweepRunner(jobs=1, cache=parity_cache, check=False).run(space)
        if warm.executed != 0:
            problems.append(
                f"cache-parity: warm re-run executed {warm.executed} "
                "cell(s); every cell should have been served from cache"
            )
        problems.extend(_compare_sweeps("cache-parity(cold vs warm)", cold, warm))
    return problems


def _compare_sweeps(
    label: str, left: SweepResult, right: SweepResult
) -> list[str]:
    problems: list[str] = []
    left_lines = list(left.merged_jsonl_lines())
    right_lines = list(right.merged_jsonl_lines())
    if left_lines != right_lines:
        index = next(
            (
                i
                for i, (a, b) in enumerate(zip(left_lines, right_lines))
                if a != b
            ),
            min(len(left_lines), len(right_lines)),
        )
        problems.append(
            f"{label}: merged traces differ at event {index} "
            f"({len(left_lines)} vs {len(right_lines)} events)"
        )
    if left.metrics.state() != right.metrics.state():
        problems.append(f"{label}: folded metrics states differ")
    return problems


def run_campaign(
    *,
    budget: int,
    seed: int,
    engines: Sequence[str] = ("all",),
    jobs: int = 1,
    cache_dir: str | None = None,
    out_dir: str | None = None,
    shrink_failures: bool = True,
    max_shrink_attempts: int = 400,
    max_n: int = 4,
    run_root: str | None = None,
    progress_stream: Any = None,
    frontier: str | None = None,
) -> FuzzReport:
    """Run one differential fuzzing campaign; see the module docstring.

    With ``run_root`` the campaign writes a content-addressed run
    directory under it (manifest, incremental ``metrics.jsonl``,
    ``progress.jsonl`` heartbeats, final ``summary.json``), uses the
    run's own ``results/`` store as the execution cache — so a killed
    campaign re-invoked with the same parameters resumes, skipping
    every already-completed case — and finalizes with SLO verdicts.
    ``progress_stream`` additionally mirrors heartbeats to a stream
    (the CLI passes stderr).
    """
    if budget < 1:
        raise ConfigurationError("budget must be >= 1")
    if frontier is not None:
        # Seed every case from a saved model-checker frontier: the
        # stream samples exactly-known deep reachable states instead of
        # random adversaries (see strategies.mc_frontier_case).
        engine_list = ("mc-frontier",)
        requests = mc_frontier_cases(budget, seed, frontier)
    else:
        engine_list = resolve_engines(engines)
        requests = generate_cases(budget, seed, engine_list, max_n=max_n)

    run_dir: RunDir | None = None
    reporter: ProgressReporter | None = None
    completed_before: set[str] = set()
    on_cell = None
    sweep_cache: Any = cache_dir
    if run_root is not None:
        run_dir = RunDir.open(
            run_root,
            kind="fuzz",
            name=f"fuzz-{seed}",
            identity=identity_for_requests(requests),
            cells=[(request.name, request.cache_key()) for request in requests],
            config={
                "budget": budget,
                "seed": seed,
                "engines": list(engine_list),
                "max_n": max_n,
                "frontier": frontier,
            },
        )
        completed_before = run_dir.completed_keys()
        sweep_cache = ResultCache(run_dir.results_dir)
        reporter = ProgressReporter(
            total=len(requests),
            path=run_dir.progress_path,
            stream=progress_stream,
            label=f"fuzz-{seed}",
        ).start()

        def on_cell(request: ExecutionRequest, result: ExecutionResult) -> None:
            profile = result.extra.get("profile") or {}
            run_dir.record_cell(
                name=request.name,
                key=result.request_key,
                cached=result.cached,
                engine=request.engine,
                algorithm=request.algorithm,
                latency=result.latency,
                num_rounds=result.num_rounds,
                events=len(result.events),
                duration_s=profile.get("duration_s"),
            )
            reporter.advance(cached=result.cached)

    runner = SweepRunner(jobs=jobs, cache=sweep_cache, check=False, on_cell=on_cell)
    try:
        sweep = runner.run(ScenarioSpace.explicit(f"fuzz-{seed}", requests))
    except BaseException:
        if run_dir is not None:
            run_dir.mark_interrupted()
        if reporter is not None:
            reporter.stop(status="interrupted")
        raise

    # Twins share the run's result store (so a resumed campaign skips
    # them too) but not the progress counter — the planned total is the
    # case budget, and twins are derived work.
    twin_on_cell = None
    if run_dir is not None:

        def twin_on_cell(request: ExecutionRequest, result: ExecutionResult) -> None:
            profile = result.extra.get("profile") or {}
            run_dir.record_cell(
                name=request.name,
                key=result.request_key,
                cached=result.cached,
                engine=request.engine,
                algorithm=request.algorithm,
                latency=result.latency,
                num_rounds=result.num_rounds,
                events=len(result.events),
                duration_s=profile.get("duration_s"),
            )

    twin_runner = SweepRunner(
        jobs=jobs, cache=sweep_cache, check=False, on_cell=twin_on_cell
    )
    twin_by_case = _twin_results(twin_runner, requests, sweep.results)

    counterexamples: list[Counterexample] = []
    for request, result in zip(requests, sweep.results):
        failures = case_failures(
            request, result, twin_result=twin_by_case.get(request.name)
        )
        if not failures:
            continue
        if shrink_failures:
            outcome = shrink(
                request,
                lambda mutant: bool(run_case(mutant)),
                max_attempts=max_shrink_attempts,
            )
            shrunk = outcome.request
            shrunk_failures = run_case(shrunk)
            attempts = outcome.attempts
        else:
            shrunk, shrunk_failures, attempts = request, failures, 0
        counterexamples.append(
            Counterexample(
                original=request,
                failures=failures,
                shrunk=shrunk,
                shrunk_failures=shrunk_failures,
                shrink_attempts=attempts,
            )
        )

    # Live cells never enter the parity sample: their traces are
    # wall-clock nondeterministic, so byte-identity across schedulers
    # (or cache warmth) is not a claim the engine makes.
    parity_sample = [
        r for r in requests if r.engine != LIVE_FUZZ_ENGINE
    ][:PARITY_SAMPLE]
    parity = _parity_problems(parity_sample, cache_dir)

    report = FuzzReport(
        budget=budget,
        seed=seed,
        engines=engine_list,
        executed=sweep.executed,
        cached=sweep.cached,
        twins=len(twin_by_case),
        parity_cells=len(parity_sample),
        counterexamples=counterexamples,
        parity_problems=parity,
    )
    if out_dir is not None and counterexamples:
        directory = Path(out_dir)
        directory.mkdir(parents=True, exist_ok=True)
        for ce in counterexamples:
            path = directory / f"{ce.original.name}.json"
            path.write_text(
                json.dumps(ce.to_dict(), indent=2, sort_keys=True, default=repr)
                + "\n",
                encoding="utf-8",
            )
            report.repro_files.append(str(path))
    if run_dir is not None:
        report.run_dir = str(run_dir.path)
        summary = summarize_fuzz(
            run_dir, report, sweep, completed_before=completed_before
        )
        run_dir.finalize(summary)
        reporter.stop()
    return report


def load_counterexample(path: str) -> tuple[ExecutionRequest, dict]:
    """Parse a ``repro fuzz`` counterexample file.

    Returns the (shrunk) request to re-execute plus the full document;
    raises :class:`ConfigurationError` on anything that is not a
    counterexample file.
    """
    try:
        with open(path, "r", encoding="utf-8") as handle:
            data = json.load(handle)
    except (OSError, ValueError) as exc:
        raise ConfigurationError(f"cannot read {path}: {exc}") from exc
    if not isinstance(data, dict) or data.get("kind") != REPRO_KIND:
        raise ConfigurationError(
            f"{path} is not a {REPRO_KIND} file (kind="
            f"{data.get('kind') if isinstance(data, dict) else None!r})"
        )
    try:
        request = ExecutionRequest.from_dict(data["request"])
    except Exception as exc:
        raise ConfigurationError(
            f"{path}: malformed request: {exc}"
        ) from exc
    return request, data
