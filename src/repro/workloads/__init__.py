"""Workload builders: named configurations and scenarios.

The paper's arguments revolve around a handful of carefully chosen
runs; this package names them so tests, examples and benches can share
them instead of re-deriving adversary tuples inline.
"""

from repro.workloads.configs import (
    unanimous,
    adversarial_split,
    random_values,
)
from repro.workloads.scenarios import (
    failure_free,
    initially_dead_t,
    crash_mid_broadcast,
    decide_then_crash_pending,
    floodset_rws_violation,
    a1_rws_disagreement,
)

__all__ = [
    "unanimous",
    "adversarial_split",
    "random_values",
    "failure_free",
    "initially_dead_t",
    "crash_mid_broadcast",
    "decide_then_crash_pending",
    "floodset_rws_violation",
    "a1_rws_disagreement",
]
