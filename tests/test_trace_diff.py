"""Tests for trace diffing and the Theorem 3.1 indistinguishability demo."""

from __future__ import annotations

from repro.consensus import FloodSet
from repro.obs import (
    EventLog,
    diff_traces,
    first_divergence,
    indistinguishable,
    local_view,
    logical_clock,
    view_divergence,
)
from repro.rounds import run_rws
from repro.sdd import SP_CANDIDATE_FACTORIES, sdd_quadruple_traces
from repro.sdd.spec import RECEIVER, SENDER
from repro.workloads import adversarial_split, floodset_rws_violation


def _rws_trace(values):
    log = EventLog(clock=logical_clock())
    run_rws(
        FloodSet(),
        values,
        floodset_rws_violation(3),
        t=1,
        max_rounds=4,
        observer=log,
    )
    return log.events


class TestFirstDivergence:
    def test_identical_traces_have_no_divergence(self):
        events = _rws_trace(adversarial_split(3))
        assert first_divergence(events, events) is None

    def test_timestamps_ignored_by_default(self):
        a = _rws_trace(adversarial_split(3))
        b = _rws_trace(adversarial_split(3))
        # logical clocks restart, so ts agree here; perturb one to prove
        # the comparison does not look at it
        perturbed = [
            e.__class__.from_dict({**e.to_dict(), "ts": e.ts + 100}) for e in b
        ]
        assert first_divergence(a, perturbed) is None

    def test_prefix_divergence_reports_ended_side(self):
        events = _rws_trace(adversarial_split(3))
        divergence = first_divergence(events, events[:-1])
        assert divergence is not None
        assert divergence.position == len(events) - 1
        assert divergence.event_b is None
        assert divergence.index_b is None
        assert "<ended>" in divergence.describe()


class TestDiffTraces:
    def test_identical(self):
        events = _rws_trace(adversarial_split(3))
        diff = diff_traces(events, events)
        assert diff.identical
        assert diff.describe() == "traces identical"
        assert diff.diverging_processes() == []

    def test_different_inputs_diverge_and_lanes_attribute(self):
        a = _rws_trace(adversarial_split(3))
        b = _rws_trace([1, 1, 1])
        diff = diff_traces(a, b)
        assert not diff.identical
        assert diff.divergence.index_a is not None
        # at least one per-process lane must localise the difference
        assert diff.diverging_processes()
        assert "diverge at position" in diff.describe()


class TestLocalView:
    def test_view_contains_only_observations(self):
        events = _rws_trace(adversarial_split(3))
        view = [e for _, e in local_view(events, 1)]
        assert view, "p1 observes something"
        assert {e.kind for e in view} <= {"msg_delivered", "suspect", "decide"}
        assert all(e.pid == 1 for e in view)

    def test_view_indices_point_into_original(self):
        events = _rws_trace(adversarial_split(3))
        for index, event in local_view(events, 2):
            assert events[index] is event


class TestSDDIndistinguishability:
    """The executable Theorem 3.1: the receiver cannot tell the runs of
    each pair apart, hence decides identically — which breaks validity."""

    def test_receiver_views_indistinguishable_within_pairs(self):
        for name, factory in SP_CANDIDATE_FACTORIES.items():
            traces = sdd_quadruple_traces(factory)
            for left, right in (("r0", "r0'"), ("r1", "r1'")):
                assert indistinguishable(
                    traces[left].events, traces[right].events, RECEIVER
                ), f"{name}: receiver distinguishes {left} from {right}"

    def test_sender_views_differ_across_pairs(self):
        """The *sender* trivially distinguishes r0 (it never steps)
        from r0' (it sends): indistinguishability is per-process."""
        traces = sdd_quadruple_traces(SP_CANDIDATE_FACTORIES["suspicion"])
        a = traces["r0"].events
        b = traces["r0'"].events
        # r0's sender is initially dead; r0''s sender sends one message
        sends_a = [e for e in a if e.kind == "msg_sent" and e.peer == SENDER]
        sends_b = [e for e in b if e.kind == "msg_sent" and e.peer == SENDER]
        assert not sends_a and sends_b

    def test_identical_views_force_identical_decisions(self):
        for factory in SP_CANDIDATE_FACTORIES.values():
            traces = sdd_quadruple_traces(factory)
            for left, right in (("r0", "r0'"), ("r1", "r1'")):
                decides_left = [
                    e.value
                    for e in traces[left].events
                    if e.kind == "decide" and e.pid == RECEIVER
                ]
                decides_right = [
                    e.value
                    for e in traces[right].events
                    if e.kind == "decide" and e.pid == RECEIVER
                ]
                assert decides_left == decides_right

    def test_view_divergence_reports_nothing_for_pairs(self):
        traces = sdd_quadruple_traces(SP_CANDIDATE_FACTORIES["patient"])
        assert (
            view_divergence(
                traces["r1"].events, traces["r1'"].events, RECEIVER
            )
            is None
        )
