"""``repro show``: execute a named scenario and render it."""

from __future__ import annotations

import argparse

from repro.cli.common import SCENARIOS, resolve_scenario, unknown_scenario
from repro.rounds import RoundModel, run_rs, run_rws
from repro.trace import round_tableau


def _cmd_show(args: argparse.Namespace) -> int:
    entry = resolve_scenario(args.scenario)
    if entry is None:
        return unknown_scenario(args.scenario)
    blurb, build = entry
    algorithm, values, scenario, model = build()
    runner = run_rws if model is RoundModel.RWS else run_rs
    run = runner(algorithm, values, scenario, t=1, max_rounds=4)
    if getattr(args, "dot", False):
        from repro.trace import round_run_to_dot

        print(round_run_to_dot(run))
        return 0
    print(f"{args.scenario}: {blurb}")
    print(f"algorithm={algorithm.name}, model={model.value}, values={values}")
    print()
    print(round_tableau(run))
    return 0


def register(sub: argparse._SubParsersAction) -> None:
    """Attach this module's subcommands to the root parser."""
    p_show = sub.add_parser("show", help="render a named scenario")
    p_show.add_argument("scenario", help=f"one of {sorted(SCENARIOS)}")
    p_show.add_argument(
        "--dot",
        action="store_true",
        help="emit Graphviz DOT instead of the ASCII tableau",
    )
    p_show.set_defaults(func=_cmd_show)
