"""Atomic commit: why a synchronous system commits more often.

The paper motivates SDD through atomic commit (Section 3): a
synchronous system can recover any vote whose owner was not initially
dead, so it may commit in runs where an asynchronous system with a
perfect failure detector must abort.  This example measures the gap
and exhibits why the optimistic rule cannot be transplanted to RWS.

Run:  python examples/atomic_commit.py
"""

from repro.commit import (
    check_nbac_run,
    compare_commit_rates,
)
from repro.commit.algorithms import (
    OptimisticFDCommit,
    PerfectFDCommit,
    SynchronousCommit,
    TwoPhaseCommit,
)
from repro.analysis import verify_algorithm
from repro.rounds import (
    CrashEvent,
    FailureScenario,
    PendingMessage,
    RoundModel,
    run_rws,
)
from repro.trace import round_tableau


def main() -> None:
    print("=== commit rates on the all-YES configuration (n=3, t=1) ===")
    for name, report in compare_commit_rates(n=3, t=1).items():
        print(f"  {name}: {report.describe()}")
    print()

    print("=== why the optimistic rule is unsafe in RWS ===")
    # Process 0 votes NO; its round-1 vote reaches process 1 in name only
    # (pending) and it crashes.  The optimistic rule sees all-YES.
    votes = (False, True, True)
    scenario = FailureScenario(
        n=3,
        crashes=(CrashEvent(pid=0, round=1, sent_to=frozenset({1})),),
        pending=frozenset({PendingMessage(0, 1, 1)}),
    )
    run = run_rws(OptimisticFDCommit(), votes, scenario, t=1)
    print(round_tableau(run))
    for violation in check_nbac_run(run):
        print("  violation:", violation)
    print()

    print("=== safety over every vote assignment and scenario ===")
    for algorithm, model in (
        (SynchronousCommit(), RoundModel.RS),
        (PerfectFDCommit(), RoundModel.RWS),
        (OptimisticFDCommit(), RoundModel.RWS),
        (TwoPhaseCommit(), RoundModel.RS),
    ):
        report = verify_algorithm(
            algorithm, 3, 1, model,
            checker=check_nbac_run, domain=(False, True), stop_after=5,
        )
        print(f"  {report.describe()}")
    print()
    print(
        "SynchronousCommit is both safe and maximally committing; the safe "
        "RWS algorithm pays with aborts; the optimistic RWS rule pays with "
        "commit-validity violations; 2PC pays with blocking."
    )


if __name__ == "__main__":
    main()
