"""The columnar vector engine (repro.vector) and its byte-parity contract.

The engine's one promise is differential: every ``engine="vector"``
cell must produce an event log, metrics state and decision map
*byte-identical* to the object round executor's — whether the cell runs
through the batched kernel or falls back per-cell — on both array
backends.  These tests pin that promise over every registered sweep
space, over the ``execute_batch`` seam, over the sweep's parallel and
cached paths, and over a small fuzz campaign whose replay oracle
re-executes every vector case on the object engine.
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.errors import ConfigurationError
from repro.fuzz import VECTOR_FUZZ_ENGINES, run_campaign
from repro.fuzz.campaign import resolve_engines
from repro.runtime import (
    ExecutionRequest,
    execute_batch,
    execute_request,
    has_vector_kernel,
    run_space,
)
from repro.runtime.space import space_by_name, vectorized_space
from repro.vector import (
    BACKEND_ENV,
    HAS_NUMPY,
    backend_name,
    cell_domain,
    plan_for_request,
)
from repro.workloads import crash_mid_broadcast, failure_free

#: Both backends when the ``fast`` extra is installed, otherwise just
#: the dependency-free reference implementation.
BACKENDS = ("python", "numpy") if HAS_NUMPY else ("python",)

#: Every registered space whose round cells the vector engine can take.
ROUND_SPACES = ("oracle-sweep", "e10-lambda", "random-rs", "random-rws")


@pytest.fixture(params=BACKENDS)
def backend(request, monkeypatch):
    monkeypatch.setenv(BACKEND_ENV, request.param)
    assert backend_name() == request.param
    return request.param


def _vector_request(name="cell", **overrides):
    defaults = dict(
        name=name,
        engine="vector",
        algorithm="floodset-ws",
        values=(2, 0, 1),
        t=1,
        model="RWS",
        scenario=failure_free(3),
        max_rounds=4,
    )
    defaults.update(overrides)
    return ExecutionRequest(**defaults)


def _object_twin(request: ExecutionRequest) -> ExecutionRequest:
    return replace(request, engine="rounds")


def _assert_twin_parity(vector_result, object_result):
    """Byte parity on everything except the request key (the engine
    name is part of the request, so the keys differ by design)."""
    assert vector_result.decisions == object_result.decisions
    assert vector_result.latency == object_result.latency
    assert vector_result.num_rounds == object_result.num_rounds
    assert [event.to_json() for event in vector_result.events] == [
        event.to_json() for event in object_result.events
    ]
    assert vector_result.metrics == object_result.metrics
    assert vector_result.request_key != object_result.request_key


class TestRegisteredSpaceGoldens:
    """Every registered round space, vector vs object, checked."""

    @pytest.mark.parametrize("name", ROUND_SPACES)
    def test_merged_traces_byte_identical(self, name):
        base = run_space(space_by_name(name), check=True)
        vec = run_space(vectorized_space(space_by_name(name)), check=True)
        assert list(base.merged_jsonl_lines()) == list(
            vec.merged_jsonl_lines()
        )
        assert base.metrics.state() == vec.metrics.state()
        assert [r.decisions for r in base.results] == [
            r.decisions for r in vec.results
        ]
        assert [c.ok for c in base.checks] == [c.ok for c in vec.checks]

    def test_backends_agree(self, backend):
        base = run_space(space_by_name("e10-lambda"))
        vec = run_space(vectorized_space(space_by_name("e10-lambda")))
        assert list(base.merged_jsonl_lines()) == list(
            vec.merged_jsonl_lines()
        ), f"backend {backend} diverged from the object engine"


class TestBatchSeam:
    def test_execute_batch_matches_per_cell_execution(self, backend):
        cells = [
            _vector_request(f"batch-{i:02d}", values=values)
            for i, values in enumerate(
                [(0, 0, 0), (0, 1, 2), (2, 2, 1), (1, 0, 1)]
            )
        ]
        batched = execute_batch(cells)
        singles = [execute_request(cell) for cell in cells]
        assert [r.to_dict() for r in batched] == [
            r.to_dict() for r in singles
        ]

    def test_batch_preserves_input_order_across_engines(self):
        mixed = [
            _vector_request("v-0"),
            _object_twin(_vector_request("r-0")),
            _vector_request(
                "v-1",
                algorithm="a1",
                model="RS",
                scenario=crash_mid_broadcast(3),
            ),
            _vector_request("v-2", values=(1, 1, 0)),
        ]
        results = execute_batch(mixed)
        assert [r.name for r in results] == [r.name for r in mixed]
        for request, result in zip(mixed, results):
            single = execute_request(request)
            assert result.to_dict() == single.to_dict()

    @pytest.mark.parametrize(
        "algorithm,model",
        [
            ("floodset", "RS"),
            ("floodset-ws", "RWS"),
            ("f-opt", "RS"),
            ("f-opt-ws", "RWS"),
            ("a1", "RS"),
        ],
    )
    def test_kernel_algorithms_match_object_twin(
        self, backend, algorithm, model
    ):
        for scenario in (failure_free(3), crash_mid_broadcast(3)):
            request = _vector_request(
                f"twin-{algorithm}",
                algorithm=algorithm,
                model=model,
                scenario=scenario,
            )
            _assert_twin_parity(
                execute_request(request),
                execute_request(_object_twin(request)),
            )


class TestFallback:
    """Cells the kernel cannot take run the object engine, exactly."""

    def test_unregistered_algorithm_falls_back(self, backend):
        assert not has_vector_kernel("c-opt")
        request = _vector_request("fb-copt", algorithm="c-opt", model="RS")
        assert plan_for_request(request) is None
        _assert_twin_parity(
            execute_request(request),
            execute_request(_object_twin(request)),
        )

    def test_cross_type_values_fall_back(self, backend):
        # 0 == False, so min() parity depends on set-construction
        # order; the kernel refuses the domain and the object engine
        # runs the cell instead.
        values = (0, False, 1)
        assert cell_domain(values) is None
        request = _vector_request("fb-values", values=values)
        _assert_twin_parity(
            execute_request(request),
            execute_request(_object_twin(request)),
        )

    def test_cell_domain_guards(self):
        assert cell_domain((2, 0, 1, 1)) == [0, 1, 2]
        assert cell_domain(("b", "a")) == ["a", "b"]
        assert cell_domain((0, None, 1)) is None
        assert cell_domain((0.0, float("nan"))) is None
        assert cell_domain((1, "a")) is None  # unsortable
        assert cell_domain(([1], [2])) is None  # unhashable

    def test_fallback_reproduces_configuration_errors(self):
        kwargs = dict(
            algorithm="a1",
            model="RS",
            t=2,
            scenario=failure_free(4),
            values=(0, 1, 1, 0),
        )
        with pytest.raises(ConfigurationError) as via_object:
            execute_request(
                _object_twin(_vector_request("err-rounds", **kwargs))
            )
        with pytest.raises(ConfigurationError) as via_vector:
            execute_request(_vector_request("err-vector", **kwargs))
        assert str(via_vector.value) == str(via_object.value)

    def test_kernel_registry_honours_envelopes(self):
        assert has_vector_kernel("floodset")
        assert has_vector_kernel("a1", n=3, t=1)
        assert not has_vector_kernel("a1", n=3, t=2)
        assert not has_vector_kernel("c-opt-ws")


class TestSweepPaths:
    def test_parallel_and_cached_sweeps_stay_byte_identical(
        self, tmp_path
    ):
        space = vectorized_space(space_by_name("e10-lambda"))
        golden = run_space(space_by_name("e10-lambda"))
        cold = run_space(space, jobs=2, cache=str(tmp_path))
        warm = run_space(space, jobs=2, cache=str(tmp_path))
        assert cold.executed == cold.total and cold.cached == 0
        assert warm.executed == 0 and warm.cached == warm.total
        for result in (cold, warm):
            assert list(result.merged_jsonl_lines()) == list(
                golden.merged_jsonl_lines()
            )

    def test_vector_cells_share_profile_telemetry(self):
        space = vectorized_space(space_by_name("e10-lambda"))
        swept = run_space(space, jobs=1)
        profiles = [r.extra.get("profile") for r in swept.results]
        assert all(p is not None for p in profiles)
        assert all(p["duration_s"] >= 0.0 for p in profiles)


class TestVectorFuzz:
    def test_engine_alias_resolves_to_both_streams(self):
        assert resolve_engines(("vector",)) == VECTOR_FUZZ_ENGINES
        assert set(VECTOR_FUZZ_ENGINES) == {"vector-rs", "vector-rws"}

    def test_campaign_is_clean(self):
        report = run_campaign(
            budget=24, seed=3, engines=("vector",), shrink_failures=False
        )
        assert report.ok, report.describe()
        assert report.executed == 24


class TestBackendSelection:
    def test_forced_python_backend(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV, "python")
        assert backend_name() == "python"

    def test_auto_matches_availability(self, monkeypatch):
        monkeypatch.delenv(BACKEND_ENV, raising=False)
        assert backend_name() == ("numpy" if HAS_NUMPY else "python")

    def test_unknown_backend_rejected(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV, "cuda")
        with pytest.raises(ConfigurationError):
            backend_name()


class TestFallbackTelemetry:
    """Fallbacks are parity-safe but must be *visible*: each object-run
    cell carries ``extra["vector_fallback"]`` and the sweep summary
    aggregates the reasons, so a silently-degraded vector campaign
    shows up in `repro report` instead of just running slow."""

    def test_single_request_paths_tag_the_reason(self, backend):
        from repro.vector.engine import (
            FALLBACK_DOMAIN,
            FALLBACK_UNSUPPORTED,
        )

        unsupported = execute_request(
            _vector_request("fb-algo", algorithm="c-opt", model="RS")
        )
        assert unsupported.extra["vector_fallback"] == FALLBACK_UNSUPPORTED
        domain = execute_request(
            _vector_request("fb-domain", values=(0, False, 1))
        )
        assert domain.extra["vector_fallback"] == FALLBACK_DOMAIN
        kernel = execute_request(_vector_request("on-kernel"))
        assert "vector_fallback" not in kernel.extra

    def test_batch_path_tags_only_the_fallback_cells(self, backend):
        from repro.vector.engine import (
            FALLBACK_DOMAIN,
            FALLBACK_UNSUPPORTED,
        )

        requests = [
            _vector_request("b-kernel-0"),
            _vector_request("b-algo", algorithm="c-opt", model="RS"),
            _vector_request("b-kernel-1", values=(1, 1, 0)),
            _vector_request("b-domain", values=(0, False, 1)),
        ]
        results = execute_batch(requests)
        reasons = [r.extra.get("vector_fallback") for r in results]
        assert reasons == [
            None,
            FALLBACK_UNSUPPORTED,
            None,
            FALLBACK_DOMAIN,
        ]

    def test_sweep_summary_aggregates_fallback_reasons(self, tmp_path):
        from repro.obs.artifacts import RunDir, identity_for_requests
        from repro.obs.report import render_report, summarize_sweep
        from repro.runtime import ResultCache, ScenarioSpace, SweepRunner

        requests = list(
            vectorized_space(space_by_name("e10-lambda")).requests[:3]
        ) + [
            _vector_request("fb-algo", algorithm="c-opt", model="RS"),
            _vector_request("fb-domain", values=(0, False, 1)),
        ]
        space = ScenarioSpace.explicit("vector-telemetry", requests)
        run = RunDir.open(
            tmp_path / "runs",
            kind="sweep",
            name=space.name,
            identity=identity_for_requests(requests),
            cells=[(r.name, r.cache_key()) for r in requests],
            config={"space": space.name},
        )

        def on_cell(request, result):
            run.record_cell(
                name=request.name,
                key=result.request_key,
                cached=result.cached,
                engine=request.engine,
                algorithm=request.algorithm,
                latency=result.latency,
                num_rounds=result.num_rounds,
                events=len(result.events),
            )

        sweep = SweepRunner(
            cache=ResultCache(run.results_dir), on_cell=on_cell
        ).run(space)
        summary = summarize_sweep(run, sweep, completed_before=set())
        run.finalize(summary)

        assert summary["vector"] == {
            "cells": 5,
            "kernel": 3,
            "fallbacks": {
                "unsupported-algorithm": 1,
                "value-domain": 1,
            },
            "fallback_cells": ["fb-algo", "fb-domain"],
        }
        rendered = render_report(run)
        assert "3/5 cells on the kernel" in rendered
        assert "2 object fallback(s)" in rendered

    def test_all_kernel_sweep_reports_zero_fallbacks(self, tmp_path):
        from repro.obs.artifacts import RunDir, identity_for_requests
        from repro.obs.report import summarize_sweep
        from repro.runtime import ScenarioSpace, SweepRunner

        requests = list(
            vectorized_space(space_by_name("e10-lambda")).requests[:4]
        )
        space = ScenarioSpace.explicit("vector-clean", requests)
        run = RunDir.open(
            tmp_path / "runs",
            kind="sweep",
            name=space.name,
            identity=identity_for_requests(requests),
            cells=[(r.name, r.cache_key()) for r in requests],
            config={"space": space.name},
        )
        sweep = SweepRunner().run(space)
        summary = summarize_sweep(run, sweep, completed_before=set())
        assert summary["vector"]["kernel"] == 4
        assert summary["vector"]["fallbacks"] == {}
        assert summary["vector"]["fallback_cells"] == []
