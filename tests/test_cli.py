"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli.main import ALGORITHMS, SCENARIOS, build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_experiments_flags(self):
        args = build_parser().parse_args(
            ["experiments", "--ids", "E2", "--full"]
        )
        assert args.ids == ["E2"]
        assert args.full

    def test_unknown_algorithm_rejected_by_argparse(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["latency", "nope"])


class TestCommands:
    def test_summary_prints_table(self, capsys):
        assert main(["summary"]) == 0
        out = capsys.readouterr().out
        assert "A1" in out and "FloodSet" in out
        assert "Λ" in out

    def test_sdd_prints_refutations(self, capsys):
        assert main(["sdd"]) == 0
        out = capsys.readouterr().out
        assert "refuted" in out
        assert "SS solves SDD" in out

    def test_commit_prints_rates(self, capsys):
        assert main(["commit"]) == 0
        out = capsys.readouterr().out
        assert "SyncCommit" in out
        assert "commit rate" in out

    @pytest.mark.parametrize("name", sorted(ALGORITHMS))
    def test_latency_runs_for_every_algorithm(self, name, capsys):
        assert main(["latency", name]) == 0
        out = capsys.readouterr().out
        assert "lat=" in out

    @pytest.mark.parametrize("name", sorted(SCENARIOS))
    def test_show_renders_every_scenario(self, name, capsys):
        assert main(["show", name]) == 0
        out = capsys.readouterr().out
        assert "round" in out

    def test_experiments_single_id(self, capsys):
        assert main(["experiments", "--ids", "E2"]) == 0
        out = capsys.readouterr().out
        assert "[E2]" in out and "PASS" in out

    def test_experiments_unknown_id_raises(self):
        with pytest.raises(KeyError):
            main(["experiments", "--ids", "E99"])


class TestDotOutput:
    def test_show_dot_emits_graphviz(self, capsys):
        assert main(["show", "a1-rws", "--dot"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("digraph")
        assert "pending" in out
