"""Sweep runtime — the unified runner over the oracle-sweep space.

Times the cold serial sweep, a pool-backed sweep, and the cache-warm
re-run (which must execute zero scenarios).  The profiler breakdown
(``runtime.sweep``, ``runtime.sweep.execute``, ``runtime.sweep.check``)
lands in ``benchmarks/metrics.jsonl`` alongside the engine spans.
"""

from repro.runtime import SweepRunner, oracle_sweep_space


def bench_sweep_serial_cold(once):
    space = oracle_sweep_space(count=5)
    result = once(SweepRunner(jobs=1).run, space)
    assert result.executed == result.total
    assert result.cached == 0


def bench_sweep_parallel(once):
    space = oracle_sweep_space(count=5)
    result = once(SweepRunner(jobs=2).run, space)
    assert result.executed == result.total


def bench_sweep_cache_warm(once, tmp_path):
    space = oracle_sweep_space(count=5)
    cache_dir = str(tmp_path / "sweep-cache")
    SweepRunner(jobs=1, cache=cache_dir).run(space)  # populate
    result = once(SweepRunner(jobs=1, cache=cache_dir).run, space)
    assert result.executed == 0
    assert result.cached == result.total


def bench_sweep_checked(once):
    space = oracle_sweep_space(count=5)
    result = once(SweepRunner(jobs=1, check=True).run, space)
    assert result.checks_ok, result.describe()
