"""``repro live``: run a real asyncio cluster from a shell.

Spins up ``n`` processes as tasks over the in-process transport with a
chosen network fault profile, builds P (or ◊P) from heartbeats, runs
the selected algorithm over live channels, and reports decisions,
throughput and detector quality.  ``--check`` serializes the run's
trace into logical order and pipes it through the PR-2 trace oracle;
``--load N`` runs N consensus sessions over one cluster for a
throughput figure; ``--run-dir ROOT`` writes the run's artifacts
(per-session metrics, progress heartbeats, latency percentiles and
live SLO verdicts) for ``repro report``.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.errors import ConfigurationError, ExecutionError
from repro.live import (
    DetectorConfig,
    LiveCluster,
    LiveConfig,
    NET_PROFILES,
    profile_by_name,
)
from repro.live.cluster import LIVE_ALGORITHMS
from repro.obs import Profiler, get_profiler, set_profiler
from repro.obs.artifacts import DEFAULT_LIVE_SLO, RunDir
from repro.obs.check import check_events
from repro.obs.events import EventLog, logical_clock
from repro.obs.profile import profiled
from repro.obs.progress import ProgressReporter
from repro.obs.report import summarize_live


def _parse_values(args: argparse.Namespace) -> tuple[int, ...]:
    if args.values is not None:
        try:
            return tuple(int(v) for v in args.values.split(","))
        except ValueError:
            raise ConfigurationError(
                f"--values must be comma-separated integers, got "
                f"{args.values!r}"
            )
    # Default: an adversarial-ish binary split over n processes.
    return tuple(pid % 2 for pid in range(args.n))


def _parse_crashes(specs: list[str]) -> tuple[tuple[int, float], ...]:
    crashes = []
    for spec in specs:
        try:
            pid_text, ms_text = spec.split("@", 1)
            crashes.append((int(pid_text), float(ms_text) / 1000.0))
        except ValueError:
            raise ConfigurationError(
                f"--crash takes PID@MILLISECONDS (e.g. 1@30), got {spec!r}"
            )
    return tuple(crashes)


def _append_metrics(path: str, profiler: Profiler) -> None:
    """Append this invocation's span breakdown in metrics.jsonl form."""
    with open(path, "a", encoding="utf-8") as fp:
        for name, stats in profiler.snapshot().items():
            fp.write(json.dumps({"span": name, **stats}) + "\n")


def _cmd_live(args: argparse.Namespace) -> int:
    try:
        config = LiveConfig(
            algorithm=args.algorithm,
            values=_parse_values(args),
            profile=profile_by_name(args.net_profile),
            t=args.t,
            detector=DetectorConfig(kind=args.detector),
            crash_at=_parse_crashes(args.crash or []),
            max_rounds=args.max_rounds,
            seed=args.seed,
            sessions=args.load,
            concurrency=args.concurrency,
            timeout_s=args.timeout,
        )
    except ConfigurationError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    run_dir = None
    reporter = None
    on_session_done = None
    if args.run_dir is not None:
        # Live runs are wall-clock: the identity is the configuration,
        # not result hashes — re-invoking the same config re-attaches
        # to the same run directory as a new leg.
        identity = {
            "algorithm": config.algorithm,
            "values": list(config.values),
            "profile": config.profile.name,
            "t": config.t,
            "detector": [config.detector.kind, config.detector.interval_s,
                         config.detector.miss_threshold, config.detector.backoff],
            "crash_at": [list(crash) for crash in config.crash_at],
            "max_rounds": config.max_rounds,
            "seed": config.seed,
            "sessions": config.sessions,
        }
        run_dir = RunDir.open(
            args.run_dir,
            kind="live",
            name=f"live-{config.profile.name}-{config.algorithm}",
            identity=identity,
            cells=[
                (f"session-{i}", f"session-{i}")
                for i in range(config.sessions)
            ],
            config=identity,
            slo=DEFAULT_LIVE_SLO,
        )
        reporter = ProgressReporter(
            total=config.sessions,
            path=run_dir.progress_path,
            stream=sys.stderr,
            label=f"live-{config.profile.name}",
        ).start()

        def on_session_done(session: int, wall_s: float, complete: bool) -> None:
            run_dir.record_cell(
                name=f"session-{session}",
                key=f"session-{session}",
                cached=False,
                engine="live",
                algorithm=config.algorithm,
                latency=None,
                num_rounds=None,
                events=0,
                duration_s=wall_s,
                ok=complete,
            )
            reporter.advance(
                verdict="complete" if complete else "incomplete"
            )

    own_profiler = get_profiler() is None
    if own_profiler:
        set_profiler(Profiler())
    try:
        with profiled(f"live.cli.{config.profile.name}.{config.algorithm}"):
            run = LiveCluster(config, on_session_done=on_session_done).run()
    except ExecutionError as exc:
        print(f"error: {exc}", file=sys.stderr)
        if run_dir is not None:
            run_dir.mark_interrupted()
        if reporter is not None:
            reporter.stop(status="interrupted")
        return 2
    except BaseException:
        if run_dir is not None:
            run_dir.mark_interrupted()
        if reporter is not None:
            reporter.stop(status="interrupted")
        raise
    finally:
        profiler = get_profiler()
        if own_profiler:
            set_profiler(None)

    stats = run.stats_dict()
    print(
        f"live {config.algorithm} on {config.profile.name} "
        f"({config.n} processes, detector {config.detector.kind}, "
        f"seed {config.seed}):"
    )
    print(
        f"  sessions {stats['sessions_completed']}/{stats['sessions']} "
        f"complete in {stats['duration_s'] * 1000:.1f} ms "
        f"({stats['decisions']} decisions, "
        f"{stats['decisions_per_s']:.0f}/s)"
    )
    for pid, (round_index, value) in sorted(run.decisions.items()):
        print(f"  p{pid} decided {value!r} (round {round_index})")
    for pid, at_s in sorted(run.crash_walls.items()):
        print(f"  p{pid} crashed at {at_s * 1000:.1f} ms")
    quality = stats["detector_quality"]
    print(
        f"  detector: {quality['suspicions']} suspicion(s), "
        f"{quality['false_suspicions']} false, "
        f"{quality['refutations']} refuted"
    )
    delays = quality.get("detection_delay_ms") or {}
    if delays.get("mean") is not None:
        print(
            f"  detection delay: mean {delays['mean']:.1f} ms, "
            f"max {delays['max']:.1f} ms"
        )
    transport = stats["transport"]
    print(
        f"  transport: {transport['delivered']} delivered / "
        f"{transport['attempts']} attempts "
        f"({transport['dropped']} dropped, {transport['severed']} severed, "
        f"{transport['retransmits']} retransmits)"
    )

    if args.metrics and profiler is not None:
        _append_metrics(args.metrics, profiler)
        print(f"appended span metrics to {args.metrics}")

    exit_code = 0
    oracle_failed = None
    log = None
    if args.check or args.jsonl or run_dir is not None:
        log = EventLog(clock=logical_clock())
        run.replay_into(log)
        if args.jsonl:
            with open(args.jsonl, "w", encoding="utf-8") as fp:
                for event in log.events:
                    fp.write(event.to_json() + "\n")
            print(f"wrote {len(log.events)} events to {args.jsonl}")
        if args.check:
            report = check_events(
                log.events, model="RWS", initial_values=config.values
            )
            print(report.describe())
            oracle_failed = 0 if report.ok else len(report.errors)
            if not report.ok:
                exit_code = 1

    if run_dir is not None:
        summary = summarize_live(
            run_dir,
            stats,
            session_latencies_ms=run.session_latencies_ms(),
            detection_delays_ms=run.detection_delays_ms(),
            oracle_failed=oracle_failed,
            extra_spans=profiler.snapshot() if profiler is not None else None,
            events=log.events if log is not None else None,
        )
        run_dir.finalize(summary)
        reporter.stop()
        print(
            f"run artifacts: {run_dir.path} (inspect with `repro report`)"
        )
        if any(not v.get("ok") for v in summary.get("slo_verdicts", ())):
            exit_code = exit_code or 1
    return exit_code


def register(sub: argparse._SubParsersAction) -> None:
    """Attach this module's subcommands to the root parser."""
    p_live = sub.add_parser(
        "live",
        help="run a real asyncio cluster (heartbeat P, fault injection)",
    )
    p_live.add_argument(
        "--algorithm",
        choices=LIVE_ALGORITHMS,
        default="floodset",
        help="algorithm to run over live channels (default: floodset)",
    )
    p_live.add_argument(
        "--net-profile",
        choices=tuple(sorted(NET_PROFILES)),
        default="lan",
        help="network fault profile (default: lan)",
    )
    p_live.add_argument(
        "--detector",
        choices=("p", "ep"),
        default="p",
        help="heartbeat detector flavour: perfect or eventually perfect",
    )
    p_live.add_argument(
        "--n",
        type=int,
        default=4,
        metavar="N",
        help="cluster size when --values is not given (default: 4)",
    )
    p_live.add_argument(
        "--values",
        metavar="V0,V1,...",
        help="comma-separated initial values (overrides --n)",
    )
    p_live.add_argument(
        "--t",
        type=int,
        default=1,
        help="resilience parameter (default: 1)",
    )
    p_live.add_argument(
        "--crash",
        action="append",
        metavar="PID@MS",
        help="crash PID at MS milliseconds after start (repeatable)",
    )
    p_live.add_argument(
        "--max-rounds",
        type=int,
        default=4,
        metavar="R",
        help="round horizon for the round adapter (default: 4)",
    )
    p_live.add_argument(
        "--seed",
        type=int,
        default=0,
        help="seed for the transport's drop/delay draws (default: 0)",
    )
    p_live.add_argument(
        "--load",
        type=int,
        default=1,
        metavar="N",
        help="run N consensus sessions over one cluster (default: 1)",
    )
    p_live.add_argument(
        "--concurrency",
        type=int,
        default=8,
        metavar="N",
        help="sessions in flight at once under --load (default: 8)",
    )
    p_live.add_argument(
        "--timeout",
        type=float,
        default=30.0,
        metavar="S",
        help="hard wall-clock bound on the run in seconds (default: 30)",
    )
    p_live.add_argument(
        "--check",
        action="store_true",
        help="serialize the trace and run the trace oracle over it",
    )
    p_live.add_argument(
        "--jsonl",
        metavar="PATH",
        help="write the serialized trace to PATH",
    )
    p_live.add_argument(
        "--metrics",
        metavar="PATH",
        help="append this run's profiler span breakdown to PATH (JSONL)",
    )
    p_live.add_argument(
        "--run-dir",
        metavar="ROOT",
        help=(
            "write a content-addressed run directory under ROOT "
            "(per-session metrics, heartbeats, latency percentiles, "
            "live SLO verdicts); same config re-attaches as a new leg"
        ),
    )
    p_live.set_defaults(func=_cmd_live)
