"""The step executor: drives automata under a scheduler and a pattern.

This is the kernel's single execution engine.  Model differences
(asynchrony, SS, SP) enter exclusively through the scheduler and the
optional failure-detector history, matching the paper's framing where
"system models are defined according to the way algorithms execute".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Sequence

from repro.errors import ConfigurationError, ScheduleError
from repro.failures.history import FailureDetectorHistory
from repro.failures.pattern import FailurePattern
from repro.obs.events import Observer
from repro.obs.profile import profiled
from repro.simulation.automaton import StepAutomaton, StepContext, StepOutcome
from repro.simulation.message import Message
from repro.simulation.run import Run
from repro.simulation.schedule import Schedule, Step
from repro.simulation.schedulers import Scheduler, SchedulerView


@dataclass
class ProcessColumns:
    """The step executor's mutable run state, one column per field.

    Index-addressed parallel lists (position = pid) — the same
    process-axis layout the columnar engine (:mod:`repro.vector`) uses
    for its array state, applied to the step kernel's object states.
    States hold arbitrary automaton objects, so the columns stay plain
    Python lists; what the layout buys is a single state-store seam:
    every per-process update in the executor goes through one indexed
    structure instead of three ad-hoc dicts.
    """

    states: list[Any]
    buffers: list[list[Message]]
    local_steps: list[int]

    @classmethod
    def initial(
        cls, automata: Sequence[StepAutomaton], n: int
    ) -> "ProcessColumns":
        return cls(
            states=[
                automata[pid].initial_state(pid, n) for pid in range(n)
            ],
            buffers=[[] for _ in range(n)],
            local_steps=[0] * n,
        )

    def states_dict(self) -> dict[int, Any]:
        """The ``pid -> state`` mapping callers and :class:`Run` expect."""
        return dict(enumerate(self.states))

    def buffer_views(self) -> dict[int, tuple[Message, ...]]:
        """Immutable per-process buffer snapshots (scheduler/run views)."""
        return {
            pid: tuple(buffered)
            for pid, buffered in enumerate(self.buffers)
        }


class StepExecutor:
    """Execute an algorithm step by step until a stop condition.

    Args:
        automata: Either one automaton shared by all processes or a
            sequence of ``n`` automata, one per process (heterogeneous
            algorithms, e.g. the SDD sender/receiver pair).
        n: Number of processes.
        pattern: The failure pattern governing crashes.
        scheduler: Decides interleaving and message delivery.
        history: Failure-detector history to expose in each step's query
            phase (``None`` for detector-free models).
        record_states: If True, snapshot the stepping process's state
            after every step (used by fine-grained validators; costs
            memory on long runs).
        observer: Optional :class:`~repro.obs.Observer` receiving the
            run's structured events (``msg_sent``, ``msg_delivered``,
            ``crash``, ``suspect``); ``None`` (default) costs nothing.
    """

    def __init__(
        self,
        automata: StepAutomaton | Sequence[StepAutomaton],
        n: int,
        pattern: FailurePattern,
        scheduler: Scheduler,
        *,
        history: FailureDetectorHistory | None = None,
        record_states: bool = False,
        observer: Observer | None = None,
    ) -> None:
        if n <= 0:
            raise ConfigurationError(f"n must be positive, got {n}")
        if pattern.n != n:
            raise ConfigurationError(
                f"pattern is over {pattern.n} processes, executor over {n}"
            )
        if isinstance(automata, StepAutomaton):
            self._automata: list[StepAutomaton] = [automata] * n
        else:
            if len(automata) != n:
                raise ConfigurationError(
                    f"expected {n} automata, got {len(automata)}"
                )
            self._automata = list(automata)
        self.n = n
        self.pattern = pattern
        self.scheduler = scheduler
        self.history = history
        self.record_states = record_states
        self.observer = observer

    def execute(
        self,
        max_steps: int,
        *,
        stop_when: Callable[[dict[int, Any]], bool] | None = None,
    ) -> Run:
        """Run for at most ``max_steps`` steps and return the run record.

        The run also ends when the scheduler returns ``None``, when no
        process is alive, or when ``stop_when(states)`` becomes true
        (checked after every step).
        """
        with profiled("simulation.execute"):
            return self._execute(max_steps, stop_when=stop_when)

    def _execute(
        self,
        max_steps: int,
        *,
        stop_when: Callable[[dict[int, Any]], bool] | None = None,
    ) -> Run:
        columns = ProcessColumns.initial(self._automata, self.n)
        initial_states = columns.states_dict()
        schedule = Schedule(n=self.n)
        messages: dict[int, Message] = {}
        snapshots: list[Any] | None = [] if self.record_states else None
        next_uid = 0
        observer = self.observer
        prev_alive = frozenset(range(self.n)) if observer is not None else None
        seen_suspects: dict[int, frozenset[int]] = {}

        for index in range(max_steps):
            time = index
            alive = frozenset(
                pid for pid in range(self.n)
                if self.pattern.is_alive(pid, time)
            )
            if observer is not None and prev_alive is not None:
                for crashed in sorted(prev_alive - alive):
                    observer.crash(crashed, time=time)
                prev_alive = alive
            if not alive:
                break
            view = SchedulerView(
                time=time,
                n=self.n,
                alive=alive,
                buffers=columns.buffer_views(),
                local_steps=dict(enumerate(columns.local_steps)),
            )
            choice = self.scheduler.choose(view)
            if choice is None:
                break
            pid = choice.pid
            if pid not in alive:
                raise ScheduleError(
                    f"scheduler chose crashed process {pid} at time {time}"
                )

            delivered, remaining = self._split_delivery(
                columns.buffers[pid], choice.deliver_uids, time
            )
            columns.buffers[pid] = remaining
            columns.local_steps[pid] += 1

            suspects = (
                self.history.suspects(pid, time)
                if self.history is not None
                else None
            )
            if observer is not None:
                for message in delivered:
                    observer.msg_delivered(
                        message.sender,
                        message.recipient,
                        time=time,
                        msg_id=message.uid,
                    )
                if suspects is not None:
                    fresh = suspects - seen_suspects.get(pid, frozenset())
                    for suspected in sorted(fresh):
                        crash_time = self.pattern.crash_times.get(suspected)
                        observer.suspect(
                            pid,
                            suspected,
                            time=time,
                            delay=(
                                time - crash_time
                                if crash_time is not None
                                else None
                            ),
                        )
                    seen_suspects[pid] = suspects
            ctx = StepContext(
                pid=pid,
                n=self.n,
                state=columns.states[pid],
                received=tuple(delivered),
                local_step=columns.local_steps[pid],
                suspects=suspects,
            )
            outcome = self._automata[pid].on_step(ctx)
            columns.states[pid] = outcome.state

            sent_uid: int | None = None
            sent_to: int | None = None
            if outcome.send_to is not None:
                sent_to = outcome.send_to
                if not 0 <= sent_to < self.n:
                    raise ScheduleError(
                        f"process {pid} sent to unknown process {sent_to}"
                    )
                message = Message(
                    uid=next_uid,
                    sender=pid,
                    recipient=sent_to,
                    payload=outcome.payload,
                    sent_step=index,
                )
                next_uid += 1
                messages[message.uid] = message
                columns.buffers[sent_to].append(message)
                sent_uid = message.uid
                if observer is not None:
                    observer.msg_sent(
                        pid, sent_to, time=time, msg_id=message.uid
                    )

            schedule.append(
                Step(
                    index=index,
                    time=time,
                    pid=pid,
                    received_uids=tuple(m.uid for m in delivered),
                    sent_uid=sent_uid,
                    sent_to=sent_to,
                    local_step=columns.local_steps[pid],
                    suspects=suspects,
                )
            )
            if snapshots is not None:
                snapshots.append(columns.states[pid])
            if stop_when is not None and stop_when(columns.states_dict()):
                break

        return Run(
            n=self.n,
            pattern=self.pattern,
            schedule=schedule,
            initial_states=initial_states,
            final_states=columns.states_dict(),
            messages=messages,
            undelivered=columns.buffer_views(),
            history=self.history,
            state_snapshots=snapshots,
        )

    @staticmethod
    def _split_delivery(
        buffered: list[Message],
        deliver_uids: frozenset[int] | None,
        time: int,
    ) -> tuple[list[Message], list[Message]]:
        """Partition a buffer into (delivered now, still pending)."""
        if deliver_uids is None:
            return list(buffered), []
        delivered: list[Message] = []
        remaining: list[Message] = []
        for message in buffered:
            if message.uid in deliver_uids:
                delivered.append(message)
            else:
                remaining.append(message)
        missing = deliver_uids - {m.uid for m in delivered}
        if missing:
            raise ScheduleError(
                f"scheduler delivered unknown message uids {sorted(missing)} "
                f"at time {time}"
            )
        return delivered, remaining


def run_until_quiet(
    executor: StepExecutor,
    max_steps: int,
    decided: Callable[[Any], bool],
) -> Run:
    """Convenience: execute until every alive process satisfies ``decided``.

    ``decided`` inspects a single process state.  Crashed processes are
    exempt — a run is "quiet" when every process still alive (at the
    *end* of the horizon) has decided.
    """
    pattern = executor.pattern

    def stop(states: dict[int, Any]) -> bool:
        return all(
            decided(state)
            for pid, state in states.items()
            if pid in pattern.correct
        )

    return executor.execute(max_steps, stop_when=stop)
