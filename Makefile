.PHONY: install test test-fast bench bench-report examples experiments report trace-smoke check-smoke sweep-smoke clean

install:
	pip install -e . --no-build-isolation

test:
	PYTHONPATH=src pytest tests/

test-fast:
	PYTHONPATH=src pytest tests/ -m "not slow"

bench:
	pytest benchmarks/ --benchmark-only

bench-report:
	PYTHONPATH=src python scripts/bench_report.py

examples:
	@for script in examples/*.py; do \
		echo "== $$script"; \
		python $$script > /dev/null || exit 1; \
	done; echo "all examples ran"

experiments:
	python -m repro experiments --extensions

report:
	python -m repro report --output EXPERIMENTS.md

TRACE_SMOKE_OUT ?= /tmp/repro_trace_smoke.jsonl

trace-smoke:
	PYTHONPATH=src python -m repro trace floodset-rws-violation --jsonl $(TRACE_SMOKE_OUT)
	PYTHONPATH=src python scripts/check_trace.py $(TRACE_SMOKE_OUT)

check-smoke:
	PYTHONPATH=src python -m repro check fopt-fast
	PYTHONPATH=src python -m repro check floodset-rws

SWEEP_SMOKE_CACHE ?= /tmp/repro_sweep_smoke_cache

# Run a small checked sweep twice against a fresh cache: the first run
# executes every cell, the second must serve all of them from the
# cache ("executed 0").
sweep-smoke:
	rm -rf $(SWEEP_SMOKE_CACHE)
	PYTHONPATH=src python -m repro sweep oracle-sweep --count 2 --check \
		--cache-dir $(SWEEP_SMOKE_CACHE)
	PYTHONPATH=src python -m repro sweep oracle-sweep --count 2 --check \
		--cache-dir $(SWEEP_SMOKE_CACHE) | tee /dev/stderr | grep -q "executed 0,"

clean:
	rm -rf .pytest_cache .hypothesis src/repro.egg-info
	find . -name __pycache__ -type d -exec rm -rf {} +
