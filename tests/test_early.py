"""Tests for the early-deciding algorithms and the uniform gap."""

from __future__ import annotations

import pytest

from repro.analysis import verify_algorithm
from repro.consensus import (
    EagerFloodSetWS,
    EarlyDecidingConsensus,
    EarlyDecidingUniformFloodSet,
    check_consensus_run,
)
from repro.rounds import (
    CrashEvent,
    FailureScenario,
    RoundModel,
    run_rs,
    run_rws,
)


class TestEarlyDecidingConsensus:
    def test_failure_free_decides_at_round_one(self):
        run = run_rs(
            EarlyDecidingConsensus(),
            [0, 1, 1, 1],
            FailureScenario.failure_free(4),
            t=2,
        )
        assert all(run.decision_round(p) == 1 for p in range(4))

    def test_one_failure_decides_by_round_two(self):
        scenario = FailureScenario(
            n=4, crashes=(CrashEvent(pid=0, round=1),)
        )
        run = run_rs(EarlyDecidingConsensus(), [0, 1, 1, 1], scenario, t=2,
                     max_rounds=5)
        for pid in (1, 2, 3):
            assert run.decision_round(pid) <= 2

    def test_consensus_safe_in_rs(self):
        report = verify_algorithm(
            EarlyDecidingConsensus(), 4, 2, RoundModel.RS,
            checker=check_consensus_run, horizon=5,
        )
        assert report.ok, report.first_violations()

    def test_not_uniform_in_rs(self):
        report = verify_algorithm(
            EarlyDecidingConsensus(), 4, 2, RoundModel.RS,
            stop_after=1, horizon=5,
        )
        assert not report.ok

    def test_the_canonical_violation(self):
        """p0's low value reaches only p1; p1 decides it and dies mute."""
        scenario = FailureScenario(
            n=4,
            crashes=(
                CrashEvent(pid=0, round=1, sent_to=frozenset({1})),
                CrashEvent(
                    pid=1,
                    round=1,
                    sent_to=frozenset({0, 2, 3}),
                    applies_transition=True,
                ),
            ),
        )
        run = run_rs(
            EarlyDecidingConsensus(), [0, 1, 1, 1], scenario, t=2,
            max_rounds=5,
        )
        assert run.decision_value(1) == 0  # decided, then crashed
        assert run.decision_value(2) == 1
        assert run.decision_value(3) == 1


class TestEarlyUniform:
    def test_uniform_safe_in_rs_t2(self):
        report = verify_algorithm(
            EarlyDecidingUniformFloodSet(), 4, 2, RoundModel.RS, horizon=6
        )
        assert report.ok, report.first_violations()

    def test_uniform_safe_in_rs_t1(self):
        report = verify_algorithm(
            EarlyDecidingUniformFloodSet(), 3, 1, RoundModel.RS, horizon=5
        )
        assert report.ok, report.first_violations()

    def test_failure_free_decides_at_round_two(self):
        run = run_rs(
            EarlyDecidingUniformFloodSet(),
            [0, 1, 1],
            FailureScenario.failure_free(3),
            t=1,
            max_rounds=5,
        )
        assert all(run.decision_round(p) == 2 for p in range(3))


class TestEagerFloodSetWS:
    """The RWS witness of the consensus/uniform-consensus gap."""

    def test_consensus_safe_in_rws(self):
        report = verify_algorithm(
            EagerFloodSetWS(), 3, 1, RoundModel.RWS,
            checker=check_consensus_run,
        )
        assert report.ok, report.first_violations()

    def test_not_uniform_in_rws(self):
        report = verify_algorithm(
            EagerFloodSetWS(), 3, 1, RoundModel.RWS, stop_after=1
        )
        assert not report.ok

    def test_failure_free_decides_at_round_one(self):
        run = run_rws(
            EagerFloodSetWS(), [0, 1, 1], FailureScenario.failure_free(3), t=1
        )
        assert all(run.decision_round(p) == 1 for p in range(3))

    def test_violation_is_decide_then_crash(self):
        """Every uniform violation involves a faulty round-1 decider."""
        report = verify_algorithm(
            EagerFloodSetWS(), 3, 1, RoundModel.RWS
        )
        assert report.violations
        for violation in report.violations:
            assert violation.clause == "uniform agreement"
