"""Commit-rate measurement: the SDD advantage, quantified.

Experiment E3's harness: over the full bounded adversary space of each
model, run a commit algorithm on the all-YES configuration (the
interesting one — mixed votes must abort everywhere) and count how
often the correct survivors COMMIT.  The paper's qualitative claim
becomes the quantitative shape: synchronous commit's rate strictly
exceeds the safe RWS algorithm's, while the optimistic rule in RWS is
outright unsafe.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.commit.spec import COMMIT, check_nbac_run
from repro.consensus.spec import SpecViolation
from repro.rounds.algorithm import RoundAlgorithm
from repro.rounds.enumeration import all_scenarios
from repro.rounds.executor import RoundModel, execute


@dataclass
class CommitRateReport:
    """Commit statistics of one algorithm over one model's run space."""

    algorithm: str
    model: str
    n: int
    t: int
    runs: int = 0
    commits: int = 0
    aborts: int = 0
    undecided: int = 0
    violations: list[SpecViolation] = field(default_factory=list)

    @property
    def commit_rate(self) -> float:
        return self.commits / self.runs if self.runs else 0.0

    @property
    def safe(self) -> bool:
        return not self.violations

    def describe(self) -> str:
        safety = "safe" if self.safe else f"{len(self.violations)} violations"
        return (
            f"{self.algorithm} in {self.model}: commit rate "
            f"{self.commits}/{self.runs} = {self.commit_rate:.2%} "
            f"({safety}; {self.undecided} undecided runs)"
        )


def commit_rate(
    algorithm: RoundAlgorithm,
    model: RoundModel,
    *,
    n: int = 3,
    t: int = 1,
    votes: tuple[bool, ...] | None = None,
    max_round: int | None = None,
    horizon: int | None = None,
) -> CommitRateReport:
    """Measure the commit rate of ``algorithm`` over the model's runs.

    A run counts as a commit when every correct process decided COMMIT.
    NBAC violations are collected alongside — a high commit rate is
    meaningless if bought with safety violations, which is precisely
    the optimistic-in-RWS story.
    """
    values = votes if votes is not None else tuple([True] * n)
    crash_bound = max_round if max_round is not None else t + 1
    run_horizon = horizon if horizon is not None else t + 3
    report = CommitRateReport(
        algorithm=algorithm.name, model=model.value, n=n, t=t
    )
    for scenario in all_scenarios(
        n,
        t,
        max_round=crash_bound,
        allow_pending=(model is RoundModel.RWS),
    ):
        run = execute(
            algorithm,
            values,
            scenario,
            t=t,
            model=model,
            max_rounds=run_horizon,
            validate=False,
        )
        report.runs += 1
        correct_decisions = {
            run.decision_value(pid) for pid in scenario.correct
        }
        if correct_decisions == {COMMIT}:
            report.commits += 1
        elif None in correct_decisions:
            report.undecided += 1
        else:
            report.aborts += 1
        report.violations.extend(check_nbac_run(run))
    return report


def compare_commit_rates(
    *,
    n: int = 3,
    t: int = 1,
    votes: tuple[bool, ...] | None = None,
) -> dict[str, CommitRateReport]:
    """The E3 head-to-head: SyncCommit/RS vs the two RWS rules vs 2PC."""
    from repro.commit.algorithms import (
        OptimisticFDCommit,
        PerfectFDCommit,
        SynchronousCommit,
        TwoPhaseCommit,
    )

    return {
        "SyncCommit@RS": commit_rate(
            SynchronousCommit(), RoundModel.RS, n=n, t=t, votes=votes
        ),
        "P-Commit@RWS": commit_rate(
            PerfectFDCommit(), RoundModel.RWS, n=n, t=t, votes=votes
        ),
        "OptimisticP-Commit@RWS": commit_rate(
            OptimisticFDCommit(), RoundModel.RWS, n=n, t=t, votes=votes
        ),
        "2PC@RS": commit_rate(
            TwoPhaseCommit(), RoundModel.RS, n=n, t=t, votes=votes
        ),
    }
